# Convenience targets for the repro project.

.PHONY: install test bench bench-smoke bench-initpart-ablation docs-check chaos-smoke serve-smoke serve-cluster-smoke parallel-shm-smoke obs-smoke vcycle-smoke examples smoke all clean

install:
	pip install -e .

# Matches the tier-1 verification command: src-layout without requiring an
# editable install.
test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# Kernel quality guard in CI mode: tiny graphs, cut/balance assertions
# against the recorded baseline, no wall-clock gating (safe on shared
# machines), then a static validation of the *recorded* artifact: cuts
# bit-identical-or-better vs the pre-optimization reference, >= 3x
# recorded end-to-end speedup, and the initpart-fraction gate.  The
# fraction override (0.95, vs the 0.40 default) is deliberate: the smoke
# ladder is ~85-90% initpart *by construction* (tiny graphs, coarsening
# and refinement are near-free) and the recording box has a single core,
# so the pool cannot fan out -- docs/performance.md#initial-partitioning
# explains the honest numbers.  Multi-core runners can tighten this.
bench-smoke:
	PYTHONPATH=src python benchmarks/perf_guard.py --smoke
	PYTHONPATH=src python benchmarks/perf_guard.py --check --max-init-fraction 0.95

# Initial-bisection ablation with a machine-readable JSON artifact
# (benchmarks/results/BENCH_initpart_ablation.json, uploaded by CI).
bench-initpart-ablation:
	PYTHONPATH=src:benchmarks python benchmarks/bench_initpart_ablation.py

# Execute every ```python snippet in the user-facing docs (README,
# tutorial, api, robustness) -- docs must not rot.
docs-check:
	PYTHONPATH=src python -m pytest tests/test_docs_snippets.py -q

# The robustness contract: chaos sweep + error taxonomy coverage.
# See docs/robustness.md.
chaos-smoke:
	PYTHONPATH=src python -m pytest tests/test_faults.py tests/test_errors.py -q

# The serving contract: hit == cold compute bit-for-bit, one cold compute
# per distinct key under N threads x M duplicate requests, warm-start
# fallback, deadlines.  See docs/serving.md.
serve-smoke:
	PYTHONPATH=src python -m pytest tests/test_serve.py -q

# The cluster tier: process/thread backend parity + disk-cache robustness
# suites, then the load harness in smoke mode and its JSON invariants
# (zero determinism violations; process >= 2x thread cold throughput,
# asserted only on >= 4 cores -- single-core boxes record the ratio
# honestly without gating on it).  See docs/serving.md.
serve-cluster-smoke:
	PYTHONPATH=src python -m pytest tests/test_serve_cluster.py tests/test_diskcache.py -q
	PYTHONPATH=src:benchmarks python benchmarks/bench_serve_cluster.py --smoke
	PYTHONPATH=src:benchmarks python benchmarks/bench_serve_cluster.py --check

# The shm-executor contract: the real multiprocess backend must be
# bit-identical to the simulated oracle (same messages, same partition),
# degrade to the serial fallback when a worker dies, and leak no
# /dev/shm segment on any exit path.  The test suite pins all of that,
# then the benchmark records parity + wall times at 1/2/4 ranks (the
# p=4/p=1 speedup floor is asserted only on >= 4 cores; single-core
# boxes record the honest ratio).  See docs/parallel.md.
parallel-shm-smoke:
	PYTHONPATH=src python -m pytest tests/test_parallel_shm.py -q
	PYTHONPATH=src:benchmarks python benchmarks/bench_parallel_shm.py --smoke
	PYTHONPATH=src:benchmarks python benchmarks/bench_parallel_shm.py --check

# The observability contract: a seeded 2-constraint run through the
# flight recorder must yield cut + per-constraint imbalance at every
# level of both ladders, a valid Prometheus exposition with >= 1
# histogram family, a bit-identical partition, and no drift from the
# committed baseline (benchmarks/results/OBS_baseline.json, checked
# under the gate's widened tolerances), plus a traced 2-rank shm run
# whose merged profile must carry per-rank compute/pipe-wait/publish
# rows (written to benchmarks/results/OBS_merged_profile.json).  See
# docs/observability.md; refresh the baseline with
# `PYTHONPATH=src:benchmarks python benchmarks/obs_smoke.py --record`.
obs-smoke:
	PYTHONPATH=src:benchmarks python benchmarks/obs_smoke.py

# The effort-level contract: iterated V-cycles (effort="high") must never
# regress a cut and must strictly beat effort="standard" on >= 3 of the 4
# recorded ladder cases, while effort="standard" stays bit-identical to
# the BENCH_kernels.json baseline cuts.  The test suite pins monotonicity,
# determinism and the evolutionary ensemble; the benchmark's default mode
# re-measures and must reproduce the committed BENCH_vcycle.json exactly
# (both pipelines are deterministic at a pinned seed); --check then
# validates the committed artifact without measuring.  See
# docs/performance.md#effort-levels.
vcycle-smoke:
	PYTHONPATH=src python -m pytest tests/test_vcycle.py -q
	PYTHONPATH=src:benchmarks python benchmarks/bench_vcycle.py
	PYTHONPATH=src:benchmarks python benchmarks/bench_vcycle.py --check

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

smoke:
	python -c "import repro; print('repro', repro.__version__)"
	repro-part --demo 2000 8 --seed 1 --quiet

all: install test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
