"""Fault injection & graceful degradation for the parallel simulation.

Three pieces (full contract in ``docs/robustness.md``):

* **Spec** (:mod:`repro.faults.spec`) -- :class:`FaultSpec`, the seeded
  deterministic fault model: per-collective probabilities for message
  drop / delay / duplication / reorder and transient / permanent rank
  crashes, with per-phase rate multipliers.  Parse the CLI string form
  with :meth:`FaultSpec.parse`.
* **Injector** (:mod:`repro.faults.injector`) -- :class:`FaultyCluster`,
  a drop-in :class:`~repro.parallel.simcomm.SimCluster` that screens
  every collective through the spec, raising the typed
  :class:`~repro.errors.CommError` taxonomy on lossy faults.
* **Recovery** (:mod:`repro.faults.recovery`) -- :class:`RecoveryPolicy`
  (retry budget, exponential backoff, per-phase simulated-time timeouts,
  strict mode) and the :func:`run_with_retries` loop the parallel driver
  wraps each phase in.

Quickstart::

    from repro.faults import FaultSpec
    from repro.parallel import parallel_part_graph

    res = parallel_part_graph(g, 8, nranks=4,
                              faults=FaultSpec(drop=0.05, crash=0.01, seed=7))
    res.degraded          # True if the run fell back to the serial path
    res.faults            # injected-fault counts
    res.retries           # transient failures retried away
"""

from .injector import FaultStats, FaultyCluster
from .recovery import RecoveryPolicy, run_with_retries
from .spec import FAULT_KINDS, FaultSpec, as_fault_spec

__all__ = [
    "FaultSpec",
    "as_fault_spec",
    "FAULT_KINDS",
    "FaultStats",
    "FaultyCluster",
    "RecoveryPolicy",
    "run_with_retries",
]
