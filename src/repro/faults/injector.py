"""Fault injection over the simulated cluster: :class:`FaultyCluster`.

A :class:`FaultyCluster` is a drop-in :class:`~repro.parallel.simcomm.SimCluster`
whose collectives are screened by a :class:`~repro.faults.spec.FaultSpec`
before executing.  Fault randomness comes from a dedicated
``numpy.random.Generator`` seeded by the spec -- the algorithmic RNG stream
is never touched, so a run under ``FaultSpec()`` (all rates zero) is
bit-identical to one on a plain ``SimCluster``.

Per collective, each fault kind is drawn once in the fixed
:data:`~repro.faults.spec.FAULT_KINDS` order.  Effects:

* ``delay``      -- charge ``delay_rounds`` extra latency rounds; succeed.
* ``duplicate``  -- every message delivered (and billed) twice; succeed.
* ``reorder``    -- per-source delivery order permuted; succeed (BSP
  collectives are order-insensitive, so this must be absorbed silently --
  the chaos suite checks that it is).
* ``drop``       -- the collective's messages are lost; raises
  :class:`~repro.errors.MessageDropError` (retryable).
* ``crash``      -- a random rank goes down for ``crash_down_steps``
  collectives; raises :class:`~repro.errors.RankUnavailableError`
  (retryable; the rank recovers after enough failed attempts).
* ``crash_permanent`` -- a random rank dies for good; this and every later
  collective raise :class:`~repro.errors.RankCrashedError` (not
  retryable; the driver must degrade).

A raising fault aborts the collective *before* any messages are delivered
or charged, so retrying it is sound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MessageDropError, RankCrashedError, RankUnavailableError
from ..parallel.simcomm import SimCluster
from .spec import FAULT_KINDS, FaultSpec, as_fault_spec

__all__ = ["FaultStats", "FaultyCluster"]


@dataclass
class FaultStats:
    """Counts of injected faults, by kind."""

    injected: int = 0
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    reordered: int = 0
    transient_crashes: int = 0
    permanent_crashes: int = 0
    #: extra failures caused by a rank still being down from an earlier crash
    down_rank_failures: int = 0

    def to_dict(self) -> dict:
        return {
            "injected": self.injected,
            "dropped": self.dropped,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "transient_crashes": self.transient_crashes,
            "permanent_crashes": self.permanent_crashes,
            "down_rank_failures": self.down_rank_failures,
        }


class FaultyCluster(SimCluster):
    """A :class:`SimCluster` whose collectives can drop, delay, duplicate,
    reorder, or lose whole ranks, per a :class:`FaultSpec`.

    The driver tags the current pipeline phase via :meth:`set_phase` so the
    spec's per-phase multipliers apply.  Injection accounting is exposed on
    :attr:`faults` (a :class:`FaultStats`).
    """

    def __init__(self, nranks: int, spec: FaultSpec | str | dict | None = None,
                 cost=None):
        super().__init__(nranks, cost)
        self.spec = as_fault_spec(spec)
        self.faults = FaultStats()
        self._frng = np.random.default_rng(self.spec.seed)
        self._down_for = np.zeros(nranks, dtype=np.int64)
        self._dead = np.zeros(nranks, dtype=bool)
        self._dup_pending = False
        self._reorder_pending = False

    # ------------------------------------------------------------ helpers

    def _budget_left(self) -> bool:
        return (self.spec.max_faults is None
                or self.faults.injected < self.spec.max_faults)

    def _count(self, field: str) -> None:
        self.faults.injected += 1
        setattr(self.faults, field, getattr(self.faults, field) + 1)

    def _pick_victim(self) -> int:
        return int(self._frng.integers(self.nranks))

    def _pre_collective(self, name: str) -> None:
        """Screen one collective: apply effects, raise on lossy faults."""
        self._dup_pending = False
        self._reorder_pending = False
        if self._dead.any():
            ranks = np.flatnonzero(self._dead).tolist()
            raise RankCrashedError(
                f"rank(s) {ranks} crashed permanently; {name} cannot complete"
                f" (phase {self.phase or 'unknown'!r})", ranks)
        if np.any(self._down_for > 0):
            down = np.flatnonzero(self._down_for > 0)
            self._down_for[down] -= 1
            self.faults.down_rank_failures += 1
            raise RankUnavailableError(
                f"rank(s) {down.tolist()} still rebooting; {name} timed out"
                f" (phase {self.phase or 'unknown'!r})")
        if not self.spec.enabled or not self._budget_left():
            return
        draws = self._frng.random(len(FAULT_KINDS))
        events = {kind: (draws[i] < self.spec.rate(kind, self.phase))
                  for i, kind in enumerate(FAULT_KINDS)}
        # Non-lossy effects first, then the lossy faults, most severe first.
        if events["delay"]:
            self._count("delayed")
            self.stats.comm_time += self.cost.alpha * self.spec.delay_rounds
        if events["duplicate"]:
            self._count("duplicated")
            self._dup_pending = True
        if events["reorder"]:
            self._count("reordered")
            self._reorder_pending = True
        if events["crash_permanent"]:
            self._count("permanent_crashes")
            self._dup_pending = self._reorder_pending = False
            victim = self._pick_victim()
            self._dead[victim] = True
            raise RankCrashedError(
                f"rank {victim} crashed permanently during {name}"
                f" (phase {self.phase or 'unknown'!r})", [victim])
        if events["crash"]:
            self._count("transient_crashes")
            self._dup_pending = self._reorder_pending = False
            victim = self._pick_victim()
            self._down_for[victim] = self.spec.crash_down_steps
            raise RankUnavailableError(
                f"rank {victim} crashed transiently during {name}"
                f" (phase {self.phase or 'unknown'!r}); "
                f"down for {self.spec.crash_down_steps} collectives")
        if events["drop"]:
            self._count("dropped")
            self._dup_pending = self._reorder_pending = False
            raise MessageDropError(
                f"messages lost during {name}"
                f" (phase {self.phase or 'unknown'!r}); superstep aborted")

    # ------------------------------------------- instrumented accounting

    def _charge_comm(self, bytes_per_rank, nmessages, rounds=1) -> None:
        if self._dup_pending:
            self._dup_pending = False
            bytes_per_rank = np.asarray(bytes_per_rank) * 2
            nmessages *= 2
        super()._charge_comm(bytes_per_rank, nmessages, rounds)

    # ------------------------------------------------------- collectives

    def alltoall(self, payloads):
        self._pre_collective("alltoall")
        received = super().alltoall(payloads)
        if self._reorder_pending:
            self._reorder_pending = False
            received = [
                {int(k): d[int(k)]
                 for k in self._frng.permutation(sorted(d))}
                if d else d
                for d in received
            ]
        return received

    def allreduce(self, values, op: str = "sum"):
        self._pre_collective("allreduce")
        return super().allreduce(values, op)

    def gather(self, values, root: int = 0):
        self._pre_collective("gather")
        return super().gather(values, root)

    def bcast(self, value, root: int = 0):
        self._pre_collective("bcast")
        return super().bcast(value, root)

    def barrier(self) -> None:
        self._pre_collective("barrier")
        super().barrier()
