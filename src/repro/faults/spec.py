"""The deterministic fault model: :class:`FaultSpec`.

A fault spec fixes *what* can go wrong and *how often*, per collective
operation of the simulated cluster, under its own dedicated RNG seed --
so a fault schedule is reproducible independently of the algorithmic
seed, and the no-fault path never consumes fault randomness at all.

Specs are built three ways:

* directly: ``FaultSpec(drop=0.05, seed=7)``;
* from a mapping: ``FaultSpec.from_dict({"drop": 0.05, "seed": 7})``;
* from the CLI/string form parsed by :meth:`FaultSpec.parse`::

      drop=0.05,dup=0.02,delay=0.1,crash=0.01,pcrash=0.002,seed=7
      drop=0.1,phase.refine=2.0,phase.coarsen=0.5     # per-phase scaling

The string grammar is ``key=value`` pairs separated by commas.  Rate keys
(``drop``, ``delay``, ``dup``/``duplicate``, ``reorder``, ``crash``,
``pcrash``/``crash_permanent``) take probabilities in ``[0, 1]`` applied
per collective; ``phase.<name>`` entries scale every rate while the
driver is inside that phase (``coarsen``, ``initpart``, ``refine``);
``seed``, ``delay_rounds``, ``crash_down_steps`` and ``max_faults`` take
integers.  Unknown keys and out-of-range values raise
:class:`repro.errors.FaultSpecError`.  See ``docs/robustness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import FaultSpecError

__all__ = ["FaultSpec", "as_fault_spec", "FAULT_KINDS"]

#: The injectable fault kinds, in the (fixed) order their probabilities are
#: drawn per collective -- part of the determinism contract.
FAULT_KINDS = ("drop", "delay", "duplicate", "reorder", "crash", "crash_permanent")

_ALIASES = {
    "dup": "duplicate",
    "pcrash": "crash_permanent",
    "loss": "drop",
}

_INT_FIELDS = ("seed", "delay_rounds", "crash_down_steps", "max_faults")


def _freeze_phases(phases) -> tuple:
    """Normalise a phase->multiplier mapping to a sorted hashable tuple."""
    return tuple(sorted((str(k), float(v)) for k, v in dict(phases or {}).items()))


@dataclass(frozen=True)
class FaultSpec:
    """Seeded, per-collective fault rates for the simulated cluster.

    Attributes
    ----------
    drop, delay, duplicate, reorder, crash, crash_permanent:
        Probability (``[0, 1]``) that a collective suffers the given
        fault.  ``drop`` loses the collective's messages (retryable);
        ``delay`` charges extra latency but succeeds; ``duplicate``
        delivers (and bills) every message twice; ``reorder`` permutes
        per-source delivery order (absorbed by BSP semantics);
        ``crash`` takes a random rank down transiently for
        ``crash_down_steps`` failed collectives; ``crash_permanent``
        kills a random rank for good.
    phase_rates:
        ``(phase, multiplier)`` pairs scaling every rate inside the named
        driver phase (``coarsen`` / ``initpart`` / ``refine``).
    seed:
        Seed of the dedicated fault RNG stream.
    delay_rounds:
        Extra latency rounds charged by one ``delay`` fault.
    crash_down_steps:
        Collectives a transiently-crashed rank stays down for.
    max_faults:
        Optional cap on total injected faults (``None`` = unlimited).
    """

    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    crash: float = 0.0
    crash_permanent: float = 0.0
    phase_rates: tuple = field(default_factory=tuple)
    seed: int = 0
    delay_rounds: int = 4
    crash_down_steps: int = 3
    max_faults: int | None = None

    def __post_init__(self):
        for kind in FAULT_KINDS:
            v = getattr(self, kind)
            if not (isinstance(v, (int, float)) and 0.0 <= float(v) <= 1.0):
                raise FaultSpecError(
                    f"fault rate {kind!r} must be a probability in [0, 1]; got {v!r}"
                )
        object.__setattr__(self, "phase_rates", _freeze_phases(self.phase_rates))
        for name, mult in self.phase_rates:
            if mult < 0:
                raise FaultSpecError(
                    f"phase multiplier for {name!r} must be >= 0; got {mult}"
                )
        if self.delay_rounds < 0 or self.crash_down_steps < 1:
            raise FaultSpecError("delay_rounds must be >= 0 and crash_down_steps >= 1")
        if self.max_faults is not None and self.max_faults < 0:
            raise FaultSpecError("max_faults must be >= 0 or None")

    # ------------------------------------------------------------ queries

    @property
    def enabled(self) -> bool:
        """True when any fault kind has a non-zero rate."""
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)

    def phase_scale(self, phase: str) -> float:
        """Rate multiplier in effect for ``phase`` (1.0 when unlisted)."""
        for name, mult in self.phase_rates:
            if name == phase:
                return mult
        return 1.0

    def rate(self, kind: str, phase: str = "") -> float:
        """Effective probability of ``kind`` inside ``phase`` (clipped to 1)."""
        if kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r}")
        return min(1.0, float(getattr(self, kind)) * self.phase_scale(phase))

    # ------------------------------------------------------- constructors

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI string form (see module docstring)."""
        text = (text or "").strip()
        if text in ("", "off", "none"):
            return cls()
        fields: dict = {}
        phases: dict = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise FaultSpecError(
                    f"bad fault-spec entry {item!r}: expected key=value"
                )
            key, _, raw = item.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            if key.startswith("phase."):
                try:
                    phases[key[len("phase."):]] = float(raw)
                except ValueError:
                    raise FaultSpecError(
                        f"bad phase multiplier {raw!r} for {key!r}"
                    ) from None
                continue
            key = _ALIASES.get(key, key)
            if key in _INT_FIELDS:
                try:
                    fields[key] = int(raw)
                except ValueError:
                    raise FaultSpecError(f"{key} needs an integer; got {raw!r}") from None
            elif key in FAULT_KINDS:
                try:
                    fields[key] = float(raw)
                except ValueError:
                    raise FaultSpecError(f"{key} needs a number; got {raw!r}") from None
            else:
                raise FaultSpecError(
                    f"unknown fault-spec key {key!r} "
                    f"(rates: {', '.join(FAULT_KINDS)}; "
                    f"ints: {', '.join(_INT_FIELDS)}; phase.<name>)"
                )
        return cls(phase_rates=_freeze_phases(phases), **fields)

    @classmethod
    def from_dict(cls, d) -> "FaultSpec":
        """Build from a mapping (``phase_rates`` may be a dict)."""
        d = dict(d)
        phases = d.pop("phase_rates", ())
        fields = {}
        for key, value in d.items():
            key = _ALIASES.get(str(key).lower(), str(key).lower())
            if key not in FAULT_KINDS and key not in _INT_FIELDS:
                raise FaultSpecError(f"unknown fault-spec key {key!r}")
            fields[key] = value
        return cls(phase_rates=_freeze_phases(phases), **fields)

    def with_(self, **kwargs) -> "FaultSpec":
        """Functional update (``dataclasses.replace`` wrapper)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Round-trippable plain-dict form (``from_dict`` inverse)."""
        d = {kind: getattr(self, kind) for kind in FAULT_KINDS}
        d.update(seed=self.seed, delay_rounds=self.delay_rounds,
                 crash_down_steps=self.crash_down_steps,
                 max_faults=self.max_faults,
                 phase_rates=dict(self.phase_rates))
        return d

    def describe(self) -> str:
        """Compact one-line form (parseable by :meth:`parse`)."""
        parts = [f"{k}={getattr(self, k):g}" for k in FAULT_KINDS
                 if getattr(self, k) > 0]
        parts += [f"phase.{name}={mult:g}" for name, mult in self.phase_rates]
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def as_fault_spec(spec) -> FaultSpec:
    """Coerce ``None`` / str / mapping / :class:`FaultSpec` to a spec."""
    if spec is None:
        return FaultSpec()
    if isinstance(spec, FaultSpec):
        return spec
    if isinstance(spec, str):
        return FaultSpec.parse(spec)
    if isinstance(spec, dict):
        return FaultSpec.from_dict(spec)
    raise FaultSpecError(
        f"cannot interpret {type(spec).__name__!r} as a fault spec"
    )
