"""Recovery policy and the retry-with-backoff loop.

The parallel driver wraps each pipeline phase in :func:`run_with_retries`:
transient communication errors re-run the phase attempt after an
exponential backoff; permanent errors and exhausted budgets propagate as
typed :class:`~repro.errors.FaultError` / :class:`~repro.errors.CommError`
subclasses for the driver's degradation logic to handle.

The backoff and the phase deadline are measured on whatever clock the
executor runs: on the simulated cluster the backoff is *charged* to the
modelled ``comm_time`` and deadlines compare against simulated seconds;
on a real executor (``fabric.realtime`` is true, e.g. the shm backend)
the backoff actually sleeps and deadlines fire on wall-clock.  Semantics
are documented in ``docs/robustness.md`` and ``docs/parallel.md``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

from ..errors import (
    FaultSpecError,
    PhaseTimeoutError,
    RetryExhaustedError,
    TransientCommError,
)
from ..trace import as_tracer

__all__ = ["RecoveryPolicy", "run_with_retries"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the parallel driver reacts to failures.

    Attributes
    ----------
    max_retries:
        Transient-failure retries allowed per phase attempt before
        :class:`~repro.errors.RetryExhaustedError` is raised.
    backoff_base, backoff_factor:
        Simulated seconds charged before retry ``i`` (1-based):
        ``backoff_base * backoff_factor ** (i - 1)``.
    phase_timeout:
        Simulated-seconds budget per pipeline phase; exceeding it raises
        :class:`~repro.errors.PhaseTimeoutError`.  ``inf`` disables it.
    allow_degraded:
        When True (default) the driver falls back to the serial
        partitioner on unrecoverable failure; when False it raises
        :class:`~repro.errors.DegradedResult` instead (strict mode).
    """

    max_retries: int = 4
    backoff_base: float = 2e-4
    backoff_factor: float = 2.0
    phase_timeout: float = math.inf
    allow_degraded: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise FaultSpecError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise FaultSpecError(
                "backoff_base must be >= 0 and backoff_factor >= 1")
        if not self.phase_timeout > 0:
            raise FaultSpecError("phase_timeout must be > 0 (use inf to disable)")

    def backoff(self, attempt: int) -> float:
        """Simulated backoff seconds before retry ``attempt`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)

    def deadline(self, start: float) -> float | None:
        """Absolute simulated-time deadline for a phase starting at ``start``."""
        return None if math.isinf(self.phase_timeout) else start + self.phase_timeout

    def with_(self, **kwargs) -> "RecoveryPolicy":
        """Functional update (``dataclasses.replace`` wrapper)."""
        return replace(self, **kwargs)


def run_with_retries(make_attempt, cluster, policy: RecoveryPolicy, *,
                     phase: str = "", deadline: float | None = None,
                     tracer=None):
    """Run ``make_attempt()`` under ``policy``; returns ``(result, retries)``.

    :class:`~repro.errors.TransientCommError` failures are retried after
    the policy's backoff -- charged to ``cluster``'s simulated clock (the
    ranks sit at the barrier waiting out the timeout), or really slept
    when ``cluster`` is a real-time fabric; anything else propagates.
    ``deadline`` is an absolute bound on the same clock -- checked before
    every attempt, so a faulty run cannot spin past its phase budget
    unnoticed.  ``cluster`` is anything with ``.stats`` (a ``SimCluster``
    or a fabric).
    """
    tracer = as_tracer(tracer)
    realtime = bool(getattr(cluster, "realtime", False))
    attempt = 0
    while True:
        if deadline is not None and cluster.stats.simulated_time > deadline:
            raise PhaseTimeoutError(
                f"phase {phase or 'unknown'!r} exceeded its time budget "
                f"({policy.phase_timeout:g}s)")
        try:
            return make_attempt(), attempt
        except TransientCommError as exc:
            attempt += 1
            tracer.incr("faults.retries")
            if attempt > policy.max_retries:
                raise RetryExhaustedError(
                    f"phase {phase or 'unknown'!r} still failing after "
                    f"{policy.max_retries} retries: {exc}") from exc
            if realtime:
                time.sleep(policy.backoff(attempt))
            else:
                cluster.stats.comm_time += policy.backoff(attempt)
