"""Initial partitioning: balanced-bisection theory algorithms and the
best-of-N initial bisection of the coarsest graph."""

from .bisect import INITIAL_METHODS, gggp_bisection, grow_bisection, initial_bisection
from .theory import (
    alternating_bisection,
    best_projection_bisection,
    bisection_excess,
    greedy_bisection,
    prefix_bisection,
)

__all__ = [
    "initial_bisection",
    "grow_bisection",
    "gggp_bisection",
    "INITIAL_METHODS",
    "greedy_bisection",
    "prefix_bisection",
    "alternating_bisection",
    "best_projection_bisection",
    "bisection_excess",
]
