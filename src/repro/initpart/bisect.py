"""Multi-constraint initial bisection of the coarsest graph.

The coarsest graph is small (≈100 vertices), so the initial-partitioning
phase can afford to generate several candidate bisections with different
strategies, FM-refine each, and keep the best:

* ``greedy`` -- topology-free LPT greedy on the weight vectors
  (:func:`repro.initpart.theory.greedy_bisection`): excellent balance, the
  cut is left to FM;
* ``prefix`` -- best-projection prefix bisections
  (:func:`repro.initpart.theory.best_projection_bisection`);
* ``region`` -- graph-growing (GGP): BFS-grow side 0 from a random seed
  vertex until any constraint reaches its target fraction, which gives a
  connected side with a naturally small cut;
* ``gggp`` -- greedy graph growing with gains: like ``region`` but absorbs
  the min-cut-damage frontier vertex first (better cuts, needs a queue);
* ``random`` -- Bernoulli(target) assignment (a control candidate; FM and
  the balancer must do all the work).

Candidates are compared feasible-first, then by edge-cut, then by balance.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng, spawn
from ..errors import PartitionError
from ..graph.csr import Graph
from ..refine.fm2way import fm2way_refine
from ..trace import as_tracer
from .theory import best_projection_bisection, greedy_bisection

__all__ = ["initial_bisection", "grow_bisection", "gggp_bisection", "INITIAL_METHODS"]

INITIAL_METHODS = ("greedy", "prefix", "region", "gggp", "random")


def grow_bisection(graph: Graph, target: float = 0.5, seed=None) -> np.ndarray:
    """Graph-growing bisection: BFS from a random seed vertex, absorbing
    whole BFS fronts into side 0 until some constraint reaches the target
    fraction of its total weight."""
    rng = as_rng(seed)
    n = graph.nvtxs
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    t = graph.vwgt.sum(axis=0).astype(np.float64)
    t[t == 0] = 1.0
    relw = graph.vwgt / t

    where = np.ones(n, dtype=np.int64)
    start = int(rng.integers(n))
    load = np.zeros(graph.ncon)
    visited = np.zeros(n, dtype=bool)
    frontier = [start]
    visited[start] = True
    while frontier and load.max(initial=0.0) < target:
        nxt = []
        for v in frontier:
            if load.max(initial=0.0) >= target:
                break
            where[v] = 0
            load += relw[v]
            for u in graph.neighbors(v).tolist():
                if not visited[u]:
                    visited[u] = True
                    nxt.append(u)
        frontier = nxt
        if not frontier:
            # Disconnected graph: restart from an unvisited vertex.
            rest = np.flatnonzero(~visited)
            if rest.size and load.max(initial=0.0) < target:
                s = int(rest[rng.integers(rest.size)])
                visited[s] = True
                frontier = [s]
    return where


def gggp_bisection(graph: Graph, target: float = 0.5, seed=None) -> np.ndarray:
    """Greedy graph growing with gains (GGGP): grow side 0 from a random
    seed vertex, always absorbing the frontier vertex whose move costs the
    least cut (max gain), until some constraint reaches the target
    fraction.

    Compared with plain BFS growing, the gain ordering hugs the region's
    boundary contours, giving noticeably smaller initial cuts on irregular
    graphs at the price of a priority queue.
    """
    from ..refine.pq import LazyMaxPQ

    rng = as_rng(seed)
    n = graph.nvtxs
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    t = graph.vwgt.sum(axis=0).astype(np.float64)
    t[t == 0] = 1.0
    relw = graph.vwgt / t

    where = np.ones(n, dtype=np.int64)
    in_zero = np.zeros(n, dtype=bool)
    load = np.zeros(graph.ncon)
    # gain of absorbing v = (edge weight to side 0) - (edge weight to side 1)
    wto0 = np.zeros(n, dtype=np.int64)
    wdeg = np.zeros(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    np.add.at(wdeg, src, graph.adjwgt)

    q = LazyMaxPQ()

    def absorb(v: int):
        nonlocal load
        where[v] = 0
        in_zero[v] = True
        load += relw[v]
        q.remove(v)
        for u, w in zip(graph.neighbors(v).tolist(), graph.edge_weights(v).tolist()):
            if in_zero[u]:
                continue
            wto0[u] += w
            q.insert(u, 2 * wto0[u] - wdeg[u])

    absorb(int(rng.integers(n)))
    while load.max(initial=0.0) < target:
        top = q.pop()
        if top is None:
            # Disconnected remainder: restart from an unabsorbed vertex.
            rest = np.flatnonzero(~in_zero)
            if rest.size == 0:
                break
            absorb(int(rest[rng.integers(rest.size)]))
            continue
        absorb(int(top[0]))
    return where


def initial_bisection(
    graph: Graph,
    *,
    target_fracs=(0.5, 0.5),
    ubvec=1.05,
    ntries: int = 4,
    refine_passes: int = 6,
    seed=None,
    methods=INITIAL_METHODS,
    tracer=None,
) -> np.ndarray:
    """Compute an initial bisection of (a small) ``graph``.

    Generates ``ntries`` rounds of candidates from each method in
    ``methods``, FM-refines every candidate, and returns the best by
    (feasible, cut, balance-excess).  ``tracer`` records one ``initbisect``
    span per call (candidate count, winning method/cut).
    """
    if graph.nvtxs == 0:
        return np.zeros(0, dtype=np.int64)
    unknown = set(methods) - set(INITIAL_METHODS)
    if unknown:
        raise PartitionError(f"unknown initial bisection methods: {sorted(unknown)}")
    tracer = as_tracer(tracer)
    rng = as_rng(seed)
    fr = np.asarray(target_fracs, dtype=np.float64)
    fr = fr / fr.sum()
    target = float(fr[0])

    t = graph.vwgt.sum(axis=0).astype(np.float64)
    t[t == 0] = 1.0
    relw = graph.vwgt / t

    best_where = None
    best_key = None
    best_method = None
    ncandidates = 0
    with tracer.span("initbisect", nvtxs=graph.nvtxs) as sp:
        for _ in range(max(1, ntries)):
            for method in methods:
                (child,) = spawn(rng, 1)
                if method == "greedy":
                    where = greedy_bisection(relw, target, seed=child)
                elif method == "prefix":
                    where = best_projection_bisection(relw, target=target, seed=child)
                elif method == "region":
                    where = grow_bisection(graph, target, seed=child)
                elif method == "gggp":
                    where = gggp_bisection(graph, target, seed=child)
                else:  # random
                    where = (child.random(graph.nvtxs) > target).astype(np.int64)
                if graph.nvtxs >= 2 and (where.min() == where.max()):
                    # Degenerate single-side candidate: flip one vertex so FM
                    # has a boundary to work with.
                    where[int(child.integers(graph.nvtxs))] ^= 1

                st = fm2way_refine(
                    graph, where,
                    target_fracs=(target, 1.0 - target),
                    ubvec=ubvec,
                    npasses=refine_passes,
                    seed=child,
                )
                ncandidates += 1
                # Score straight from the refinement stats -- rebuilding a
                # TwoWayState per candidate re-did an O(E) degree sweep ~20
                # times per bisection call.
                key = (not st.feasible, st.final_cut, st.balance)
                if best_key is None or key < best_key:
                    best_key = key
                    best_where = where.copy()
                    best_method = method
        if tracer.enabled:
            sp.set(candidates=ncandidates, best_method=best_method,
                   cut=int(best_key[1]), feasible=not best_key[0])
            tracer.incr("initpart.candidates", ncandidates)
    if tracer.enabled:
        # Deferred import: partition.__init__ reaches this module during
        # its own initialisation, so a top-level import would be circular.
        from ..partition._events import emit_level_event

        emit_level_event(
            tracer, phase="initbisect", direction="initial", level=0,
            graph=graph, where=best_where, nparts=2, fracs=fr,
            cut=int(best_key[1]), seconds=sp.seconds)
    return best_where
