"""Multi-constraint initial bisection of the coarsest graph.

The coarsest graph is small (≈100 vertices), so the initial-partitioning
phase can afford to generate several candidate bisections with different
strategies, FM-refine each, and keep the best:

* ``greedy`` -- topology-free LPT greedy on the weight vectors
  (:func:`repro.initpart.theory.greedy_bisection`): excellent balance, the
  cut is left to FM;
* ``prefix`` -- best-projection prefix bisections
  (:func:`repro.initpart.theory.best_projection_bisection`);
* ``region`` -- graph-growing (GGP): BFS-grow side 0 from a random seed
  vertex until any constraint reaches its target fraction, which gives a
  connected side with a naturally small cut;
* ``gggp`` -- greedy graph growing with gains: like ``region`` but absorbs
  the min-cut-damage frontier vertex first (better cuts, needs a queue);
* ``random`` -- Bernoulli(target) assignment (a control candidate; FM and
  the balancer must do all the work).

Candidates are compared feasible-first, then by edge-cut, then by balance.

Hot-path layout (the initial-partitioning phase dominated end-to-end wall
time before this rewrite):

* candidate *generation* is batched per round: one :class:`_GenScratch` of
  per-graph constants (relative weights, neighbour/edge-weight lists,
  weighted degrees) is shared by every ``region``/``gggp`` grow, and each
  round's candidates are stacked into one ``(C, n)`` array whose raw edge
  cuts are scored in a single vectorized sweep;
* candidate *refinement* shares one :class:`~repro.refine.fm2way.BisectScratch`
  across every :func:`~repro.refine.fm2way.fm2way_refine` call, duplicate
  candidates (same pre-refinement side vector) are refined once, and an
  adaptive plateau detector stops the multi-start as soon as the best
  (feasible, cut, balance) key has gone ``patience`` refined candidates
  without improving;
* every candidate's seed is pre-drawn from the parent stream in one batch
  (bit-identical to the legacy per-candidate ``spawn``), so the schedule is
  deterministic and independent tries can be fanned out across a process
  pool (``pool=``) with a bit-identical single-process fallback.

``strict=True`` restores the exact legacy exploration (every round runs all
methods, no early stop); :func:`_reference_initial_bisection` keeps the
legacy loop verbatim as the parity oracle.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng, spawn
from ..errors import PartitionError
from ..graph.csr import Graph
from ..refine.fm2way import BisectScratch, fm2way_refine
from ..trace import as_tracer
from .theory import best_projection_bisection, greedy_bisection

__all__ = ["initial_bisection", "grow_bisection", "gggp_bisection", "INITIAL_METHODS"]

INITIAL_METHODS = ("greedy", "prefix", "region", "gggp", "random")

# After the diverse rounds, later rounds re-try only the graph-growing
# methods: they are the only seed-sensitive generators (greedy/prefix are
# near-deterministic given the weights, so re-running them buys nothing).
FOCUS_METHODS = ("gggp", "region")


class _GenScratch:
    """Per-graph constants shared by every generated candidate.

    The growing bisections (:func:`grow_bisection`, :func:`gggp_bisection`)
    are sequential vertex-at-a-time loops; what *can* be hoisted out of them
    -- the relative-weight rows, each vertex's neighbour and edge-weight
    lists, the weighted degrees -- is computed here once per graph instead
    of once per vertex per candidate (~20 candidates per bisection call).
    """

    __slots__ = ("graph", "relw", "relwl", "nbrs", "wgts", "wdegl", "src")

    def __init__(self, graph: Graph):
        self.graph = graph
        t = graph.vwgt.sum(axis=0).astype(np.float64)
        t[t == 0] = 1.0
        self.relw = graph.vwgt / t
        self.relwl = self.relw.tolist()
        bounds = graph.xadj.tolist()
        adjncy = graph.adjncy.tolist()
        adjwgt = graph.adjwgt.tolist()
        self.nbrs = [adjncy[bounds[v] : bounds[v + 1]] for v in range(graph.nvtxs)]
        self.wgts = [adjwgt[bounds[v] : bounds[v + 1]] for v in range(graph.nvtxs)]
        self.src = np.repeat(np.arange(graph.nvtxs, dtype=np.int64), np.diff(graph.xadj))
        wdeg = np.zeros(graph.nvtxs, dtype=np.int64)
        np.add.at(wdeg, self.src, graph.adjwgt)
        self.wdegl = wdeg.tolist()


def grow_bisection(graph: Graph, target: float = 0.5, seed=None, scratch=None) -> np.ndarray:
    """Graph-growing bisection: BFS from a random seed vertex, absorbing
    whole BFS fronts into side 0 until some constraint reaches the target
    fraction of its total weight.

    The frontier loop runs on plain-Python lists with a running load
    maximum -- the per-vertex ``load.max(initial=0.0)`` re-check and
    ``neighbors(v).tolist()`` conversions of the original are hoisted into
    ``scratch`` (see :class:`_GenScratch`); seeded outputs are unchanged
    (:func:`_reference_grow_bisection` pins the parity).
    """
    rng = as_rng(seed)
    n = graph.nvtxs
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if scratch is None or scratch.graph is not graph:
        scratch = _GenScratch(graph)
    relwl = scratch.relwl
    nbrs = scratch.nbrs
    rng_m = range(graph.ncon)

    wl = [1] * n
    start = int(rng.integers(n))
    load = [0.0] * graph.ncon
    mx = 0.0  # == max(load): loads only grow, so a running max is exact
    visited = [False] * n
    frontier = [start]
    visited[start] = True
    while frontier and mx < target:
        nxt = []
        for v in frontier:
            if mx >= target:
                break
            wl[v] = 0
            w = relwl[v]
            for j in rng_m:
                load[j] += w[j]
                if load[j] > mx:
                    mx = load[j]
            for u in nbrs[v]:
                if not visited[u]:
                    visited[u] = True
                    nxt.append(u)
        frontier = nxt
        if not frontier:
            # Disconnected graph: restart from an unvisited vertex.
            rest = [u for u in range(n) if not visited[u]]
            if rest and mx < target:
                s = rest[int(rng.integers(len(rest)))]
                visited[s] = True
                frontier = [s]
    return np.array(wl, dtype=np.int64)


def _reference_grow_bisection(graph: Graph, target: float = 0.5, seed=None) -> np.ndarray:
    """Per-vertex NumPy oracle for :func:`grow_bisection` (parity tests)."""
    rng = as_rng(seed)
    n = graph.nvtxs
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    t = graph.vwgt.sum(axis=0).astype(np.float64)
    t[t == 0] = 1.0
    relw = graph.vwgt / t

    where = np.ones(n, dtype=np.int64)
    start = int(rng.integers(n))
    load = np.zeros(graph.ncon)
    visited = np.zeros(n, dtype=bool)
    frontier = [start]
    visited[start] = True
    while frontier and load.max(initial=0.0) < target:
        nxt = []
        for v in frontier:
            if load.max(initial=0.0) >= target:
                break
            where[v] = 0
            load += relw[v]
            for u in graph.neighbors(v).tolist():
                if not visited[u]:
                    visited[u] = True
                    nxt.append(u)
        frontier = nxt
        if not frontier:
            rest = np.flatnonzero(~visited)
            if rest.size and load.max(initial=0.0) < target:
                s = int(rest[rng.integers(rest.size)])
                visited[s] = True
                frontier = [s]
    return where


def gggp_bisection(graph: Graph, target: float = 0.5, seed=None, scratch=None) -> np.ndarray:
    """Greedy graph growing with gains (GGGP): grow side 0 from a random
    seed vertex, always absorbing the frontier vertex whose move costs the
    least cut (max gain), until some constraint reaches the target
    fraction.

    Compared with plain BFS growing, the gain ordering hugs the region's
    boundary contours, giving noticeably smaller initial cuts on irregular
    graphs at the price of a priority queue.  As in :func:`grow_bisection`
    the absorb loop runs on scratch-hoisted Python lists with identical
    seeded output (:func:`_reference_gggp_bisection`).
    """
    from ..refine.pq import LazyMaxPQ

    rng = as_rng(seed)
    n = graph.nvtxs
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if scratch is None or scratch.graph is not graph:
        scratch = _GenScratch(graph)
    relwl = scratch.relwl
    nbrs = scratch.nbrs
    wgts = scratch.wgts
    wdeg = scratch.wdegl
    rng_m = range(graph.ncon)

    wl = [1] * n
    in_zero = [False] * n
    load = [0.0] * graph.ncon
    mx = 0.0
    # gain of absorbing v = (edge weight to side 0) - (edge weight to side 1)
    wto0 = [0] * n

    q = LazyMaxPQ()

    def absorb(v: int):
        nonlocal mx
        wl[v] = 0
        in_zero[v] = True
        w = relwl[v]
        for j in rng_m:
            load[j] += w[j]
            if load[j] > mx:
                mx = load[j]
        q.remove(v)
        for u, wt in zip(nbrs[v], wgts[v]):
            if in_zero[u]:
                continue
            wto0[u] += wt
            q.insert(u, 2 * wto0[u] - wdeg[u])

    absorb(int(rng.integers(n)))
    while mx < target:
        top = q.pop()
        if top is None:
            # Disconnected remainder: restart from an unabsorbed vertex.
            rest = [u for u in range(n) if not in_zero[u]]
            if not rest:
                break
            absorb(rest[int(rng.integers(len(rest)))])
            continue
        absorb(int(top[0]))
    return np.array(wl, dtype=np.int64)


def _reference_gggp_bisection(graph: Graph, target: float = 0.5, seed=None) -> np.ndarray:
    """Per-vertex NumPy oracle for :func:`gggp_bisection` (parity tests)."""
    from ..refine.pq import LazyMaxPQ

    rng = as_rng(seed)
    n = graph.nvtxs
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    t = graph.vwgt.sum(axis=0).astype(np.float64)
    t[t == 0] = 1.0
    relw = graph.vwgt / t

    where = np.ones(n, dtype=np.int64)
    in_zero = np.zeros(n, dtype=bool)
    load = np.zeros(graph.ncon)
    wto0 = np.zeros(n, dtype=np.int64)
    wdeg = np.zeros(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    np.add.at(wdeg, src, graph.adjwgt)

    q = LazyMaxPQ()

    def absorb(v: int):
        nonlocal load
        where[v] = 0
        in_zero[v] = True
        load += relw[v]
        q.remove(v)
        for u, w in zip(graph.neighbors(v).tolist(), graph.edge_weights(v).tolist()):
            if in_zero[u]:
                continue
            wto0[u] += w
            q.insert(u, 2 * wto0[u] - wdeg[u])

    absorb(int(rng.integers(n)))
    while load.max(initial=0.0) < target:
        top = q.pop()
        if top is None:
            rest = np.flatnonzero(~in_zero)
            if rest.size == 0:
                break
            absorb(int(rest[rng.integers(rest.size)]))
            continue
        absorb(int(top[0]))
    return where


def _candidate_schedule(methods, ntries: int, diverse_rounds: int, strict: bool):
    """Round-by-round method schedule.

    ``strict`` (and the legacy oracle) runs every method every round.  The
    adaptive default spends ``diverse_rounds`` rounds on the full method
    pool, then re-tries only the seed-sensitive growing methods
    (:data:`FOCUS_METHODS`, intersected with ``methods``).
    """
    methods = tuple(methods)
    nrounds = max(1, int(ntries))
    if strict:
        return [methods] * nrounds
    focus = tuple(m for m in FOCUS_METHODS if m in methods) or methods
    dr = max(0, int(diverse_rounds))
    return [methods if r < dr else focus for r in range(nrounds)]


def _generate_candidate(method, graph, relw, target, child, gen_scratch) -> np.ndarray:
    if method == "greedy":
        where = greedy_bisection(relw, target, seed=child)
    elif method == "prefix":
        where = best_projection_bisection(relw, target=target, seed=child)
    elif method == "region":
        where = grow_bisection(graph, target, seed=child, scratch=gen_scratch)
    elif method == "gggp":
        where = gggp_bisection(graph, target, seed=child, scratch=gen_scratch)
    else:  # random
        where = (child.random(graph.nvtxs) > target).astype(np.int64)
    if graph.nvtxs >= 2 and (where.min() == where.max()):
        # Degenerate single-side candidate: flip one vertex so FM
        # has a boundary to work with.
        where[int(child.integers(graph.nvtxs))] ^= 1
    return where


def _raw_cuts(cands, gen_scratch, graph) -> np.ndarray:
    """Bulk raw edge cuts of stacked candidates (one vectorized sweep)."""
    if not cands:
        return np.zeros(0, dtype=np.int64)
    W = np.stack([w for _, w in cands])
    mask = W[:, gen_scratch.src] != W[:, graph.adjncy]
    return (mask.astype(np.int64) @ graph.adjwgt) // 2


def initial_bisection(
    graph: Graph,
    *,
    target_fracs=(0.5, 0.5),
    ubvec=1.05,
    ntries: int = 5,
    refine_passes: int = 6,
    seed=None,
    methods=INITIAL_METHODS,
    diverse_rounds: int = 1,
    patience: int = 6,
    strict: bool = False,
    pool=None,
    tracer=None,
) -> np.ndarray:
    """Compute an initial bisection of (a small) ``graph``.

    Generates up to ``ntries`` rounds of candidates (the first
    ``diverse_rounds`` rounds over all of ``methods``, later rounds over
    the growing methods only), FM-refines each *distinct* candidate with a
    shared scratch, and returns the best by (feasible, cut,
    balance-excess).  Refinement stops early once the best key has gone
    ``patience`` refined candidates without improving (``patience=0``
    disables the plateau detector).

    ``strict=True`` restores the exact legacy behaviour: every round runs
    every method and no early stop is taken.  ``pool`` (an
    :class:`repro.initpart.pool.InitPool`) fans candidate refinement across
    worker processes with a bit-identical result.  ``tracer`` records one
    ``initbisect`` span per call (candidate counts, winning method/cut).
    """
    if graph.nvtxs == 0:
        return np.zeros(0, dtype=np.int64)
    unknown = set(methods) - set(INITIAL_METHODS)
    if unknown:
        raise PartitionError(f"unknown initial bisection methods: {sorted(unknown)}")
    if not tuple(methods):
        raise PartitionError("initial bisection needs at least one method")
    tracer = as_tracer(tracer)
    rng = as_rng(seed)
    fr = np.asarray(target_fracs, dtype=np.float64)
    fr = fr / fr.sum()
    target = float(fr[0])
    fracs2 = (target, 1.0 - target)

    schedule = _candidate_schedule(methods, ntries, diverse_rounds, strict)
    # One batch draw for every candidate seed == the legacy per-candidate
    # spawn() sequence (spawn draws the same integers from the same
    # stream), so the candidate order is deterministic and independent of
    # how far the plateau detector lets the schedule run.
    seeds = rng.integers(0, 2**63 - 1, size=sum(len(r) for r in schedule), dtype=np.int64)

    gen_scratch = _GenScratch(graph)
    fm_scratch = BisectScratch(graph, target_fracs=fracs2, ubvec=ubvec)
    relw = fm_scratch.relw

    stop_early = patience > 0 and not strict

    best_where = None
    best_key = None
    best_method = None
    generated = 0
    refined = 0
    dedup_skips = 0
    plateau_stop = False
    raw_best = None
    since = 0
    seen: set[bytes] = set()

    def consider(method, where, st):
        """Sequential best-so-far / plateau bookkeeping; True => stop."""
        nonlocal best_where, best_key, best_method, since, plateau_stop
        key = (not st.feasible, st.final_cut, st.balance)
        if best_key is None or key < best_key:
            best_key = key
            best_where = where.copy()
            best_method = method
            since = 0
        else:
            since += 1
        if stop_early and since >= patience:
            plateau_stop = True
            return True
        return False

    with tracer.span("initbisect", nvtxs=graph.nvtxs) as sp:
        if pool is not None and not strict:
            # Fan-out: generate every candidate up front, refine the
            # distinct ones on the pool, then replay the sequential
            # plateau walk over the ordered results -- same winner as the
            # in-process path, computed in parallel.
            idx = 0
            cands = []
            for rnd in schedule:
                for method in rnd:
                    child = np.random.default_rng(int(seeds[idx]))
                    idx += 1
                    cands.append(
                        (method, _generate_candidate(method, graph, relw, target, child, gen_scratch))
                    )
            generated = len(cands)
            raw = _raw_cuts(cands, gen_scratch, graph)
            raw_best = int(raw.min()) if raw.size else None
            slots = []  # per candidate: index into uniq, or -1 for a dup
            uniq = []
            for method, where in cands:
                wb = where.tobytes()
                if wb in seen:
                    slots.append(-1)
                else:
                    seen.add(wb)
                    slots.append(len(uniq))
                    uniq.append(where)
            results = pool.refine_batch(
                graph, uniq, target_fracs=fracs2, ubvec=ubvec, npasses=refine_passes
            )
            refined = len(uniq)
            for (method, _), slot in zip(cands, slots):
                if slot < 0:
                    dedup_skips += 1
                    continue
                where_ref, st = results[slot]
                if consider(method, where_ref, st):
                    break
        else:
            idx = 0
            done = False
            for rnd in schedule:
                if done:
                    break
                # Batched generation: produce the whole round, then score
                # the stacked candidates' raw cuts in one vectorized sweep.
                cands = []
                for method in rnd:
                    child = np.random.default_rng(int(seeds[idx]))
                    idx += 1
                    cands.append(
                        (method, _generate_candidate(method, graph, relw, target, child, gen_scratch))
                    )
                generated += len(cands)
                raw = _raw_cuts(cands, gen_scratch, graph)
                if raw.size:
                    rb = int(raw.min())
                    raw_best = rb if raw_best is None else min(raw_best, rb)
                for method, where in cands:
                    wb = where.tobytes()
                    if wb in seen:
                        # FM refinement is a pure function of the start
                        # vector, so re-refining a duplicate cannot change
                        # the outcome; skip it (doesn't count as
                        # non-improving for the plateau detector).
                        dedup_skips += 1
                        continue
                    seen.add(wb)
                    st = fm2way_refine(
                        graph,
                        where,
                        target_fracs=fracs2,
                        ubvec=ubvec,
                        npasses=refine_passes,
                        scratch=fm_scratch,
                    )
                    refined += 1
                    if consider(method, where, st):
                        done = True
                        break
        if tracer.enabled:
            sp.set(
                candidates=refined,
                generated=generated,
                dedup_skips=dedup_skips,
                plateau_stop=plateau_stop,
                raw_best=raw_best,
                best_method=best_method,
                cut=int(best_key[1]),
                feasible=not best_key[0],
            )
            tracer.incr("initpart.candidates", refined)
            tracer.incr("initpart.generated", generated)
            if dedup_skips:
                tracer.incr("initpart.dedup_skips", dedup_skips)
            if plateau_stop:
                tracer.incr("initpart.plateau_stops")
    if tracer.enabled:
        # Deferred import: partition.__init__ reaches this module during
        # its own initialisation, so a top-level import would be circular.
        from ..partition._events import emit_level_event

        emit_level_event(
            tracer, phase="initbisect", direction="initial", level=0,
            graph=graph, where=best_where, nparts=2, fracs=fr,
            cut=int(best_key[1]), seconds=sp.seconds)
    return best_where


def _reference_initial_bisection(
    graph: Graph,
    *,
    target_fracs=(0.5, 0.5),
    ubvec=1.05,
    ntries: int = 4,
    refine_passes: int = 6,
    seed=None,
    methods=INITIAL_METHODS,
    tracer=None,
) -> np.ndarray:
    """Legacy per-candidate multi-start loop, kept verbatim as the parity
    oracle for ``initial_bisection(..., strict=True)``."""
    if graph.nvtxs == 0:
        return np.zeros(0, dtype=np.int64)
    unknown = set(methods) - set(INITIAL_METHODS)
    if unknown:
        raise PartitionError(f"unknown initial bisection methods: {sorted(unknown)}")
    tracer = as_tracer(tracer)
    rng = as_rng(seed)
    fr = np.asarray(target_fracs, dtype=np.float64)
    fr = fr / fr.sum()
    target = float(fr[0])

    t = graph.vwgt.sum(axis=0).astype(np.float64)
    t[t == 0] = 1.0
    relw = graph.vwgt / t

    best_where = None
    best_key = None
    for _ in range(max(1, ntries)):
        for method in methods:
            (child,) = spawn(rng, 1)
            if method == "greedy":
                where = greedy_bisection(relw, target, seed=child)
            elif method == "prefix":
                where = best_projection_bisection(relw, target=target, seed=child)
            elif method == "region":
                where = _reference_grow_bisection(graph, target, seed=child)
            elif method == "gggp":
                where = _reference_gggp_bisection(graph, target, seed=child)
            else:  # random
                where = (child.random(graph.nvtxs) > target).astype(np.int64)
            if graph.nvtxs >= 2 and (where.min() == where.max()):
                where[int(child.integers(graph.nvtxs))] ^= 1

            st = fm2way_refine(
                graph, where,
                target_fracs=(target, 1.0 - target),
                ubvec=ubvec,
                npasses=refine_passes,
                seed=child,
            )
            key = (not st.feasible, st.final_cut, st.balance)
            if best_key is None or key < best_key:
                best_key = key
                best_where = where.copy()
    return best_where
