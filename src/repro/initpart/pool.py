"""Persistent process pool for initial-bisection candidate refinement.

The multi-start candidates of :func:`repro.initpart.bisect.initial_bisection`
are independent FM refinements of a small coarsest graph -- embarrassingly
parallel work that the sequential plateau walk merely *consumes* in order.
:class:`InitPool` fans the distinct candidates across spawned worker
processes; the caller then replays its sequential selection over the
ordered results, so the winner is bit-identical to the in-process path.

Marshalling protocol ("ship once per worker", the idiom of
:mod:`repro.serve.cluster`):

* every graph is identified by a stable content token (a digest of its CSR
  arrays -- the coarsest graphs handled here are tiny, so hashing is
  cheap and safe against id() reuse);
* a worker keeps a small LRU of reconstructed :class:`~repro.graph.csr.Graph`
  objects keyed by token.  Chunks normally carry **only the token**; a
  worker that does not hold the graph answers ``_NEED_GRAPH`` and the
  parent resubmits that chunk once with the full CSR arrays.  The
  ``initpart.pool.ship.*`` counters make the protocol observable.

Workers are **spawned**, never forked (the caller may own threads, and
forking a threaded process is undefined behaviour).  ``InitPool(0)``
degrades to an inline single-process refinement loop -- handy for testing
the batch/replay machinery without paying a process spawn.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np

from ..graph.csr import Graph
from ..refine.fm2way import BisectScratch, fm2way_refine
from ..trace import MetricsRegistry, labeled

__all__ = ["InitPool", "get_pool"]

#: Worker answer meaning "I do not hold this graph; resend with arrays".
_NEED_GRAPH = "__repro_need_graph__"

#: Per-worker-process graph cache size (distinct topologies a worker keeps).
_WORKER_CACHE_ENTRIES = 8

# ---------------------------------------------------------------- worker
# Everything below runs inside the spawned worker processes; it must stay
# importable at module top level (spawn pickles by reference).

_worker_graphs: "OrderedDict[str, Graph]" = OrderedDict()


def _worker_get_graph(token: str, blob) -> Graph | None:
    """Resolve ``token`` against the worker-local cache, admitting ``blob``
    (the CSR arrays) when it was shipped along."""
    g = _worker_graphs.get(token)
    if g is not None:
        _worker_graphs.move_to_end(token)
        return g
    if blob is None:
        return None
    xadj, adjncy, vwgt, adjwgt = blob
    g = Graph(xadj, adjncy, vwgt, adjwgt, validate=False)
    _worker_graphs[token] = g
    while len(_worker_graphs) > _WORKER_CACHE_ENTRIES:
        _worker_graphs.popitem(last=False)
    return g


def _worker_refine(token, blob, wstack, target_fracs, ubvec, npasses):
    """Refine one chunk of stacked candidate side-vectors in a worker.

    Returns ``((refined_stack, [FMStats, ...]), delta)`` aligned with the
    chunk, or ``(_NEED_GRAPH, None)`` when the worker does not hold the
    graph and no blob was shipped.  ``delta`` is the in-process telemetry
    measurement riding back on the existing result future."""
    t0 = time.perf_counter()
    g = _worker_get_graph(token, blob)
    if g is None:
        return _NEED_GRAPH, None
    scratch = BisectScratch(g, target_fracs=target_fracs, ubvec=ubvec)
    out = np.empty_like(wstack)
    stats = []
    for i in range(wstack.shape[0]):
        where = wstack[i].copy()
        st = fm2way_refine(
            g, where, target_fracs=target_fracs, ubvec=ubvec,
            npasses=npasses, scratch=scratch,
        )
        out[i] = where
        stats.append(st)
    delta = {"worker": os.getpid(),
             "refine_seconds": time.perf_counter() - t0,
             "candidates": int(wstack.shape[0])}
    return (out, stats), delta


# ---------------------------------------------------------------- parent


def _graph_token(graph: Graph) -> str:
    h = hashlib.sha1()
    for arr in (graph.xadj, graph.adjncy, graph.vwgt, graph.adjwgt):
        a = np.ascontiguousarray(arr)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


class InitPool:
    """Process pool refining initial-bisection candidates in parallel.

    Parameters
    ----------
    workers:
        Worker-process count.  0 runs the refinement inline (single
        process, no executor) -- results are bit-identical either way,
        which is pinned by the parity tests.
    """

    def __init__(self, workers: int):
        self.workers = int(workers)
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._shipped: set[str] = set()
        self._counters = {
            "initpart.pool.batches": 0,
            "initpart.pool.candidates": 0,
            "initpart.pool.ship.full": 0,
            "initpart.pool.ship.token": 0,
            "initpart.pool.ship.retry": 0,
        }
        self._telemetry = MetricsRegistry()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=max(1, self.workers),
                    mp_context=get_context("spawn"))
            return self._pool

    def _incr(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._counters[key] += n

    def counters(self) -> dict:
        with self._lock:
            return dict(self._counters)

    def _absorb_delta(self, delta) -> None:
        """Fold a worker's refine delta into the labeled registry (the
        inline path reports under ``worker="inline"``)."""
        if not delta:
            return
        worker = str(delta["worker"])
        with self._lock:
            self._telemetry.histogram(
                labeled("initpart.pool.worker.refine_seconds",
                        worker=worker)).observe(delta["refine_seconds"])
            self._telemetry.counter(
                labeled("initpart.pool.worker.candidates",
                        worker=worker)).inc(delta["candidates"])

    def metrics(self) -> dict:
        """Snapshot of the per-worker telemetry registry
        (``worker="<pid>"`` labeled series, ``worker="inline"`` for the
        workers=0 path), in
        :meth:`~repro.trace.MetricsRegistry.as_dict` shape."""
        with self._lock:
            return self._telemetry.as_dict()

    def refine_batch(self, graph: Graph, candidates, *, target_fracs, ubvec, npasses):
        """FM-refine every candidate side-vector against ``graph``.

        Returns a list of ``(refined_where, FMStats)`` aligned with
        ``candidates``.  Chunks are distributed across the workers; with
        ``workers=0`` the loop runs inline.
        """
        if not candidates:
            return []
        self._incr("initpart.pool.batches")
        self._incr("initpart.pool.candidates", len(candidates))
        if self.workers <= 0:
            t0 = time.perf_counter()
            scratch = BisectScratch(graph, target_fracs=target_fracs, ubvec=ubvec)
            out = []
            for w in candidates:
                where = w.copy()
                st = fm2way_refine(
                    graph, where, target_fracs=target_fracs, ubvec=ubvec,
                    npasses=npasses, scratch=scratch,
                )
                out.append((where, st))
            self._absorb_delta({"worker": "inline",
                                "refine_seconds": time.perf_counter() - t0,
                                "candidates": len(candidates)})
            return out

        pool = self._ensure_pool()
        token = _graph_token(graph)
        with self._lock:
            shipped = token in self._shipped
        blob = (graph.xadj, graph.adjncy, graph.vwgt, graph.adjwgt)
        wstack = np.stack(candidates)
        nchunks = min(self.workers, len(candidates))
        chunks = np.array_split(np.arange(len(candidates)), nchunks)

        futs = []
        for idx in chunks:
            if shipped:
                # Optimistic: some worker already holds this graph.
                self._incr("initpart.pool.ship.token")
                fut = pool.submit(_worker_refine, token, None, wstack[idx],
                                  target_fracs, ubvec, npasses)
            else:
                self._incr("initpart.pool.ship.full")
                fut = pool.submit(_worker_refine, token, blob, wstack[idx],
                                  target_fracs, ubvec, npasses)
            futs.append((idx, fut))
        if not shipped:
            with self._lock:
                self._shipped.add(token)

        results: list = [None] * len(candidates)
        for idx, fut in futs:
            out, delta = fut.result()
            if isinstance(out, str) and out == _NEED_GRAPH:
                # Landed on a cold worker: reship the arrays once to it.
                self._incr("initpart.pool.ship.retry")
                self._incr("initpart.pool.ship.full")
                out, delta = pool.submit(_worker_refine, token, blob,
                                         wstack[idx], target_fracs, ubvec,
                                         npasses).result()
            self._absorb_delta(delta)
            refined, stats = out
            for j, i in enumerate(idx.tolist()):
                results[i] = (refined[j], stats[j])
        return results

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


_pools: dict[int, InitPool] = {}
_pools_lock = threading.Lock()


def get_pool(workers: int) -> InitPool:
    """Shared per-process :class:`InitPool` registry (one pool per worker
    count, spawned lazily, closed at interpreter exit)."""
    workers = int(workers)
    with _pools_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = InitPool(workers)
            _pools[workers] = pool
        return pool


@atexit.register
def _close_pools() -> None:
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for p in pools:
        p.close()
