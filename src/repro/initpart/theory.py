"""Balanced-bisection algorithms for multi-weight vertex sets.

The SC'98 paper devotes its theory section to the question: *given vertices
with m-component weight vectors, how balanced a bisection can we guarantee?*
The granularity of the instance is ``wmax`` -- the largest single relative
weight component of any vertex -- and the guarantees are additive in
``wmax``.

This module implements (topology-free) bisection algorithms on the weight
matrix alone; they are used to seed the initial partitioning of the coarsest
graph and are the subject of the property-based test-suite:

* :func:`greedy_bisection` -- LPT-style: place vertices in decreasing order
  of their largest component, each on the side that minimises the worst
  resulting (target-scaled) overload.  For ``m = 1`` this enjoys the classic
  guarantee ``|load - target| <= wmax``; for small ``m`` the observed excess
  stays below ``m * wmax`` on all tested instance families.
* :func:`prefix_bisection` -- sort by a scalar projection of the weight
  vectors and cut the sorted order at the prefix with the least worst-case
  overload.  Strong when the constraints are positively correlated.
* :func:`alternating_bisection` -- sort by a projection and deal vertices to
  the sides alternately; the complementary construction, strong when the
  constraints are *anti*-correlated (where no prefix of any order can
  balance both weights).
* :func:`best_projection_bisection` -- try prefix and alternating cuts over
  all pairwise-difference projections plus random ones; keep the best.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..errors import WeightError

__all__ = [
    "greedy_bisection",
    "prefix_bisection",
    "alternating_bisection",
    "best_projection_bisection",
    "bisection_excess",
]


def _check_relw(relw) -> np.ndarray:
    relw = np.asarray(relw, dtype=np.float64)
    if relw.ndim != 2:
        raise WeightError("relw must be (n, m)")
    if np.any(relw < 0):
        raise WeightError("relative weights must be non-negative")
    return relw


def bisection_excess(relw: np.ndarray, where: np.ndarray, target: float = 0.5) -> float:
    """Worst overload of a bisection: ``max_{side, con} load - target_side``
    where loads are column sums of ``relw`` per side and the side targets
    are ``(target, 1 - target)`` of each column's total.

    0 means the split is at least as balanced as the targets ask for.
    """
    relw = _check_relw(relw)
    where = np.asarray(where)
    tot = relw.sum(axis=0)
    load0 = relw[where == 0].sum(axis=0)
    load1 = tot - load0
    return float(
        max(
            (load0 - target * tot).max(initial=0.0),
            (load1 - (1.0 - target) * tot).max(initial=0.0),
        )
    )


def greedy_bisection(relw: np.ndarray, target: float = 0.5, seed=None) -> np.ndarray:
    """LPT-style greedy bisection of a multi-weight vertex set.

    Vertices are processed in decreasing order of their largest component
    (ties broken by the RNG permutation baked into the sort key); each is
    assigned to the side whose *worst scaled overload* after placement is
    smaller.  Overloads are scaled by the side targets so asymmetric splits
    (``target != 0.5``) work.

    The placement loop is inherently sequential (each decision depends on
    the running loads), so it runs on plain-Python floats: at ``m <= 5``
    elements per step, ufunc dispatch costs more than the arithmetic.  The
    operations are IEEE-identical to the NumPy-row version
    (:func:`_reference_greedy_bisection` pins the parity), so seeded
    outputs are unchanged.

    Returns a 0/1 side vector.
    """
    relw = _check_relw(relw)
    if not (0.0 < target < 1.0):
        raise WeightError("target must be in (0, 1)")
    n, m = relw.shape
    rng = as_rng(seed)
    order = np.lexsort((rng.random(n), -relw.max(axis=1)))

    tot = relw.sum(axis=0)
    tgt = np.stack([target * tot, (1.0 - target) * tot])
    # Guard vacuous constraints (zero column total).
    scale = np.where(tgt > 0, tgt, 1.0)

    tgt0, tgt1 = tgt[0].tolist(), tgt[1].tolist()
    sc0, sc1 = scale[0].tolist(), scale[1].tolist()
    relwl = relw.tolist()
    load0 = [0.0] * m
    load1 = [0.0] * m
    rng_m = range(m)
    where = np.zeros(n, dtype=np.int64)
    wl = [0] * n
    for v in order.tolist():
        w = relwl[v]
        # Worst relative overload if placed on each side.
        over0 = max((load0[j] + w[j] - tgt0[j]) / sc0[j] for j in rng_m)
        over1 = max((load1[j] + w[j] - tgt1[j]) / sc1[j] for j in rng_m)
        if over0 <= over1:
            for j in rng_m:
                load0[j] += w[j]
        else:
            for j in rng_m:
                load1[j] += w[j]
            wl[v] = 1
    where[:] = wl
    return where


def _reference_greedy_bisection(relw: np.ndarray, target: float = 0.5, seed=None) -> np.ndarray:
    """Per-row NumPy oracle for :func:`greedy_bisection` (parity tests)."""
    relw = _check_relw(relw)
    if not (0.0 < target < 1.0):
        raise WeightError("target must be in (0, 1)")
    n, m = relw.shape
    rng = as_rng(seed)
    order = np.lexsort((rng.random(n), -relw.max(axis=1)))
    tot = relw.sum(axis=0)
    tgt = np.stack([target * tot, (1.0 - target) * tot])
    scale = np.where(tgt > 0, tgt, 1.0)
    load = np.zeros((2, m))
    where = np.zeros(n, dtype=np.int64)
    for v in order.tolist():
        w = relw[v]
        over0 = ((load[0] + w - tgt[0]) / scale[0]).max()
        over1 = ((load[1] + w - tgt[1]) / scale[1]).max()
        side = 0 if over0 <= over1 else 1
        load[side] += w
        where[v] = side
    return where


def prefix_bisection(relw: np.ndarray, projection=None, target: float = 0.5) -> np.ndarray:
    """Cut the vertex order sorted by a scalar projection at the best
    prefix.

    ``projection`` defaults to ``w[:, 0] - w[:, 1]`` for ``m >= 2`` (the
    2-constraint separation key) and to ``w[:, 0]`` for ``m = 1``.  All
    ``n + 1`` prefixes are evaluated with cumulative sums (O(n m) total) and
    the one minimising :func:`bisection_excess` wins; prefix = side 0.
    """
    relw = _check_relw(relw)
    n, m = relw.shape
    if projection is None:
        projection = relw[:, 0] - relw[:, 1] if m >= 2 else relw[:, 0]
    proj = np.asarray(projection, dtype=np.float64)
    if proj.shape != (n,):
        raise WeightError("projection must be a per-vertex scalar")

    order = np.argsort(-proj, kind="stable")
    pref = np.vstack([np.zeros((1, m)), np.cumsum(relw[order], axis=0)])
    tot = relw.sum(axis=0)
    over0 = (pref - target * tot).max(axis=1)
    over1 = ((tot - pref) - (1.0 - target) * tot).max(axis=1)
    worst = np.maximum(np.maximum(over0, over1), 0.0)
    k = int(np.argmin(worst))
    where = np.ones(n, dtype=np.int64)
    where[order[:k]] = 0
    return where


def alternating_bisection(relw: np.ndarray, projection=None, target: float = 0.5) -> np.ndarray:
    """Sort by a scalar projection and deal vertices to the two sides like
    cards (side 0 gets a ``target`` share of each consecutive window).

    Adjacent vertices in the sorted order have similar weight vectors, so
    alternating them splits every local stretch of the order evenly -- this
    is the construction that handles *anti-correlated* constraints, where no
    prefix cut of any order can balance both weights (the prefix hoards the
    first constraint and starves the second).  For ``target != 0.5`` the
    deal assigns vertex ``r`` of the order to side 0 iff
    ``floor((r+1) * target) > floor(r * target)``.
    """
    relw = _check_relw(relw)
    n, m = relw.shape
    if projection is None:
        projection = relw[:, 0] - relw[:, 1] if m >= 2 else relw[:, 0]
    proj = np.asarray(projection, dtype=np.float64)
    if proj.shape != (n,):
        raise WeightError("projection must be a per-vertex scalar")
    order = np.argsort(-proj, kind="stable")
    r = np.arange(n, dtype=np.float64)
    take0 = np.floor((r + 1) * target) > np.floor(r * target)
    where = np.ones(n, dtype=np.int64)
    where[order[take0]] = 0
    return where


def _projection_stack(relw: np.ndarray, ntries: int, rng) -> np.ndarray:
    """The ``(T, n)`` projection family of :func:`best_projection_bisection`:
    canonical pairwise differences plus random signed combinations (same RNG
    draw order as the per-projection loop)."""
    n, m = relw.shape
    projections = []
    for i in range(m):
        for j in range(i + 1, m):
            projections.append(relw[:, i] - relw[:, j])
    if not projections:
        projections.append(relw[:, 0])
    for _ in range(max(0, ntries - len(projections))):
        coef = rng.normal(size=m)
        projections.append(relw @ coef)
    return np.stack(projections)


def best_projection_bisection(
    relw: np.ndarray, ntries: int = 8, target: float = 0.5, seed=None
) -> np.ndarray:
    """Best prefix bisection over several projections: the canonical pairwise
    differences ``w_i - w_j`` plus random signed combinations.

    Generalises :func:`prefix_bisection` to ``m > 2``; returns the candidate
    with the smallest :func:`bisection_excess`.

    All ``T`` projections are evaluated as one stacked batch -- a single
    row-wise argsort / gather / cumsum instead of ``T`` python-loop
    iterations of :func:`prefix_bisection` -- with the winning candidate
    selected by exactly the same per-candidate excess computation as the
    reference loop (:func:`_reference_best_projection_bisection` pins the
    seeded parity).
    """
    relw = _check_relw(relw)
    n, m = relw.shape
    rng = as_rng(seed)
    P = _projection_stack(relw, ntries, rng)
    T = P.shape[0]

    # Batched prefix cuts: per-row stable sort, gathered cumulative loads,
    # worst overload per prefix length, best prefix per projection.
    order = np.argsort(-P, axis=1, kind="stable")          # (T, n)
    pref = np.zeros((T, n + 1, m))
    np.cumsum(relw[order], axis=1, out=pref[:, 1:])
    tot = relw.sum(axis=0)
    over0 = (pref - target * tot).max(axis=2)              # (T, n+1)
    over1 = ((tot - pref) - (1.0 - target) * tot).max(axis=2)
    worst = np.maximum(np.maximum(over0, over1), 0.0)
    ks = np.argmin(worst, axis=1)                          # (T,)

    # Alternating deals share the sorted orders; the take-mask is order-free.
    r = np.arange(n, dtype=np.float64)
    take0 = np.floor((r + 1) * target) > np.floor(r * target)

    best_where = None
    best_exc = np.inf
    for t in range(T):
        where_pref = np.ones(n, dtype=np.int64)
        where_pref[order[t, : ks[t]]] = 0
        where_alt = np.ones(n, dtype=np.int64)
        where_alt[order[t][take0]] = 0
        for where in (where_pref, where_alt):
            # Same ops as bisection_excess (index-order subset sums), with
            # the input checks and column totals hoisted out of the loop.
            load0 = relw[where == 0].sum(axis=0)
            exc = float(
                max(
                    (load0 - target * tot).max(initial=0.0),
                    ((tot - load0) - (1.0 - target) * tot).max(initial=0.0),
                )
            )
            if exc < best_exc:
                best_exc = exc
                best_where = where
    return best_where


def _reference_best_projection_bisection(
    relw: np.ndarray, ntries: int = 8, target: float = 0.5, seed=None
) -> np.ndarray:
    """Per-projection oracle for :func:`best_projection_bisection`
    (parity tests)."""
    relw = _check_relw(relw)
    rng = as_rng(seed)
    projections = list(_projection_stack(relw, ntries, rng))
    best_where = None
    best_exc = np.inf
    for proj in projections:
        for where in (
            prefix_bisection(relw, proj, target),
            alternating_bisection(relw, proj, target),
        ):
            exc = bisection_excess(relw, where, target)
            if exc < best_exc:
                best_exc = exc
                best_where = where
    return best_where
