"""Command-line interface: ``repro-part``.

Partition a METIS-format graph file and print a quality report, optionally
writing the partition vector to a file (one part id per line, the METIS
convention)::

    repro-part mesh.graph 8 --method kway --tol 1.05 --seed 7 --out mesh.part.8

``repro-part --demo N`` generates a synthetic mesh instead of reading a
file, which makes the CLI self-contained for smoke tests.

Observability: ``--trace run.jsonl`` streams the run's span/metrics events
to a JSON-lines file, ``--trace-summary`` prints the span tree (phase and
per-level timings, cut, imbalance), ``--profile`` prints the flight
recorder's per-level dashboard (cut and per-constraint imbalance at every
coarsening and uncoarsening level) and ``--profile-json FILE`` saves the
recorded profile as a drift-checkable JSON artifact.  ``--metrics-port
PORT`` serves a live Prometheus scrape endpoint (``/metrics``,
``/healthz``, ``/profile.json``) for the duration of the run; see
``docs/observability.md``.

Parallel: ``--ranks P`` runs the coarse-grain parallel pipeline --
``--executor sim`` (default) on the deterministic BSP simulation,
``--executor shm`` on real worker processes over shared-memory CSR
views, ``--executor parity`` on both with a bit-identity check (exit 1
on divergence); see ``docs/parallel.md``.  ``--fault-spec
'drop=0.05,crash=0.01,seed=7'`` injects deterministic faults into the
sim executor, and ``--strict`` turns on the structural graph audit and
forbids graceful degradation; see ``docs/robustness.md``.

Serving: ``--cache`` routes the run through the in-process
:class:`repro.serve.PartitionService` (same result, exercises the cached
path); ``--serve-bench N`` replays the request N times across a thread
pool and prints cache hit rate and cold/hit latencies; ``--backend
process`` computes on a spawned worker-process pool instead of the
service threads, and ``--cache-dir DIR`` persists results to a
disk-backed cache so a later invocation serves them back bit-identical;
see ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .errors import ReproError
from .graph.generators import mesh_like
from .graph.io import read_metis_graph, read_partition, write_partition
from .metrics.report import PartitionReport
from .partition.api import part_graph
from .weights.generators import type1_region_weights

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-part",
        description="Multilevel multi-constraint graph partitioner (SC'98 reproduction).",
    )
    p.add_argument("graph", nargs="?", help="METIS-format graph file")
    p.add_argument("nparts", type=int, help="number of parts")
    p.add_argument("--method", choices=("kway", "recursive"), default="kway",
                   help="multilevel formulation (default: kway)")
    p.add_argument("--tol", type=float, default=1.05,
                   help="load-imbalance tolerance per constraint (default: 1.05)")
    p.add_argument("--seed", type=int, default=None, help="RNG seed")
    p.add_argument("--matching", choices=("hem", "bem", "rm", "fhem"), default="hem",
                   help="coarsening matching scheme (default: hem)")
    p.add_argument("--effort", choices=("fast", "standard", "high"),
                   default=None,
                   help="quality/time preset: 'fast' trims the search "
                        "knobs, 'standard' (default) is the single-V-cycle "
                        "pipeline, 'high' adds iterated V-cycles that only "
                        "ever lower the cut (see docs/api.md)")
    p.add_argument("--init-ntries", type=int, metavar="N",
                   help="candidate rounds in the initial bisection "
                        "(default: PartitionOptions.init_ntries)")
    p.add_argument("--init-methods", metavar="M1,M2,...",
                   help="comma-separated candidate-generation methods for the "
                        "initial bisection (unknown names get a suggestion)")
    p.add_argument("--init-patience", type=int, metavar="P",
                   help="plateau patience of the initial bisection's "
                        "early stop (0 disables it)")
    p.add_argument("--init-workers", type=int, metavar="W",
                   help="process-pool workers for initial-bisection "
                        "candidates (0 = in-process, bit-identical)")
    p.add_argument("--strict-ntries", action="store_true",
                   help="exact legacy multi-start: every round runs every "
                        "method, no early stop, no duplicate skipping")
    p.add_argument("--out", help="write the partition vector to this file")
    p.add_argument("--demo", type=int, metavar="N",
                   help="ignore the graph file; run on a synthetic N-vertex "
                        "mesh with 3 region-correlated constraints")
    p.add_argument("--evaluate", metavar="PARTFILE",
                   help="do not partition; evaluate an existing partition "
                        "file against the graph and print its quality")
    p.add_argument("--svg", metavar="FILE",
                   help="render the partition to an SVG file (needs 2-D "
                        "coordinates, e.g. --demo graphs)")
    p.add_argument("--nseeds", type=int, default=1,
                   help="run an N-seed ensemble and keep the best partition")
    p.add_argument("--ranks", type=int, metavar="P",
                   help="run the simulated parallel pipeline on P ranks "
                        "instead of the serial partitioner")
    p.add_argument("--executor", choices=("sim", "shm", "parity"),
                   default="sim",
                   help="how the parallel ranks execute: 'sim' (default) is "
                        "the deterministic BSP simulation, 'shm' runs real "
                        "worker processes over shared-memory CSR views, "
                        "'parity' runs both and verifies they are "
                        "bit-identical (requires --ranks; see "
                        "docs/parallel.md)")
    p.add_argument("--fault-spec", metavar="SPEC",
                   help="inject deterministic faults into the parallel run, "
                        "e.g. 'drop=0.05,dup=0.02,crash=0.01,seed=7' "
                        "(requires --ranks and the sim executor; see "
                        "docs/robustness.md)")
    p.add_argument("--strict", action="store_true",
                   help="strict mode: run the O(E) graph audit up front and "
                        "forbid the serial fallback (failures raise instead "
                        "of degrading)")
    p.add_argument("--cache", action="store_true",
                   help="serve the request through the in-process partition "
                        "service (content-addressed result cache + warm "
                        "start; see docs/serving.md)")
    p.add_argument("--serve-bench", type=int, metavar="N",
                   help="benchmark the partition service: replay the "
                        "request N times over a thread pool and report "
                        "hit rate and cold/hit latency (implies --cache)")
    p.add_argument("--backend", choices=("thread", "process"),
                   default="thread",
                   help="cold-compute backend for the served request: "
                        "inline threads (default) or a spawned "
                        "worker-process pool (requires --cache/"
                        "--serve-bench; see docs/serving.md)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="disk-backed second-level result cache directory "
                        "for the partition service: cold results persist "
                        "there and later runs (even after restart) serve "
                        "them back bit-identical (requires --cache/"
                        "--serve-bench)")
    p.add_argument("--trace", metavar="FILE",
                   help="write a structured JSONL trace of the run to FILE "
                        "(spans with timings + metrics; see "
                        "docs/observability.md)")
    p.add_argument("--trace-summary", action="store_true",
                   help="print the span tree (phases, per-level sizes, "
                        "cut/imbalance, timings) after the run")
    p.add_argument("--profile", action="store_true",
                   help="record the run with the flight recorder and print "
                        "the per-level dashboard (cut and per-constraint "
                        "imbalance at every coarsening and uncoarsening "
                        "level; see docs/observability.md)")
    p.add_argument("--profile-json", metavar="FILE",
                   help="write the recorded MultilevelProfile as JSON to "
                        "FILE (implies recording; usable as a drift "
                        "baseline for repro.obs.regress)")
    p.add_argument("--metrics-port", type=int, metavar="PORT",
                   help="serve a live Prometheus scrape endpoint on "
                        "127.0.0.1:PORT for the duration of the run "
                        "(/metrics, /healthz, /profile.json; 0 picks a "
                        "free port; see docs/observability.md)")
    p.add_argument("--quiet", action="store_true", help="print only the summary line")
    return p


def _serve_bench(svc, graph, args, cold_seconds: float) -> None:
    """Replay the CLI request N times over the service's pool and report
    cache behaviour (the ``--serve-bench`` flag)."""
    n = args.serve_bench
    t0 = time.perf_counter()
    svc.batch([(graph, args.nparts,
                {"method": args.method, "ubvec": args.tol,
                 "seed": args.seed, "matching": args.matching})] * n)
    replay = time.perf_counter() - t0
    stats = svc.stats()
    hits = stats["serve.cache.hits"]
    per_hit = replay / max(n, 1)
    speedup = cold_seconds / per_hit if per_hit > 0 else float("inf")
    print(f"serve-bench: {n} replays in {replay * 1e3:.1f}ms "
          f"({per_hit * 1e6:.0f}us/request, ~{speedup:.0f}x vs cold)")
    print(f"serve-bench: hits={hits} cold_computes="
          f"{stats['serve.cold_computes']} "
          f"coalesced={stats['serve.dedup.coalesced']} "
          f"hit_rate={hits / max(stats['serve.requests'], 1):.1%}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    metrics_server = None
    try:
        if args.demo:
            graph = mesh_like(args.demo, seed=args.seed)
            graph = graph.with_vwgt(type1_region_weights(graph, 3, seed=args.seed))
            source = f"synthetic mesh ({args.demo} vertices, 3 constraints)"
        else:
            if not args.graph:
                print("error: provide a graph file or --demo N", file=sys.stderr)
                return 2
            if str(args.graph).endswith(".npz"):
                from .graph.io import load_npz

                graph = load_npz(args.graph)
            else:
                graph = read_metis_graph(args.graph)
            source = args.graph

        if args.evaluate:
            part = read_partition(args.evaluate, graph.nvtxs)
            if part.max(initial=0) >= args.nparts:
                print("error: partition file uses more parts than nparts",
                      file=sys.stderr)
                return 1
            print(f"graph: {source} ({graph.nvtxs} vertices, "
                  f"{graph.nedges} edges, {graph.ncon} constraints)")
            print(str(PartitionReport.from_partition(graph, part, args.nparts)))
            if args.svg:
                from .viz.svg import save_partition_svg

                save_partition_svg(graph, part, args.svg)
            return 0

        if args.trace:
            parent = os.path.dirname(os.path.abspath(args.trace))
            if not os.path.isdir(parent):
                print(f"error: --trace directory does not exist: {parent}",
                      file=sys.stderr)
                return 2
        if args.profile_json:
            parent = os.path.dirname(os.path.abspath(args.profile_json))
            if not os.path.isdir(parent):
                print(f"error: --profile-json directory does not exist: "
                      f"{parent}", file=sys.stderr)
                return 2

        tracer = None
        recorder = None
        want_profile = args.profile or args.profile_json
        if args.trace or args.trace_summary or want_profile:
            from .trace import JsonlSink, Tracer

            sinks = [JsonlSink(args.trace)] if args.trace else []
            if want_profile:
                from .obs import FlightRecorder

                recorder = FlightRecorder()
                sinks.append(recorder)
            tracer = Tracer(sinks)

        if args.metrics_port is not None:
            from .obs import MetricsServer

            if tracer is None:
                from .trace import Tracer

                tracer = Tracer()
            # Scrapes pull straight from the live tracer registry (the
            # --cache path swaps in the richer service source below).
            metrics_server = MetricsServer(
                tracer, port=args.metrics_port,
                profile=recorder.profile if recorder is not None else None)
            if not args.quiet:
                print(f"metrics: {metrics_server.url}/metrics")

        if args.fault_spec and not args.ranks:
            print("error: --fault-spec requires --ranks (faults are injected "
                  "into the simulated parallel run)", file=sys.stderr)
            return 2
        if args.executor != "sim" and not args.ranks:
            print("error: --executor requires --ranks", file=sys.stderr)
            return 2
        if args.fault_spec and args.executor != "sim":
            print("error: --fault-spec only applies to the sim executor "
                  "(the injector screens simulated collectives; real worker "
                  "failure is tested via ShmFabric(inject_crash=...))",
                  file=sys.stderr)
            return 2
        if args.ranks and args.nseeds > 1:
            print("error: --ranks and --nseeds cannot be combined",
                  file=sys.stderr)
            return 2
        use_cache = args.cache or args.serve_bench
        if (args.backend != "thread" or args.cache_dir) and not use_cache:
            print("error: --backend/--cache-dir only apply to the served "
                  "path; add --cache or --serve-bench", file=sys.stderr)
            return 2
        if use_cache and (args.ranks or args.nseeds > 1):
            print("error: --cache/--serve-bench cannot be combined with "
                  "--ranks or --nseeds", file=sys.stderr)
            return 2
        if want_profile and use_cache:
            # Served computes run on private per-request tracers, so their
            # level events never reach this process's recorder.
            print("error: --profile/--profile-json cannot be combined with "
                  "--cache/--serve-bench", file=sys.stderr)
            return 2
        if use_cache and args.seed is None:
            # A None seed is explicitly nondeterministic and bypasses the
            # cache; pin one so the served run is reproducible & cacheable.
            args.seed = 0

        # Initial-partitioning knobs ride through every execution path as
        # plain option kwargs; the PartitionOptions front-door validates
        # them (unknown method names raise OptionsError with a did-you-mean
        # suggestion).
        init_opts = {}
        if args.init_ntries is not None:
            init_opts["init_ntries"] = args.init_ntries
        if args.init_methods is not None:
            init_opts["init_methods"] = tuple(
                m.strip() for m in args.init_methods.split(",") if m.strip())
        if args.init_patience is not None:
            init_opts["init_patience"] = args.init_patience
        if args.init_workers is not None:
            init_opts["init_workers"] = args.init_workers
        if args.strict_ntries:
            init_opts["strict_ntries"] = True
        if args.effort is not None:
            init_opts["effort"] = args.effort

        t0 = time.perf_counter()
        if use_cache:
            from .serve import PartitionService, ServiceConfig

            cfg = ServiceConfig(backend=args.backend,
                                cache_dir=args.cache_dir)
            with PartitionService(cfg, tracer=tracer) as svc:
                if metrics_server is not None:
                    metrics_server.source = svc
                res = svc.partition(graph, args.nparts, method=args.method,
                                    ubvec=args.tol, seed=args.seed,
                                    matching=args.matching, **init_opts)
                elapsed = time.perf_counter() - t0
                served_from = "cold"
                if args.cache_dir:
                    st = svc.stats()
                    if st.get("serve.diskcache.hits", 0):
                        served_from = "disk hit"
                print(res.summary() + f"  [{elapsed:.2f}s {served_from}]")
                if args.serve_bench:
                    _serve_bench(svc, graph, args, cold_seconds=elapsed)
        elif args.ranks and args.executor == "parity":
            from .parallel import run_parity
            from .partition.config import PartitionOptions

            opts = PartitionOptions(ubvec=args.tol, seed=args.seed,
                                    matching=args.matching, **init_opts)
            rep = run_parity(graph, args.nparts, args.ranks, options=opts)
            elapsed = time.perf_counter() - t0
            print(rep.summary() + f"  [{elapsed:.2f}s]")
            return 0 if rep.ok else 1
        elif args.ranks:
            from .parallel import parallel_part_graph
            from .partition.config import PartitionOptions

            opts = PartitionOptions(ubvec=args.tol, seed=args.seed,
                                    matching=args.matching, **init_opts)
            res = parallel_part_graph(
                graph, args.nparts, args.ranks,
                options=opts, tracer=tracer,
                faults=args.fault_spec, strict=args.strict,
                executor=args.executor,
            )
            elapsed = time.perf_counter() - t0
            print(res.summary() + f"  [{elapsed:.2f}s]")
            if res.degraded:
                print(f"warning: parallel run degraded to serial fallback "
                      f"({res.degraded_reason})", file=sys.stderr)
            if not args.quiet and res.faults is not None:
                injected = {k: v for k, v in res.faults.items() if v}
                print(f"faults injected: {injected or 'none'}")
        elif args.nseeds > 1:
            from .partition.ensemble import best_of

            ens = best_of(
                graph, args.nparts, args.nseeds,
                seed=args.seed, method=args.method,
                ubvec=args.tol, matching=args.matching,
                tracer=tracer, **init_opts,
            )
            res = ens.best
            elapsed = time.perf_counter() - t0
            print(ens.summary() + f"  [{elapsed:.2f}s]")
        else:
            res = part_graph(
                graph,
                args.nparts,
                method=args.method,
                ubvec=args.tol,
                seed=args.seed,
                matching=args.matching,
                tracer=tracer,
                strict=args.strict,
                **init_opts,
            )
            elapsed = time.perf_counter() - t0
            print(res.summary() + f"  [{elapsed:.2f}s]")
        if tracer is not None:
            tracer.finish()
            if args.trace_summary:
                if args.ranks or res.stats is None:
                    from .trace import TraceReport

                    print(TraceReport.from_tracer(tracer).render())
                else:
                    print(res.stats.render())
            if recorder is not None:
                from .obs import render_profile

                profile = recorder.profile()
                if args.profile:
                    print(render_profile(profile))
                if args.profile_json:
                    with open(args.profile_json, "w") as fh:
                        fh.write(profile.to_json() + "\n")
                    if not args.quiet:
                        print(f"profile written to {args.profile_json}")
            if args.trace and not args.quiet:
                print(f"trace written to {args.trace}")
        if not args.quiet:
            print(f"graph: {source} ({graph.nvtxs} vertices, {graph.nedges} edges, "
                  f"{graph.ncon} constraints)")
            print(str(PartitionReport.from_partition(graph, res.part, args.nparts)))
        if args.out:
            write_partition(res.part, args.out)
            if not args.quiet:
                print(f"partition written to {args.out}")
        if args.svg:
            from .viz.svg import save_partition_svg

            save_partition_svg(graph, res.part, args.svg)
            if not args.quiet:
                print(f"rendering written to {args.svg}")
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if metrics_server is not None:
            metrics_server.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
