"""Disk-backed second-level result cache: restarts start warm.

:class:`DiskCache` persists partition results under their request-key
digest so a fresh :class:`~repro.serve.service.PartitionService` pointed at
a populated cache directory serves bit-identical hits without recomputing.
It layers *under* the in-memory :class:`~repro.serve.cache.ResultCache`:
the service promotes disk hits into memory, and stores cold computes to
both levels.

Durability contract:

* **atomic writes** -- every entry is serialised to a same-directory temp
  file and published with ``os.replace``; a crash mid-write leaves a stale
  temp file, never a half-visible entry;
* **content-addressed** -- the file name is the request digest, and the
  digest is repeated inside the payload, so a renamed or cross-copied file
  cannot impersonate another request;
* **corruption-tolerant reads** -- a truncated, garbled or
  wrong-digest entry is treated as a *miss*: the ``corrupt`` counter is
  bumped and the file is quarantined (renamed ``*.corrupt``) so it is
  never retried and remains inspectable;
* **byte budget with LRU eviction** -- a ``get`` refreshes the entry's
  mtime, and inserts evict oldest-mtime entries until the directory is
  back under ``max_bytes``.  The mtime survives restarts, so recency does
  too.

The payload is an ``.npz`` (no pickling -- ``allow_pickle=False`` on read)
holding the ``part`` / ``imbalance`` arrays plus a JSON metadata record
(digest, scalar result fields, the pinned :class:`PartitionOptions`).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import fields as dc_fields

import numpy as np

from ..partition.api import PartitionResult
from ..partition.config import PartitionOptions
from .key import RequestKey

__all__ = ["DiskCache"]

_VERSION = 1
_SUFFIX = ".npz"


def _freeze(arr: np.ndarray) -> np.ndarray:
    out = np.array(arr, copy=True)
    out.setflags(write=False)
    return out


def _options_to_jsonable(options: PartitionOptions | None):
    if options is None:
        return None
    out = {}
    for f in dc_fields(options):
        v = getattr(options, f.name)
        if isinstance(v, (tuple, np.ndarray)):
            items = v.ravel().tolist() if isinstance(v, np.ndarray) else list(v)
            conv = []
            for x in items:
                if isinstance(x, (str, bool)):
                    conv.append(x)
                elif isinstance(x, (int, np.integer)):
                    conv.append(int(x))
                elif isinstance(x, (float, np.floating)):
                    conv.append(float(x))
                else:
                    return None  # exotic element: drop options
            v = conv
        elif isinstance(v, np.integer):
            v = int(v)
        elif isinstance(v, np.floating):
            v = float(v)
        if not isinstance(v, (int, float, str, bool, list, type(None))):
            return None  # unpinned seed or exotic field: drop options
        out[f.name] = v
    return out


class DiskCache:
    """Digest-named, corruption-tolerant, byte-budgeted result store.

    Parameters
    ----------
    directory:
        Cache directory (created if missing).
    max_bytes:
        Byte budget over the entry files; oldest-mtime entries are evicted
        on insert.  An entry larger than the whole budget is not admitted.

    Thread-safe (one internal lock); cheap enough to sit on the service's
    submit path for the small artifacts partitions are.
    """

    def __init__(self, directory: str, max_bytes: int = 256 << 20):
        self.directory = str(directory)
        self.max_bytes = int(max_bytes)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.RLock()
        #: digest -> entry file size; recency lives in the files' mtimes.
        self._sizes: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        self._scan()

    # ------------------------------------------------------------ layout

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, digest + _SUFFIX)

    def _scan(self) -> None:
        with self._lock:
            self._sizes.clear()
            for name in os.listdir(self.directory):
                if not name.endswith(_SUFFIX):
                    continue
                try:
                    self._sizes[name[:-len(_SUFFIX)]] = os.path.getsize(
                        os.path.join(self.directory, name))
                except OSError:
                    continue

    def __len__(self) -> int:
        with self._lock:
            return len(self._sizes)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(self._sizes.values())

    # -------------------------------------------------------------- core

    def get(self, key: RequestKey) -> PartitionResult | None:
        """The stored result for ``key`` (refreshing its recency), or
        ``None``.  A corrupt entry counts as a miss and is quarantined."""
        if not key.cacheable:
            self.misses += 1
            return None
        path = self._path(key.digest)
        with self._lock:
            if not os.path.exists(path):
                self.misses += 1
                return None
            try:
                result = self._load(path, key.digest)
            except Exception:  # noqa: BLE001 - any damage means "miss"
                self._quarantine(key.digest, path)
                self.misses += 1
                return None
            try:
                os.utime(path)  # LRU recency that survives restarts
            except OSError:
                pass
            self.hits += 1
            return result

    def put(self, key: RequestKey, result: PartitionResult) -> bool:
        """Persist ``result`` under ``key``; returns whether it was
        admitted (uncacheable keys and over-budget payloads are not)."""
        if not key.cacheable or self.max_bytes <= 0:
            return False
        payload = self._serialize(key, result)
        if len(payload) > self.max_bytes:
            return False
        path = self._path(key.digest)
        with self._lock:
            fd, tmp = tempfile.mkstemp(prefix=".put-", suffix=".tmp",
                                       dir=self.directory)
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)  # atomic publish
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._sizes[key.digest] = len(payload)
            self.stores += 1
            self._evict(keep=key.digest)
        return True

    def clear(self) -> None:
        with self._lock:
            for digest in list(self._sizes):
                self._remove(digest)

    # ---------------------------------------------------------- internals

    def _serialize(self, key: RequestKey, result: PartitionResult) -> bytes:
        meta = {
            "version": _VERSION,
            "digest": key.digest,
            "nparts": int(result.nparts),
            "ncon": int(result.ncon),
            "edgecut": int(result.edgecut),
            "feasible": bool(result.feasible),
            "method": str(result.method),
            "options": _options_to_jsonable(result.options),
        }
        import io

        buf = io.BytesIO()
        np.savez(
            buf,
            part=np.asarray(result.part),
            imbalance=np.asarray(result.imbalance),
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        return buf.getvalue()

    def _load(self, path: str, digest: str) -> PartitionResult:
        with np.load(path, allow_pickle=False) as z:
            meta = json.loads(bytes(z["meta"].tobytes()))
            part = _freeze(z["part"])
            imbalance = _freeze(z["imbalance"])
        if meta.get("version") != _VERSION or meta.get("digest") != digest:
            raise ValueError("disk-cache entry does not match its digest")
        if part.ndim != 1 or imbalance.shape != (int(meta["ncon"]),):
            raise ValueError("disk-cache entry has malformed arrays")
        opts = meta.get("options")
        options = PartitionOptions(**{k: tuple(v) if isinstance(v, list)
                                      else v for k, v in opts.items()}
                                   ) if opts else None
        return PartitionResult(
            part=part,
            nparts=int(meta["nparts"]),
            ncon=int(meta["ncon"]),
            edgecut=int(meta["edgecut"]),
            imbalance=imbalance,
            feasible=bool(meta["feasible"]),
            method=str(meta["method"]),
            options=options,
        )

    def _quarantine(self, digest: str, path: str) -> None:
        self.corrupt += 1
        self._sizes.pop(digest, None)
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _remove(self, digest: str) -> None:
        self._sizes.pop(digest, None)
        try:
            os.unlink(self._path(digest))
        except OSError:
            pass

    def _evict(self, keep: str | None = None) -> None:
        """Drop oldest-mtime entries until the byte budget holds.  Caller
        holds the lock."""
        while len(self._sizes) > 1 and sum(self._sizes.values()) > self.max_bytes:
            oldest, oldest_mtime = None, None
            for digest in self._sizes:
                if digest == keep:
                    continue
                try:
                    mtime = os.path.getmtime(self._path(digest))
                except OSError:
                    mtime = -1.0  # already gone: evict first
                if oldest is None or mtime < oldest_mtime:
                    oldest, oldest_mtime = digest, mtime
            if oldest is None:
                break
            self._remove(oldest)
            self.evictions += 1

    # --------------------------------------------------------------- stats

    def counters(self) -> dict:
        """Snapshot of the disk-cache counters (``serve.diskcache.*``)."""
        with self._lock:
            return {
                "serve.diskcache.hits": self.hits,
                "serve.diskcache.misses": self.misses,
                "serve.diskcache.stores": self.stores,
                "serve.diskcache.evictions": self.evictions,
                "serve.diskcache.corrupt": self.corrupt,
                "serve.diskcache.entries": len(self._sizes),
                "serve.diskcache.bytes": sum(self._sizes.values()),
            }
