"""Canonical, content-addressed request keys for the partition service.

Two requests get the same key **iff** a correct implementation of
:func:`repro.partition.part_graph` is guaranteed to return bit-identical
results for both.  The key therefore hashes

* the graph *content* (``xadj``/``adjncy``/``adjwgt``/``vwgt`` bytes --
  object identity is irrelevant, a re-read of the same file hits),
* ``nparts``, ``method``, the canonicalised ``target_fracs``, and
* every semantically relevant :class:`~repro.partition.PartitionOptions`
  field -- i.e. all of them except ``collect_stats``, which only controls
  whether a trace is recorded, never which partition comes back.

The seed is canonicalised with :func:`repro._rng.canonical_seed` *at key
construction time*: a ``Generator`` is pinned to one drawn integer (so the
compute is deterministic and race-free even through the thread pool), and
``None`` marks the request :attr:`~RequestKey.cacheable`\\ ``=False`` --
explicitly nondeterministic requests are computed fresh every time.

A second, coarser digest (:attr:`RequestKey.topo_digest`) covers only the
topology (``xadj``/``adjncy``/``adjwgt``).  It is the warm-start index:
requests on the same mesh whose weights/``nparts``/``ubvec`` drifted hash
to the same topology bucket (see :mod:`repro.serve.warm`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .._rng import canonical_seed
from ..graph.csr import Graph
from ..partition.config import PartitionOptions
from ..weights.balance import as_target_fracs, as_ubvec

__all__ = ["RequestKey", "request_key", "SEMANTIC_OPTION_FIELDS"]

#: PartitionOptions fields that change the returned partition.  Everything
#: except ``collect_stats`` (observability-only) and ``init_workers`` (the
#: init pool is bit-identical at any worker count).  ``seed`` is handled
#: separately through :func:`repro._rng.canonical_seed`.
SEMANTIC_OPTION_FIELDS = (
    "matching",
    "coarsen_to",
    "kway_coarsen_factor",
    "max_coarsen_levels",
    "min_shrink",
    "init_ntries",
    "init_methods",
    "init_diverse_rounds",
    "init_patience",
    "strict_ntries",
    "refine_passes",
    "kway_refine_passes",
    "rb_multilevel",
    "final_balance",
    "kway_policy",
    "effort",
    "vcycle_max",
    "vcycle_patience",
)


def _hash_arrays(h, *arrays) -> None:
    for a in arrays:
        a = np.ascontiguousarray(a)
        # Dtype and shape are part of the content: int32 vs int64 vwgt with
        # equal values partitions identically, but keying on bytes alone
        # would collide (1, 0) int64 with (1,) of a wider dtype.
        h.update(str(a.dtype).encode())
        h.update(np.asarray(a.shape, dtype=np.int64).tobytes())
        h.update(a.tobytes())


@dataclass(frozen=True)
class RequestKey:
    """Canonical identity of one partition request.

    Attributes
    ----------
    digest:
        Hex SHA-256 over everything that determines the result.  Equal
        digests => bit-identical results (given a pinned seed).
    topo_digest:
        Hex SHA-256 over the graph topology only (no vertex weights) --
        the warm-start bucket.
    nparts, method, ncon:
        Echoed request parameters (used by the warm-start scorer).
    seed:
        The pinned integer seed, or ``None`` for a nondeterministic
        request.
    cacheable:
        False when ``seed`` is ``None``: two such submissions are
        *independent* random draws and must both compute.
    """

    digest: str
    topo_digest: str
    nparts: int
    method: str
    ncon: int
    seed: int | None = field(repr=False, default=None)

    @property
    def cacheable(self) -> bool:
        return self.seed is not None


def request_key(
    graph: Graph,
    nparts: int,
    *,
    method: str = "kway",
    options: PartitionOptions | None = None,
    target_fracs=None,
) -> tuple[RequestKey, PartitionOptions]:
    """Build the canonical key for a request.

    Returns ``(key, pinned_options)`` where ``pinned_options`` is
    ``options`` with its seed replaced by the canonical integer (this is
    what the service actually computes with, so key and compute can never
    disagree).
    """
    if options is None:
        options = PartitionOptions()
    seed = canonical_seed(options.seed)
    if seed is not None and seed != options.seed:
        options = options.with_(seed=seed)

    topo = hashlib.sha256()
    _hash_arrays(topo, graph.xadj, graph.adjncy, graph.adjwgt)
    topo_digest = topo.hexdigest()

    h = hashlib.sha256()
    h.update(topo_digest.encode())
    _hash_arrays(h, graph.vwgt)
    ub = as_ubvec(options.ubvec, graph.ncon)
    fr = as_target_fracs(target_fracs, nparts)
    _hash_arrays(h, ub, fr)
    fields_repr = ",".join(
        f"{name}={getattr(options, name)!r}" for name in SEMANTIC_OPTION_FIELDS
    )
    h.update(f"|n={nparts}|m={method}|s={seed}|{fields_repr}".encode())

    key = RequestKey(
        digest=h.hexdigest(),
        topo_digest=topo_digest,
        nparts=int(nparts),
        method=str(method),
        ncon=graph.ncon,
        seed=seed,
    )
    return key, options
