"""Warm-start: seed the k-way refiner from a cached partition.

A previous partition of the *same mesh* is a valid initial solution for a
new request whose weights, part count, or tolerance drifted -- exactly the
repartitioning situation of :mod:`repro.adaptive`: keep the old assignment,
restore balance under the new weights, then run multi-constraint k-way
refinement.  That costs one refinement sweep instead of a full multilevel
run.

Contract (documented in ``docs/serving.md``):

* the warm result is **accepted** only if it is feasible under the new
  request's ``ubvec`` AND its cut is at most ``warm_cut_factor`` times the
  cut of the cached partition evaluated on the new request's graph (the
  baseline the refiner started from -- rebalancing under drifted weights
  may raise the cut a little, but a blow-up means the old solution was a
  bad seed and the service falls back to cold compute);
* a warm result is **never** stored in the cache under the request's exact
  key unless the service is explicitly configured to
  (``cache_warm_results``), because the cache's headline invariant is
  "a hit is bit-identical to a cold compute of the same request";
* when the cached source has a different ``nparts``, part ids are folded
  modulo the requested ``nparts`` -- crude, but only the *seeding* needs to
  be legal; balancing and refinement do the rest.
"""

from __future__ import annotations

import numpy as np

from ..adaptive.repart import refine_partition
from ..graph.csr import Graph
from ..partition.api import PartitionResult
from ..partition.config import PartitionOptions
from ..refine.gain import edge_cut
from .cache import CacheEntry

__all__ = ["warm_start"]


def warm_start(
    graph: Graph,
    nparts: int,
    options: PartitionOptions,
    source: CacheEntry,
    *,
    warm_cut_factor: float = 1.5,
    tracer=None,
) -> PartitionResult | None:
    """Attempt a warm-started partition from ``source``; ``None`` on reject.

    Records one ``serve.warm_start`` span on ``tracer`` (when given)
    carrying the verdict: ``accepted`` plus either the achieved cut or the
    rejection reason.
    """
    old_part = np.asarray(source.result.part)
    if old_part.shape != (graph.nvtxs,):
        return None  # topology hash collision paranoia; cold compute
    if source.key.nparts != nparts:
        old_part = old_part % nparts
    baseline_cut = edge_cut(graph, old_part)

    span = tracer.span("serve.warm_start", nparts=nparts,
                       source_nparts=source.key.nparts,
                       baseline_cut=int(baseline_cut)) if tracer else None
    try:
        rep = refine_partition(
            graph,
            old_part,
            nparts,
            ubvec=options.ubvec,
            npasses=options.kway_refine_passes,
            seed=options.seed,
        )
        accepted = rep.feasible and rep.edgecut <= warm_cut_factor * max(
            baseline_cut, 1)
        if span is not None:
            span.set(accepted=accepted, cut=int(rep.edgecut),
                     feasible=rep.feasible)
            if not accepted:
                span.set(reason="infeasible" if not rep.feasible
                         else "cut_blowup")
        if not accepted:
            return None
        return PartitionResult(
            part=rep.part,
            nparts=nparts,
            ncon=graph.ncon,
            edgecut=rep.edgecut,
            imbalance=rep.imbalance,
            feasible=rep.feasible,
            method=source.key.method,
            options=options,
        )
    finally:
        if span is not None:
            span.__exit__(None, None, None)
