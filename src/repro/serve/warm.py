"""Warm-start: seed the k-way refiner from a cached partition.

A previous partition of the *same mesh* is a valid initial solution for a
new request whose weights, part count, or tolerance drifted -- exactly the
repartitioning situation of :mod:`repro.adaptive`: keep the old assignment,
restore balance under the new weights, then run multi-constraint k-way
refinement.  That costs one refinement sweep instead of a full multilevel
run.

Contract (documented in ``docs/serving.md``):

* the warm result is **accepted** only if it is feasible under the new
  request's ``ubvec`` AND its cut is at most ``warm_cut_factor`` times the
  cut of the cached partition evaluated on the new request's graph (the
  baseline the refiner started from -- rebalancing under drifted weights
  may raise the cut a little, but a blow-up means the old solution was a
  bad seed and the service falls back to cold compute);
* a warm result is **never** stored in the cache under the request's exact
  key unless the service is explicitly configured to
  (``cache_warm_results``), because the cache's headline invariant is
  "a hit is bit-identical to a cold compute of the same request";
* when the cached source has a different ``nparts``, part ids are folded
  modulo the requested ``nparts`` -- crude, but only the *seeding* needs to
  be legal; balancing and refinement do the rest.  Folding **up** (source
  has fewer parts than the request) leaves parts
  ``source_nparts..nparts-1`` empty, and the k-way refiner cannot populate
  an empty part, so the seed is repaired first: each empty part receives
  half the vertices of the currently heaviest multi-vertex block.  The
  repair count is recorded on the ``serve.warm_start`` span
  (``repaired_parts``).
"""

from __future__ import annotations

import numpy as np

from ..adaptive.repart import refine_partition
from ..graph.csr import Graph
from ..partition.api import PartitionResult
from ..partition.config import PartitionOptions
from ..refine.gain import edge_cut
from .cache import CacheEntry

__all__ = ["warm_start"]


def _repair_empty_parts(graph: Graph, part: np.ndarray,
                        nparts: int) -> tuple[np.ndarray, int]:
    """Make every part of a folded seed nonempty; returns (part, nrepaired).

    ``old_part % nparts`` with ``source_nparts < nparts`` can only produce
    ids ``0..source_nparts-1``, so the upper parts start empty -- and the
    greedy k-way refiner moves vertices between *existing* boundary parts,
    so an empty part would stay empty and the warm result could never be
    feasible.  Deterministically split the heaviest (by total vertex
    weight) multi-vertex block in half for each empty part.  The split is
    crude on purpose: balancing + refinement run right after.
    """
    counts = np.bincount(part, minlength=nparts)
    empties = np.flatnonzero(counts == 0)
    if empties.size == 0:
        return part, 0
    part = part.copy()
    tot = np.asarray(graph.vwgt).reshape(graph.nvtxs, -1).sum(axis=1)
    tot = tot.astype(np.float64)
    loads = np.bincount(part, weights=tot, minlength=nparts)
    repaired = 0
    for p in empties:
        donor_loads = np.where(counts >= 2, loads, -1.0)
        donor = int(np.argmax(donor_loads))
        if counts[donor] < 2:
            break  # fewer multi-vertex blocks than empty parts; give up
        verts = np.flatnonzero(part == donor)
        take = verts[: verts.size // 2]
        part[take] = p
        moved = float(tot[take].sum())
        loads[donor] -= moved
        loads[p] += moved
        counts[p] = take.size
        counts[donor] -= take.size
        repaired += 1
    return part, repaired


def warm_start(
    graph: Graph,
    nparts: int,
    options: PartitionOptions,
    source: CacheEntry,
    *,
    warm_cut_factor: float = 1.5,
    tracer=None,
) -> PartitionResult | None:
    """Attempt a warm-started partition from ``source``; ``None`` on reject.

    Records one ``serve.warm_start`` span on ``tracer`` (when given)
    carrying the verdict: ``accepted`` plus either the achieved cut or the
    rejection reason.
    """
    old_part = np.asarray(source.result.part)
    if old_part.shape != (graph.nvtxs,):
        return None  # topology hash collision paranoia; cold compute
    repaired = 0
    if source.key.nparts != nparts:
        old_part = old_part % nparts
        old_part, repaired = _repair_empty_parts(graph, old_part, nparts)
    baseline_cut = edge_cut(graph, old_part)

    span = tracer.span("serve.warm_start", nparts=nparts,
                       source_nparts=source.key.nparts,
                       repaired_parts=repaired,
                       baseline_cut=int(baseline_cut)) if tracer else None
    try:
        rep = refine_partition(
            graph,
            old_part,
            nparts,
            ubvec=options.ubvec,
            npasses=options.kway_refine_passes,
            seed=options.seed,
        )
        accepted = rep.feasible and rep.edgecut <= warm_cut_factor * max(
            baseline_cut, 1)
        if span is not None:
            span.set(accepted=accepted, cut=int(rep.edgecut),
                     feasible=rep.feasible)
            if not accepted:
                span.set(reason="infeasible" if not rep.feasible
                         else "cut_blowup")
        if not accepted:
            return None
        return PartitionResult(
            part=rep.part,
            nparts=nparts,
            ncon=graph.ncon,
            edgecut=rep.edgecut,
            imbalance=rep.imbalance,
            feasible=rep.feasible,
            method=source.key.method,
            options=options,
        )
    finally:
        if span is not None:
            span.__exit__(None, None, None)
