"""Admission control and backpressure for the partition service.

A service that accepts every request degrades for everyone at once: the
pending queue grows without bound and every deadline starts expiring.
:class:`AdmissionController` bounds the damage at the front door:

* **bounded pending queue** -- at most ``max_pending`` computes may be
  queued (submitted but not yet started).  Cache hits, disk hits and
  coalesced duplicates never occupy a slot;
* **per-class service levels** -- every request carries a class,
  ``"interactive"`` (default) or ``"batch"``.  Batch traffic is shed
  early, at ``batch_shed_fraction`` of the bound, keeping headroom so
  interactive requests still get in while the queue drains; interactive
  requests are shed only when the queue is full;
* **load shedding** -- a rejected request raises the typed
  :class:`~repro.errors.ServeOverloadError` *at submit time*: the caller
  knows immediately, nothing is queued, and the ``serve.shed`` /
  ``serve.shed.<class>`` counters record it;
* **observability** -- the live ``queue_depth`` (pending) and ``inflight``
  (running computes) gauges feed ``service.stats()`` and the Prometheus
  exposition.

The controller is bookkeeping only -- the owning service calls it under
its own admission lock; nothing here blocks.
"""

from __future__ import annotations

from ..errors import ServeOverloadError

__all__ = ["AdmissionController", "REQUEST_CLASSES"]

#: Valid request classes, most to least latency-sensitive.
REQUEST_CLASSES = ("interactive", "batch")


class AdmissionController:
    """Bounded-queue admission with per-class shedding thresholds.

    Parameters
    ----------
    max_pending:
        Pending-compute bound; ``None`` disables shedding (the gauges are
        still tracked).  ``0`` sheds every compute -- useful to drain a
        service that must only answer from cache.
    batch_shed_fraction:
        Fraction of ``max_pending`` at which *batch* requests start being
        shed (default 0.5).  Interactive requests use the full bound.
    """

    def __init__(self, max_pending: int | None = None,
                 batch_shed_fraction: float = 0.5):
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0 or None")
        if not 0.0 <= batch_shed_fraction <= 1.0:
            raise ValueError("batch_shed_fraction must be in [0, 1]")
        self.max_pending = max_pending
        self.batch_shed_fraction = batch_shed_fraction
        self.pending = 0    # submitted, not yet started (queue depth)
        self.inflight = 0   # compute currently running
        self.shed = {klass: 0 for klass in REQUEST_CLASSES}

    # ------------------------------------------------------------ limits

    def _bound(self, klass: str) -> int | None:
        if self.max_pending is None:
            return None
        if klass == "batch":
            return int(self.max_pending * self.batch_shed_fraction)
        return self.max_pending

    def admit(self, klass: str) -> None:
        """Claim a queue slot for one compute, or shed it.

        Raises :class:`ServeOverloadError` when the class's threshold is
        reached; on success the caller *must* later pair this with
        :meth:`start` + :meth:`done` (or :meth:`abandon` if the compute is
        never handed to a worker).
        """
        if klass not in REQUEST_CLASSES:
            raise ValueError(
                f"unknown request class {klass!r}: expected one of "
                f"{REQUEST_CLASSES}")
        bound = self._bound(klass)
        if bound is not None and self.pending >= bound:
            self.shed[klass] += 1
            raise ServeOverloadError(
                f"request shed: {self.pending} computes pending >= "
                f"{klass} bound {bound}", klass=klass,
                queue_depth=self.pending)
        self.pending += 1

    def start(self) -> None:
        """A queued compute was picked up by a worker."""
        self.pending = max(0, self.pending - 1)
        self.inflight += 1

    def done(self) -> None:
        """A running compute finished (any outcome)."""
        self.inflight = max(0, self.inflight - 1)

    def abandon(self) -> None:
        """A claimed slot will never run (submit failed after admit)."""
        self.pending = max(0, self.pending - 1)

    # ------------------------------------------------------------- stats

    def counters(self) -> dict:
        """Shed counters (``serve.shed*`` names)."""
        out = {"serve.shed": sum(self.shed.values())}
        for klass in REQUEST_CLASSES:
            out[f"serve.shed.{klass}"] = self.shed[klass]
        return out

    def gauges(self) -> dict:
        """Live queue gauges (``serve.queue_depth`` / ``serve.inflight``)."""
        return {
            "serve.queue_depth": self.pending,
            "serve.inflight": self.inflight,
        }
