"""Process-pool compute backend: cold computes on real cores.

The thread backend overlaps work only where the numpy kernels release the
GIL; the pure-Python glue between kernels still serialises.
:class:`ProcessBackend` dispatches each cold compute to a pool of
**spawned** worker processes (spawn, never fork: the service owns threads,
and forking a threaded process is undefined behaviour), so concurrent cold
computes scale with cores.

Marshalling protocol ("ship once per worker"):

* every graph is identified by a stable content token (the service derives
  it from the request key's digests);
* a worker keeps a small LRU of reconstructed :class:`~repro.graph.csr.Graph`
  objects keyed by token.  Tasks normally carry **only the token**; a
  worker that does not hold the graph answers ``_NEED_GRAPH`` and the
  parent resubmits once with the full CSR arrays (which that worker then
  caches).  Steady-state traffic on a warm pool ships no arrays at all --
  the ``serve.cluster.ship.*`` counters make the protocol observable.

Determinism: request seeds are pinned to integers before they reach any
backend, and ``part_graph`` is deterministic given a pinned seed, so a
process compute is **bit-identical** to the same request on the thread
backend (the oracle).  ``tests/test_serve_cluster.py`` pins this parity;
the load harness (``benchmarks/bench_serve_cluster.py``) re-checks it on
every run and records violations (must be zero).

Worker telemetry: every compute reply carries a small in-process
measurement delta -- ``(result, {"worker": pid, "compute_seconds": dt,
"cached_graphs": n})`` over the pool's existing result future, no extra
IPC.  The parent folds deltas into a :class:`~repro.trace.MetricsRegistry`
with ``worker="<pid>"`` labels; :meth:`ProcessBackend.metrics` exposes
the snapshot and the service merges it into its Prometheus exposition.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

from ..graph.csr import Graph
from ..partition.api import part_graph
from ..trace import MetricsRegistry, labeled
from .executor import ComputeBackend

__all__ = ["ProcessBackend"]

#: Worker answer meaning "I do not hold this graph; resend with arrays".
_NEED_GRAPH = "__repro_need_graph__"

#: Per-worker-process graph cache size (distinct topologies a worker keeps).
_WORKER_CACHE_ENTRIES = 8

# ---------------------------------------------------------------- worker
# Everything below the comment runs inside the spawned worker processes;
# it must stay importable at module top level (spawn pickles by reference).

_worker_graphs: "OrderedDict[str, Graph]" = OrderedDict()


def _worker_get_graph(token: str, blob) -> Graph | None:
    """Resolve ``token`` against the worker-local cache, admitting ``blob``
    (the CSR arrays) when it was shipped along."""
    g = _worker_graphs.get(token)
    if g is not None:
        _worker_graphs.move_to_end(token)
        return g
    if blob is None:
        return None
    xadj, adjncy, vwgt, adjwgt = blob
    g = Graph(xadj, adjncy, vwgt, adjwgt, validate=False)
    _worker_graphs[token] = g
    while len(_worker_graphs) > _WORKER_CACHE_ENTRIES:
        _worker_graphs.popitem(last=False)
    return g


def _worker_compute(token, blob, nparts, method, options, target_fracs):
    """One cold compute inside a worker process.

    Returns ``(result_or_NEED_GRAPH, delta_or_None)``: the telemetry delta
    measured *inside* the process rides back on the existing result future
    (``None`` on the token-miss answer, which did no work)."""
    t0 = time.perf_counter()
    g = _worker_get_graph(token, blob)
    if g is None:
        return _NEED_GRAPH, None
    res = part_graph(g, nparts, method=method, options=options,
                     target_fracs=target_fracs)
    return res, {"worker": os.getpid(),
                 "compute_seconds": time.perf_counter() - t0,
                 "cached_graphs": len(_worker_graphs)}


def _worker_ping(seconds: float) -> int:
    """Warm-up task: holds a worker busy so the next ping spawns/reaches
    another one."""
    time.sleep(seconds)
    return os.getpid()


# ---------------------------------------------------------------- parent


class ProcessBackend(ComputeBackend):
    """Cold computes on a spawn-context :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Worker-process count (default: ``os.cpu_count()``).

    The pool starts lazily on the first compute (or eagerly via
    :meth:`warmup`); :meth:`close` shuts it down.  ``compute`` is
    thread-safe -- the service's request threads all submit into the one
    pool.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max(1, int(max_workers or os.cpu_count() or 1))
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._shipped: set[str] = set()
        self._counters = {
            "serve.cluster.computes": 0,
            "serve.cluster.ship.full": 0,
            "serve.cluster.ship.token": 0,
            "serve.cluster.ship.retry": 0,
        }
        self._telemetry = MetricsRegistry()

    # ------------------------------------------------------------- pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=get_context("spawn"))
            return self._pool

    def warmup(self, seconds: float = 0.05) -> None:
        """Spin up every worker (pays the spawn+import cost now, not on
        the first served request)."""
        pool = self._ensure_pool()
        futs = [pool.submit(_worker_ping, seconds)
                for _ in range(self.max_workers)]
        for f in futs:
            f.result()

    def close(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    # ---------------------------------------------------------- compute

    def _blob(self, graph):
        return (graph.xadj, graph.adjncy, graph.vwgt, graph.adjwgt)

    def compute(self, graph, nparts, *, method, options, target_fracs,
                graph_token=None):
        pool = self._ensure_pool()
        token = graph_token or f"anon-{id(graph)}"
        with self._lock:
            token_only = token in self._shipped
            self._counters["serve.cluster.computes"] += 1
        if token_only:
            # Optimistic: some worker already holds this graph.
            with self._lock:
                self._counters["serve.cluster.ship.token"] += 1
            out, delta = pool.submit(_worker_compute, token, None, nparts,
                                     method, options, target_fracs).result()
            self._absorb_delta(delta)
            if not (isinstance(out, str) and out == _NEED_GRAPH):
                return out
            # Landed on a cold worker: reship the arrays once to it.
            with self._lock:
                self._counters["serve.cluster.ship.retry"] += 1
        with self._lock:
            self._counters["serve.cluster.ship.full"] += 1
            self._shipped.add(token)
        out, delta = pool.submit(_worker_compute, token, self._blob(graph),
                                 nparts, method, options,
                                 target_fracs).result()
        self._absorb_delta(delta)
        return out

    def _absorb_delta(self, delta) -> None:
        """Fold a worker's compute delta into the labeled registry."""
        if not delta:
            return
        worker = str(delta["worker"])
        with self._lock:
            self._telemetry.histogram(
                labeled("serve.cluster.worker.compute_seconds",
                        worker=worker)).observe(delta["compute_seconds"])
            self._telemetry.counter(
                labeled("serve.cluster.worker.computes",
                        worker=worker)).inc()
            self._telemetry.gauge(
                labeled("serve.cluster.worker.cached_graphs",
                        worker=worker)).set(delta["cached_graphs"])

    def counters(self) -> dict:
        with self._lock:
            return dict(self._counters)

    def metrics(self) -> dict:
        """Snapshot of the per-worker telemetry registry (``worker="<pid>"``
        labeled series), in :meth:`~repro.trace.MetricsRegistry.as_dict`
        shape; merged into the service's Prometheus exposition."""
        with self._lock:
            return self._telemetry.as_dict()
