"""repro.serve -- cached, batched, warm-starting partition service.

The production-shaped front-end over :func:`repro.partition.part_graph`
(see ``docs/serving.md`` for the full contract):

* :class:`PartitionService` -- thread-safe request front door: submit /
  partition / batch, per-request deadlines, trace counters.
* :class:`ResultCache` -- content-addressed LRU + max-byte result cache;
  a hit is bit-identical to the cold compute it stands in for.
* :func:`request_key` -- the canonical cache-key constructor (CSR bytes,
  weights, nparts, method, target fractions, semantic options, pinned
  seed).
* :func:`warm_start` -- seed the k-way refiner from a cached partition of
  the same mesh instead of partitioning from scratch.

Quickstart::

    from repro import mesh_like
    from repro.serve import PartitionService

    g = mesh_like(5000, seed=0)
    with PartitionService() as svc:
        cold = svc.partition(g, 8, seed=42)   # full multilevel run
        hit = svc.partition(g, 8, seed=42)    # cache hit: same bits, ~free
        assert (cold.part == hit.part).all()
"""

from .cache import CacheEntry, ResultCache
from .key import SEMANTIC_OPTION_FIELDS, RequestKey, request_key
from .service import PartitionService, ServeFuture, ServiceConfig
from .warm import warm_start

__all__ = [
    "PartitionService",
    "ServiceConfig",
    "ServeFuture",
    "ResultCache",
    "CacheEntry",
    "RequestKey",
    "request_key",
    "SEMANTIC_OPTION_FIELDS",
    "warm_start",
]
