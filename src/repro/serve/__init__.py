"""repro.serve -- cached, batched, warm-starting partition service tier.

The production-shaped front-end over :func:`repro.partition.part_graph`
(see ``docs/serving.md`` for the full contract):

* :class:`PartitionService` -- thread-safe request front door: submit /
  partition / batch, per-request and per-class deadlines, admission
  control with load shedding, trace counters.
* :class:`ComputeBackend` seam -- cold computes run inline on the service
  threads (:class:`ThreadBackend`, the deterministic oracle) or on a pool
  of spawned worker processes (:class:`ProcessBackend`,
  ``ServiceConfig(backend="process")``) that sidesteps the GIL.
* :class:`ResultCache` -- content-addressed LRU + max-byte result cache;
  a hit is bit-identical to the cold compute it stands in for.
* :class:`DiskCache` -- disk-backed second-level cache
  (``ServiceConfig(cache_dir=...)``): digest-named atomic entries,
  corruption-tolerant reads, byte-budget LRU; a restarted service warms
  instantly.
* :class:`AdmissionController` -- bounded pending queue with per-class
  shedding (:class:`~repro.errors.ServeOverloadError`).
* :func:`request_key` -- the canonical cache-key constructor (CSR bytes,
  weights, nparts, method, target fractions, semantic options, pinned
  seed).
* :func:`warm_start` -- seed the k-way refiner from a cached partition of
  the same mesh instead of partitioning from scratch.
* :class:`Improver` -- background quality upgrader: recomputes hot cached
  entries at ``effort="high"`` and caches them under the new high-effort
  key (never swapping bits under an existing key; requires
  ``ServiceConfig(retain_graphs=N)``).

Quickstart::

    from repro import mesh_like
    from repro.serve import PartitionService

    g = mesh_like(5000, seed=0)
    with PartitionService() as svc:
        cold = svc.partition(g, 8, seed=42)   # full multilevel run
        hit = svc.partition(g, 8, seed=42)    # cache hit: same bits, ~free
        assert (cold.part == hit.part).all()
"""

from .admission import REQUEST_CLASSES, AdmissionController
from .cache import CacheEntry, ResultCache
from .cluster import ProcessBackend
from .diskcache import DiskCache
from .executor import BACKENDS, ComputeBackend, ThreadBackend, make_backend
from .improver import ImproveOutcome, Improver
from .key import SEMANTIC_OPTION_FIELDS, RequestKey, request_key
from .service import PartitionService, ServeFuture, ServiceConfig
from .warm import warm_start

__all__ = [
    "Improver",
    "ImproveOutcome",
    "PartitionService",
    "ServiceConfig",
    "ServeFuture",
    "ResultCache",
    "CacheEntry",
    "DiskCache",
    "AdmissionController",
    "REQUEST_CLASSES",
    "ComputeBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "make_backend",
    "RequestKey",
    "request_key",
    "SEMANTIC_OPTION_FIELDS",
    "warm_start",
]
