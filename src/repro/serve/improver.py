"""Background improver: upgrade hot cached entries between requests.

A serving deployment sees skewed traffic -- a few (graph, nparts, options)
requests dominate.  Those hot entries were computed at whatever effort the
caller asked for (usually ``"standard"``); the improver spends idle
capacity recomputing them at ``effort="high"`` so that callers who opt
into the high-effort key get a strictly better (never worse) partition
for free.

Cache contract -- the part that must not bend
---------------------------------------------
The result cache's headline invariant is **"an exact-key hit is
bit-identical to a cold compute of the same request"**.  The improver
therefore never swaps a better partition under an existing key: it
re-submits the hot request with ``options.with_(effort="high")`` through
the service's *normal* compute path, and because ``effort`` is one of
:data:`repro.serve.key.SEMANTIC_OPTION_FIELDS`, the improved result lands
under a **new** key.  The original entry is untouched; a later
``effort="standard"`` request still hits the byte-identical standard
result, and a later ``effort="high"`` request hits the improved one.  The
improved result really is the cold compute of its own key -- the
high-effort pipeline deterministically runs the standard pipeline first
(same pinned seed) and then only improves it, so ``cut(high) <=
cut(standard)`` by construction (:mod:`repro.partition.vcycle`).

The cache stores results, not graphs, so the service must be configured
with ``ServiceConfig(retain_graphs=N)`` for the improver to have anything
to recompute; entries whose graph was not retained are **rejected**
(:class:`~repro.errors.ImproverRejectedError` from the single-entry API,
a ``serve.improver.rejected`` counter from the sweep).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import ImproverRejectedError, ServiceClosedError
from .cache import CacheEntry
from .key import request_key

__all__ = ["Improver", "ImproveOutcome"]


@dataclass
class ImproveOutcome:
    """What happened to one hot entry during a sweep.

    ``status`` is ``"improved"`` (high-effort cut strictly lower),
    ``"no_gain"`` (computed, cut equal -- still cached under the high key),
    ``"cached"`` (the high-effort key was already in the cache) or
    ``"rejected"`` (see :class:`~repro.errors.ImproverRejectedError`).
    """

    digest: str
    status: str
    standard_cut: int | None = None
    improved_cut: int | None = None
    reason: str = ""


@dataclass
class Improver:
    """Sweeps the hottest cached entries and recomputes them at
    ``effort="high"`` through the owning service.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.PartitionService` to improve.
        Must be configured with ``retain_graphs > 0``.
    limit:
        Entries considered per :meth:`run_once` sweep.
    min_hits:
        Only entries with at least this many exact-key hits qualify
        ("hot" means *someone keeps asking*).
    timeout:
        Per-compute deadline (seconds) forwarded to the service;
        ``None`` inherits the service default.

    Counters are pushed into the service's counter map
    (``serve.improver.{improved,no_gain,rejected,sweeps,deferred}``) so
    they show up in ``service.stats()`` and the Prometheus exposition.

    :meth:`watch` runs sweeps on a background thread gated by the live
    ``serve.queue_depth`` gauge -- the real idle-capacity signal -- so
    improvement work only happens when no foreground computes are queued.
    """

    service: object
    limit: int = 8
    min_hits: int = 1
    timeout: float | None = None
    outcomes: list = field(default_factory=list, repr=False)
    _watch_stop: threading.Event | None = field(
        default=None, repr=False, compare=False)
    _watch_thread: threading.Thread | None = field(
        default=None, repr=False, compare=False)

    def candidates(self) -> list[CacheEntry]:
        """Hot cold-computed entries not already at ``effort="high"``."""
        with self.service._lock:
            hot = self.service.cache.hottest(self.limit,
                                             min_hits=self.min_hits)
        return [e for e in hot
                if getattr(e.result.options, "effort", "standard") != "high"]

    def improve_digest(self, digest: str) -> ImproveOutcome:
        """Upgrade one cached entry (by request digest); raises
        :class:`~repro.errors.ImproverRejectedError` when it can't."""
        with self.service._lock:
            entry = self.service.cache.peek(digest)
        if entry is None:
            raise ImproverRejectedError(
                f"no cached entry for digest {digest[:12]}",
                digest=digest, reason="missing")
        return self._improve_entry(entry, raise_on_reject=True)

    def run_once(self) -> list[ImproveOutcome]:
        """One sweep over the current hot set; never raises for individual
        entries -- rejections become outcomes + counters.  Returns the
        outcomes of this sweep (also appended to :attr:`outcomes`)."""
        sweep: list[ImproveOutcome] = []
        for entry in self.candidates():
            try:
                sweep.append(self._improve_entry(entry, raise_on_reject=False))
            except ImproverRejectedError as exc:  # pragma: no cover - safety
                sweep.append(ImproveOutcome(
                    digest=entry.key.digest, status="rejected",
                    reason=exc.reason))
        self._incr("serve.improver.sweeps")
        self.outcomes.extend(sweep)
        return sweep

    # ---------------------------------------------------- gauge-driven loop

    def watch(self, *, idle_threshold: int = 0,
              interval: float = 0.05) -> None:
        """Start a background loop that sweeps only when the service is idle.

        Every ``interval`` seconds the watcher reads the live
        ``serve.queue_depth`` gauge (pending foreground computes).  When
        the depth is at or below ``idle_threshold`` it runs one
        :meth:`run_once` sweep; otherwise it defers, bumping the
        ``serve.improver.deferred`` counter, and re-checks next tick --
        improvement work never competes with queued requests.

        The loop stops on :meth:`close`, or by itself when the owning
        service closes.  Calling :meth:`watch` while a watcher is already
        running raises :class:`RuntimeError`.
        """
        if self._watch_thread is not None and self._watch_thread.is_alive():
            raise RuntimeError("Improver.watch() is already running")
        stop = threading.Event()

        def loop() -> None:
            while not stop.is_set():
                try:
                    with self.service._lock:
                        if self.service._closed:
                            break
                        depth = self.service.admission.gauges()[
                            "serve.queue_depth"]
                    if depth > idle_threshold:
                        self._incr("serve.improver.deferred")
                    else:
                        self.run_once()
                except ServiceClosedError:
                    break
                stop.wait(interval)

        self._watch_stop = stop
        self._watch_thread = threading.Thread(
            target=loop, daemon=True, name="repro-improver-watch")
        self._watch_thread.start()

    def close(self) -> None:
        """Stop the watcher (idempotent; waits for the in-flight tick)."""
        if self._watch_stop is not None:
            self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=30.0)
            self._watch_thread = None
        self._watch_stop = None

    def __enter__(self) -> "Improver":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ----------------------------------------------------------- internal

    def _incr(self, name: str, n: int = 1) -> None:
        with self.service._lock:
            self.service._incr(name, n)

    def _improve_entry(self, entry: CacheEntry,
                       raise_on_reject: bool) -> ImproveOutcome:
        digest = entry.key.digest
        options = entry.result.options

        def reject(reason: str, message: str) -> ImproveOutcome:
            self._incr("serve.improver.rejected")
            if raise_on_reject:
                raise ImproverRejectedError(message, digest=digest,
                                            reason=reason)
            return ImproveOutcome(digest=digest, status="rejected",
                                  reason=reason)

        if not entry.key.cacheable or options is None or options.seed is None:
            return reject("uncacheable",
                          f"entry {digest[:12]} has no pinned seed")
        if getattr(options, "effort", "standard") == "high":
            return reject("already_high",
                          f"entry {digest[:12]} is already effort='high'")
        graph = self.service.retained_graph(digest)
        if graph is None:
            return reject(
                "no_graph",
                f"graph for entry {digest[:12]} was not retained "
                "(set ServiceConfig.retain_graphs > 0)")

        high_options = options.with_(effort="high")
        high_key, _ = request_key(
            graph, entry.key.nparts, method=entry.key.method,
            options=high_options, target_fracs=entry.target_fracs)
        with self.service._lock:
            already = self.service.cache.peek(high_key.digest)
        if already is not None:
            return ImproveOutcome(
                digest=digest, status="cached",
                standard_cut=int(entry.result.edgecut),
                improved_cut=int(already.result.edgecut))

        # A genuine cold compute of the high-effort request through the
        # normal service path: dedup, admission, backend and caching all
        # apply, and the result is stored under the NEW high-effort key.
        # warm=False forces the cold path -- a warm-started result would
        # be neither cached nor bit-identical to a cold compute of the key.
        improved = self.service.partition(
            graph, entry.key.nparts, method=entry.key.method,
            options=high_options, target_fracs=entry.target_fracs,
            timeout=self.timeout, klass="batch", warm=False)
        gained = int(improved.edgecut) < int(entry.result.edgecut)
        self._incr("serve.improver.improved" if gained
                   else "serve.improver.no_gain")
        return ImproveOutcome(
            digest=digest,
            status="improved" if gained else "no_gain",
            standard_cut=int(entry.result.edgecut),
            improved_cut=int(improved.edgecut))
