"""Content-addressed LRU result cache with a byte budget.

Entries are keyed by :class:`~repro.serve.key.RequestKey.digest` and store a
*frozen snapshot* of the :class:`~repro.partition.PartitionResult`: arrays
are copied in and marked read-only, and every hit hands back a fresh
:class:`~repro.partition.PartitionResult` wrapping those read-only arrays --
so a caller scribbling on ``result.part`` gets a loud ``ValueError`` instead
of silently corrupting what the next hit sees.

Eviction is least-recently-used, driven by two budgets checked on every
insert: ``max_entries`` and ``max_bytes`` (the summed size of the cached
arrays).  A single result larger than ``max_bytes`` is simply not cached.

The cache itself is lock-free-single-threaded by design; the owning
:class:`~repro.serve.service.PartitionService` serialises access under its
admission lock (cache operations are dict moves, never partition computes).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..partition.api import PartitionResult
from .key import RequestKey

__all__ = ["CacheEntry", "ResultCache"]


def _freeze(arr: np.ndarray) -> np.ndarray:
    out = np.array(arr, copy=True)
    out.setflags(write=False)
    return out


@dataclass
class CacheEntry:
    """One cached partition plus the metadata warm-start needs."""

    key: RequestKey
    result: PartitionResult = field(repr=False)
    nbytes: int
    #: ``"cold"`` for a from-scratch compute, ``"warm"`` for a warm-start
    #: result (only present when the service caches those).
    source: str = "cold"
    #: Canonicalised target fractions of the original request (``None`` for
    #: uniform parts) -- the background improver needs them to rebuild the
    #: request key at a different effort level.
    target_fracs: object = field(repr=False, default=None)
    #: Exact-key hits served from this entry -- the improver's hotness
    #: signal.
    hits: int = 0

    def export(self) -> PartitionResult:
        """A result safe to hand to a caller (fresh object, frozen arrays)."""
        return replace(self.result)


class ResultCache:
    """LRU + max-byte cache of :class:`PartitionResult` snapshots.

    Parameters
    ----------
    max_entries:
        Entry-count budget (``0`` disables caching entirely).
    max_bytes:
        Byte budget over the cached ``part``/``imbalance`` arrays.

    Counters (``hits``/``misses``/``evictions``/``stores``) accumulate on
    the instance; the service mirrors them into :mod:`repro.trace` as
    ``serve.cache.*``.
    """

    def __init__(self, max_entries: int = 128, max_bytes: int = 64 << 20):
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0

    # -------------------------------------------------------------- core

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Current summed size of the cached arrays."""
        return self._bytes

    def get(self, key: RequestKey, *,
            count_miss: bool = True) -> PartitionResult | None:
        """The cached result for ``key`` (refreshing its LRU position), or
        ``None``.  Uncacheable keys always miss.  ``count_miss=False``
        suppresses the miss counter -- used by the service when it
        re-checks a key it already counted as missed (e.g. after a disk
        lookup), so one request never records two misses."""
        entry = self._entries.get(key.digest) if key.cacheable else None
        if entry is None:
            if count_miss:
                self.misses += 1
            return None
        self._entries.move_to_end(key.digest)
        self.hits += 1
        entry.hits += 1
        return entry.export()

    def put(self, key: RequestKey, result: PartitionResult,
            source: str = "cold", *, target_fracs=None) -> bool:
        """Store a snapshot of ``result`` under ``key``; returns whether it
        was admitted (uncacheable keys and oversized results are not)."""
        if not key.cacheable or self.max_entries <= 0:
            return False
        frozen = replace(
            result,
            part=_freeze(result.part),
            imbalance=_freeze(result.imbalance),
        )
        nbytes = int(frozen.part.nbytes + frozen.imbalance.nbytes)
        if nbytes > self.max_bytes:
            return False
        old = self._entries.pop(key.digest, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key.digest] = CacheEntry(
            key=key, result=frozen, nbytes=nbytes, source=source,
            target_fracs=target_fracs)
        self._bytes += nbytes
        self.stores += 1
        self._evict()
        return True

    def peek(self, digest: str) -> CacheEntry | None:
        """The entry stored under ``digest``, without touching the hit/miss
        counters or the LRU order; ``None`` when absent.  For inspection
        paths (the background improver) that must not distort the stats
        real traffic produces."""
        return self._entries.get(digest)

    def hottest(self, limit: int = 8, *, min_hits: int = 1,
                source: str = "cold") -> list[CacheEntry]:
        """The ``limit`` most-hit entries of the given ``source`` with at
        least ``min_hits`` exact-key hits, hotness-descending (recency
        breaks ties).  This is the background improver's work queue; LRU
        positions are not refreshed."""
        ranked = [e for e in reversed(self._entries.values())
                  if e.source == source and e.hits >= min_hits]
        ranked.sort(key=lambda e: e.hits, reverse=True)
        return ranked[:limit]

    def _evict(self) -> None:
        while self._entries and (
            len(self._entries) > self.max_entries or self._bytes > self.max_bytes
        ):
            _, entry = self._entries.popitem(last=False)
            self._bytes -= entry.nbytes
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    # -------------------------------------------------- warm-start index

    def find_warm(self, key: RequestKey) -> CacheEntry | None:
        """Best warm-start source for a *missed* key: a cold-computed entry
        on the same topology (``topo_digest``) with the same method and
        constraint count.  Prefers matching ``nparts``, then recency."""
        if not key.cacheable:
            return None
        best: CacheEntry | None = None
        # Most-recent last in the OrderedDict; iterate newest-first so ties
        # on nparts resolve to the freshest solution.
        for entry in reversed(self._entries.values()):
            k = entry.key
            if (k.topo_digest != key.topo_digest or k.method != key.method
                    or k.ncon != key.ncon or entry.source != "cold"
                    or k.digest == key.digest):
                continue
            if k.nparts == key.nparts:
                return entry
            if best is None:
                best = entry
        return best

    # ----------------------------------------------------------- stats

    def counters(self) -> dict:
        """Snapshot of the cache counters (``serve.cache.*`` names)."""
        return {
            "serve.cache.hits": self.hits,
            "serve.cache.misses": self.misses,
            "serve.cache.evictions": self.evictions,
            "serve.cache.stores": self.stores,
            "serve.cache.entries": len(self._entries),
            "serve.cache.bytes": self._bytes,
        }
