"""The in-process partition service: cache + dedup + batched execution.

:class:`PartitionService` sits in front of :func:`repro.partition.part_graph`
and absorbs repeated and concurrent traffic:

* **cache** -- a content-addressed :class:`~repro.serve.cache.ResultCache`;
  an exact repeat of a seeded request returns a stored snapshot without
  recomputing (bit-identical to the cold compute, see ``docs/serving.md``).
* **dedup** -- identical requests *in flight* coalesce onto one compute;
  N threads asking for the same key pay for exactly one partition run.
* **batching** -- distinct requests fan out across a thread pool.  The
  numpy kernels release the GIL, so the pool overlaps real work.
* **warm start** -- an exact miss whose topology matches a cached entry is
  seeded from that partition via the adaptive-repartitioning machinery and
  falls back to cold compute when the warm result is infeasible or its cut
  blows up (:mod:`repro.serve.warm`).
* **deadlines** -- a per-request ``timeout`` (seconds) bounds the caller's
  wait; an expired request that has not started is skipped entirely.  Both
  paths raise :class:`~repro.errors.ServeTimeoutError`.

Determinism: request seeds are pinned to integers at submission
(:func:`repro._rng.canonical_seed`), so every compute owns a private RNG and
two identical seeded requests return bit-identical partitions no matter how
they interleave.  Requests with ``seed=None`` are honoured as explicitly
nondeterministic: they bypass cache and dedup.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field, replace

from ..errors import ServeTimeoutError, ServiceClosedError
from ..graph.csr import Graph
from ..partition.api import PartitionResult, part_graph
from ..partition.config import PartitionOptions, check_option_kwargs
from ..partition.validate import validate_request
from ..trace import MetricsRegistry, Tracer, as_tracer
from .cache import ResultCache
from .key import RequestKey, request_key
from .warm import warm_start

__all__ = ["ServiceConfig", "PartitionService", "ServeFuture"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of :class:`PartitionService`.

    Attributes
    ----------
    max_workers:
        Thread-pool width for distinct concurrent requests.
    cache_entries, cache_bytes:
        Result-cache budgets (``cache_entries=0`` disables caching).
    dedup:
        Coalesce identical in-flight requests onto one compute.
    warm_start:
        Try seeding from a same-topology cached partition on exact misses.
    warm_cut_factor:
        Accept a warm result only if its cut is within this factor of the
        cached seed partition's cut on the new graph (and feasible).
    cache_warm_results:
        Store warm-start results under the request key.  Off by default:
        the cache then only ever holds cold computes, keeping the
        "hit == cold compute, bit for bit" invariant unconditional.
    default_timeout:
        Deadline (seconds) applied when a request does not pass its own.
        ``None`` waits forever.
    """

    max_workers: int = 4
    cache_entries: int = 128
    cache_bytes: int = 64 << 20
    dedup: bool = True
    warm_start: bool = True
    warm_cut_factor: float = 1.5
    cache_warm_results: bool = False
    default_timeout: float | None = None


@dataclass
class ServeFuture:
    """Handle to one submitted request."""

    key: RequestKey = field(repr=False)
    #: ``"hit"`` | ``"coalesced"`` | ``"compute"`` -- resolved at submit.
    disposition: str = "compute"
    _future: Future = field(repr=False, default_factory=Future)
    _deadline: float | None = field(repr=False, default=None)

    def result(self, timeout: float | None = None) -> PartitionResult:
        """Block for the result; raises :class:`ServeTimeoutError` when the
        explicit ``timeout`` or the request's deadline expires first."""
        if timeout is None and self._deadline is not None:
            timeout = max(self._deadline - time.monotonic(), 0.0)
        try:
            return self._future.result(timeout)
        except _FutureTimeout:
            raise ServeTimeoutError(
                f"request {self.key.digest[:12]} missed its deadline "
                f"(timeout={timeout:.3f}s)") from None

    def done(self) -> bool:
        return self._future.done()


class PartitionService:
    """Cached, batched, deduplicating front-end over ``part_graph``.

    Thread-safe; one instance serves any number of submitting threads.
    Use as a context manager or call :meth:`close` to release the pool::

        from repro.serve import PartitionService

        with PartitionService() as svc:
            res = svc.partition(g, 8, seed=0)      # cold compute
            res2 = svc.partition(g, 8, seed=0)     # cache hit, bit-identical

    ``tracer`` receives the service counters (``serve.*``,
    ``serve.cache.*``) and, per computed request, a ``serve.request`` span
    (with ``serve.warm_start`` / ``serve.cold`` children).  Spans are
    recorded into a private per-request tracer and appended to the given
    tracer's roots, so concurrent computes cannot corrupt its span stack.
    """

    def __init__(self, config: ServiceConfig | None = None, *, tracer=None):
        self.config = config or ServiceConfig()
        self.cache = ResultCache(self.config.cache_entries,
                                 self.config.cache_bytes)
        self.tracer = as_tracer(tracer)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.max_workers),
            thread_name_prefix="repro-serve")
        self._lock = threading.Lock()
        self._inflight: dict[str, ServeFuture] = {}
        self._closed = False
        #: service-owned metrics: per-request latency histograms keyed by
        #: outcome (``serve.latency.{hit,warm,cold,timeout}``), exposed by
        #: :meth:`metrics_text` independently of any tracer.
        self.metrics = MetricsRegistry()
        self.counters = {
            "serve.requests": 0,
            "serve.dedup.coalesced": 0,
            "serve.cold_computes": 0,
            "serve.warm_start.attempts": 0,
            "serve.warm_start.accepted": 0,
            "serve.warm_start.rejected": 0,
            "serve.timeouts": 0,
        }

    # ------------------------------------------------------------ public

    def submit(
        self,
        graph: Graph,
        nparts: int,
        *,
        method: str = "kway",
        options: PartitionOptions | None = None,
        target_fracs=None,
        timeout: float | None = None,
        **kwargs,
    ) -> ServeFuture:
        """Enqueue one request; returns immediately with a handle.

        Accepts the same request surface as :func:`part_graph` (individual
        option fields may be passed as keywords; unknown names raise
        :class:`~repro.errors.OptionsError`).  Validation runs eagerly in
        the calling thread, so malformed requests raise here, not inside
        the pool.
        """
        t_submit = time.perf_counter()
        check_option_kwargs(kwargs)
        if options is None:
            options = PartitionOptions(**kwargs)
        elif kwargs:
            options = options.with_(**kwargs)
        validate_request(graph, nparts, options=options, method=method,
                         target_fracs=target_fracs)
        key, options = request_key(graph, nparts, method=method,
                                   options=options, target_fracs=target_fracs)
        if timeout is None:
            timeout = self.config.default_timeout
        deadline = (time.monotonic() + timeout) if timeout is not None else None

        with self._lock:
            if self._closed:
                raise ServiceClosedError("PartitionService is closed")
            self._incr("serve.requests")
            cached = self.cache.get(key)
            if cached is not None:
                self._mirror_cache_counters()
                fut = ServeFuture(key=key, disposition="hit",
                                  _deadline=deadline)
                fut._future.set_result(cached)
                self._observe_latency("hit", time.perf_counter() - t_submit)
                return fut
            if self.config.dedup and key.cacheable:
                running = self._inflight.get(key.digest)
                if running is not None:
                    self._incr("serve.dedup.coalesced")
                    return ServeFuture(key=key, disposition="coalesced",
                                       _future=running._future,
                                       _deadline=deadline)
            fut = ServeFuture(key=key, disposition="compute",
                              _deadline=deadline)
            if key.cacheable:
                self._inflight[key.digest] = fut
            self._pool.submit(self._run, graph, nparts, method, options,
                              target_fracs, key, fut, deadline)
            return fut

    def partition(self, graph: Graph, nparts: int, *,
                  timeout: float | None = None, **kwargs) -> PartitionResult:
        """Synchronous :meth:`submit` + wait."""
        return self.submit(graph, nparts, timeout=timeout, **kwargs).result()

    def batch(self, requests, *, timeout: float | None = None
              ) -> list[PartitionResult]:
        """Fan a batch of requests across the pool; results in order.

        ``requests`` is an iterable of ``(graph, nparts)`` pairs or
        ``(graph, nparts, kwargs_dict)`` triples.  Duplicate requests
        inside one batch still cost a single compute (dedup applies).
        """
        futures = []
        for req in requests:
            g, k = req[0], req[1]
            kw = dict(req[2]) if len(req) > 2 else {}
            futures.append(self.submit(g, k, timeout=timeout, **kw))
        return [f.result() for f in futures]

    def stats(self) -> dict:
        """Counter snapshot: service counters + ``serve.cache.*``."""
        with self._lock:
            out = dict(self.counters)
            out.update(self.cache.counters())
        return out

    def latency(self, outcome: str) -> dict | None:
        """Snapshot of the ``serve.latency.<outcome>`` histogram (outcome
        one of ``hit`` / ``warm`` / ``cold`` / ``timeout``), or ``None``
        when no such request has been served yet."""
        with self._lock:
            h = self.metrics._histograms.get(f"serve.latency.{outcome}")
            return h.snapshot() if h is not None else None

    def metrics_text(self) -> str:
        """The service's metrics as a Prometheus text exposition.

        Counters (``serve.requests``, cache hits/misses, ...), the
        cache-occupancy gauges (``serve.cache.entries`` / ``.bytes``) and
        the per-outcome latency histograms, rendered with
        :func:`repro.obs.expose.render_prometheus`.
        """
        from ..obs.expose import render_prometheus

        with self._lock:
            counters = dict(self.counters)
            cache = self.cache.counters()
            histograms = self.metrics.histogram_values()
        gauges = {name: cache.pop(name)
                  for name in ("serve.cache.entries", "serve.cache.bytes")}
        counters.update(cache)
        return render_prometheus(counters=counters, gauges=gauges,
                                 histograms=histograms)

    def close(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PartitionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ----------------------------------------------------------- workers

    def _incr(self, name: str, n: int = 1) -> None:
        """Bump a service counter (and its tracer mirror).  Caller holds
        the lock."""
        self.counters[name] = self.counters.get(name, 0) + n
        if self.tracer.enabled:
            self.tracer.incr(name, n)

    def _observe_latency(self, outcome: str, seconds: float) -> None:
        """Record one request latency under its outcome.  Caller holds the
        lock (Histogram.observe is not thread-safe)."""
        self.metrics.histogram(f"serve.latency.{outcome}").observe(seconds)
        if self.tracer.enabled:
            self.tracer.observe(f"serve.latency.{outcome}", seconds)

    def _mirror_cache_counters(self) -> None:
        if self.tracer.enabled:
            for name, value in self.cache.counters().items():
                self.tracer.gauge(name, value)

    def _run(self, graph, nparts, method, options, target_fracs, key,
             fut: ServeFuture, deadline) -> None:
        """Worker-thread body: warm or cold compute, publish, cache."""
        t0 = time.perf_counter()
        try:
            if deadline is not None and time.monotonic() > deadline:
                with self._lock:
                    self._incr("serve.timeouts")
                    self._observe_latency("timeout",
                                          time.perf_counter() - t0)
                raise ServeTimeoutError(
                    f"request {key.digest[:12]} expired before compute "
                    "started")
            # Per-request private tracer: concurrent computes must not
            # share a span stack (Tracer is single-threaded by contract).
            rtracer = Tracer() if self.tracer.enabled else None
            span = rtracer.span("serve.request", nparts=nparts,
                                method=method, key=key.digest[:12],
                                nvtxs=graph.nvtxs) if rtracer else None

            result = None
            source = "cold"
            if self.config.warm_start and key.cacheable:
                with self._lock:
                    warm_src = self.cache.find_warm(key)
                if warm_src is not None:
                    with self._lock:
                        self._incr("serve.warm_start.attempts")
                    result = warm_start(
                        graph, nparts, options, warm_src,
                        warm_cut_factor=self.config.warm_cut_factor,
                        tracer=rtracer)
                    with self._lock:
                        self._incr("serve.warm_start.accepted"
                                   if result is not None
                                   else "serve.warm_start.rejected")
                    source = "warm"
            if result is None:
                source = "cold"
                with self._lock:
                    self._incr("serve.cold_computes")
                cold_span = rtracer.span("serve.cold") if rtracer else None
                result = part_graph(graph, nparts, method=method,
                                    options=options,
                                    target_fracs=target_fracs)
                if cold_span is not None:
                    cold_span.set(cut=result.edgecut)
                    cold_span.__exit__(None, None, None)

            with self._lock:
                if source == "cold" or self.config.cache_warm_results:
                    self.cache.put(key, result, source=source)
                self._mirror_cache_counters()
                self._observe_latency(source, time.perf_counter() - t0)
                if span is not None:
                    span.set(source=source, cut=result.edgecut,
                             feasible=result.feasible)
                    span.__exit__(None, None, None)
                    rtracer.finish()
                    # Graft the finished private tree under the shared
                    # tracer (append-only; safe under the lock).
                    self.tracer.roots.append(rtracer.root)
            fut._future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - publish to waiters
            fut._future.set_exception(exc)
        finally:
            if key.cacheable:
                with self._lock:
                    self._inflight.pop(key.digest, None)
