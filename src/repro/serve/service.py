"""The partition service: cache + dedup + admission + batched execution.

:class:`PartitionService` sits in front of :func:`repro.partition.part_graph`
and absorbs repeated and concurrent traffic:

* **cache** -- a content-addressed :class:`~repro.serve.cache.ResultCache`;
  an exact repeat of a seeded request returns a stored snapshot without
  recomputing (bit-identical to the cold compute, see ``docs/serving.md``).
* **disk tier** -- an optional second-level
  :class:`~repro.serve.diskcache.DiskCache` (``cache_dir=``); cold results
  are persisted and a restarted service serves them back bit-identical,
  warming the in-memory tier on first touch.
* **dedup** -- identical requests *in flight* coalesce onto one compute;
  N threads asking for the same key pay for exactly one partition run.
* **batching** -- distinct requests fan out across a thread pool, and each
  cold compute runs on the configured :class:`~repro.serve.executor.ComputeBackend`:
  inline threads (default; numpy kernels release the GIL) or a pool of
  spawned worker processes (``backend="process"``) that sidesteps the GIL
  entirely (:mod:`repro.serve.cluster`).
* **admission control** -- a bounded pending queue with per-class
  (``interactive`` / ``batch``) deadlines and shedding
  (:class:`~repro.serve.admission.AdmissionController`); a shed request
  raises :class:`~repro.errors.ServeOverloadError` at submit.
* **warm start** -- an exact miss whose topology matches a cached entry is
  seeded from that partition via the adaptive-repartitioning machinery and
  falls back to cold compute when the warm result is infeasible or its cut
  blows up (:mod:`repro.serve.warm`).
* **deadlines** -- a per-request ``timeout`` (seconds) bounds the caller's
  wait; a queued compute is skipped entirely only when *every* waiter
  coalesced onto it has expired.  Both paths raise
  :class:`~repro.errors.ServeTimeoutError`.

Determinism: request seeds are pinned to integers at submission
(:func:`repro._rng.canonical_seed`), so every compute owns a private RNG and
two identical seeded requests return bit-identical partitions no matter how
they interleave -- or which backend computes them.  Requests with
``seed=None`` are honoured as explicitly nondeterministic: they bypass
cache and dedup.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field, replace

from ..errors import ServeBatchError, ServeTimeoutError, ServiceClosedError
from ..graph.csr import Graph
from ..partition.api import PartitionResult, part_graph
from ..partition.config import PartitionOptions, check_option_kwargs
from ..partition.validate import validate_request
from ..trace import MetricsRegistry, Tracer, as_tracer
from .admission import REQUEST_CLASSES, AdmissionController
from .cache import ResultCache
from .diskcache import DiskCache
from .executor import make_backend
from .key import RequestKey, request_key
from .warm import warm_start

__all__ = ["ServiceConfig", "PartitionService", "ServeFuture"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of :class:`PartitionService`.

    Attributes
    ----------
    max_workers:
        Thread-pool width for distinct concurrent requests (the request
        orchestration pool; with ``backend="process"`` it should be at
        least the process-worker count so submissions can keep every core
        busy).
    backend:
        Cold-compute execution backend: ``"thread"`` (inline, default) or
        ``"process"`` (spawned worker-process pool, GIL-free; see
        :mod:`repro.serve.cluster`).
    process_workers:
        Worker-process count for ``backend="process"`` (default: CPU
        count).
    cache_entries, cache_bytes:
        In-memory result-cache budgets (``cache_entries=0`` disables
        caching).
    cache_dir:
        Directory for the disk-backed second-level cache; ``None``
        (default) disables the disk tier.
    disk_cache_bytes:
        Byte budget of the disk tier (LRU-evicted).
    dedup:
        Coalesce identical in-flight requests onto one compute.
    warm_start:
        Try seeding from a same-topology cached partition on exact misses.
    warm_cut_factor:
        Accept a warm result only if its cut is within this factor of the
        cached seed partition's cut on the new graph (and feasible).
    cache_warm_results:
        Store warm-start results under the request key.  Off by default:
        the cache then only ever holds cold computes, keeping the
        "hit == cold compute, bit for bit" invariant unconditional.
    max_pending:
        Admission bound on queued-but-not-started computes; ``None``
        (default) disables load shedding.  See
        :class:`~repro.serve.admission.AdmissionController`.
    batch_shed_fraction:
        Fraction of ``max_pending`` at which batch-class requests are
        shed (interactive requests use the full bound).
    default_timeout:
        Deadline (seconds) applied when a request passes neither its own
        timeout nor matches a per-class deadline.  ``None`` waits forever.
    interactive_timeout, batch_timeout:
        Per-class default deadlines, consulted before ``default_timeout``.
    retain_graphs:
        Keep up to this many recently requested graphs (LRU by request
        digest) so the background improver (:mod:`repro.serve.improver`)
        can recompute hot entries at a higher effort level -- the cache
        stores only results, never graphs.  ``0`` (default) retains
        nothing and the improver rejects every entry.
    """

    max_workers: int = 4
    backend: str = "thread"
    process_workers: int | None = None
    cache_entries: int = 128
    cache_bytes: int = 64 << 20
    cache_dir: str | None = None
    disk_cache_bytes: int = 256 << 20
    dedup: bool = True
    warm_start: bool = True
    warm_cut_factor: float = 1.5
    cache_warm_results: bool = False
    max_pending: int | None = None
    batch_shed_fraction: float = 0.5
    default_timeout: float | None = None
    interactive_timeout: float | None = None
    batch_timeout: float | None = None
    retain_graphs: int = 0


@dataclass
class ServeFuture:
    """Handle to one submitted request."""

    key: RequestKey = field(repr=False)
    #: ``"hit"`` | ``"disk"`` | ``"coalesced"`` | ``"compute"`` --
    #: resolved at submit.
    disposition: str = "compute"
    _future: Future = field(repr=False, default_factory=Future)
    _deadline: float | None = field(repr=False, default=None)
    #: Deadlines of every waiter coalesced onto this compute (the leader's
    #: own included).  A queued compute is skipped only when *all* of them
    #: have expired -- a follower with a longer (or no) timeout keeps the
    #: compute alive even if the leader's deadline lapsed.
    _waiters: list = field(repr=False, default_factory=list)

    def result(self, timeout: float | None = None) -> PartitionResult:
        """Block for the result; raises :class:`ServeTimeoutError` when the
        explicit ``timeout`` or the request's deadline expires first."""
        if timeout is None and self._deadline is not None:
            timeout = max(self._deadline - time.monotonic(), 0.0)
        try:
            return self._future.result(timeout)
        except _FutureTimeout:
            raise ServeTimeoutError(
                f"request {self.key.digest[:12]} missed its deadline "
                f"(timeout={timeout:.3f}s)") from None

    def done(self) -> bool:
        return self._future.done()


class PartitionService:
    """Cached, batched, deduplicating front-end over ``part_graph``.

    Thread-safe; one instance serves any number of submitting threads.
    Use as a context manager or call :meth:`close` to release the pool::

        from repro.serve import PartitionService

        with PartitionService() as svc:
            res = svc.partition(g, 8, seed=0)      # cold compute
            res2 = svc.partition(g, 8, seed=0)     # cache hit, bit-identical


    ``tracer`` receives the service counters (``serve.*``,
    ``serve.cache.*``) and, per computed request, a ``serve.request`` span
    (with ``serve.warm_start`` / ``serve.cold`` children).  Spans are
    recorded into a private per-request tracer and appended to the given
    tracer's roots, so concurrent computes cannot corrupt its span stack.
    """

    def __init__(self, config: ServiceConfig | None = None, *, tracer=None):
        self.config = config or ServiceConfig()
        self.cache = ResultCache(self.config.cache_entries,
                                 self.config.cache_bytes)
        self.disk = (DiskCache(self.config.cache_dir,
                               self.config.disk_cache_bytes)
                     if self.config.cache_dir else None)
        self.admission = AdmissionController(
            self.config.max_pending, self.config.batch_shed_fraction)
        self.tracer = as_tracer(tracer)
        self._backend = make_backend(
            self.config.backend, process_workers=self.config.process_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.max_workers),
            thread_name_prefix="repro-serve")
        self._lock = threading.Lock()
        self._inflight: dict[str, ServeFuture] = {}
        self._graphs: "OrderedDict[str, Graph]" = OrderedDict()
        self._closed = False
        #: service-owned metrics: per-request latency histograms keyed by
        #: outcome (``serve.latency.{hit,disk,warm,cold,timeout}``),
        #: exposed by :meth:`metrics_text` independently of any tracer.
        self.metrics = MetricsRegistry()
        self.counters = {
            "serve.requests": 0,
            "serve.dedup.coalesced": 0,
            "serve.cold_computes": 0,
            "serve.warm_start.attempts": 0,
            "serve.warm_start.accepted": 0,
            "serve.warm_start.rejected": 0,
            "serve.timeouts": 0,
        }

    # ------------------------------------------------------------ public

    def submit(
        self,
        graph: Graph,
        nparts: int,
        *,
        method: str = "kway",
        options: PartitionOptions | None = None,
        target_fracs=None,
        timeout: float | None = None,
        klass: str = "interactive",
        warm: bool | None = None,
        **kwargs,
    ) -> ServeFuture:
        """Enqueue one request; returns immediately with a handle.

        Accepts the same request surface as :func:`part_graph` (individual
        option fields may be passed as keywords; unknown names raise
        :class:`~repro.errors.OptionsError`).  Validation runs eagerly in
        the calling thread, so malformed requests raise here, not inside
        the pool.  ``klass`` selects the admission class (``"interactive"``
        default, or ``"batch"``); an over-bound queue sheds the request
        here with :class:`~repro.errors.ServeOverloadError`.  ``warm``
        overrides ``config.warm_start`` for this request (``False`` forces
        a genuine cold compute on a miss -- the background improver uses
        this so what it caches really is the cold compute of its key).
        """
        t_submit = time.perf_counter()
        if klass not in REQUEST_CLASSES:
            raise ValueError(f"unknown request class {klass!r}: expected "
                             f"one of {REQUEST_CLASSES}")
        check_option_kwargs(kwargs)
        if options is None:
            options = PartitionOptions(**kwargs)
        elif kwargs:
            options = options.with_(**kwargs)
        validate_request(graph, nparts, options=options, method=method,
                         target_fracs=target_fracs)
        key, options = request_key(graph, nparts, method=method,
                                   options=options, target_fracs=target_fracs)
        if timeout is None:
            timeout = self._class_timeout(klass)
        deadline = (time.monotonic() + timeout) if timeout is not None else None

        with self._lock:
            if self._closed:
                raise ServiceClosedError("PartitionService is closed")
            self._incr("serve.requests")
            if self.config.retain_graphs > 0 and key.cacheable:
                self._graphs[key.digest] = graph
                self._graphs.move_to_end(key.digest)
                while len(self._graphs) > self.config.retain_graphs:
                    self._graphs.popitem(last=False)
            fast = self._fast_path(key, deadline, t_submit)
            if fast is not None:
                return fast

        # Memory miss with no compute to coalesce onto: consult the disk
        # tier outside the admission lock (file IO must not stall submits).
        if self.disk is not None and key.cacheable:
            stored = self.disk.get(key)
            if stored is not None:
                with self._lock:
                    self.cache.put(key, stored, source="cold",  # promote
                                   target_fracs=target_fracs)
                    self._mirror_cache_counters()
                    self._observe_latency("disk",
                                          time.perf_counter() - t_submit)
                    fut = ServeFuture(key=key, disposition="disk",
                                      _deadline=deadline)
                    fut._future.set_result(stored)
                    return fut

        with self._lock:
            if self._closed:
                raise ServiceClosedError("PartitionService is closed")
            # Re-check under the lock: a racer may have finished, promoted
            # or enqueued this key while we were reading the disk tier.
            fast = self._fast_path(key, deadline, t_submit, count_miss=False)
            if fast is not None:
                return fast
            self.admission.admit(klass)  # may shed: ServeOverloadError
            fut = ServeFuture(key=key, disposition="compute",
                              _deadline=deadline)
            fut._waiters.append(deadline)
            if key.cacheable:
                self._inflight[key.digest] = fut
            allow_warm = self.config.warm_start if warm is None else bool(warm)
            try:
                self._pool.submit(self._run, graph, nparts, method, options,
                                  target_fracs, key, fut, allow_warm)
            except BaseException:
                self.admission.abandon()
                if key.cacheable:
                    self._inflight.pop(key.digest, None)
                raise
            return fut

    def partition(self, graph: Graph, nparts: int, *,
                  timeout: float | None = None, **kwargs) -> PartitionResult:
        """Synchronous :meth:`submit` + wait."""
        return self.submit(graph, nparts, timeout=timeout, **kwargs).result()

    def batch(self, requests, *, timeout: float | None = None,
              klass: str = "batch") -> list[PartitionResult]:
        """Fan a batch of requests across the pool; results in order.

        ``requests`` is an iterable of ``(graph, nparts)`` pairs or
        ``(graph, nparts, kwargs_dict)`` triples.  Duplicate requests
        inside one batch still cost a single compute (dedup applies), and
        the whole batch is admitted under ``klass`` (``"batch"`` by
        default; a per-request ``"klass"`` in the kwargs dict overrides).

        The batch is **gathered to completion** even when some requests
        fail: if any did -- at submit (malformed request, shed by
        admission) or in compute -- a
        :class:`~repro.errors.ServeBatchError` is raised carrying every
        per-request outcome (``.results`` in order, ``.errors`` by index)
        -- one bad request cannot silently abandon its siblings.
        """
        futures: list[ServeFuture | None] = []
        errors: dict[int, BaseException] = {}
        for i, req in enumerate(requests):
            g, k = req[0], req[1]
            kw = dict(req[2]) if len(req) > 2 else {}
            kw.setdefault("klass", klass)
            try:
                futures.append(self.submit(g, k, timeout=timeout, **kw))
            except Exception as exc:  # noqa: BLE001 - aggregated below
                futures.append(None)
                errors[i] = exc
        results: list[PartitionResult | None] = []
        for i, f in enumerate(futures):
            if f is None:
                results.append(None)
                continue
            try:
                results.append(f.result())
            except Exception as exc:  # noqa: BLE001 - aggregated below
                results.append(None)
                errors[i] = exc
        if errors:
            raise ServeBatchError(
                f"{len(errors)}/{len(futures)} batch requests failed "
                f"(indices {sorted(errors)})", results=results, errors=errors)
        return results

    def retained_graph(self, digest: str) -> Graph | None:
        """The graph of a recently submitted request (by request digest),
        when ``config.retain_graphs`` keeps it around; ``None`` otherwise.
        Used by :class:`~repro.serve.improver.Improver`."""
        with self._lock:
            return self._graphs.get(digest)

    def warmup(self) -> None:
        """Pre-start the compute backend (spawns the worker processes of
        ``backend="process"`` so the first request does not pay for it)."""
        warm = getattr(self._backend, "warmup", None)
        if warm is not None:
            warm()

    def stats(self) -> dict:
        """Counter snapshot: service + admission + backend counters, the
        ``serve.cache.*`` / ``serve.diskcache.*`` tiers, and the live
        ``serve.queue_depth`` / ``serve.inflight`` gauges."""
        with self._lock:
            out = dict(self.counters)
            out.update(self.admission.counters())
            out.update(self.admission.gauges())
            out.update(self.cache.counters())
        if self.disk is not None:
            out.update(self.disk.counters())
        out.update(self._backend.counters())
        return out

    def latency(self, outcome: str) -> dict | None:
        """Snapshot of the ``serve.latency.<outcome>`` histogram (outcome
        one of ``hit`` / ``disk`` / ``warm`` / ``cold`` / ``timeout``), or
        ``None`` when no such request has been served yet."""
        with self._lock:
            h = self.metrics._histograms.get(f"serve.latency.{outcome}")
            return h.snapshot() if h is not None else None

    def metrics_text(self) -> str:
        """The service's metrics as a Prometheus text exposition.

        Counters (``serve.requests``, cache hits/misses, shed totals, the
        backend's shipping protocol, ...), the occupancy and queue gauges
        (``serve.cache.entries`` / ``.bytes``, ``serve.diskcache.*``,
        ``serve.queue_depth``, ``serve.inflight``) and the per-outcome
        latency histograms, rendered with
        :func:`repro.obs.expose.render_prometheus`.
        """
        from ..obs.expose import render_prometheus

        with self._lock:
            counters = dict(self.counters)
            counters.update(self.admission.counters())
            cache = self.cache.counters()
            gauges = self.admission.gauges()
            histograms = self.metrics.histogram_values()
        gauges.update({name: cache.pop(name)
                       for name in ("serve.cache.entries",
                                    "serve.cache.bytes")})
        counters.update(cache)
        if self.disk is not None:
            disk = self.disk.counters()
            gauges.update({name: disk.pop(name)
                           for name in ("serve.diskcache.entries",
                                        "serve.diskcache.bytes")})
            counters.update(disk)
        counters.update(self._backend.counters())
        backend_metrics = self._backend.metrics()
        if backend_metrics:
            counters.update(backend_metrics.get("counters", {}))
            gauges.update(backend_metrics.get("gauges", {}))
            histograms.update(backend_metrics.get("histograms", {}))
        return render_prometheus(counters=counters, gauges=gauges,
                                 histograms=histograms)

    def close(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
        self._backend.close(wait=wait)

    def __enter__(self) -> "PartitionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ----------------------------------------------------------- helpers

    def _class_timeout(self, klass: str) -> float | None:
        per_class = (self.config.interactive_timeout
                     if klass == "interactive" else self.config.batch_timeout)
        return per_class if per_class is not None else self.config.default_timeout

    def _fast_path(self, key, deadline, t_submit, *,
                   count_miss: bool = True) -> ServeFuture | None:
        """Resolve a submission from the memory cache or an in-flight
        compute; ``None`` means the caller must go on to compute.  Caller
        holds the lock."""
        cached = self.cache.get(key, count_miss=count_miss)
        if cached is not None:
            self._mirror_cache_counters()
            fut = ServeFuture(key=key, disposition="hit", _deadline=deadline)
            fut._future.set_result(cached)
            self._observe_latency("hit", time.perf_counter() - t_submit)
            return fut
        if self.config.dedup and key.cacheable:
            running = self._inflight.get(key.digest)
            if running is not None and not running._future.done():
                self._incr("serve.dedup.coalesced")
                running._waiters.append(deadline)
                return ServeFuture(key=key, disposition="coalesced",
                                   _future=running._future,
                                   _deadline=deadline)
        return None

    def _graph_token(self, key: RequestKey, graph: Graph) -> str:
        """Stable graph-content token for backend marshalling: topology
        digest + vertex-weight digest (the request digest would fragment
        per seed/options, re-shipping identical graphs)."""
        h = hashlib.sha256()
        h.update(graph.vwgt.tobytes())
        return f"{key.topo_digest[:24]}:{h.hexdigest()[:24]}"

    # ----------------------------------------------------------- workers

    def _incr(self, name: str, n: int = 1) -> None:
        """Bump a service counter (and its tracer mirror).  Caller holds
        the lock."""
        self.counters[name] = self.counters.get(name, 0) + n
        if self.tracer.enabled:
            self.tracer.incr(name, n)

    def _observe_latency(self, outcome: str, seconds: float) -> None:
        """Record one request latency under its outcome.  Caller holds the
        lock (Histogram.observe is not thread-safe)."""
        self.metrics.histogram(f"serve.latency.{outcome}").observe(seconds)
        if self.tracer.enabled:
            self.tracer.observe(f"serve.latency.{outcome}", seconds)

    def _mirror_cache_counters(self) -> None:
        if self.tracer.enabled:
            for name, value in self.cache.counters().items():
                self.tracer.gauge(name, value)

    def _run(self, graph, nparts, method, options, target_fracs, key,
             fut: ServeFuture, allow_warm: bool = True) -> None:
        """Worker-thread body: warm or cold compute, publish, cache."""
        t0 = time.perf_counter()
        started = False
        try:
            with self._lock:
                self.admission.start()
                started = True
                now = time.monotonic()
                # Skip the compute only when *every* coalesced waiter has
                # already expired; a live follower keeps it running even
                # if the leader's deadline lapsed while queued.
                expired = all(d is not None and now > d
                              for d in fut._waiters)
            if expired:
                with self._lock:
                    self._incr("serve.timeouts")
                    self._observe_latency("timeout",
                                          time.perf_counter() - t0)
                raise ServeTimeoutError(
                    f"request {key.digest[:12]} expired before compute "
                    "started (all waiters past their deadlines)")
            # Per-request private tracer: concurrent computes must not
            # share a span stack (Tracer is single-threaded by contract).
            rtracer = Tracer() if self.tracer.enabled else None
            span = rtracer.span("serve.request", nparts=nparts,
                                method=method, key=key.digest[:12],
                                nvtxs=graph.nvtxs) if rtracer else None

            result = None
            source = "cold"
            if allow_warm and key.cacheable:
                with self._lock:
                    warm_src = self.cache.find_warm(key)
                if warm_src is not None:
                    with self._lock:
                        self._incr("serve.warm_start.attempts")
                    result = warm_start(
                        graph, nparts, options, warm_src,
                        warm_cut_factor=self.config.warm_cut_factor,
                        tracer=rtracer)
                    with self._lock:
                        self._incr("serve.warm_start.accepted"
                                   if result is not None
                                   else "serve.warm_start.rejected")
                    source = "warm"
            if result is None:
                source = "cold"
                with self._lock:
                    self._incr("serve.cold_computes")
                cold_span = rtracer.span("serve.cold") if rtracer else None
                result = self._backend.compute(
                    graph, nparts, method=method, options=options,
                    target_fracs=target_fracs,
                    graph_token=self._graph_token(key, graph))
                if cold_span is not None:
                    cold_span.set(cut=result.edgecut)
                    cold_span.__exit__(None, None, None)

            persist = source == "cold" or self.config.cache_warm_results
            if persist and self.disk is not None and key.cacheable:
                # Disk IO stays outside the admission lock.
                self.disk.put(key, result)
            with self._lock:
                if persist:
                    self.cache.put(key, result, source=source,
                                   target_fracs=target_fracs)
                self._mirror_cache_counters()
                self._observe_latency(source, time.perf_counter() - t0)
                if span is not None:
                    span.set(source=source, cut=result.edgecut,
                             feasible=result.feasible)
                    span.__exit__(None, None, None)
                    rtracer.finish()
                    # Graft the finished private tree under the shared
                    # tracer (append-only; safe under the lock).
                    self.tracer.roots.append(rtracer.root)
            fut._future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - publish to waiters
            fut._future.set_exception(exc)
        finally:
            with self._lock:
                if started:
                    self.admission.done()
                if key.cacheable:
                    self._inflight.pop(key.digest, None)
