"""The compute-backend seam of the partition service.

:class:`PartitionService` never calls :func:`repro.partition.part_graph`
directly for a cold compute -- it asks its :class:`ComputeBackend`.  The
seam exists so the execution substrate can be swapped without touching the
front-end semantics (cache, dedup, warm start, admission, deadlines all
live above it):

* :class:`ThreadBackend` (default) computes inline in the calling
  service-pool thread -- exactly the pre-cluster behaviour, and the
  **deterministic oracle** every other backend is pinned against;
* :class:`~repro.serve.cluster.ProcessBackend` dispatches to a pool of
  spawned worker processes, sidestepping the GIL for concurrent cold
  computes (``ServiceConfig(backend="process")``).

The contract every backend must honour: given the same request (graph
content, ``nparts``, method, pinned-seed options, target fractions) it
returns a :class:`~repro.partition.PartitionResult` **bit-identical** to
``part_graph`` run serially.  ``tests/test_serve_cluster.py`` pins thread /
process parity across randomized requests.
"""

from __future__ import annotations

__all__ = ["ComputeBackend", "ThreadBackend", "make_backend", "BACKENDS"]


class ComputeBackend:
    """Abstract execution substrate for cold partition computes.

    ``compute`` runs synchronously from the perspective of the service's
    request thread (the service already fans requests across its own
    pool); a backend is free to forward the call to another process.
    ``graph_token`` is a stable content token for the graph (the service
    passes one derived from the request key) that backends may use to
    avoid re-marshalling a graph they already shipped.
    """

    name = "abstract"

    def compute(self, graph, nparts, *, method, options, target_fracs,
                graph_token=None):
        raise NotImplementedError

    def close(self, wait: bool = True) -> None:
        """Release backend resources (worker processes, pools)."""

    def counters(self) -> dict:
        """Backend-specific counters, merged into ``service.stats()``."""
        return {}

    def metrics(self) -> dict | None:
        """Worker-telemetry snapshot (``{"counters": ..., "gauges": ...,
        "histograms": ...}``) merged into the service's Prometheus
        exposition; ``None`` when the backend measures nothing."""
        return None


class ThreadBackend(ComputeBackend):
    """Inline compute in the calling thread (the service's own pool).

    The numpy kernels release the GIL, so the service's thread pool still
    overlaps real work; this backend adds zero marshalling overhead and
    is the reference implementation for determinism parity.
    """

    name = "thread"

    def compute(self, graph, nparts, *, method, options, target_fracs,
                graph_token=None):
        # Late lookup through the service module so tests (and users) that
        # monkeypatch ``repro.serve.service.part_graph`` keep intercepting
        # the compute seam, as they did before the backend split.
        from . import service as _service

        return _service.part_graph(graph, nparts, method=method,
                                   options=options,
                                   target_fracs=target_fracs)


#: Registered backend names -> zero-config factory.  ``make_backend``
#: resolves these; the process backend lives in its own module so the
#: default import path stays multiprocessing-free.
BACKENDS = ("thread", "process")


def make_backend(name: str, *, process_workers=None) -> ComputeBackend:
    """Construct a backend by name (``"thread"`` | ``"process"``)."""
    if name == "thread":
        return ThreadBackend()
    if name == "process":
        from .cluster import ProcessBackend

        return ProcessBackend(max_workers=process_workers)
    raise ValueError(
        f"unknown serve backend {name!r}: expected one of {BACKENDS}")
