"""Concrete multi-phase workloads, mirroring the applications the paper's
introduction motivates (crash-worthiness testing, particle-in-mesh,
combustion) plus the synthetic Type-2 family of the evaluation section."""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..graph.csr import Graph
from ..graph.ops import bfs_regions
from ..weights.generators import type2_multiphase
from .model import MultiPhaseComputation, Phase

__all__ = ["crash_simulation", "particle_in_mesh", "combustion", "from_type2"]


def crash_simulation(
    graph: Graph,
    contact_fraction: float = 0.15,
    contact_cost: float = 3.0,
    seed=None,
) -> MultiPhaseComputation:
    """Crash-worthiness-style two-phase computation.

    Phase "fem": finite-element computation of cost 1 on every element.
    Phase "contact": contact detection on a contiguous crumple region
    (``contact_fraction`` of the mesh, grown by BFS) at ``contact_cost``
    per element -- concentrated work that a sum-balanced partition piles
    onto few processors.
    """
    rng = as_rng(seed)
    n = graph.nvtxs
    nregions = max(4, int(round(1.0 / max(contact_fraction, 0.01))))
    regions = bfs_regions(graph, nregions, seed=rng)
    contact = regions == int(rng.integers(nregions))

    fem = np.ones(n)
    contact_cost_vec = np.where(contact, contact_cost, 0.0)
    if contact_cost_vec.sum() == 0:
        contact_cost_vec[0] = contact_cost
    return MultiPhaseComputation(
        graph=graph,
        phases=[Phase("fem", fem), Phase("contact", contact_cost_vec)],
    )


def particle_in_mesh(
    graph: Graph,
    particle_fraction: float = 0.25,
    particles_per_cell: float = 4.0,
    seed=None,
) -> MultiPhaseComputation:
    """Particle-in-mesh two-phase computation.

    Phase "mesh": field solve of cost 1 everywhere.
    Phase "particles": particle push whose cost is proportional to the local
    particle density -- particles cluster in a contiguous subregion
    (``particle_fraction`` of cells) with density noise.
    """
    rng = as_rng(seed)
    n = graph.nvtxs
    nregions = max(4, int(round(1.0 / max(particle_fraction, 0.01))))
    regions = bfs_regions(graph, nregions, seed=rng)
    cloud = regions == int(rng.integers(nregions))
    density = np.where(cloud, particles_per_cell, 0.0)
    density *= rng.uniform(0.5, 1.5, size=n)
    if density.sum() == 0:
        density[0] = particles_per_cell
    return MultiPhaseComputation(
        graph=graph,
        phases=[Phase("mesh", np.ones(n)), Phase("particles", density)],
    )


def combustion(
    graph: Graph,
    flame_fraction: float = 0.10,
    chemistry_cost: float = 10.0,
    seed=None,
) -> MultiPhaseComputation:
    """Combustion-style three-phase computation: flow solve everywhere,
    chemistry only in the (contiguous) flame front at high cost, and a
    radiation phase on a wider band around it."""
    rng = as_rng(seed)
    n = graph.nvtxs
    nregions = max(8, int(round(1.0 / max(flame_fraction, 0.01))))
    regions = bfs_regions(graph, nregions, seed=rng)
    flame_region = int(rng.integers(nregions))
    flame = regions == flame_region
    # Radiation band: flame region plus one neighbouring region.
    band = flame | (regions == ((flame_region + 1) % nregions))

    chem = np.where(flame, chemistry_cost, 0.0)
    rad = np.where(band, 2.0, 0.0)
    if chem.sum() == 0:
        chem[0] = chemistry_cost
    if rad.sum() == 0:
        rad[0] = 2.0
    return MultiPhaseComputation(
        graph=graph,
        phases=[
            Phase("flow", np.ones(n)),
            Phase("chemistry", chem),
            Phase("radiation", rad),
        ],
    )


def from_type2(graph: Graph, nphases: int, seed=None, **kwargs) -> MultiPhaseComputation:
    """Wrap the evaluation section's Type-2 generator as a
    :class:`MultiPhaseComputation` (unit cost per active vertex)."""
    _, act = type2_multiphase(graph, nphases, seed=seed, **kwargs)
    return MultiPhaseComputation(
        graph=graph,
        phases=[Phase(f"phase{i}", act[:, i].astype(np.float64)) for i in range(nphases)],
    )
