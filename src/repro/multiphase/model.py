"""Model of a multi-phase computation.

The paper's motivation: simulations like particle-in-mesh, crash-worthiness
or combustion proceed in *phases* separated by synchronisation steps, so the
wall-clock time of one timestep is

    T(partition) = sum over phases p of  max over parts j of  work_p(j)

(plus communication).  Balancing the *sum* of the phase works (what a
single-constraint partitioner does) can leave individual phases arbitrarily
imbalanced; balancing each phase = one constraint per phase.

:class:`MultiPhaseComputation` evaluates partitions under this model and
produces the constraint weights a multi-constraint partitioner needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WeightError
from ..graph.csr import Graph
from ..weights.generators import coactivity_edge_weights

__all__ = ["Phase", "MultiPhaseComputation"]


@dataclass
class Phase:
    """One computational phase: a per-vertex cost vector (0 = inactive)."""

    name: str
    cost: np.ndarray

    def __post_init__(self):
        self.cost = np.ascontiguousarray(self.cost, dtype=np.float64)
        if self.cost.ndim != 1:
            raise WeightError("phase cost must be a per-vertex vector")
        if np.any(self.cost < 0):
            raise WeightError("phase costs must be non-negative")

    @property
    def active(self) -> np.ndarray:
        """Boolean activity mask."""
        return self.cost > 0

    @property
    def total_work(self) -> float:
        return float(self.cost.sum())


@dataclass
class MultiPhaseComputation:
    """A graph plus its per-phase cost structure."""

    graph: Graph
    phases: list[Phase] = field(default_factory=list)

    def __post_init__(self):
        for ph in self.phases:
            if ph.cost.shape != (self.graph.nvtxs,):
                raise WeightError(
                    f"phase {ph.name!r} cost does not cover all vertices"
                )
        if not self.phases:
            raise WeightError("a multi-phase computation needs at least one phase")

    # ------------------------------------------------------------------ #
    # Constraint-weight derivation
    # ------------------------------------------------------------------ #

    @property
    def nphases(self) -> int:
        return len(self.phases)

    def vwgt(self, scale: int = 100) -> np.ndarray:
        """``(n, nphases)`` integer constraint weights: phase costs rounded
        onto an integer grid (``scale`` units per unit cost)."""
        cols = [np.rint(ph.cost * scale).astype(np.int64) for ph in self.phases]
        w = np.stack(cols, axis=1)
        for i, ph in enumerate(self.phases):
            if w[:, i].sum() == 0:
                raise WeightError(f"phase {ph.name!r} has zero total cost")
        return w

    def weighted_graph(self, scale: int = 100, *, coactivity_edges: bool = True) -> Graph:
        """The graph a multi-constraint partitioner should see: one
        constraint per phase, and (optionally) edge weights equal to the
        phase co-activity of the endpoints."""
        g = self.graph.with_vwgt(self.vwgt(scale))
        if coactivity_edges:
            act = np.stack([ph.active for ph in self.phases], axis=1)
            g = g.with_adjwgt(coactivity_edge_weights(self.graph, act))
        return g

    # ------------------------------------------------------------------ #
    # Execution-time model
    # ------------------------------------------------------------------ #

    def phase_part_work(self, part, nparts: int) -> np.ndarray:
        """``(nphases, nparts)`` work per phase per part."""
        part = np.asarray(part)
        if part.shape != (self.graph.nvtxs,):
            raise WeightError("part vector must cover all vertices")
        out = np.empty((self.nphases, nparts))
        for i, ph in enumerate(self.phases):
            out[i] = np.bincount(part, weights=ph.cost, minlength=nparts)
        return out

    def makespan(self, part, nparts: int) -> float:
        """Modelled timestep duration: per-phase max-part work, summed."""
        return float(self.phase_part_work(part, nparts).max(axis=1).sum())

    def ideal_time(self, nparts: int) -> float:
        """Lower bound: every phase perfectly balanced."""
        return float(sum(ph.total_work for ph in self.phases)) / nparts

    def efficiency(self, part, nparts: int) -> float:
        """Parallel efficiency under the model: ideal / achieved."""
        ms = self.makespan(part, nparts)
        return self.ideal_time(nparts) / ms if ms > 0 else 1.0

    def phase_imbalance(self, part, nparts: int) -> np.ndarray:
        """``(nphases,)`` max-part work over average-part work, per phase
        (the per-phase analogue of the partitioners' imbalance metric)."""
        work = self.phase_part_work(part, nparts)
        avg = work.mean(axis=1)
        avg[avg == 0] = 1.0
        return work.max(axis=1) / avg
