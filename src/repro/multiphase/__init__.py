"""Multi-phase computation model and workloads (the paper's motivation)."""

from .model import MultiPhaseComputation, Phase
from .workloads import combustion, crash_simulation, from_type2, particle_in_mesh

__all__ = [
    "Phase",
    "MultiPhaseComputation",
    "crash_simulation",
    "particle_in_mesh",
    "combustion",
    "from_type2",
]
