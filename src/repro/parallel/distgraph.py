"""Block-distributed view of a CSR graph.

Vertices are distributed in contiguous blocks (the standard ParMETIS-style
``vtxdist`` layout): rank ``r`` owns ``[vtxdist[r], vtxdist[r+1])``.  Since
the simulation runs in one process, ranks get *views* into the global
arrays; the distribution object provides ownership queries, ghost (halo)
enumeration and per-rank work estimates used for compute accounting.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graph.csr import Graph

__all__ = ["DistGraph", "block_vtxdist", "block_range", "block_owner"]

_INT = np.int64


def block_vtxdist(n: int, nranks: int) -> np.ndarray:
    """The balanced contiguous ``vtxdist``: first ``n % p`` ranks get one
    extra vertex.  Shared by the parent and the shm rank program so both
    sides agree on ownership without shipping the array."""
    base, extra = divmod(n, nranks)
    sizes = np.full(nranks, base, dtype=_INT)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)]).astype(_INT)


def block_range(n: int, nranks: int, rank: int) -> tuple[int, int]:
    """``[lo, hi)`` owned by ``rank`` under :func:`block_vtxdist` (closed
    form, no array needed)."""
    base, extra = divmod(n, nranks)
    lo = rank * base + min(rank, extra)
    return lo, lo + base + (1 if rank < extra else 0)


def block_owner(n: int, nranks: int, v) -> np.ndarray:
    """Owner rank of vertex/array ``v`` under :func:`block_vtxdist`."""
    base, extra = divmod(n, nranks)
    v = np.asarray(v)
    split = extra * (base + 1)
    if base == 0:
        return np.minimum(v, n)  # every owned vertex sits on its own rank
    return np.where(v < split, v // (base + 1), extra + (v - split) // base)


class DistGraph:
    """A graph plus its block distribution over ``nranks`` ranks."""

    def __init__(self, graph: Graph, nranks: int):
        if nranks < 1:
            raise GraphError("nranks must be >= 1")
        self.graph = graph
        self.nranks = nranks
        self.vtxdist = block_vtxdist(graph.nvtxs, nranks)

    # ------------------------------------------------------------------ #

    def owner(self, v) -> np.ndarray:
        """Rank owning vertex (vectorised)."""
        return np.searchsorted(self.vtxdist, np.asarray(v), side="right") - 1

    def local_range(self, rank: int) -> tuple[int, int]:
        """``[lo, hi)`` of the vertices owned by ``rank``."""
        return int(self.vtxdist[rank]), int(self.vtxdist[rank + 1])

    def local_vertices(self, rank: int) -> np.ndarray:
        lo, hi = self.local_range(rank)
        return np.arange(lo, hi, dtype=_INT)

    def ghost_vertices(self, rank: int) -> np.ndarray:
        """Foreign vertices adjacent to ``rank``'s block (its halo)."""
        lo, hi = self.local_range(rank)
        g = self.graph
        nbrs = g.adjncy[g.xadj[lo] : g.xadj[hi]]
        foreign = nbrs[(nbrs < lo) | (nbrs >= hi)]
        return np.unique(foreign)

    def local_edge_count(self, rank: int) -> int:
        """Directed edges whose source is owned by ``rank`` (the dominant
        per-rank work term for matching/refinement sweeps)."""
        lo, hi = self.local_range(rank)
        return int(self.graph.xadj[hi] - self.graph.xadj[lo])

    def cut_edges_between_ranks(self) -> int:
        """Directed edges crossing rank boundaries (halo-exchange volume)."""
        g = self.graph
        src = np.repeat(np.arange(g.nvtxs, dtype=_INT), np.diff(g.xadj))
        return int(np.count_nonzero(self.owner(src) != self.owner(g.adjncy)))
