"""Distributed graph contraction.

The coarse-grain protocol after a matching round:

1. **Halo exchange** -- each rank needs the coarse id (``cmap``) of its
   ghost vertices; owners ship them (one personalised all-to-all of int64
   pairs).
2. **Edge fold** -- each rank maps its local directed edges to coarse
   endpoint pairs, drops self-loops, pre-merges local duplicates, and sends
   every coarse edge to the owner of its coarse *source* row (coarse
   vertices are block-distributed like fine ones).
3. **Row assembly** -- owners merge the received triples per coarse row and
   contribute their rows to the coarse CSR; vertex-weight vectors travel
   the same way.

The result is bit-identical to the serial :func:`repro.graph.contract`
(asserted by the test-suite), while every byte of the protocol is charged
to the cluster's cost model -- this is what makes the simulated coarsening
phase's communication profile meaningful.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import Graph
from .distgraph import DistGraph
from .simcomm import SimCluster

__all__ = ["parallel_contract"]

_INT = np.int64


def parallel_contract(
    dist: DistGraph,
    cluster: SimCluster,
    cmap: np.ndarray,
    ncoarse: int,
) -> Graph:
    """Contract ``dist.graph`` according to ``cmap`` with the distributed
    protocol, charging all traffic to ``cluster``.  Returns the (globally
    assembled) coarse graph."""
    g = dist.graph
    p = cluster.nranks
    cmap = np.asarray(cmap, dtype=_INT)

    # Coarse block distribution (same layout rule as DistGraph).
    base, extra = divmod(ncoarse, p)
    csizes = np.full(p, base, dtype=_INT)
    csizes[:extra] += 1
    cvtxdist = np.concatenate([[0], np.cumsum(csizes)]).astype(_INT)

    def coarse_owner(cv: np.ndarray) -> np.ndarray:
        return np.searchsorted(cvtxdist, cv, side="right") - 1

    # ---- 1. Halo exchange: ghost cmap values.
    ghost_payloads: list[dict[int, np.ndarray]] = [dict() for _ in range(p)]
    for r in range(p):
        ghosts = dist.ghost_vertices(r)
        if ghosts.size == 0:
            continue
        owners = dist.owner(ghosts)
        for o in np.unique(owners).tolist():
            ids = ghosts[owners == o]
            # Owner o replies with (id, cmap[id]) pairs; in the simulation
            # the reply is materialised directly (shared memory), but the
            # request+reply bytes are what we charge.
            ghost_payloads[o][r] = np.stack([ids, cmap[ids]], axis=1)
    cluster.alltoall(ghost_payloads)

    # ---- 2. Edge fold: map local edges and route to coarse-row owners.
    edge_payloads: list[dict[int, np.ndarray]] = [dict() for _ in range(p)]
    vw_payloads: list[dict[int, np.ndarray]] = [dict() for _ in range(p)]
    m = g.ncon
    for r in range(p):
        lo, hi = dist.local_range(r)
        beg, end = g.xadj[lo], g.xadj[hi]
        counts = np.diff(g.xadj[lo : hi + 1])
        src = np.repeat(np.arange(lo, hi, dtype=_INT), counts)
        cu = cmap[src]
        cv = cmap[g.adjncy[beg:end]]
        w = g.adjwgt[beg:end]
        keep = cu != cv
        cu, cv, w = cu[keep], cv[keep], w[keep]
        cluster.add_compute(r, int(end - beg))

        # Local pre-merge (the standard combining optimisation).
        key = cu * _INT(ncoarse) + cv
        uniq, inverse = np.unique(key, return_inverse=True)
        wsum = np.zeros(uniq.shape[0], dtype=_INT)
        np.add.at(wsum, inverse, w)
        cu = (uniq // ncoarse).astype(_INT)
        cv = (uniq % ncoarse).astype(_INT)

        owners = coarse_owner(cu)
        for o in np.unique(owners).tolist():
            sel = owners == o
            edge_payloads[r][int(o)] = np.stack([cu[sel], cv[sel], wsum[sel]], axis=1)

        # Vertex-weight contributions: (coarse id, weight vector) rows.
        local_cv = cmap[lo:hi]
        vw_owners = coarse_owner(local_cv)
        rows = np.concatenate([local_cv[:, None], g.vwgt[lo:hi]], axis=1)
        for o in np.unique(vw_owners).tolist():
            vw_payloads[r][int(o)] = rows[vw_owners == o]

    edges_in = cluster.alltoall(edge_payloads)
    vws_in = cluster.alltoall(vw_payloads)

    # ---- 3. Row assembly at the owners.
    all_triples = []
    cvwgt = np.zeros((ncoarse, m), dtype=_INT)
    for r in range(p):
        got = list(edges_in[r].values())
        if got:
            tri = np.concatenate(got)
            all_triples.append(tri)
            cluster.add_compute(r, tri.shape[0])
        for rows in vws_in[r].values():
            ids = rows[:, 0]
            np.add.at(cvwgt, ids, rows[:, 1:])
    if all_triples:
        tri = np.concatenate(all_triples)
        key = tri[:, 0] * _INT(ncoarse) + tri[:, 1]
        uniq, inverse = np.unique(key, return_inverse=True)
        wsum = np.zeros(uniq.shape[0], dtype=_INT)
        np.add.at(wsum, inverse, tri[:, 2])
        cu = (uniq // ncoarse).astype(_INT)
        cv = (uniq % ncoarse).astype(_INT)
    else:
        cu = cv = wsum = np.empty(0, dtype=_INT)

    cxadj = np.zeros(ncoarse + 1, dtype=_INT)
    np.add.at(cxadj, cu + 1, 1)
    np.cumsum(cxadj, out=cxadj)
    return Graph(cxadj, cv, cvwgt, wsum, validate=False)
