"""Distributed graph contraction.

The coarse-grain protocol after a matching round:

1. **Halo exchange** -- each rank needs the coarse id (``cmap``) of its
   ghost vertices; owners ship them (one personalised all-to-all of int64
   pairs), enumerated by :func:`~repro.parallel.rankprog.contract_ghosts`.
2. **Edge fold** -- each rank maps its local directed edges to coarse
   endpoint pairs, drops self-loops, pre-merges local duplicates, and
   sends every coarse edge to the owner of its coarse *source* row
   (:func:`~repro.parallel.rankprog.contract_fold`; coarse vertices are
   block-distributed like fine ones).
3. **Row assembly** -- the orchestrator merges the received triples per
   coarse row into the coarse CSR; vertex-weight vectors travel the same
   way.  The merge is a sort + commutative integer add, so it is
   independent of delivery order.

The result is bit-identical to the serial :func:`repro.graph.contract`
(asserted by the test-suite) on either executor, while every byte of the
protocol is charged to the simulator's cost model or measured on the real
pipe transport.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import Graph
from .distgraph import DistGraph
from .fabric import as_fabric

__all__ = ["parallel_contract"]

_INT = np.int64


def parallel_contract(
    dist: DistGraph,
    comm,
    cmap: np.ndarray,
    ncoarse: int,
) -> Graph:
    """Contract ``dist.graph`` according to ``cmap`` with the distributed
    protocol.  ``comm`` is a fabric or a bare ``SimCluster``.  Returns the
    (globally assembled) coarse graph."""
    fabric = as_fabric(comm)
    g = dist.graph
    p = fabric.nranks
    cmap = np.asarray(cmap, dtype=_INT)
    fabric.publish_graph(g)
    fabric.publish(cmap=cmap)
    m = g.ncon

    # ---- 1. Halo exchange: ghost cmap values.  Rank r enumerates the
    # rows owner o will send it; in the simulation the reply is
    # materialised directly (shared state), but the reply bytes are what
    # the exchange charges.
    wants = fabric.run("contract_ghosts", [{} for _ in range(p)])
    ghost_payloads: list[dict[int, np.ndarray]] = [dict() for _ in range(p)]
    for r in range(p):
        for o, rows in wants[r].items():
            ghost_payloads[o][r] = rows
    fabric.exchange(ghost_payloads)

    # ---- 2. Edge fold: map local edges and route to coarse-row owners.
    folded = fabric.run("contract_fold", [{"ncoarse": ncoarse} for _ in range(p)])
    edges_in = fabric.exchange([e for e, _ in folded])
    vws_in = fabric.exchange([v for _, v in folded])

    # ---- 3. Row assembly at the owners.
    all_triples = []
    cvwgt = np.zeros((ncoarse, m), dtype=_INT)
    for r in range(p):
        got = list(edges_in[r].values())
        if got:
            tri = np.concatenate(got)
            all_triples.append(tri)
            fabric.add_compute(r, tri.shape[0])
        for rows in vws_in[r].values():
            ids = rows[:, 0]
            np.add.at(cvwgt, ids, rows[:, 1:])
    if all_triples:
        tri = np.concatenate(all_triples)
        key = tri[:, 0] * _INT(ncoarse) + tri[:, 1]
        uniq, inverse = np.unique(key, return_inverse=True)
        wsum = np.zeros(uniq.shape[0], dtype=_INT)
        np.add.at(wsum, inverse, tri[:, 2])
        cu = (uniq // ncoarse).astype(_INT)
        cv = (uniq % ncoarse).astype(_INT)
    else:
        cu = cv = wsum = np.empty(0, dtype=_INT)

    cxadj = np.zeros(ncoarse + 1, dtype=_INT)
    np.add.at(cxadj, cu + 1, 1)
    np.cumsum(cxadj, out=cxadj)
    return Graph(cxadj, cv, cvwgt, wsum, validate=False)
