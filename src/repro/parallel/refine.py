"""Reservation-based coarse-grain parallel k-way refinement.

The multi-constraint hazard of concurrent refinement: if every rank assumes
it may use all of a subdomain's slack, simultaneous moves overshoot the
balance caps, and with several constraints such overshoots are very hard to
repair.  The reservation scheme avoids the overshoot instead of fixing it:

1. every rank sweeps its local boundary and *tentatively* selects its
   gainful moves against a snapshot of the global subdomain weights
   (:func:`~repro.parallel.rankprog.refine_select` -- a pure per-rank
   step, so both executors run it identically);
2. one global reduction sums the proposed inflow per (part, constraint);
3. for every part whose proposed inflow would exceed its remaining space,
   each rank randomly disallows the fraction
   ``1 - space / proposed_inflow`` of its own proposals into that part
   (per-rank spawned RNGs keep the draws executor-independent);
4. surviving moves commit on the orchestrator's authoritative
   :class:`~repro.refine.kwayref.KWayState`, and a second reduction
   refreshes the weights.

Disallowing is randomised and *not* iterated to convergence -- the residual
imbalance from step 4 is small and later passes absorb it.  When a pass ends
infeasible, a serial-equivalent balancing step runs (charged to the critical
path), mirroring the explicit balancing the coarse-grain formulation needs.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng, spawn
from ..refine.kwayref import KWayState, balance_kway_state
from ..weights.balance import FEASIBILITY_EPS
from .distgraph import DistGraph
from .fabric import as_fabric

__all__ = ["parallel_kway_refine"]

_INT = np.int64


def parallel_kway_refine(
    dist: DistGraph,
    comm,
    where: np.ndarray,
    nparts: int,
    *,
    ubvec=1.05,
    npasses: int = 6,
    seed=None,
) -> dict:
    """Refine ``where`` (mutated in place) with the reservation scheme.

    ``comm`` is a fabric or a bare ``SimCluster``.  Returns a stats dict:
    committed/disallowed move counts and passes.
    """
    fabric = as_fabric(comm)
    g = dist.graph
    rng = as_rng(seed)
    state = KWayState(g, where, nparts, ubvec)
    m = state.relw.shape[1]
    p = fabric.nranks
    fabric.publish_graph(g)
    fabric.publish(relw=state.relw)

    committed = 0
    disallowed = 0
    passes = 0
    for _ in range(npasses):
        passes += 1
        # ---- Phase 1: tentative local selection against the snapshot.
        fabric.publish(where=np.asarray(where, dtype=_INT))
        pw_snapshot = state.pw.copy()
        select_rngs = spawn(rng, p)
        results = fabric.run("refine_select", [
            {"nparts": nparts, "pw": pw_snapshot, "caps": state.caps,
             "seed": select_rngs[r]} for r in range(p)])
        proposals = [props for props, _ in results]
        inflow = [local_in for _, local_in in results]

        # ---- Phase 2: global reduction of proposed inflow.
        total_in = fabric.allreduce([x.ravel() for x in inflow]).reshape(nparts, m)

        # ---- Phase 3: randomly disallow the overshoot fraction.
        space = np.maximum(state.caps - pw_snapshot, 0.0)
        keep_frac = np.ones(nparts)
        for d in range(nparts):
            over = total_in[d] > space[d] + FEASIBILITY_EPS
            if np.any(over):
                with np.errstate(divide="ignore", invalid="ignore"):
                    fr = np.where(total_in[d] > 0, space[d] / total_in[d], 1.0)
                keep_frac[d] = float(np.clip(fr.min(), 0.0, 1.0))

        moved_this_pass = 0
        commit_rngs = spawn(rng, p)
        for r in range(p):
            rr = commit_rngs[r]
            for v, d, _gain in proposals[r].tolist():
                if rr.random() > keep_frac[d]:
                    disallowed += 1
                    continue
                state.move(v, d)
                moved_this_pass += 1
            fabric.add_compute(r, proposals[r].shape[0])

        # ---- Phase 4: refresh global weights.
        fabric.allreduce([state.pw.ravel() / p] * p)
        committed += moved_this_pass
        if moved_this_pass == 0:
            break

    # Residual imbalance (the ignored second-order effect): repair once.
    balance_moves = 0
    if not state.feasible():
        balance_moves = balance_kway_state(state)
        fabric.add_compute(0, balance_moves * 8)
        fabric.barrier()

    return {
        "passes": passes,
        "committed": committed,
        "disallowed": disallowed,
        "balance_moves": balance_moves,
        "feasible": state.feasible(),
    }
