"""Reservation-based coarse-grain parallel k-way refinement.

The multi-constraint hazard of concurrent refinement: if every rank assumes
it may use all of a subdomain's slack, simultaneous moves overshoot the
balance caps, and with several constraints such overshoots are very hard to
repair.  The reservation scheme avoids the overshoot instead of fixing it:

1. every rank sweeps its local boundary and *tentatively* selects its
   gainful moves against a snapshot of the global subdomain weights;
2. one global reduction sums the proposed inflow per (part, constraint);
3. for every part whose proposed inflow would exceed its remaining space,
   each rank randomly disallows the fraction
   ``1 - space / proposed_inflow`` of its own proposals into that part;
4. surviving moves commit, and a second reduction refreshes the weights.

Disallowing is randomised and *not* iterated to convergence -- the residual
imbalance from step 4 is small and later passes absorb it.  When a pass ends
infeasible, a serial-equivalent balancing step runs (charged to the critical
path), mirroring the explicit balancing the coarse-grain formulation needs.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng, spawn
from ..refine.kwayref import KWayState, balance_kway_state
from ..weights.balance import FEASIBILITY_EPS
from .distgraph import DistGraph
from .simcomm import SimCluster

__all__ = ["parallel_kway_refine"]

_INT = np.int64


def parallel_kway_refine(
    dist: DistGraph,
    cluster: SimCluster,
    where: np.ndarray,
    nparts: int,
    *,
    ubvec=1.05,
    npasses: int = 6,
    seed=None,
) -> dict:
    """Refine ``where`` (mutated in place) with the reservation scheme.

    Returns a stats dict: committed/disallowed move counts and passes.
    """
    g = dist.graph
    rng = as_rng(seed)
    state = KWayState(g, where, nparts, ubvec)
    m = state.relw.shape[1]

    committed = 0
    disallowed = 0
    passes = 0
    for _ in range(npasses):
        passes += 1
        # ---- Phase 1: tentative local selection against the snapshot.
        pw_snapshot = state.pw.copy()
        proposals: list[list[tuple[int, int, int]]] = []  # rank -> (v, dest, gain)
        inflow: list[np.ndarray] = []
        for r in range(cluster.nranks):
            lo, hi = dist.local_range(r)
            local_prop: list[tuple[int, int, int]] = []
            local_in = np.zeros((nparts, m))
            ops = 0
            lv = np.arange(lo, hi)
            lb = lv[_is_boundary(g, state.where, lo, hi)]
            for v in rng.permutation(lb).tolist():
                nbw = state.neighbor_weights(v)
                ops += g.degree(v)
                s = int(state.where[v])
                w_in = nbw.get(s, 0)
                best_d, best_gain = -1, 0
                for d, wd in nbw.items():
                    if d == s:
                        continue
                    gain = wd - w_in
                    if gain <= 0:
                        continue
                    # Check against the snapshot plus this rank's own
                    # already-proposed inflow (ranks are internally
                    # consistent; the cross-rank hazard is what the
                    # reservation handles).
                    if np.any(
                        pw_snapshot[d] + local_in[d] + state.relw[v]
                        > state.caps[d] + FEASIBILITY_EPS
                    ):
                        continue
                    if gain > best_gain:
                        best_d, best_gain = d, gain
                if best_d >= 0:
                    local_prop.append((v, best_d, best_gain))
                    local_in[best_d] += state.relw[v]
            cluster.add_compute(r, ops)
            proposals.append(local_prop)
            inflow.append(local_in)

        # ---- Phase 2: global reduction of proposed inflow.
        total_in = cluster.allreduce([x.ravel() for x in inflow]).reshape(nparts, m)

        # ---- Phase 3: randomly disallow the overshoot fraction.
        space = np.maximum(state.caps - pw_snapshot, 0.0)
        keep_frac = np.ones(nparts)
        for d in range(nparts):
            over = total_in[d] > space[d] + FEASIBILITY_EPS
            if np.any(over):
                with np.errstate(divide="ignore", invalid="ignore"):
                    fr = np.where(total_in[d] > 0, space[d] / total_in[d], 1.0)
                keep_frac[d] = float(np.clip(fr.min(), 0.0, 1.0))

        moved_this_pass = 0
        rank_rngs = spawn(rng, cluster.nranks)
        for r, local_prop in enumerate(proposals):
            rr = rank_rngs[r]
            for v, d, gain in local_prop:
                if rr.random() > keep_frac[d]:
                    disallowed += 1
                    continue
                state.move(v, d)
                moved_this_pass += 1
            cluster.add_compute(r, len(local_prop))

        # ---- Phase 4: refresh global weights.
        cluster.allreduce([state.pw.ravel() / cluster.nranks] * cluster.nranks)
        committed += moved_this_pass
        if moved_this_pass == 0:
            break

    # Residual imbalance (the ignored second-order effect): repair once.
    balance_moves = 0
    if not state.feasible():
        balance_moves = balance_kway_state(state)
        cluster.add_compute(0, balance_moves * 8)
        cluster.barrier()

    return {
        "passes": passes,
        "committed": committed,
        "disallowed": disallowed,
        "balance_moves": balance_moves,
        "feasible": state.feasible(),
    }


def _is_boundary(graph, where, lo: int, hi: int) -> np.ndarray:
    """Boolean mask (over the local range) of local boundary vertices."""
    src_beg, src_end = graph.xadj[lo], graph.xadj[hi]
    counts = np.diff(graph.xadj[lo : hi + 1])
    src = np.repeat(np.arange(lo, hi, dtype=_INT), counts)
    crossing = where[src] != where[graph.adjncy[src_beg:src_end]]
    out = np.zeros(hi - lo, dtype=bool)
    np.logical_or.at(out, src - lo, crossing)
    return out
