"""Simulated message-passing substrate (BSP style) -- the ``sim`` executor.

This is the deterministic oracle behind the executor seam
(:mod:`repro.parallel.fabric`): :class:`SimFabric` runs the rank program
inline and routes every collective through a :class:`SimCluster`, which
delivers messages between ranks in one process and *accounts* for them
under a classic alpha-beta cost model:

    T_superstep = max_r compute_r / rate  +  alpha * rounds  +  beta * max_r bytes_r

The same rank program also runs on real worker processes
(:class:`~repro.parallel.shm.ShmFabric`), bit-identically -- the
simulation defines the reference message stream the parity harness
checks the shm executor against.  The API mirrors the mpi4py idioms used
in practice (``alltoall`` over NumPy buffers, ``allreduce``), so porting
to mpi4py is mechanical: replace ``SimCluster`` collectives with
``COMM_WORLD`` ones.  :class:`~repro.faults.FaultyCluster` subclasses
this to inject deterministic network faults at the collectives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError

__all__ = ["CostModel", "SimCluster", "SimStats"]


@dataclass(frozen=True)
class CostModel:
    """alpha-beta machine model.

    ``alpha``: per-message-round latency (seconds); ``beta``: per-byte
    transfer cost (seconds/byte); ``compute_rate``: local operations per
    second.  Defaults are loosely calibrated to a late-90s MPP (a Cray
    T3E-like machine): 10 us latency, ~300 MB/s links, 10^8 simple graph
    operations per second.
    """

    alpha: float = 1e-5
    beta: float = 3.3e-9
    compute_rate: float = 1e8


@dataclass
class SimStats:
    """Aggregated accounting of a simulated run."""

    nranks: int
    supersteps: int = 0
    total_bytes: int = 0
    total_messages: int = 0
    compute_time: float = 0.0
    comm_time: float = 0.0

    @property
    def simulated_time(self) -> float:
        """Modelled wall-clock: critical-path compute + communication."""
        return self.compute_time + self.comm_time


class SimCluster:
    """A simulated cluster of ``nranks`` BSP ranks.

    Usage pattern (one superstep)::

        for r in range(cluster.nranks):
            ...local work...
            cluster.add_compute(r, ops)
        received = cluster.alltoall(payloads)   # ends the superstep

    Compute is charged per rank and folded into the critical path at the
    next collective.
    """

    def __init__(self, nranks: int, cost: CostModel | None = None):
        if nranks < 1:
            raise ReproError("nranks must be >= 1")
        self.nranks = nranks
        self.cost = cost or CostModel()
        self.stats = SimStats(nranks=nranks)
        self._pending_ops = np.zeros(nranks, dtype=np.float64)
        #: current pipeline phase tag (set by the driver; consumed by the
        #: fault injector's per-phase rates -- a no-op on a healthy cluster).
        self.phase = ""

    # ------------------------------------------------------------------ #

    def set_phase(self, name: str) -> None:
        """Tag subsequent collectives with the pipeline phase ``name``."""
        self.phase = str(name)

    def add_compute(self, rank: int, ops: float) -> None:
        """Charge ``ops`` local operations to ``rank`` in the current
        superstep."""
        self._pending_ops[rank] += ops

    def _close_compute(self) -> None:
        self.stats.compute_time += float(self._pending_ops.max(initial=0.0)) / self.cost.compute_rate
        self._pending_ops[:] = 0.0

    def _charge_comm(self, bytes_per_rank: np.ndarray, nmessages: int, rounds: int = 1) -> None:
        self.stats.comm_time += self.cost.alpha * rounds + self.cost.beta * float(
            bytes_per_rank.max(initial=0.0)
        )
        self.stats.total_bytes += int(bytes_per_rank.sum())
        self.stats.total_messages += nmessages
        self.stats.supersteps += 1

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #

    def alltoall(self, payloads: list[dict[int, np.ndarray]]) -> list[dict[int, np.ndarray]]:
        """Personalised all-to-all: ``payloads[src][dst]`` is a NumPy array
        to deliver; returns ``received[dst][src]``.  Closes the superstep.
        """
        if len(payloads) != self.nranks:
            raise ReproError("alltoall needs one payload dict per rank")
        self._close_compute()
        received: list[dict[int, np.ndarray]] = [dict() for _ in range(self.nranks)]
        out_bytes = np.zeros(self.nranks)
        nmsg = 0
        for src, msgs in enumerate(payloads):
            for dst, arr in msgs.items():
                if not (0 <= dst < self.nranks):
                    raise ReproError(f"destination rank {dst} out of range")
                arr = np.asarray(arr)
                received[dst][src] = arr
                out_bytes[src] += arr.nbytes
                nmsg += 1
        self._charge_comm(out_bytes, nmsg)
        return received

    def allreduce(self, values: list[np.ndarray], op: str = "sum") -> np.ndarray:
        """Reduce per-rank arrays to a single array known to all ranks.
        Charged as a ``log2(p)``-round butterfly.  Closes the superstep."""
        if len(values) != self.nranks:
            raise ReproError("allreduce needs one value per rank")
        self._close_compute()
        arrs = [np.asarray(v, dtype=np.float64) for v in values]
        stack = np.stack(arrs)
        if op == "sum":
            out = stack.sum(axis=0)
        elif op == "max":
            out = stack.max(axis=0)
        elif op == "min":
            out = stack.min(axis=0)
        else:
            raise ReproError(f"unknown reduction op {op!r}")
        rounds = max(1, int(np.ceil(np.log2(max(self.nranks, 2)))))
        per_rank = np.full(self.nranks, float(arrs[0].nbytes) * rounds)
        self._charge_comm(per_rank, self.nranks * rounds, rounds=rounds)
        return out

    def gather(self, values: list[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Gather per-rank arrays at ``root``.  Closes the superstep."""
        if len(values) != self.nranks:
            raise ReproError("gather needs one value per rank")
        self._close_compute()
        out_bytes = np.zeros(self.nranks)
        for r, v in enumerate(values):
            if r != root:
                out_bytes[r] = np.asarray(v).nbytes
        self._charge_comm(out_bytes, self.nranks - 1)
        return [np.asarray(v) for v in values]

    def bcast(self, value: np.ndarray, root: int = 0) -> np.ndarray:
        """Broadcast from ``root``; charged as a log-depth tree."""
        self._close_compute()
        arr = np.asarray(value)
        rounds = max(1, int(np.ceil(np.log2(max(self.nranks, 2)))))
        per_rank = np.full(self.nranks, float(arr.nbytes))
        self._charge_comm(per_rank, self.nranks - 1, rounds=rounds)
        return arr

    def barrier(self) -> None:
        """Synchronise; folds pending compute into the critical path."""
        self._close_compute()
        self.stats.comm_time += self.cost.alpha
        self.stats.supersteps += 1
