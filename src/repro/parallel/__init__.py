"""Coarse-grain parallel formulation (future-work extension).

This subpackage is **not** part of the reproduced SC'98 contribution; it
implements the parallel formulation the paper names as future work.  The
algorithms are written once as a *rank program* (:mod:`~repro.parallel.rankprog`)
-- pure per-rank step functions over published read-only snapshots --
driven by one orchestrator through a pluggable fabric
(:mod:`~repro.parallel.fabric`):

* ``executor="sim"`` -- deterministic in-process BSP simulation with an
  alpha-beta cost model (:class:`SimCluster`); supports injected faults
  via ``repro.faults``.
* ``executor="shm"`` -- **real** spawned worker processes over
  ``multiprocessing.shared_memory`` CSR views (:class:`ShmFabric`);
  wall-clock timing, real crash/timeout handling.

The two executors are bit-identical on fault-free runs -- same messages,
same partition -- which :func:`run_parity` asserts; ``docs/parallel.md``
documents the model and the degradation contract (``faults=`` /
``recovery=`` / ``strict=``; see also ``docs/robustness.md``).
"""

from .coarsen import parallel_matching
from .contract import parallel_contract
from .distgraph import DistGraph
from .driver import ParallelResult, parallel_part_graph
from .fabric import MessageLog, SimFabric, as_fabric
from .parity import ParityReport, run_parity
from .refine import parallel_kway_refine
from .shm import ShmFabric, ShmStats
from .simcomm import CostModel, SimCluster, SimStats

__all__ = [
    "SimCluster",
    "SimStats",
    "CostModel",
    "DistGraph",
    "MessageLog",
    "SimFabric",
    "ShmFabric",
    "ShmStats",
    "as_fabric",
    "parallel_matching",
    "parallel_contract",
    "parallel_kway_refine",
    "parallel_part_graph",
    "ParallelResult",
    "ParityReport",
    "run_parity",
]
