"""Simulated coarse-grain parallel formulation (future-work extension).

This subpackage is **not** part of the reproduced SC'98 contribution; it
implements the parallel formulation the paper names as future work, on a
deterministic BSP simulation with an alpha-beta cost model (real MPI is
unavailable offline; see DESIGN.md for the substitution rationale).

The driver is hardened against injected faults (``repro.faults``): pass
``faults=`` / ``recovery=`` / ``strict=`` to :func:`parallel_part_graph`;
see ``docs/robustness.md`` for the error/robustness contract.
"""

from .coarsen import parallel_matching
from .contract import parallel_contract
from .distgraph import DistGraph
from .driver import ParallelResult, parallel_part_graph
from .refine import parallel_kway_refine
from .simcomm import CostModel, SimCluster, SimStats

__all__ = [
    "SimCluster",
    "SimStats",
    "CostModel",
    "DistGraph",
    "parallel_matching",
    "parallel_contract",
    "parallel_kway_refine",
    "parallel_part_graph",
    "ParallelResult",
]
