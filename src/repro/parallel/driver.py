"""Simulated coarse-grain parallel multilevel multi-constraint partitioner.

Pipeline (all on the :class:`~repro.parallel.simcomm.SimCluster`):

1. **Parallel coarsening** -- conflict-arbitrated heavy-edge matching
   (:func:`repro.parallel.coarsen.parallel_matching`) followed by
   contraction; the halo exchange needed to fold cross-rank edges is charged
   to the cost model.
2. **Initial partitioning** -- the coarsest graph is gathered to rank 0 and
   partitioned with the serial multi-constraint recursive bisection (the
   standard practice: the coarsest graph is tiny).
3. **Parallel uncoarsening** -- project and refine with the reservation
   scheme (:func:`repro.parallel.refine.parallel_kway_refine`).

The returned :class:`ParallelResult` carries both the partition quality and
the simulated-time accounting used by the scaling benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng, spawn
from ..coarsen.matching import matching_to_cmap
from ..errors import PartitionError
from ..graph.csr import Graph
from ..partition.config import PartitionOptions
from ..partition.recursive import partition_recursive
from ..refine.gain import edge_cut
from ..trace import as_tracer
from ..weights.balance import as_ubvec, imbalance
from .coarsen import parallel_matching
from .contract import parallel_contract
from .distgraph import DistGraph
from .refine import parallel_kway_refine
from .simcomm import CostModel, SimCluster, SimStats

__all__ = ["ParallelResult", "parallel_part_graph"]


@dataclass
class ParallelResult:
    """Partition plus simulated-execution accounting."""

    part: np.ndarray
    nparts: int
    nranks: int
    edgecut: int
    imbalance: np.ndarray
    feasible: bool
    stats: SimStats
    levels: int
    refine_stats: list[dict]
    #: simulated seconds per phase: {"coarsen": ..., "initpart": ..., "refine": ...}
    phase_times: dict | None = None

    @property
    def simulated_time(self) -> float:
        return self.stats.simulated_time

    @property
    def max_imbalance(self) -> float:
        """Worst imbalance over all constraints."""
        return float(self.imbalance.max(initial=0.0))

    def summary(self) -> str:
        imb = ", ".join(f"{x:.3f}" for x in self.imbalance)
        return (
            f"parallel(p={self.nranks}) k={self.nparts}: cut={self.edgecut} "
            f"imbalance=[{imb}] t_sim={self.simulated_time * 1e3:.2f}ms "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )


def parallel_part_graph(
    graph: Graph,
    nparts: int,
    nranks: int,
    *,
    options: PartitionOptions | None = None,
    cost: CostModel | None = None,
    tracer=None,
) -> ParallelResult:
    """Partition ``graph`` with the simulated parallel formulation.

    ``nranks`` simulated ranks cooperate; quality should track the serial
    k-way partitioner while simulated time exhibits the parallel scaling
    shape (see benchmark P1).  ``tracer`` records the run under a
    ``parallel_partition`` root span whose phase spans carry both wall
    time and the cost-model's simulated seconds (``sim_seconds``).
    """
    if options is None:
        options = PartitionOptions()
    if nparts < 1 or nparts > max(graph.nvtxs, 1):
        raise PartitionError("invalid nparts for this graph")
    tracer = as_tracer(tracer)
    rng = as_rng(options.seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    cluster = SimCluster(nranks, cost)

    coarsen_to = max(options.kway_coarsen_factor * nparts, options.coarsen_to)

    def _elapsed():
        return cluster.stats.simulated_time

    phase_marks = {"start": _elapsed()}

    with tracer.span("parallel_partition", nvtxs=graph.nvtxs,
                     nedges=graph.nedges, ncon=graph.ncon, nparts=nparts,
                     nranks=nranks) as root:
        # ---- Parallel coarsening.
        levels: list[tuple[Graph, np.ndarray]] = []
        cur = graph
        with tracer.span("coarsen") as csp:
            while cur.nvtxs > coarsen_to and len(levels) < options.max_coarsen_levels:
                with tracer.span("coarsen_level", nvtxs=cur.nvtxs) as sp:
                    dist = DistGraph(cur, nranks)
                    (mrng,) = spawn(rng, 1)
                    match = parallel_matching(dist, cluster, seed=mrng)
                    cmap, ncoarse = matching_to_cmap(match)
                    if ncoarse > options.min_shrink * cur.nvtxs:
                        sp.set(stalled=True)
                        break
                    levels.append((cur, cmap))
                    nxt = parallel_contract(dist, cluster, cmap, ncoarse)
                    if tracer.enabled:
                        sp.set(nedges=cur.nedges, coarse_nvtxs=nxt.nvtxs,
                               shrink=ncoarse / cur.nvtxs)
                    cur = nxt
            phase_marks["coarsen"] = _elapsed()
            if tracer.enabled:
                csp.set(levels=[g.nvtxs for g, _ in levels] + [cur.nvtxs],
                        sim_seconds=phase_marks["coarsen"] - phase_marks["start"])

        # ---- Initial partitioning at rank 0 (gather + serial RB + bcast).
        with tracer.span("initpart", nvtxs=cur.nvtxs) as isp:
            cluster.gather([np.empty(cur.nvtxs // max(nranks, 1), dtype=np.int64)] * nranks)
            (irng,) = spawn(rng, 1)
            init_opts = options.with_(seed=irng, final_balance=True)
            where = partition_recursive(cur, nparts, init_opts, tracer=tracer)
            cluster.add_compute(0, 20 * (cur.nvtxs + 2 * cur.nedges))
            cluster.bcast(where)
            phase_marks["initpart"] = _elapsed()
            if tracer.enabled:
                isp.set(cut=int(edge_cut(cur, where)),
                        sim_seconds=phase_marks["initpart"] - phase_marks["coarsen"])

        # ---- Parallel uncoarsening with reservation refinement.
        refine_stats: list[dict] = []
        with tracer.span("refine") as rsp:
            for fine, cmap in reversed(levels):
                where = where[cmap]
                with tracer.span("level", nvtxs=fine.nvtxs) as sp:
                    dist = DistGraph(fine, nranks)
                    (rrng,) = spawn(rng, 1)
                    st = parallel_kway_refine(
                        dist, cluster, where, nparts,
                        ubvec=ub, npasses=options.kway_refine_passes, seed=rrng,
                    )
                    refine_stats.append(st)
                    if tracer.enabled:
                        sp.set(cut=int(edge_cut(fine, where)),
                               **{k: v for k, v in st.items()
                                  if isinstance(v, (bool, int, float))})
                        tracer.incr("parallel.committed", int(st["committed"]))
            phase_marks["refine"] = _elapsed()
            if tracer.enabled:
                rsp.set(sim_seconds=phase_marks["refine"] - phase_marks["initpart"])

        phase_times = {
            "coarsen": phase_marks["coarsen"] - phase_marks["start"],
            "initpart": phase_marks["initpart"] - phase_marks["coarsen"],
            "refine": phase_marks["refine"] - phase_marks["initpart"],
        }

        imb = imbalance(graph.vwgt, where, nparts)
        if tracer.enabled:
            root.set(cut=int(edge_cut(graph, where)),
                     max_imbalance=float(imb.max(initial=0.0)),
                     feasible=bool(np.all(imb <= ub + 1e-9)),
                     sim_seconds=phase_marks["refine"] - phase_marks["start"])
    return ParallelResult(
        phase_times=phase_times,
        part=where,
        nparts=nparts,
        nranks=nranks,
        edgecut=edge_cut(graph, where),
        imbalance=imb,
        feasible=bool(np.all(imb <= ub + 1e-9)),
        stats=cluster.stats,
        levels=len(levels),
        refine_stats=refine_stats,
    )
