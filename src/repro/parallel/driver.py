"""Simulated coarse-grain parallel multilevel multi-constraint partitioner.

Pipeline (all on the :class:`~repro.parallel.simcomm.SimCluster`):

1. **Parallel coarsening** -- conflict-arbitrated heavy-edge matching
   (:func:`repro.parallel.coarsen.parallel_matching`) followed by
   contraction; the halo exchange needed to fold cross-rank edges is charged
   to the cost model.
2. **Initial partitioning** -- the coarsest graph is gathered to rank 0 and
   partitioned with the serial multi-constraint recursive bisection (the
   standard practice: the coarsest graph is tiny).
3. **Parallel uncoarsening** -- project and refine with the reservation
   scheme (:func:`repro.parallel.refine.parallel_kway_refine`).

The returned :class:`ParallelResult` carries both the partition quality and
the simulated-time accounting used by the scaling benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng, spawn
from ..coarsen.matching import matching_to_cmap
from ..errors import PartitionError
from ..graph.csr import Graph
from ..partition.config import PartitionOptions
from ..partition.recursive import partition_recursive
from ..refine.gain import edge_cut
from ..weights.balance import as_ubvec, imbalance
from .coarsen import parallel_matching
from .contract import parallel_contract
from .distgraph import DistGraph
from .refine import parallel_kway_refine
from .simcomm import CostModel, SimCluster, SimStats

__all__ = ["ParallelResult", "parallel_part_graph"]


@dataclass
class ParallelResult:
    """Partition plus simulated-execution accounting."""

    part: np.ndarray
    nparts: int
    nranks: int
    edgecut: int
    imbalance: np.ndarray
    feasible: bool
    stats: SimStats
    levels: int
    refine_stats: list[dict]
    #: simulated seconds per phase: {"coarsen": ..., "initpart": ..., "refine": ...}
    phase_times: dict | None = None

    @property
    def simulated_time(self) -> float:
        return self.stats.simulated_time

    @property
    def max_imbalance(self) -> float:
        """Worst imbalance over all constraints."""
        return float(self.imbalance.max(initial=0.0))

    def summary(self) -> str:
        imb = ", ".join(f"{x:.3f}" for x in self.imbalance)
        return (
            f"parallel(p={self.nranks}) k={self.nparts}: cut={self.edgecut} "
            f"imbalance=[{imb}] t_sim={self.simulated_time * 1e3:.2f}ms "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )


def parallel_part_graph(
    graph: Graph,
    nparts: int,
    nranks: int,
    *,
    options: PartitionOptions | None = None,
    cost: CostModel | None = None,
) -> ParallelResult:
    """Partition ``graph`` with the simulated parallel formulation.

    ``nranks`` simulated ranks cooperate; quality should track the serial
    k-way partitioner while simulated time exhibits the parallel scaling
    shape (see benchmark P1).
    """
    if options is None:
        options = PartitionOptions()
    if nparts < 1 or nparts > max(graph.nvtxs, 1):
        raise PartitionError("invalid nparts for this graph")
    rng = as_rng(options.seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    cluster = SimCluster(nranks, cost)

    coarsen_to = max(options.kway_coarsen_factor * nparts, options.coarsen_to)

    def _elapsed():
        return cluster.stats.simulated_time

    phase_marks = {"start": _elapsed()}

    # ---- Parallel coarsening.
    levels: list[tuple[Graph, np.ndarray]] = []
    cur = graph
    while cur.nvtxs > coarsen_to and len(levels) < options.max_coarsen_levels:
        dist = DistGraph(cur, nranks)
        (mrng,) = spawn(rng, 1)
        match = parallel_matching(dist, cluster, seed=mrng)
        cmap, ncoarse = matching_to_cmap(match)
        if ncoarse > options.min_shrink * cur.nvtxs:
            break
        levels.append((cur, cmap))
        cur = parallel_contract(dist, cluster, cmap, ncoarse)

    phase_marks["coarsen"] = _elapsed()

    # ---- Initial partitioning at rank 0 (gather + serial RB + bcast).
    cluster.gather([np.empty(cur.nvtxs // max(nranks, 1), dtype=np.int64)] * nranks)
    (irng,) = spawn(rng, 1)
    init_opts = options.with_(seed=irng, final_balance=True)
    where = partition_recursive(cur, nparts, init_opts)
    cluster.add_compute(0, 20 * (cur.nvtxs + 2 * cur.nedges))
    cluster.bcast(where)

    phase_marks["initpart"] = _elapsed()

    # ---- Parallel uncoarsening with reservation refinement.
    refine_stats: list[dict] = []
    for fine, cmap in reversed(levels):
        where = where[cmap]
        dist = DistGraph(fine, nranks)
        (rrng,) = spawn(rng, 1)
        st = parallel_kway_refine(
            dist, cluster, where, nparts,
            ubvec=ub, npasses=options.kway_refine_passes, seed=rrng,
        )
        refine_stats.append(st)

    phase_marks["refine"] = _elapsed()
    phase_times = {
        "coarsen": phase_marks["coarsen"] - phase_marks["start"],
        "initpart": phase_marks["initpart"] - phase_marks["coarsen"],
        "refine": phase_marks["refine"] - phase_marks["initpart"],
    }

    imb = imbalance(graph.vwgt, where, nparts)
    return ParallelResult(
        phase_times=phase_times,
        part=where,
        nparts=nparts,
        nranks=nranks,
        edgecut=edge_cut(graph, where),
        imbalance=imb,
        feasible=bool(np.all(imb <= ub + 1e-9)),
        stats=cluster.stats,
        levels=len(levels),
        refine_stats=refine_stats,
    )
