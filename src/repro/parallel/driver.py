"""Coarse-grain parallel multilevel multi-constraint partitioner.

Pipeline (one orchestrator, pluggable executors -- see
:mod:`repro.parallel.fabric`):

1. **Parallel coarsening** -- conflict-arbitrated heavy-edge matching
   (:func:`repro.parallel.coarsen.parallel_matching`) followed by
   contraction; the halo exchange needed to fold cross-rank edges travels
   the fabric (cost-model-charged on the simulator, really shipped on the
   shm executor).
2. **Initial partitioning** -- the coarsest graph is gathered to rank 0 and
   partitioned with the serial multi-constraint recursive bisection (the
   standard practice: the coarsest graph is tiny).
3. **Parallel uncoarsening** -- project and refine with the reservation
   scheme (:func:`repro.parallel.refine.parallel_kway_refine`).

``executor="sim"`` (default) runs every rank step inline on a
deterministic BSP simulation with an alpha-beta cost model;
``executor="shm"`` runs the identical rank program in spawned worker
processes over ``multiprocessing.shared_memory`` CSR views
(:mod:`repro.parallel.shm`) -- same messages, same partition, real wall
clock.  The returned :class:`ParallelResult` carries the partition quality
plus whichever time accounting the executor produced (simulated seconds or
wall seconds).

Robustness (see ``docs/robustness.md`` and ``docs/parallel.md`` for the
full contract): the driver accepts a fault specification (``faults=``,
simulator only) injected through a :class:`~repro.faults.FaultyCluster`
and a :class:`~repro.faults.RecoveryPolicy` (``recovery=``).  Each phase
runs under retry-with-backoff for transient communication failures and a
phase budget measured on the executor's clock -- simulated seconds under
``sim``, **real wall-clock** under ``shm``, where backoff really sleeps
and a crashed or hung worker process surfaces as
:class:`~repro.errors.RankCrashedError` /
:class:`~repro.errors.PhaseTimeoutError`.  On unrecoverable failure the
driver *degrades gracefully*: it falls back to the serial k-way
partitioner, marks the result (``result.degraded``,
``result.degraded_reason``) and records a ``degraded_fallback`` trace span
plus a ``parallel.degraded`` counter so ``TraceReport`` shows exactly what
happened.  In strict mode (``strict=True`` or
``RecoveryPolicy(allow_degraded=False)``) it raises
:class:`~repro.errors.DegradedResult` instead.  With no faults injected
the two executors are bit-identical to each other (asserted by
:func:`repro.parallel.parity.run_parity`), and the fallback partition is
derived from ``options.seed`` alone, so even a crashed run is reproducible
across executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import as_rng, spawn
from ..coarsen.matching import matching_to_cmap
from ..errors import CommError, DegradedResult, FaultError, FaultSpecError, PhaseTimeoutError
from ..faults.recovery import RecoveryPolicy, run_with_retries
from ..faults.spec import as_fault_spec
from ..graph.csr import Graph
from ..partition._events import emit_level_event
from ..partition.config import PartitionOptions
from ..partition.recursive import partition_recursive
from ..partition.validate import validate_request
from ..refine.gain import edge_cut
from ..trace import as_tracer
from ..weights.balance import FEASIBILITY_EPS, as_ubvec, imbalance
from .coarsen import parallel_matching
from .contract import parallel_contract
from .distgraph import DistGraph
from .fabric import SimFabric, as_fabric
from .refine import parallel_kway_refine
from .simcomm import CostModel, SimCluster

__all__ = ["ParallelResult", "parallel_part_graph"]


@dataclass
class ParallelResult:
    """Partition plus per-executor execution accounting."""

    part: np.ndarray
    nparts: int
    nranks: int
    edgecut: int
    imbalance: np.ndarray
    feasible: bool
    #: :class:`~repro.parallel.simcomm.SimStats` (``executor="sim"``) or
    #: :class:`~repro.parallel.shm.ShmStats` (``executor="shm"``).
    stats: object
    levels: int
    refine_stats: list[dict]
    #: seconds per phase on the executor's clock (simulated or wall):
    #: {"coarsen": ..., "initpart": ..., "refine": ...}
    phase_times: dict | None = None
    #: True when the parallel pipeline failed and the result came from the
    #: serial fallback path (documented graceful degradation).
    degraded: bool = False
    #: human-readable cause of the degradation (``None`` when not degraded).
    degraded_reason: str | None = None
    #: injected-fault counts (``repro.faults.FaultStats.to_dict``) when a
    #: fault spec was active, else ``None``.
    faults: dict | None = field(repr=False, default=None)
    #: transient communication failures absorbed by retry-with-backoff.
    retries: int = 0
    #: which executor produced the run ("sim" or "shm").
    executor: str = "sim"

    @property
    def simulated_time(self) -> float:
        """The executor's clock: modelled seconds under ``sim``, real wall
        seconds under ``shm`` (kept under the historical name)."""
        return self.stats.simulated_time

    @property
    def max_imbalance(self) -> float:
        """Worst imbalance over all constraints."""
        return float(self.imbalance.max(initial=0.0))

    def summary(self) -> str:
        imb = ", ".join(f"{x:.3f}" for x in self.imbalance)
        clock = "t_wall" if self.executor == "shm" else "t_sim"
        out = (
            f"parallel(p={self.nranks}) k={self.nparts}: cut={self.edgecut} "
            f"imbalance=[{imb}] {clock}={self.simulated_time * 1e3:.2f}ms "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )
        if self.executor != "sim":
            out += f" executor={self.executor}"
        if self.retries:
            out += f" retries={self.retries}"
        if self.degraded:
            out += " DEGRADED(serial fallback)"
        return out


def _make_fabric(executor, nranks, spec, cost, tracer):
    """Resolve the ``executor`` argument to a fabric instance."""
    if not isinstance(executor, str):
        fabric = as_fabric(executor)
        if spec.enabled and fabric.kind != "sim":
            raise FaultSpecError(
                "fault specs are simulator-only; use ShmFabric's "
                "inject_crash hook to test real worker failure")
        return fabric
    if executor == "sim":
        if spec.enabled:
            from ..faults.injector import FaultyCluster

            cluster: SimCluster = FaultyCluster(nranks, spec, cost)
        else:
            cluster = SimCluster(nranks, cost)
        return SimFabric(cluster)
    if executor == "shm":
        if spec.enabled:
            raise FaultSpecError(
                "fault specs are simulator-only (the injector screens "
                "simulated collectives); run the shm executor against real "
                "failures via ShmFabric(inject_crash=...)")
        from .shm import ShmFabric

        return ShmFabric(nranks, cost=cost, tracer=tracer)
    raise FaultSpecError(f"unknown executor {executor!r} (use 'sim' or 'shm')")


def parallel_part_graph(
    graph: Graph,
    nparts: int,
    nranks: int,
    *,
    options: PartitionOptions | None = None,
    cost: CostModel | None = None,
    tracer=None,
    faults=None,
    recovery: RecoveryPolicy | None = None,
    strict: bool = False,
    executor="sim",
) -> ParallelResult:
    """Partition ``graph`` with the coarse-grain parallel formulation.

    ``nranks`` ranks cooperate; quality should track the serial k-way
    partitioner while the time accounting exhibits the parallel scaling
    shape (see benchmark P1).  ``executor`` selects how ranks execute:
    ``"sim"`` (deterministic in-process BSP simulation, default),
    ``"shm"`` (real spawned processes over shared-memory CSR views -- same
    messages, bit-identical partition, wall-clock timing), or an existing
    fabric instance (it is closed when the run finishes).  ``tracer``
    records the run under a ``parallel_partition`` root span whose phase
    spans carry wall time plus the executor clock (``sim_seconds``).

    ``faults`` (a :class:`repro.faults.FaultSpec`, spec string, or dict)
    injects deterministic network faults into the *simulated* executor;
    ``recovery`` tunes the retry/backoff/timeout/degradation behaviour
    (timeouts fire on real wall-clock under ``shm``); ``strict=True``
    forbids the serial fallback (failures raise
    :class:`~repro.errors.DegradedResult` instead).
    """
    if options is None:
        options = PartitionOptions()
    validate_request(graph, nparts, options=options, nranks=nranks)
    tracer = as_tracer(tracer)
    rng = as_rng(options.seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    spec = as_fault_spec(faults)
    policy = recovery if recovery is not None else RecoveryPolicy()
    if strict:
        policy = policy.with_(allow_degraded=False)
    fabric = _make_fabric(executor, nranks, spec, cost, tracer)

    progress = {"levels": 0, "retries": 0, "phase_times": {}}
    try:
        with tracer.span("parallel_partition", nvtxs=graph.nvtxs,
                         nedges=graph.nedges, ncon=graph.ncon, nparts=nparts,
                         nranks=nranks, executor=fabric.kind) as root:
            try:
                result = _pipeline(graph, nparts, nranks, options, fabric,
                                   policy, tracer, root, rng, ub, progress)
            except (CommError, FaultError) as exc:
                tracer.incr("parallel.degraded")
                if not policy.allow_degraded:
                    if tracer.enabled:
                        root.set(degraded_refused=type(exc).__name__)
                    raise DegradedResult(
                        f"parallel run failed ({type(exc).__name__}: {exc}); "
                        "serial fallback disabled by strict mode") from exc
                result = _degraded_result(graph, nparts, nranks, options,
                                          fabric, tracer, root, rng, ub,
                                          progress, exc)
    finally:
        fabric.close()
    result.retries = progress["retries"]
    result.executor = fabric.kind
    fault_stats = getattr(fabric, "faults", None)
    if fault_stats is not None:
        result.faults = fault_stats.to_dict()
        if tracer.enabled:
            for kind, count in result.faults.items():
                if count:
                    tracer.incr(f"faults.{kind}", count)
    return result


def _retrying(progress, make_attempt, fabric, policy, *, phase, deadline,
              tracer):
    """``run_with_retries`` + retry bookkeeping in ``progress``."""
    value, retries = run_with_retries(make_attempt, fabric, policy,
                                      phase=phase, deadline=deadline,
                                      tracer=tracer)
    progress["retries"] += retries
    return value


def _pipeline(graph, nparts, nranks, options, fabric, policy, tracer, root,
              rng, ub, progress) -> ParallelResult:
    """The parallel pipeline proper (may raise Comm/Fault errors)."""
    coarsen_to = max(options.kway_coarsen_factor * nparts, options.coarsen_to)

    _elapsed = fabric.elapsed
    phase_marks = {"start": _elapsed()}

    # ---- Parallel coarsening.
    fabric.set_phase("coarsen")
    deadline = policy.deadline(_elapsed())
    levels: list[tuple[Graph, np.ndarray]] = []
    cur = graph
    with tracer.span("coarsen") as csp:
        while cur.nvtxs > coarsen_to and len(levels) < options.max_coarsen_levels:
            if deadline is not None and _elapsed() > deadline:
                raise PhaseTimeoutError(
                    f"phase 'coarsen' exceeded its time budget "
                    f"({policy.phase_timeout:g}s)")
            with tracer.span("coarsen_level", nvtxs=cur.nvtxs) as sp:
                dist = DistGraph(cur, nranks)

                def match_attempt(dist=dist):
                    (mrng,) = spawn(rng, 1)
                    return parallel_matching(dist, fabric, seed=mrng)

                match = _retrying(progress, match_attempt, fabric, policy,
                                  phase="coarsen", deadline=deadline,
                                  tracer=tracer)
                cmap, ncoarse = matching_to_cmap(match)
                if ncoarse > options.min_shrink * cur.nvtxs:
                    sp.set(stalled=True)
                    break
                levels.append((cur, cmap))
                nxt = _retrying(
                    progress,
                    lambda dist=dist, cmap=cmap, ncoarse=ncoarse:
                        parallel_contract(dist, fabric, cmap, ncoarse),
                    fabric, policy, phase="coarsen", deadline=deadline,
                    tracer=tracer)
                if tracer.enabled:
                    sp.set(nedges=cur.nedges, coarse_nvtxs=nxt.nvtxs,
                           shrink=ncoarse / cur.nvtxs)
                cur = nxt
                progress["levels"] = len(levels)
        phase_marks["coarsen"] = _elapsed()
        progress["phase_times"]["coarsen"] = (
            phase_marks["coarsen"] - phase_marks["start"])
        if tracer.enabled:
            csp.set(levels=[g.nvtxs for g, _ in levels] + [cur.nvtxs],
                    sim_seconds=phase_marks["coarsen"] - phase_marks["start"])
    if tracer.enabled:
        tracer.observe("parallel.phase_seconds.coarsen",
                       progress["phase_times"]["coarsen"])

    # ---- Initial partitioning at rank 0 (gather + serial RB + bcast).
    fabric.set_phase("initpart")
    deadline = policy.deadline(_elapsed())
    with tracer.span("initpart", nvtxs=cur.nvtxs) as isp:

        def init_attempt():
            # Zeroed (not np.empty) so the parity harness can digest the
            # payload bytes deterministically; only the size is charged.
            fabric.gather(
                [np.zeros(cur.nvtxs // max(nranks, 1), dtype=np.int64)] * nranks)
            (irng,) = spawn(rng, 1)
            init_opts = options.with_(seed=irng, final_balance=True)
            w = partition_recursive(cur, nparts, init_opts, tracer=tracer)
            fabric.add_compute(0, 20 * (cur.nvtxs + 2 * cur.nedges))
            fabric.bcast(w)
            return w

        where = _retrying(progress, init_attempt, fabric, policy,
                          phase="initpart", deadline=deadline, tracer=tracer)
        phase_marks["initpart"] = _elapsed()
        progress["phase_times"]["initpart"] = (
            phase_marks["initpart"] - phase_marks["coarsen"])
        if tracer.enabled:
            isp.set(cut=int(edge_cut(cur, where)),
                    sim_seconds=phase_marks["initpart"] - phase_marks["coarsen"])
    if tracer.enabled:
        tracer.observe("parallel.phase_seconds.initpart",
                       progress["phase_times"]["initpart"])
        emit_level_event(
            tracer, phase="initpart", direction="initial", level=len(levels),
            graph=cur, where=where, nparts=nparts, fracs=None,
            cut=int(edge_cut(cur, where)),
            seconds=progress["phase_times"]["initpart"])

    # ---- Parallel uncoarsening with reservation refinement.
    fabric.set_phase("refine")
    deadline = policy.deadline(_elapsed())
    refine_stats: list[dict] = []
    with tracer.span("refine") as rsp:
        for idx in range(len(levels) - 1, -1, -1):
            fine, cmap = levels[idx]
            if deadline is not None and _elapsed() > deadline:
                raise PhaseTimeoutError(
                    f"phase 'refine' exceeded its time budget "
                    f"({policy.phase_timeout:g}s)")
            where = where[cmap]
            t_level = _elapsed()
            with tracer.span("level", nvtxs=fine.nvtxs) as sp:
                dist = DistGraph(fine, nranks)

                def refine_attempt(dist=dist, where=where):
                    (rrng,) = spawn(rng, 1)
                    trial = where.copy()
                    st = parallel_kway_refine(
                        dist, fabric, trial, nparts,
                        ubvec=ub, npasses=options.kway_refine_passes, seed=rrng,
                    )
                    return trial, st

                where, st = _retrying(progress, refine_attempt, fabric,
                                      policy, phase="refine",
                                      deadline=deadline, tracer=tracer)
                refine_stats.append(st)
                if tracer.enabled:
                    sp.set(cut=int(edge_cut(fine, where)),
                           **{k: v for k, v in st.items()
                              if isinstance(v, (bool, int, float))})
                    tracer.incr("parallel.committed", int(st["committed"]))
            if tracer.enabled:
                tracer.observe("parallel.level_seconds.refine",
                               _elapsed() - t_level)
                emit_level_event(
                    tracer, phase="refine", direction="uncoarsening",
                    level=idx, graph=fine, where=where, nparts=nparts,
                    fracs=None, cut=int(edge_cut(fine, where)),
                    moves=int(st.get("committed", 0)),
                    passes=int(st.get("passes", 0)),
                    seconds=_elapsed() - t_level)
        phase_marks["refine"] = _elapsed()
        progress["phase_times"]["refine"] = (
            phase_marks["refine"] - phase_marks["initpart"])
        if tracer.enabled:
            rsp.set(sim_seconds=phase_marks["refine"] - phase_marks["initpart"])
    if tracer.enabled:
        tracer.observe("parallel.phase_seconds.refine",
                       progress["phase_times"]["refine"])

    phase_times = {
        "coarsen": phase_marks["coarsen"] - phase_marks["start"],
        "initpart": phase_marks["initpart"] - phase_marks["coarsen"],
        "refine": phase_marks["refine"] - phase_marks["initpart"],
    }

    imb = imbalance(graph.vwgt, where, nparts)
    if tracer.enabled:
        root.set(cut=int(edge_cut(graph, where)),
                 max_imbalance=float(imb.max(initial=0.0)),
                 feasible=bool(np.all(imb <= ub + FEASIBILITY_EPS)),
                 sim_seconds=phase_marks["refine"] - phase_marks["start"])
    return ParallelResult(
        phase_times=phase_times,
        part=where,
        nparts=nparts,
        nranks=nranks,
        edgecut=edge_cut(graph, where),
        imbalance=imb,
        feasible=bool(np.all(imb <= ub + FEASIBILITY_EPS)),
        stats=fabric.stats,
        levels=len(levels),
        refine_stats=refine_stats,
    )


def _fallback_rng(options, rng):
    """Seed for the serial fallback.

    Derived from ``options.seed`` alone (not from how far the parallel
    run progressed) so a degraded run reproduces the same partition
    regardless of where -- or on which executor -- the failure struck.
    Only when the caller passed a live ``Generator`` as the seed is the
    pipeline rng used (there is no stable value to restart from)."""
    if isinstance(options.seed, np.random.Generator):
        (srng,) = spawn(rng, 1)
        return srng
    (srng,) = spawn(as_rng(options.seed), 1)
    return srng


def _degraded_result(graph, nparts, nranks, options, fabric, tracer, root,
                     rng, ub, progress, exc) -> ParallelResult:
    """Serial fallback: the documented graceful-degradation path."""
    from ..partition.api import part_graph

    reason = f"{type(exc).__name__}: {exc}"
    t_fail = fabric.elapsed()
    with tracer.span("degraded_fallback", cause=type(exc).__name__,
                     reason=str(exc)):
        srng = _fallback_rng(options, rng)
        serial = part_graph(graph, nparts, method="kway",
                            options=options.with_(seed=srng), tracer=tracer)
    # The fallback runs on the one surviving host: on the simulator its
    # compute is charged to the modelled clock (same constant as the
    # serial initial-partitioning step); on the shm executor the wall
    # clock already paid for it.
    fabric.charge_fallback(graph)
    phase_times = dict(progress["phase_times"])
    phase_times["fallback"] = fabric.elapsed() - t_fail
    if tracer.enabled:
        root.set(degraded=True, degraded_reason=reason,
                 cut=int(serial.edgecut),
                 max_imbalance=float(serial.imbalance.max(initial=0.0)),
                 feasible=serial.feasible)
    return ParallelResult(
        part=serial.part,
        nparts=nparts,
        nranks=nranks,
        edgecut=serial.edgecut,
        imbalance=serial.imbalance,
        feasible=serial.feasible,
        stats=fabric.stats,
        levels=progress["levels"],
        refine_stats=[],
        phase_times=phase_times,
        degraded=True,
        degraded_reason=reason,
    )
