"""Executor seam: one orchestrator, two fabrics.

The parallel kernels (``coarsen``/``contract``/``refine``) and the driver
are written against a small *fabric* interface:

* ``publish(**arrays)`` / ``publish_graph(g)`` -- make read-only snapshot
  arrays visible to every rank;
* ``run(fn_name, kwargs_list)`` -- execute one registered rank-program
  step (:mod:`repro.parallel.rankprog`) on every rank, returning the
  per-rank results;
* ``exchange`` / ``allreduce`` / ``gather`` / ``bcast`` / ``barrier`` --
  the BSP collectives;
* ``elapsed()`` -- the fabric's clock (simulated seconds on the
  simulator, real wall seconds on the shm executor), which is what the
  :class:`~repro.faults.RecoveryPolicy` deadlines are measured against.

:class:`SimFabric` runs the steps inline in rank order and charges every
byte and op to a :class:`~repro.parallel.simcomm.SimCluster` (or a
:class:`~repro.faults.FaultyCluster` -- fault screening keeps working
because the collectives still flow through the cluster).
:class:`~repro.parallel.shm.ShmFabric` runs the same steps in spawned
worker processes over shared memory.  Because both fabrics execute the
identical step functions on identical snapshots with identical shipped
RNGs, their messages and results are bit-identical; :class:`MessageLog`
records the traffic so the parity harness can assert it.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .rankprog import RANK_FNS, RankContext
from .simcomm import SimCluster

__all__ = ["MessageLog", "SimFabric", "as_fabric"]


class MessageLog:
    """Flat record of every collective: one tuple per message.

    Entries are ``(step, phase, op, src, dst, nbytes, digest)`` with
    ``src``/``dst`` of ``-1`` for whole-fabric legs (reduce results,
    broadcast payloads).  Two runs are *message-equal* iff their entry
    lists compare equal."""

    def __init__(self):
        self.entries: list[tuple] = []

    @staticmethod
    def _digest(arr: np.ndarray) -> str:
        arr = np.ascontiguousarray(arr)
        return hashlib.sha256(arr.tobytes()).hexdigest()[:16]

    def record(self, step, phase, op, src, dst, arr) -> None:
        arr = np.asarray(arr)
        self.entries.append(
            (step, phase, op, src, dst, arr.nbytes, self._digest(arr)))

    def __len__(self):
        return len(self.entries)

    def diff(self, other: "MessageLog") -> str | None:
        """First divergence against ``other`` (``None`` when equal)."""
        a, b = self.entries, other.entries
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return f"entry {i}: {x} != {y}"
        if len(a) != len(b):
            return f"length {len(a)} != {len(b)}"
        return None


class _FabricBase:
    """Shared bookkeeping: phase tags, step counter, message logging."""

    #: True when ``elapsed()`` is real wall-clock (retry backoff should
    #: sleep instead of charging a simulated clock).
    realtime = False

    def __init__(self, nranks: int, message_log: MessageLog | None = None):
        self.nranks = nranks
        self.log = message_log
        self.phase = ""
        self._step = 0

    def set_phase(self, name: str) -> None:
        self.phase = str(name)

    # -- logging helpers ------------------------------------------------ #

    def _log_exchange(self, payloads) -> None:
        if self.log is None:
            return
        self._step += 1
        for src in range(self.nranks):
            for dst in sorted(payloads[src]):
                self.log.record(self._step, self.phase, "alltoall",
                                src, dst, payloads[src][dst])

    def _log_collective(self, op, values, result) -> None:
        if self.log is None:
            return
        self._step += 1
        for src, v in enumerate(values):
            self.log.record(self._step, self.phase, op, src, -1, v)
        if result is not None:
            self.log.record(self._step, self.phase, op, -1, -1, result)

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SimFabric(_FabricBase):
    """Inline fabric over a (possibly fault-injecting) simulated cluster."""

    kind = "sim"

    def __init__(self, cluster: SimCluster,
                 message_log: MessageLog | None = None):
        super().__init__(cluster.nranks, message_log)
        self.cluster = cluster
        self._arrays: dict = {}
        self._graph_token = None
        self._ctxs = [RankContext(r, cluster.nranks, self._arrays, {})
                      for r in range(cluster.nranks)]

    # -- clocks & accounting -------------------------------------------- #

    @property
    def stats(self):
        return self.cluster.stats

    @property
    def cost(self):
        return self.cluster.cost

    @property
    def faults(self):
        return getattr(self.cluster, "faults", None)

    def elapsed(self) -> float:
        return self.cluster.stats.simulated_time

    def add_compute(self, rank: int, ops: float) -> None:
        self.cluster.add_compute(rank, ops)

    def charge_fallback(self, graph) -> None:
        """Charge the serial fallback's compute to the simulated clock
        (same constant as the serial initial-partitioning step)."""
        self.cluster.stats.compute_time += (
            20 * (graph.nvtxs + 2 * graph.nedges) / self.cluster.cost.compute_rate)

    def set_phase(self, name: str) -> None:
        super().set_phase(name)
        self.cluster.set_phase(name)

    # -- snapshots ------------------------------------------------------ #

    def publish(self, **arrays) -> None:
        """In the simulation ranks share the process: publishing stores a
        reference (the orchestrator never mutates a published array while
        a step is in flight, so reference == snapshot)."""
        self._arrays.update(arrays)

    def publish_graph(self, graph) -> None:
        if self._graph_token is id(graph):
            return
        self._graph_token = id(graph)
        self.publish(xadj=graph.xadj, adjncy=graph.adjncy,
                     adjwgt=graph.adjwgt, vwgt=graph.vwgt)

    # -- execution ------------------------------------------------------ #

    def run(self, fn_name: str, kwargs_list: list[dict]) -> list:
        fn = RANK_FNS[fn_name]
        out = []
        for r in range(self.nranks):
            result, ops = fn(self._ctxs[r], **kwargs_list[r])
            self.cluster.add_compute(r, ops)
            out.append(result)
        return out

    # -- collectives ---------------------------------------------------- #

    def exchange(self, payloads: list[dict]) -> list[dict]:
        self._log_exchange(payloads)
        return self.cluster.alltoall(payloads)

    def allreduce(self, values, op: str = "sum") -> np.ndarray:
        out = self.cluster.allreduce(values, op)
        self._log_collective("allreduce_" + op, values, out)
        return out

    def gather(self, values, root: int = 0):
        out = self.cluster.gather(values, root)
        self._log_collective("gather", values, None)
        return out

    def bcast(self, value, root: int = 0):
        out = self.cluster.bcast(value, root)
        self._log_collective("bcast", [value], None)
        return out

    def barrier(self) -> None:
        self.cluster.barrier()


def as_fabric(comm) -> "_FabricBase":
    """Coerce to a fabric: pass fabrics through, wrap a bare
    :class:`SimCluster` (the pre-executor kernel API used by tests and
    benchmarks) in a fresh :class:`SimFabric`."""
    if isinstance(comm, _FabricBase):
        return comm
    if isinstance(comm, SimCluster):
        return SimFabric(comm)
    raise TypeError(f"not a fabric or SimCluster: {type(comm).__name__}")
