"""The per-rank program: pure step functions shared by both executors.

Every parallel kernel (matching, contraction, refinement) is split into
*steps*.  A step is a module-level function registered in :data:`RANK_FNS`
that receives a :class:`RankContext` -- published read-only arrays plus a
small per-rank scratch dict -- and keyword arguments shipped by the
orchestrator, and returns ``(result, ops)`` where ``ops`` is the abstract
operation count the simulator charges to its cost model (the shm executor
ignores it: its clock is the wall).

The contract that makes sim/shm bit-identity hold *by construction*:

* a step only **reads** published arrays (they are snapshots: the
  orchestrator never mutates them while a step is in flight);
* all cross-rank data travels through the step's return value and the
  ``incoming`` kwarg of a later step -- there is no shared mutable state
  between ranks;
* any randomness comes from a per-rank generator spawned by the
  orchestrator and shipped in, so the draw sequence is independent of
  which process executes the step;
* iteration over ``incoming`` messages is in ascending source-rank order.

Because the functions are module-level and their arguments picklable, the
shm executor can run the very same code in spawned worker processes.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..weights.balance import FEASIBILITY_EPS
from .distgraph import block_owner, block_range

__all__ = ["RANK_FNS", "RankContext", "PENDING", "rankfn"]

_INT = np.int64

#: Round-local sentinel: a vertex that proposed to a remote partner and is
#: locked until the owner's verdict arrives (never visible across rounds).
PENDING = _INT(-2)

#: Registry of step functions, keyed by ``__name__`` (the wire format the
#: shm executor dispatches on).
RANK_FNS: dict = {}


def rankfn(fn):
    """Register a step function under its name."""
    RANK_FNS[fn.__name__] = fn
    return fn


class RankContext:
    """What a step sees: its rank, the fleet size, the published arrays
    (``arrays[name] -> np.ndarray``, read-only by contract) and a scratch
    dict that persists between the steps of one kernel round."""

    __slots__ = ("rank", "nranks", "arrays", "state")

    def __init__(self, rank: int, nranks: int, arrays: dict, state: dict):
        self.rank = rank
        self.nranks = nranks
        self.arrays = arrays
        self.state = state


# --------------------------------------------------------------------- #
# Matching (one round = propose -> arbitrate -> finish)
# --------------------------------------------------------------------- #

@rankfn
def match_propose(ctx: RankContext, seed) -> tuple:
    """Propose a heavy-edge match for every unmatched local vertex.

    Local pairs commit immediately; a remote proposal locks the proposer
    (:data:`PENDING`) for the round and ships ``(v, target, weight)`` to
    the target's owner.  Remote match state is read from the published
    ``match_prev`` snapshot (one round stale -- the protocol's defining
    approximation)."""
    xadj = ctx.arrays["xadj"]
    adjncy = ctx.arrays["adjncy"]
    adjwgt = ctx.arrays["adjwgt"]
    prev = ctx.arrays["match_prev"]
    n = prev.shape[0]
    lo, hi = block_range(n, ctx.nranks, ctx.rank)
    rng = as_rng(seed)
    local = prev[lo:hi].copy()
    pending: dict[int, int] = {}
    out: dict[int, list[tuple[int, int, int]]] = {}
    ops = 0
    for v in rng.permutation(np.arange(lo, hi)).tolist():
        if local[v - lo] != v:
            continue
        beg, end = xadj[v], xadj[v + 1]
        nbrs = adjncy[beg:end]
        ws = adjwgt[beg:end]
        ops += len(nbrs)
        best_u, best_w = -1, -1
        for u, w in zip(nbrs.tolist(), ws.tolist()):
            if lo <= u < hi:
                free = local[u - lo] == u
            else:
                free = prev[u] == u
            if free and w > best_w:
                best_u, best_w = u, w
        if best_u < 0:
            continue
        if lo <= best_u < hi:
            # Local arbitration is immediate.
            local[v - lo] = best_u
            local[best_u - lo] = v
        else:
            local[v - lo] = PENDING
            pending[v] = best_u
            owner = int(block_owner(n, ctx.nranks, best_u))
            out.setdefault(owner, []).append((v, best_u, best_w))
    ctx.state["m_local"] = local
    ctx.state["m_pending"] = pending
    ctx.state["m_lo"] = lo
    payload = {dst: np.asarray(rows, dtype=_INT).reshape(-1, 3)
               for dst, rows in out.items()}
    return payload, ops


@rankfn
def match_arbitrate(ctx: RankContext, incoming: dict) -> tuple:
    """Arbitrate remote proposals at the owner.

    A *free* target accepts the heaviest proposal (ties to the lower
    proposer id) and notifies the winner's owner.  A *pending* target
    ``u`` accepts only the mutual proposal from its own target ``v``
    (``pending[u] == v``): both owners hold the evidence for the
    handshake, so the pair commits symmetrically with no extra message --
    this is what keeps mutually-best cross-rank pairs from livelocking."""
    local = ctx.state["m_local"]
    pending = ctx.state["m_pending"]
    lo = ctx.state["m_lo"]
    n = ctx.arrays["match_prev"].shape[0]
    best: dict[int, tuple[int, int]] = {}  # target -> (weight, proposer)
    ops = 0
    for src in sorted(incoming):
        for v, u, w in incoming[src].tolist():
            ops += 1
            ul = int(local[u - lo])
            if ul == u:
                cur = best.get(u)
                if cur is None or (w, -v) > (cur[0], -cur[1]):
                    best[u] = (w, v)
            elif ul == PENDING and pending.get(u) == v:
                local[u - lo] = v
                del pending[u]
    out: dict[int, list[tuple[int, int]]] = {}
    for u in sorted(best):
        w, v = best[u]
        if local[u - lo] != u:
            continue
        local[u - lo] = v
        owner = int(block_owner(n, ctx.nranks, v))
        out.setdefault(owner, []).append((v, u))
    payload = {dst: np.asarray(rows, dtype=_INT).reshape(-1, 2)
               for dst, rows in out.items()}
    return payload, ops


@rankfn
def match_finish(ctx: RankContext, incoming: dict) -> tuple:
    """Apply acceptance notifications, release unaccepted pending
    proposers (they retry next round), and return the final local block."""
    local = ctx.state["m_local"]
    pending = ctx.state["m_pending"]
    lo = ctx.state["m_lo"]
    ops = 0
    for src in sorted(incoming):
        for v, u in incoming[src].tolist():
            ops += 1
            local[v - lo] = u
            pending.pop(v, None)
    for v in sorted(pending):
        local[v - lo] = v
    pending.clear()
    return local, ops


# --------------------------------------------------------------------- #
# Contraction
# --------------------------------------------------------------------- #

@rankfn
def contract_ghosts(ctx: RankContext) -> tuple:
    """Enumerate this rank's halo and the ``(id, cmap[id])`` rows each
    owner will ship it (the request side of the halo exchange; the
    orchestrator materialises the replies)."""
    xadj = ctx.arrays["xadj"]
    adjncy = ctx.arrays["adjncy"]
    cmap = ctx.arrays["cmap"]
    n = cmap.shape[0]
    lo, hi = block_range(n, ctx.nranks, ctx.rank)
    nbrs = adjncy[xadj[lo]:xadj[hi]]
    foreign = np.unique(nbrs[(nbrs < lo) | (nbrs >= hi)])
    out: dict[int, np.ndarray] = {}
    if foreign.size:
        owners = block_owner(n, ctx.nranks, foreign)
        for o in np.unique(owners).tolist():
            ids = foreign[owners == o]
            out[int(o)] = np.stack([ids, cmap[ids]], axis=1)
    return out, int(foreign.size)


@rankfn
def contract_fold(ctx: RankContext, ncoarse: int) -> tuple:
    """Map local edges to coarse endpoint pairs, drop self-loops,
    pre-merge local duplicates, and route every coarse edge (and
    vertex-weight row) to the owner of its coarse source."""
    xadj = ctx.arrays["xadj"]
    adjncy = ctx.arrays["adjncy"]
    adjwgt = ctx.arrays["adjwgt"]
    vwgt = ctx.arrays["vwgt"]
    cmap = ctx.arrays["cmap"]
    n = cmap.shape[0]
    lo, hi = block_range(n, ctx.nranks, ctx.rank)
    beg, end = xadj[lo], xadj[hi]
    counts = np.diff(xadj[lo:hi + 1])
    src = np.repeat(np.arange(lo, hi, dtype=_INT), counts)
    cu = cmap[src]
    cv = cmap[adjncy[beg:end]]
    w = adjwgt[beg:end]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], w[keep]

    # Local pre-merge (the standard combining optimisation).
    key = cu * _INT(ncoarse) + cv
    uniq, inverse = np.unique(key, return_inverse=True)
    wsum = np.zeros(uniq.shape[0], dtype=_INT)
    np.add.at(wsum, inverse, w)
    cu = (uniq // ncoarse).astype(_INT)
    cv = (uniq % ncoarse).astype(_INT)

    edge_out: dict[int, np.ndarray] = {}
    owners = block_owner(ncoarse, ctx.nranks, cu)
    for o in np.unique(owners).tolist():
        sel = owners == o
        edge_out[int(o)] = np.stack([cu[sel], cv[sel], wsum[sel]], axis=1)

    vw_out: dict[int, np.ndarray] = {}
    local_cv = cmap[lo:hi]
    vw_owners = block_owner(ncoarse, ctx.nranks, local_cv)
    rows = np.concatenate([local_cv[:, None], vwgt[lo:hi]], axis=1)
    for o in np.unique(vw_owners).tolist():
        vw_out[int(o)] = rows[vw_owners == o]
    return (edge_out, vw_out), int(end - beg)


# --------------------------------------------------------------------- #
# Refinement (phase 1 of the reservation scheme)
# --------------------------------------------------------------------- #

@rankfn
def refine_select(ctx: RankContext, nparts: int, pw, caps, seed) -> tuple:
    """Tentatively select gainful boundary moves against the shipped
    part-weight snapshot (plus this rank's own proposed inflow), in the
    first-touch neighbour order of the serial k-way kernel.  Returns the
    ordered proposal triples and the proposed inflow per (part,
    constraint)."""
    xadj = ctx.arrays["xadj"]
    adjncy = ctx.arrays["adjncy"]
    adjwgt = ctx.arrays["adjwgt"]
    where = ctx.arrays["where"]
    relw = ctx.arrays["relw"]
    n = where.shape[0]
    m = relw.shape[1]
    lo, hi = block_range(n, ctx.nranks, ctx.rank)
    rng = as_rng(seed)

    # Local boundary mask, one vectorised sweep.
    beg, end = xadj[lo], xadj[hi]
    counts = np.diff(xadj[lo:hi + 1])
    src = np.repeat(np.arange(lo, hi, dtype=_INT), counts)
    crossing = where[src] != where[adjncy[beg:end]]
    mask = np.zeros(hi - lo, dtype=bool)
    np.logical_or.at(mask, src - lo, crossing)
    lb = np.arange(lo, hi, dtype=_INT)[mask]

    local_prop: list[tuple[int, int, int]] = []
    local_in = np.zeros((nparts, m))
    ops = 0
    for v in rng.permutation(lb).tolist():
        nbw: dict[int, int] = {}
        get = nbw.get
        for i in range(xadj[v], xadj[v + 1]):
            d = int(where[adjncy[i]])
            nbw[d] = get(d, 0) + int(adjwgt[i])
        ops += int(xadj[v + 1] - xadj[v])
        s = int(where[v])
        w_in = nbw.get(s, 0)
        rv = relw[v]
        best_d, best_gain = -1, 0
        for d, wd in nbw.items():
            if d == s:
                continue
            gain = wd - w_in
            if gain <= 0:
                continue
            if np.any(pw[d] + local_in[d] + rv > caps[d] + FEASIBILITY_EPS):
                continue
            if gain > best_gain:
                best_d, best_gain = d, gain
        if best_d >= 0:
            local_prop.append((v, best_d, best_gain))
            local_in[best_d] += rv
    props = np.asarray(local_prop, dtype=_INT).reshape(-1, 3)
    return (props, local_in), ops
