"""Coarse-grain parallel matching with conflict arbitration.

Each round, every rank proposes a heavy-edge match for its unmatched local
vertices.  Proposals between vertices of the same rank are resolved locally;
proposals to a remote vertex are shipped to its owner (one ``alltoall``),
which arbitrates conflicting requests deterministically -- the heaviest edge
wins, ties broken by the lower proposer id (the protocol of the coarse-grain
formulation; this arbitration is what makes the parallel matching *less*
maximal than the serial one, producing the "slow coarsening" effect the
literature reports).  Acceptance notifications return in a second
``alltoall``.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..graph.csr import Graph
from .distgraph import DistGraph
from .simcomm import SimCluster

__all__ = ["parallel_matching"]

_INT = np.int64


def parallel_matching(
    dist: DistGraph,
    cluster: SimCluster,
    seed=None,
    rounds: int = 4,
) -> np.ndarray:
    """Compute a matching of ``dist.graph`` with the coarse-grain protocol.

    Returns the global match array (``match[v] = partner or v``).  All
    communication is charged to ``cluster``.
    """
    g = dist.graph
    rng = as_rng(seed)
    n = g.nvtxs
    match = np.arange(n, dtype=_INT)
    xadj, adjncy, adjwgt = g.xadj, g.adjncy, g.adjwgt

    for _ in range(rounds):
        if np.all(match != np.arange(n)):
            break
        # ---- Phase 1: each rank proposes for its unmatched local vertices.
        proposals: list[dict[int, np.ndarray]] = [dict() for _ in range(cluster.nranks)]
        local_batches: list[list[tuple[int, int, int]]] = [[] for _ in range(cluster.nranks)]
        for r in range(cluster.nranks):
            lo, hi = dist.local_range(r)
            ops = 0
            out: dict[int, list[tuple[int, int, int]]] = {}
            for v in rng.permutation(np.arange(lo, hi)).tolist():
                if match[v] != v:
                    continue
                beg, end = xadj[v], xadj[v + 1]
                nbrs = adjncy[beg:end]
                ws = adjwgt[beg:end]
                ops += len(nbrs)
                best_u, best_w = -1, -1
                for u, w in zip(nbrs.tolist(), ws.tolist()):
                    # Ranks only know the match state of ghosts as of the
                    # previous round; stale proposals get rejected by the
                    # owner, which is exactly the protocol's behaviour.
                    if match[u] == u and w > best_w:
                        best_u, best_w = u, w
                if best_u < 0:
                    continue
                owner = int(dist.owner(best_u))
                if owner == r:
                    # Local arbitration is immediate.
                    if match[best_u] == best_u and match[v] == v:
                        match[v] = best_u
                        match[best_u] = v
                else:
                    out.setdefault(owner, []).append((v, best_u, best_w))
            cluster.add_compute(r, ops)
            for dst, rows in out.items():
                proposals[r][dst] = np.asarray(rows, dtype=_INT).reshape(-1, 3)
            local_batches[r] = []

        delivered = cluster.alltoall(proposals)

        # ---- Phase 2: owners arbitrate remote proposals.
        accepts: list[dict[int, np.ndarray]] = [dict() for _ in range(cluster.nranks)]
        for r in range(cluster.nranks):
            best: dict[int, tuple[int, int]] = {}  # target -> (weight, proposer)
            ops = 0
            for src, arr in delivered[r].items():
                for v, u, w in arr.tolist():
                    ops += 1
                    if match[u] != u:
                        continue  # already taken this or an earlier round
                    cur = best.get(u)
                    # Heaviest edge wins; lower proposer id breaks ties.
                    if cur is None or (w, -v) > (cur[0], -cur[1]):
                        best[u] = (w, v)
            cluster.add_compute(r, ops)
            winners: dict[int, list[tuple[int, int]]] = {}
            for u, (w, v) in best.items():
                if match[u] != u or match[v] != v:
                    continue
                match[u] = v
                match[v] = u
                winners.setdefault(int(dist.owner(v)), []).append((v, u))
            for dst, rows in winners.items():
                accepts[r][dst] = np.asarray(rows, dtype=_INT).reshape(-1, 2)

        # ---- Phase 3: acceptance notifications (match[] already updated in
        # the shared simulation state; the exchange is charged for realism).
        cluster.alltoall(accepts)

    return match
