"""Coarse-grain parallel matching with conflict arbitration.

Each round, every rank proposes a heavy-edge match for its unmatched local
vertices against a published snapshot of the previous round's global match
(:func:`repro.parallel.rankprog.match_propose`).  Local pairs commit
immediately; a remote proposal locks the proposer for the round and ships
to the target's owner, which arbitrates deterministically -- the heaviest
edge wins, ties broken by the lower proposer id, and mutually-proposing
cross-rank pairs commit via a symmetric handshake
(:func:`~repro.parallel.rankprog.match_arbitrate`).  Acceptance
notifications return in a second ``alltoall``; unaccepted proposers are
released to retry next round.  This snapshot protocol is what makes the
parallel matching *less* maximal than the serial one (the "slow
coarsening" effect the literature reports) -- and, because no rank ever
reads another rank's same-round writes, it is exactly executable by the
real multiprocess backend (:mod:`repro.parallel.shm`) with bit-identical
results.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng, spawn
from .distgraph import DistGraph
from .fabric import as_fabric

__all__ = ["parallel_matching"]

_INT = np.int64


def parallel_matching(
    dist: DistGraph,
    comm,
    seed=None,
    rounds: int = 4,
) -> np.ndarray:
    """Compute a matching of ``dist.graph`` with the coarse-grain protocol.

    ``comm`` is a fabric or a bare :class:`~repro.parallel.simcomm.SimCluster`.
    Returns the global match array (``match[v] = partner or v``); all
    communication is charged to / measured on the fabric.
    """
    fabric = as_fabric(comm)
    g = dist.graph
    rng = as_rng(seed)
    n = g.nvtxs
    p = fabric.nranks
    match = np.arange(n, dtype=_INT)
    fabric.publish_graph(g)

    for _ in range(rounds):
        if np.all(match != np.arange(n)):
            break
        fabric.publish(match_prev=match)
        rngs = spawn(rng, p)
        proposals = fabric.run(
            "match_propose", [{"seed": rngs[r]} for r in range(p)])
        delivered = fabric.exchange(proposals)
        accepts = fabric.run(
            "match_arbitrate", [{"incoming": delivered[r]} for r in range(p)])
        notified = fabric.exchange(accepts)
        blocks = fabric.run(
            "match_finish", [{"incoming": notified[r]} for r in range(p)])
        for r in range(p):
            lo, hi = dist.local_range(r)
            match[lo:hi] = blocks[r]

    return match
