"""Sim-vs-shm parity harness.

The central correctness claim of the shm executor is that it is
**bit-identical** to the simulated oracle: same rank program, same
snapshots, same shipped RNGs, same message routing order -- therefore the
same messages (byte-for-byte, asserted via :class:`MessageLog` digests)
and the same final partition.  :func:`run_parity` runs one partitioning
problem through both executors with message logging on and reports every
divergence; CI runs it at 2 ranks on every push (``make
parallel-shm-smoke``), the test-suite at 1/2/4 ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..partition.config import PartitionOptions
from .driver import ParallelResult, parallel_part_graph
from .fabric import MessageLog, SimFabric
from .shm import ShmFabric
from .simcomm import SimCluster

__all__ = ["ParityReport", "run_parity"]


@dataclass
class ParityReport:
    """Outcome of one sim-vs-shm parity run."""

    nranks: int
    nparts: int
    #: byte-identical partition vectors.
    parts_equal: bool
    #: identical (step, phase, op, src, dst, nbytes, digest) message streams.
    messages_equal: bool
    #: first message-log divergence (``None`` when equal).
    first_divergence: str | None
    messages: int
    sim_result: ParallelResult = field(repr=False)
    shm_result: ParallelResult = field(repr=False)

    @property
    def ok(self) -> bool:
        return self.parts_equal and self.messages_equal

    def summary(self) -> str:
        if self.ok:
            return (f"parity OK: p={self.nranks} k={self.nparts} "
                    f"cut={self.sim_result.edgecut} "
                    f"messages={self.messages} bit-identical")
        lines = [f"parity FAILED: p={self.nranks} k={self.nparts}"]
        if not self.parts_equal:
            lines.append(
                f"  partitions differ (sim cut={self.sim_result.edgecut}, "
                f"shm cut={self.shm_result.edgecut})")
        if not self.messages_equal:
            lines.append(f"  message logs differ: {self.first_divergence}")
        return "\n".join(lines)


def run_parity(graph, nparts: int, nranks: int, *,
               options: PartitionOptions | None = None,
               tracer=None) -> ParityReport:
    """Partition ``graph`` on both executors and compare.

    Both runs receive the same :class:`PartitionOptions` (the seed must be
    a stable value, not a live ``Generator`` -- the default options
    qualify) and a fresh :class:`MessageLog`; the report carries both
    results plus the equality verdicts.

    ``tracer`` (optional) is applied to the shm run, turning worker-side
    telemetry on; the parity verdict must be unaffected -- telemetry
    piggybacks on pipe replies, which the message log never records (the
    test-suite pins traced == untraced digests at 1/2/4 ranks).
    """
    if options is None:
        options = PartitionOptions()
    if isinstance(options.seed, np.random.Generator):
        raise ValueError(
            "parity needs a replayable seed (int or SeedSequence), "
            "not a live Generator")
    if options.seed is None:
        options = options.with_(seed=0)

    sim_log = MessageLog()
    sim_fabric = SimFabric(SimCluster(nranks), message_log=sim_log)
    sim_result = parallel_part_graph(graph, nparts, nranks, options=options,
                                     executor=sim_fabric)

    shm_log = MessageLog()
    shm_fabric = ShmFabric(nranks, message_log=shm_log, tracer=tracer)
    shm_result = parallel_part_graph(graph, nparts, nranks, options=options,
                                     executor=shm_fabric, tracer=tracer)

    divergence = sim_log.diff(shm_log)
    return ParityReport(
        nranks=nranks,
        nparts=nparts,
        parts_equal=bool(np.array_equal(sim_result.part, shm_result.part)),
        messages_equal=divergence is None,
        first_divergence=divergence,
        messages=len(sim_log),
        sim_result=sim_result,
        shm_result=shm_result,
    )
