"""Real multiprocess executor over shared-memory CSR views.

:class:`ShmFabric` runs the rank program (:mod:`repro.parallel.rankprog`)
in ``nranks`` **spawn**-context worker processes (spawn, never fork: the
parent may own threads).  Published arrays -- the input CSR, vertex
weights, the per-level partition/`relw` snapshots -- live in
``multiprocessing.shared_memory`` segments that workers map as read-only
numpy views; only the small per-step results and message payloads travel
a per-worker duplex pipe.  Because workers execute the identical step
functions on identical snapshots with identical shipped RNGs, and the
parent routes exchanged messages in the simulator's (src, dst) order,
a shm run is **bit-identical** to the simulated oracle -- the parity
harness (:mod:`repro.parallel.parity`) asserts equal message logs and an
equal final partition.

Lifecycle and failure semantics:

* ``elapsed()`` is real wall-clock, so :class:`~repro.faults.RecoveryPolicy`
  phase budgets fire on actual time; a worker that stops answering within
  the budget raises :class:`~repro.errors.PhaseTimeoutError`, a dead
  worker process raises :class:`~repro.errors.RankCrashedError` -- both
  feed the driver's documented ``degraded_fallback`` path.
* every segment is created under a unique ``repro-shm-*`` name and
  unlinked on ``close()``, which runs on all exit paths (the driver's
  ``finally``, the context manager, and a ``weakref.finalize`` backstop);
  the test-suite pins that no ``/dev/shm`` segment survives either a
  normal or a crashing run.
* ``inject_crash=(phase, rank)`` is the real-failure test hook: the
  worker is hard-killed (``os._exit``) at its first dispatch in that
  phase.

Observability: ``parallel.shm.*`` counters (workers, dispatches,
messages, bytes, segments, crashes) and per-phase wall-latency
histograms (``parallel.shm.phase_seconds.<phase>``) flow through the
tracer into the usual ``repro.obs`` profile.

Cross-process telemetry: when the fabric's tracer is enabled each worker
owns its own :class:`~repro.trace.Tracer` (root span ``shm_worker`` with
per-phase children) and accounts compute / pipe-wait / shm-publish
seconds from *inside* the process.  Deltas piggyback on the existing
reply tuples -- every reply is ``(kind, payload, delta)`` where ``delta``
is ``None`` with telemetry off -- and the final ``exit`` reply carries
the full drain (registry state + span events).  The parent folds deltas
into rank-labeled ``parallel.shm.worker.*`` counters as they arrive,
then at :meth:`ShmFabric.close` merges each worker's histograms
(labels ``{rank=...}``) and grafts its span tree under the driver span.
No new IPC channel exists and the :class:`MessageLog` only ever records
collectives, so telemetry cannot perturb parity digests -- pinned by
``tests/test_parallel_shm.py``.
"""

from __future__ import annotations

import itertools
import os
import time
import traceback
import uuid
import weakref
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory

import numpy as np

from ..errors import PhaseTimeoutError, RankCrashedError
from ..trace import InMemorySink, Tracer, as_tracer, labeled, spans_from_events
from .fabric import MessageLog, _FabricBase
from .rankprog import RANK_FNS, RankContext

__all__ = ["ShmArena", "ShmFabric", "ShmStats", "active_segments"]

#: All segments of all arenas share this name prefix (plus a per-arena
#: unique token), so leak checks can sweep ``/dev/shm`` for survivors.
SEGMENT_PREFIX = "repro-shm-"

_SHM_DIR = "/dev/shm"


def active_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live shared-memory segments under ``prefix`` (POSIX
    ``/dev/shm`` listing; empty where the OS exposes no such directory)."""
    try:
        return sorted(n for n in os.listdir(_SHM_DIR) if n.startswith(prefix))
    except OSError:  # pragma: no cover - non-POSIX fallback
        return []


def _attach(segname: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without tracker registration.

    Before 3.13 (no ``track=`` parameter) every attach registers the
    segment with the resource tracker shared by the whole process tree;
    with several workers attaching the same segment that means duplicate
    registrations and spurious unlink attempts at exit.  The parent owns
    cleanup; workers must only map -- so registration is suppressed for
    the duration of the attach."""
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=segname)
    finally:
        resource_tracker.register = orig


class ShmArena:
    """Owner of a set of named shared-memory segments.

    ``publish(key, arr)`` copies ``arr`` into the segment backing ``key``,
    reusing it in place when shape and dtype match (a pure memcpy, no
    IPC) and allocating a fresh uniquely-named segment otherwise.  The
    arena is a context manager; :meth:`close` unlinks everything and is
    idempotent."""

    def __init__(self):
        self.token = uuid.uuid4().hex[:8]
        self.prefix = f"{SEGMENT_PREFIX}{os.getpid()}-{self.token}-"
        self._seq = itertools.count()
        self._segs: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        self._finalizer = weakref.finalize(self, ShmArena._cleanup, self._segs)

    def publish(self, key: str, arr: np.ndarray):
        """Copy ``arr`` into ``key``'s segment.  Returns the
        ``(key, segment_name, shape, dtype_str)`` spec when workers must
        (re)attach, or ``None`` when the existing mapping still holds."""
        arr = np.ascontiguousarray(arr)
        cur = self._segs.get(key)
        if cur is not None:
            shm, view = cur
            if view.shape == arr.shape and view.dtype == arr.dtype:
                view[...] = arr
                return None
            self._drop(key)
        name = f"{self.prefix}{next(self._seq)}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(arr.nbytes, 1))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        self._segs[key] = (shm, view)
        return (key, name, arr.shape, arr.dtype.str)

    def _drop(self, key: str) -> None:
        shm, view = self._segs.pop(key)
        del view
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every segment (idempotent; safe on all exit paths)."""
        for key in list(self._segs):
            self._drop(key)
        self._finalizer.detach()

    @staticmethod
    def _cleanup(segs: dict) -> None:  # pragma: no cover - GC backstop
        for shm, view in list(segs.values()):
            del view
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        segs.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class _WorkerTelemetry:
    """Worker-side tracer plus per-phase compute / pipe-wait / publish
    accounting.

    Small ``{"phases": {...}}`` deltas (seconds + steps accumulated since
    the last reply) piggyback on every ``ok`` reply; the final ``exit``
    drain additionally carries the registry state (per-step latency
    histograms) and the closed ``shm_worker`` span tree as events.  The
    wire format is documented in docs/observability.md.
    """

    __slots__ = ("rank", "tracer", "sink", "root", "_phase", "_phase_span",
                 "_acc", "_pending")

    KINDS = ("compute", "pipe_wait", "publish")

    def __init__(self, rank: int):
        self.rank = rank
        self.sink = InMemorySink()
        self.tracer = Tracer([self.sink])
        self.root = self.tracer.span("shm_worker", rank=rank, pid=os.getpid())
        self._phase: str | None = None
        self._phase_span = None
        self._acc: dict[str, dict] = {}
        self._pending: dict[str, dict] = {}

    def set_phase(self, phase: str | None) -> None:
        if phase == self._phase:
            return
        self._close_phase()
        self._phase = phase
        if phase is not None:
            self._phase_span = self.tracer.span(phase)

    def _close_phase(self) -> None:
        if self._phase_span is not None:
            acc = self._acc.get(self._phase or "startup", {})
            self._phase_span.set(
                compute_seconds=acc.get("compute", 0.0),
                pipe_wait_seconds=acc.get("pipe_wait", 0.0),
                publish_seconds=acc.get("publish", 0.0),
                steps=int(acc.get("steps", 0)))
            self._phase_span.__exit__(None, None, None)
            self._phase_span = None

    def add(self, kind: str, seconds: float) -> None:
        phase = self._phase or "startup"
        for store in (self._acc, self._pending):
            ph = store.setdefault(phase, {})
            ph[kind] = ph.get(kind, 0.0) + seconds
        self.tracer.observe(f"worker.{kind}_seconds", seconds)

    def step(self) -> None:
        phase = self._phase or "startup"
        for store in (self._acc, self._pending):
            ph = store.setdefault(phase, {})
            ph["steps"] = ph.get("steps", 0) + 1

    def delta(self) -> dict | None:
        """Pending-only phase accumulators; ``None`` when nothing new."""
        if not self._pending:
            return None
        out, self._pending = self._pending, {}
        return {"phases": out}

    def drain(self) -> dict:
        """Final drain: remaining phase deltas + registry state + spans."""
        self._close_phase()
        totals: dict[str, float] = {}
        for acc in self._acc.values():
            for k, v in acc.items():
                totals[k] = totals.get(k, 0) + v
        self.root.set(
            compute_seconds=totals.get("compute", 0.0),
            pipe_wait_seconds=totals.get("pipe_wait", 0.0),
            publish_seconds=totals.get("publish", 0.0),
            steps=int(totals.get("steps", 0)))
        out = self.delta() or {"phases": {}}
        out["metrics"] = self.tracer.metrics.state()
        self.tracer.finish()
        out["spans"] = [ev for ev in self.sink.events
                        if ev.get("event") == "span"]
        return out


def _worker_main(conn, rank: int, nranks: int, telemetry: bool = False) -> None:
    """Worker loop: attach published segments, dispatch rank steps.

    Every reply is a ``(kind, payload, delta)`` 3-tuple; ``delta`` is the
    telemetry piggyback (``None`` when telemetry is off or nothing
    accumulated since the last reply).
    """
    arrays: dict[str, np.ndarray] = {}
    segs: dict[str, shared_memory.SharedMemory] = {}
    state: dict = {}
    ctx = RankContext(rank, nranks, arrays, state)
    telem = _WorkerTelemetry(rank) if telemetry else None
    try:
        while True:
            t_wait = time.perf_counter() if telem is not None else 0.0
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                break
            if telem is not None:
                telem.add("pipe_wait", time.perf_counter() - t_wait)
            op = cmd[0]
            if op == "publish":
                if telem is not None:
                    telem.set_phase(cmd[2])
                t0 = time.perf_counter() if telem is not None else 0.0
                for key, segname, shape, dtype in cmd[1]:
                    arrays.pop(key, None)
                    old = segs.pop(key, None)
                    if old is not None:
                        old.close()
                    shm = _attach(segname)
                    segs[key] = shm
                    arrays[key] = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
                if telem is not None:
                    telem.add("publish", time.perf_counter() - t0)
                conn.send(("ok", None,
                           telem.delta() if telem is not None else None))
            elif op == "run":
                _, fn_name, kwargs, phase = cmd
                if telem is not None:
                    telem.set_phase(phase)
                try:
                    t0 = time.perf_counter() if telem is not None else 0.0
                    result, ops = RANK_FNS[fn_name](ctx, **kwargs)
                    if telem is not None:
                        telem.add("compute", time.perf_counter() - t0)
                        telem.step()
                    conn.send(("ok", (result, ops),
                               telem.delta() if telem is not None else None))
                except BaseException:
                    conn.send(("err", traceback.format_exc(), None))
            elif op == "die":
                os._exit(1)
            elif op == "exit":
                conn.send(("ok", None,
                           telem.drain() if telem is not None else None))
                break
    finally:
        arrays.clear()
        state.clear()
        for shm in segs.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
        conn.close()


@dataclass
class ShmStats:
    """Accounting of a shm run.  ``simulated_time`` (kept for API parity
    with :class:`~repro.parallel.simcomm.SimStats`) is **real wall
    seconds** since the fabric started."""

    nranks: int
    supersteps: int = 0
    total_bytes: int = 0
    total_messages: int = 0
    dispatches: int = 0
    crashes: int = 0
    compute_time: float = 0.0
    comm_time: float = 0.0
    _t0: float = 0.0
    _closed_at: float | None = None

    @property
    def wall_seconds(self) -> float:
        end = self._closed_at if self._closed_at is not None else time.perf_counter()
        return end - self._t0

    @property
    def simulated_time(self) -> float:
        return self.wall_seconds


class ShmFabric(_FabricBase):
    """Spawn-context multiprocess fabric over shared-memory snapshots."""

    kind = "shm"
    realtime = True

    def __init__(self, nranks: int, *, cost=None, tracer=None,
                 message_log: MessageLog | None = None,
                 phase_timeout: float | None = None,
                 inject_crash: tuple[str, int] | None = None):
        super().__init__(nranks, message_log)
        self.tracer = as_tracer(tracer)
        self.stats = ShmStats(nranks=nranks, _t0=time.perf_counter())
        self.arena = ShmArena()
        self.phase_timeout = phase_timeout
        self._inject = inject_crash
        self._injected = False
        self._graph_token = None
        self._phase_t0 = time.perf_counter()
        self._closed = False
        self._dead: set[int] = set()
        self._telemetry = bool(self.tracer.enabled)
        self._worker_phases: dict[int, dict] = {r: {} for r in range(nranks)}

        ctx = get_context("spawn")
        self._conns = []
        self._procs = []
        for r in range(nranks):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, r, nranks, self._telemetry),
                               daemon=True, name=f"repro-shm-rank{r}")
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(
            self, ShmFabric._final_cleanup, self._procs, self._conns, self.arena)
        self.tracer.incr("parallel.shm.workers", nranks)

    # -- clocks & accounting -------------------------------------------- #

    def elapsed(self) -> float:
        return self.stats.wall_seconds

    def add_compute(self, rank: int, ops: float) -> None:
        """No-op: on real hardware the wall clock pays for compute."""

    def charge_fallback(self, graph) -> None:
        """No-op: the serial fallback's time is already on the wall."""

    def set_phase(self, name: str) -> None:
        self._observe_phase()
        super().set_phase(name)
        self._phase_t0 = time.perf_counter()

    def _observe_phase(self) -> None:
        if self.phase and self.tracer.enabled:
            self.tracer.observe(f"parallel.shm.phase_seconds.{self.phase}",
                                time.perf_counter() - self._phase_t0)

    # -- snapshots ------------------------------------------------------ #

    def publish(self, **arrays) -> None:
        specs = []
        for key, arr in arrays.items():
            spec = self.arena.publish(key, np.asarray(arr))
            if spec is not None:
                specs.append(spec)
        if specs:
            self.tracer.incr("parallel.shm.segments", len(specs))
            self._command_all(("publish", specs, self.phase))

    def publish_graph(self, graph) -> None:
        if self._graph_token is id(graph):
            return
        self._graph_token = id(graph)
        self.publish(xadj=graph.xadj, adjncy=graph.adjncy,
                     adjwgt=graph.adjwgt, vwgt=graph.vwgt)

    # -- worker dispatch ------------------------------------------------ #

    def _deadline(self) -> float | None:
        if self.phase_timeout is None or self.phase_timeout == float("inf"):
            return None
        return self._phase_t0 + self.phase_timeout

    def _collect(self, rank: int):
        """Receive one reply from ``rank``, mapping timeouts and death to
        the driver's error taxonomy."""
        conn = self._conns[rank]
        deadline = self._deadline()
        while True:
            budget = 0.05 if deadline is None else min(
                0.05, max(deadline - time.perf_counter(), 0.0))
            try:
                if conn.poll(budget):
                    kind, payload, delta = conn.recv()
                    if delta is not None:
                        self._absorb_delta(rank, delta)
                    if kind == "err":
                        raise RuntimeError(
                            f"shm worker {rank} failed:\n{payload}")
                    return payload
            except (EOFError, BrokenPipeError, OSError):
                self._mark_dead(rank)
                raise RankCrashedError(
                    f"shm worker {rank} died mid-phase "
                    f"{self.phase or 'unknown'!r}", ranks=(rank,))
            if not self._procs[rank].is_alive():
                self._mark_dead(rank)
                raise RankCrashedError(
                    f"shm worker {rank} died mid-phase "
                    f"{self.phase or 'unknown'!r} "
                    f"(exitcode {self._procs[rank].exitcode})", ranks=(rank,))
            if deadline is not None and time.perf_counter() > deadline:
                raise PhaseTimeoutError(
                    f"shm worker {rank} exceeded the {self.phase!r} "
                    f"wall-clock budget ({self.phase_timeout:g}s)")

    def _mark_dead(self, rank: int) -> None:
        if rank not in self._dead:
            self._dead.add(rank)
            self.stats.crashes += 1
            self.tracer.incr("parallel.shm.crashes")

    # -- worker telemetry ----------------------------------------------- #

    def _absorb_delta(self, rank: int, delta: dict) -> None:
        """Fold a worker's piggybacked phase delta into the per-rank table
        and the live rank-labeled totals counters."""
        for phase, acc in delta.get("phases", {}).items():
            dst = self._worker_phases[rank].setdefault(phase, {})
            for k, v in acc.items():
                dst[k] = dst.get(k, 0) + v
            for kind in ("compute", "pipe_wait", "publish"):
                if kind in acc:
                    self.tracer.incr(
                        labeled(f"parallel.shm.worker.{kind}_seconds_total",
                                rank=rank), acc[kind])
            if "steps" in acc:
                self.tracer.incr(
                    labeled("parallel.shm.worker.steps_total", rank=rank),
                    acc["steps"])

    def worker_phases(self) -> dict:
        """``{rank: {phase: {"compute"/"pipe_wait"/"publish": seconds,
        "steps": n}}}`` accumulated from shipped worker deltas.  Complete
        once :meth:`close` has drained the workers; empty with telemetry
        off."""
        return {r: {ph: dict(acc) for ph, acc in phases.items()}
                for r, phases in self._worker_phases.items()}

    def _drain_telemetry(self) -> None:
        """Collect each live worker's final drain after ``exit`` was sent:
        skim any replies still buffered in the pipe (a degraded run
        abandons in-flight steps), then merge the drain's histograms under
        rank labels and graft its span tree under the driver span."""
        for r, conn in enumerate(self._conns):
            if r in self._dead:
                continue
            drain = None
            deadline = time.perf_counter() + 2.0
            try:
                while time.perf_counter() < deadline:
                    if not conn.poll(0.05):
                        if not self._procs[r].is_alive():
                            break
                        continue
                    msg = conn.recv()
                    delta = msg[2] if len(msg) == 3 else None
                    if isinstance(delta, dict):
                        self._absorb_delta(r, delta)
                        if "spans" in delta:
                            drain = delta
                            break
            except (EOFError, OSError):  # pragma: no cover - worker died
                pass
            if drain is None:
                continue
            self.tracer.metrics.merge(drain.get("metrics", {}),
                                      labels={"rank": r},
                                      prefix="parallel.shm.")
            for root in spans_from_events(drain.get("spans", [])):
                self.tracer.graft(root, parent=self.tracer.root)

    def _command_all(self, cmd) -> list:
        for conn in self._conns:
            conn.send(cmd)
        return [self._collect(r) for r in range(self.nranks)]

    def run(self, fn_name: str, kwargs_list: list[dict]) -> list:
        t0 = time.perf_counter()
        for r, conn in enumerate(self._conns):
            if (self._inject is not None and not self._injected
                    and self._inject == (self.phase, r)):
                self._injected = True
                conn.send(("die",))
            else:
                conn.send(("run", fn_name, kwargs_list[r], self.phase))
        results = [self._collect(r) for r in range(self.nranks)]
        self.stats.dispatches += 1
        self.tracer.incr("parallel.shm.dispatches")
        if self.tracer.enabled:
            self.tracer.observe("parallel.shm.step_seconds",
                                time.perf_counter() - t0)
        return [result for result, _ops in results]

    # -- collectives (parent-side routing over the pipe transport) ------ #

    def _account(self, nbytes: int, nmessages: int) -> None:
        self.stats.total_bytes += int(nbytes)
        self.stats.total_messages += int(nmessages)
        self.stats.supersteps += 1
        self.tracer.incr("parallel.shm.messages", int(nmessages))
        self.tracer.incr("parallel.shm.bytes", int(nbytes))

    def exchange(self, payloads: list[dict]) -> list[dict]:
        """Route ``payloads[src][dst]`` to ``received[dst][src]``.

        Delivery is in ascending (src, dst) order -- the simulator's
        message order -- which keeps the receiver-side dict iteration
        identical between executors."""
        self._log_exchange(payloads)
        received: list[dict[int, np.ndarray]] = [dict() for _ in range(self.nranks)]
        nbytes = nmsg = 0
        for src in range(self.nranks):
            for dst in sorted(payloads[src]):
                arr = np.asarray(payloads[src][dst])
                received[dst][src] = arr
                nbytes += arr.nbytes
                nmsg += 1
        self._account(nbytes, nmsg)
        return received

    def allreduce(self, values, op: str = "sum") -> np.ndarray:
        arrs = [np.asarray(v, dtype=np.float64) for v in values]
        stack = np.stack(arrs)
        if op == "sum":
            out = stack.sum(axis=0)
        elif op == "max":
            out = stack.max(axis=0)
        elif op == "min":
            out = stack.min(axis=0)
        else:
            raise ValueError(f"unknown reduction op {op!r}")
        self._log_collective("allreduce_" + op, values, out)
        self._account(sum(a.nbytes for a in arrs), len(arrs))
        return out

    def gather(self, values, root: int = 0):
        self._log_collective("gather", values, None)
        arrs = [np.asarray(v) for v in values]
        self._account(sum(a.nbytes for r, a in enumerate(arrs) if r != root),
                      len(arrs) - 1)
        return arrs

    def bcast(self, value, root: int = 0):
        arr = np.asarray(value)
        self._log_collective("bcast", [value], None)
        self._account(arr.nbytes * (self.nranks - 1), self.nranks - 1)
        return arr

    def barrier(self) -> None:
        self.stats.supersteps += 1

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        """Tear down workers and unlink every segment (idempotent; runs
        from the driver's ``finally``, the context manager, and a GC
        finalizer backstop)."""
        if self._closed:
            return
        self._closed = True
        self._observe_phase()
        self.stats._closed_at = time.perf_counter()
        for r, conn in enumerate(self._conns):
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        if self._telemetry:
            self._drain_telemetry()
        for r, proc in enumerate(self._procs):
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self.arena.close()
        self._finalizer.detach()

    @staticmethod
    def _final_cleanup(procs, conns, arena):  # pragma: no cover - GC backstop
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        arena.close()
