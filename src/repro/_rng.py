"""Random-number-generator plumbing.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and converts it with
:func:`as_rng`.  Child generators for independent subtasks (e.g. the two
halves of a recursive bisection) are derived with :func:`spawn` so results
stay reproducible regardless of evaluation order.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``Generator`` (returned
        unchanged), or anything else accepted by :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    The children are seeded from the parent stream, so a fixed parent seed
    yields a fixed family of children.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def canonical_seed(seed) -> int | None:
    """Collapse a seed-like value to a plain ``int`` (or ``None``).

    The serving layer (:mod:`repro.serve`) needs two properties a raw
    seed-like does not give:

    * **no shared mutable state** -- a ``Generator`` passed to two requests
      that run concurrently is a data race (its stream is consumed from
      both threads in arrival order); pinning draws ONE integer from it
      here, in the submitting thread, and each compute then builds a
      private generator from that integer.
    * **hashability** -- the drawn integer participates in the cache key,
      so "same seed" means "bit-identical partition".

    ``None`` stays ``None`` (explicitly nondeterministic); integers pass
    through unchanged, so ``canonical_seed`` is a no-op for the way the
    library's own drivers and tests pass seeds.
    """
    if seed is None:
        return None
    if isinstance(seed, bool):
        raise TypeError("bool is not a valid RNG seed")
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    # SeedSequence and friends: derive deterministically without mutation.
    return int(np.random.default_rng(seed).integers(0, 2**63 - 1))
