"""Random-number-generator plumbing.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and converts it with
:func:`as_rng`.  Child generators for independent subtasks (e.g. the two
halves of a recursive bisection) are derived with :func:`spawn` so results
stay reproducible regardless of evaluation order.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``Generator`` (returned
        unchanged), or anything else accepted by :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    The children are seeded from the parent stream, so a fixed parent seed
    yields a fixed family of children.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
