"""Prometheus text exposition over the merged metrics registry.

:func:`render_prometheus` renders counters, gauges and histograms (the
three metric types of :mod:`repro.trace.metrics`) in the Prometheus text
exposition format (version 0.0.4): one ``# TYPE`` line per family,
``_bucket{le="..."}`` / ``_sum`` / ``_count`` series per histogram.  Metric
names are sanitised (dots become underscores) and prefixed with
``repro_`` so they namespace cleanly when scraped next to other jobs.

:func:`parse_exposition` is the matching validator: it parses an
exposition back into families and checks the histogram invariants
(cumulative, non-decreasing buckets ending at ``+Inf == _count``),
raising :class:`~repro.errors.ObsError` on malformed input.  The test
suite and the ``obs-smoke`` gate run every rendered exposition through it.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from ..errors import ObsError

__all__ = ["render_prometheus", "parse_exposition"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _sanitize(name: str, prefix: str) -> str:
    out = prefix + _NAME_RE.sub("_", str(name))
    if out[0].isdigit():
        out = "_" + out
    return out


def _fmt_value(v) -> str:
    f = float(v)
    if f != f:  # NaN
        return "NaN"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _fmt_le(bound) -> str:
    if isinstance(bound, str):
        return bound  # "+Inf"
    return f"{float(bound):.6g}"


def _resolve(source, counters, gauges, histograms):
    """Accept a MetricsRegistry, Tracer, TraceReport/MultilevelProfile, or
    a plain ``{"counters": ..., "gauges": ..., "histograms": ...}`` dict."""
    if source is not None:
        metrics = getattr(source, "metrics", None)
        if metrics is not None and hasattr(metrics, "counter_values"):
            source = metrics  # a Tracer
        if hasattr(source, "counter_values"):
            return (source.counter_values(), source.gauge_values(),
                    source.histogram_values())
        if hasattr(source, "counters"):
            return (dict(source.counters), dict(source.gauges),
                    dict(getattr(source, "histograms", {}) or {}))
        if isinstance(source, Mapping):
            return (dict(source.get("counters") or {}),
                    dict(source.get("gauges") or {}),
                    dict(source.get("histograms") or {}))
        raise ObsError(
            f"cannot extract metrics from {type(source).__name__!r}: "
            "expected a MetricsRegistry, Tracer, report-like object or "
            "a counters/gauges/histograms mapping")
    return dict(counters or {}), dict(gauges or {}), dict(histograms or {})


def render_prometheus(source=None, *, counters=None, gauges=None,
                      histograms=None, prefix: str = "repro_") -> str:
    """Render a Prometheus text exposition (ends with a newline).

    Pass either ``source`` (a :class:`~repro.trace.metrics.MetricsRegistry`,
    a :class:`~repro.trace.spans.Tracer`, a
    :class:`~repro.trace.report.TraceReport`, a
    :class:`~repro.obs.recorder.MultilevelProfile`, or an ``as_dict()``-style
    mapping) or the individual ``counters=`` / ``gauges=`` / ``histograms=``
    snapshots.  Histogram values may be live
    :class:`~repro.trace.metrics.Histogram` objects or their snapshots.
    """
    cvals, gvals, hvals = _resolve(source, counters, gauges, histograms)
    lines: list[str] = []

    for name, value in sorted(cvals.items()):
        if value is None:
            continue
        n = _sanitize(name, prefix)
        lines.append(f"# TYPE {n} counter")
        lines.append(f"{n} {_fmt_value(value)}")
    for name, value in sorted(gvals.items()):
        if value is None:
            continue
        n = _sanitize(name, prefix)
        lines.append(f"# TYPE {n} gauge")
        lines.append(f"{n} {_fmt_value(value)}")
    for name, hist in sorted(hvals.items()):
        snap = hist.snapshot() if hasattr(hist, "snapshot") else hist
        n = _sanitize(name, prefix)
        lines.append(f"# TYPE {n} histogram")
        for bound, cum in snap["buckets"]:
            lines.append(f'{n}_bucket{{le="{_fmt_le(bound)}"}} {int(cum)}')
        lines.append(f"{n}_sum {_fmt_value(snap['sum'])}")
        lines.append(f"{n}_count {int(snap['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict:
    """Parse + validate a Prometheus text exposition.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``
    where ``labels`` is a dict and histogram sample names keep their
    ``_bucket`` / ``_sum`` / ``_count`` suffixes.  Raises
    :class:`~repro.errors.ObsError` on malformed lines, samples without a
    preceding ``# TYPE``, or histogram families whose buckets are not
    cumulative / not terminated by ``+Inf == _count``.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary",
                                                   "untyped"):
                raise ObsError(f"line {lineno}: malformed TYPE line: {raw!r}")
            fam = parts[2]
            types[fam] = parts[3]
            families.setdefault(fam, {"type": parts[3], "samples": []})
            continue
        if line.startswith("#"):
            continue  # other comments (HELP etc.)
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ObsError(f"line {lineno}: malformed sample line: {raw!r}")
        name = m.group("name")
        labels = dict((k, v) for k, v in
                      _LABEL_RE.findall(m.group("labels") or ""))
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ObsError(
                f"line {lineno}: non-numeric sample value: {raw!r}") from None
        fam = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                fam = base
                break
        if fam not in families:
            raise ObsError(
                f"line {lineno}: sample {name!r} has no preceding TYPE line")
        families[fam]["samples"].append((name, labels, value))

    for fam, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets = [(labels.get("le"), value)
                   for name, labels, value in data["samples"]
                   if name == fam + "_bucket"]
        counts = [value for name, labels, value in data["samples"]
                  if name == fam + "_count"]
        if not buckets or not counts:
            raise ObsError(
                f"histogram {fam!r} is missing _bucket or _count samples")
        if buckets[-1][0] != "+Inf":
            raise ObsError(
                f"histogram {fam!r}: last bucket must be le=\"+Inf\"")
        cums = [v for _, v in buckets]
        if any(b > a for b, a in zip(cums, cums[1:])):
            raise ObsError(f"histogram {fam!r}: buckets are not cumulative")
        if cums[-1] != counts[0]:
            raise ObsError(
                f"histogram {fam!r}: +Inf bucket ({cums[-1]:g}) != _count "
                f"({counts[0]:g})")
    return families
