"""Prometheus text exposition over the merged metrics registry.

:func:`render_prometheus` renders counters, gauges and histograms (the
three metric types of :mod:`repro.trace.metrics`) in the Prometheus text
exposition format (version 0.0.4): one ``# TYPE`` line per family,
``_bucket{le="..."}`` / ``_sum`` / ``_count`` series per histogram.  Metric
names are sanitised (dots become underscores) and prefixed with
``repro_`` so they namespace cleanly when scraped next to other jobs.

Labeled series: the registry encodes labels *into* metric names via
:func:`repro.trace.metrics.labeled` (``'steps{rank="0"}'``).  The
renderer splits that suffix back out, emits one ``# TYPE`` line per base
family, and renders each label combination as a separate sample (for
histograms the ``le`` label joins the encoded ones), so per-rank /
per-worker telemetry scrapes as proper Prometheus label dimensions.

:func:`parse_exposition` is the matching validator: it parses an
exposition back into families and checks the histogram invariants
(cumulative, non-decreasing buckets ending at ``+Inf == _count``) *per
label set*, raising :class:`~repro.errors.ObsError` on malformed input.
The test suite and the ``obs-smoke`` gate run every rendered exposition
through it.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from ..errors import ObsError

__all__ = ["render_prometheus", "parse_exposition"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


_ENCODED_LABELS_RE = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>.*)\}$")


def _sanitize(name: str, prefix: str) -> str:
    out = prefix + _NAME_RE.sub("_", str(name))
    if out[0].isdigit():
        out = "_" + out
    return out


def _split_labels(name) -> tuple[str, str | None]:
    """Split a ``labeled()``-encoded metric name into ``(base, labels)``
    where ``labels`` is the raw ``k="v",...`` string (or ``None``)."""
    m = _ENCODED_LABELS_RE.match(str(name))
    if m:
        return m.group("base"), m.group("labels")
    return str(name), None


def _series(fam: str, *label_parts) -> str:
    parts = [p for p in label_parts if p]
    return f"{fam}{{{','.join(parts)}}}" if parts else fam


def _fmt_value(v) -> str:
    f = float(v)
    if f != f:  # NaN
        return "NaN"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _fmt_le(bound) -> str:
    if isinstance(bound, str):
        return bound  # "+Inf"
    return f"{float(bound):.6g}"


def _resolve(source, counters, gauges, histograms):
    """Accept a MetricsRegistry, Tracer, TraceReport/MultilevelProfile, or
    a plain ``{"counters": ..., "gauges": ..., "histograms": ...}`` dict."""
    if source is not None:
        metrics = getattr(source, "metrics", None)
        if metrics is not None and hasattr(metrics, "counter_values"):
            source = metrics  # a Tracer
        if hasattr(source, "counter_values"):
            return (source.counter_values(), source.gauge_values(),
                    source.histogram_values())
        if hasattr(source, "counters"):
            return (dict(source.counters), dict(source.gauges),
                    dict(getattr(source, "histograms", {}) or {}))
        if isinstance(source, Mapping):
            return (dict(source.get("counters") or {}),
                    dict(source.get("gauges") or {}),
                    dict(source.get("histograms") or {}))
        raise ObsError(
            f"cannot extract metrics from {type(source).__name__!r}: "
            "expected a MetricsRegistry, Tracer, report-like object or "
            "a counters/gauges/histograms mapping")
    return dict(counters or {}), dict(gauges or {}), dict(histograms or {})


def render_prometheus(source=None, *, counters=None, gauges=None,
                      histograms=None, prefix: str = "repro_") -> str:
    """Render a Prometheus text exposition (ends with a newline).

    Pass either ``source`` (a :class:`~repro.trace.metrics.MetricsRegistry`,
    a :class:`~repro.trace.spans.Tracer`, a
    :class:`~repro.trace.report.TraceReport`, a
    :class:`~repro.obs.recorder.MultilevelProfile`, or an ``as_dict()``-style
    mapping) or the individual ``counters=`` / ``gauges=`` / ``histograms=``
    snapshots.  Histogram values may be live
    :class:`~repro.trace.metrics.Histogram` objects or their snapshots.
    """
    cvals, gvals, hvals = _resolve(source, counters, gauges, histograms)
    lines: list[str] = []

    def group(vals):
        """``{family: [(labels, value), ...]}`` -- one family per base
        name, label combinations (sorted by encoded name) as series."""
        fams: dict[str, list] = {}
        for name, value in sorted(vals.items()):
            if value is None:
                continue
            base, labels = _split_labels(name)
            fams.setdefault(_sanitize(base, prefix), []).append(
                (labels, value))
        return fams

    for typ, vals in (("counter", cvals), ("gauge", gvals)):
        fams = group(vals)
        for fam in sorted(fams):
            lines.append(f"# TYPE {fam} {typ}")
            for labels, value in fams[fam]:
                lines.append(f"{_series(fam, labels)} {_fmt_value(value)}")
    fams = group(hvals)
    for fam in sorted(fams):
        lines.append(f"# TYPE {fam} histogram")
        for labels, hist in fams[fam]:
            snap = hist.snapshot() if hasattr(hist, "snapshot") else hist
            for bound, cum in snap["buckets"]:
                le = f'le="{_fmt_le(bound)}"'
                lines.append(
                    f"{_series(fam + '_bucket', labels, le)} {int(cum)}")
            lines.append(
                f"{_series(fam + '_sum', labels)} {_fmt_value(snap['sum'])}")
            lines.append(
                f"{_series(fam + '_count', labels)} {int(snap['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict:
    """Parse + validate a Prometheus text exposition.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``
    where ``labels`` is a dict and histogram sample names keep their
    ``_bucket`` / ``_sum`` / ``_count`` suffixes.  Raises
    :class:`~repro.errors.ObsError` on malformed lines, samples without a
    preceding ``# TYPE``, or histogram families whose buckets are not
    cumulative / not terminated by ``+Inf == _count``.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary",
                                                   "untyped"):
                raise ObsError(f"line {lineno}: malformed TYPE line: {raw!r}")
            fam = parts[2]
            types[fam] = parts[3]
            families.setdefault(fam, {"type": parts[3], "samples": []})
            continue
        if line.startswith("#"):
            continue  # other comments (HELP etc.)
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ObsError(f"line {lineno}: malformed sample line: {raw!r}")
        name = m.group("name")
        labels = dict((k, v) for k, v in
                      _LABEL_RE.findall(m.group("labels") or ""))
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ObsError(
                f"line {lineno}: non-numeric sample value: {raw!r}") from None
        fam = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                fam = base
                break
        if fam not in families:
            raise ObsError(
                f"line {lineno}: sample {name!r} has no preceding TYPE line")
        families[fam]["samples"].append((name, labels, value))

    for fam, data in families.items():
        if data["type"] != "histogram":
            continue
        # Validate per label set: a labeled family carries one independent
        # bucket ladder (and one _count) per non-``le`` label combination.
        groups: dict[tuple, list] = {}
        counts: dict[tuple, float] = {}
        for name, labels, value in data["samples"]:
            if name == fam + "_bucket":
                key = tuple(sorted((k, v) for k, v in labels.items()
                                   if k != "le"))
                groups.setdefault(key, []).append((labels.get("le"), value))
            elif name == fam + "_count":
                counts[tuple(sorted(labels.items()))] = value
        if not groups or not counts:
            raise ObsError(
                f"histogram {fam!r} is missing _bucket or _count samples")
        for key, buckets in groups.items():
            where = fam if not key else (
                fam + "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}")
            if key not in counts:
                raise ObsError(
                    f"histogram {where!r} is missing its _count sample")
            if buckets[-1][0] != "+Inf":
                raise ObsError(
                    f"histogram {where!r}: last bucket must be le=\"+Inf\"")
            cums = [v for _, v in buckets]
            if any(b > a for b, a in zip(cums, cums[1:])):
                raise ObsError(
                    f"histogram {where!r}: buckets are not cumulative")
            if cums[-1] != counts[key]:
                raise ObsError(
                    f"histogram {where!r}: +Inf bucket ({cums[-1]:g}) != "
                    f"_count ({counts[key]:g})")
    return families
