"""Flight recorder: structured events -> a typed :class:`MultilevelProfile`.

The drivers emit one ``"level"`` event per coarsening / refinement step
(see ``repro.partition._events`` and ``docs/observability.md``).  A
:class:`FlightRecorder` is a :class:`~repro.trace.sinks.Sink` that buffers
the raw event stream; :meth:`FlightRecorder.profile` (or the standalone
:func:`profile_from_events`) materialises the per-level story of one run:

* the **coarsening** ladder, finest to coarsest, one row per level;
* the **initial partition** of the coarsest graph;
* the **uncoarsening** ladder, coarsest to finest, one row per refined
  level.

Cut and per-constraint imbalance at every *coarsening* level come for free
from the uncoarsening rows: projecting a partition down one level changes
neither the cut nor any part weight, so the state in which refinement
*arrives* at level ``i`` (``cut_before`` of level ``i``'s refine row, the
refined imbalance of level ``i+1``) is exactly the state a partition of
coarsening level ``i`` would have had.  No extra instrumentation runs
during coarsening.

Scoping: every event carries the id of its enclosing span, so nested
pipelines (the recursive bisection the k-way driver runs on its coarsest
graph, for instance) are excluded from the top-level profile by checking
the event's span against the root's phase spans.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..trace.sinks import Sink, spans_from_events

__all__ = ["LevelRecord", "MultilevelProfile", "FlightRecorder",
           "profile_from_events"]

_LEVEL_FIELDS = ("phase", "direction", "level", "nvtxs", "nedges", "cut",
                 "cut_before", "imbalance", "maxload", "matching_rate",
                 "shrink", "moves", "passes", "rollbacks", "balance_moves",
                 "seconds")


@dataclass
class LevelRecord:
    """One row of a multilevel profile (one level of one phase)."""

    phase: str
    direction: str
    level: int
    nvtxs: int
    nedges: int
    cut: int | None = None
    cut_before: int | None = None
    #: per-constraint achieved imbalance (1.0 = perfect), length ``ncon``.
    imbalance: list | None = None
    #: per-constraint maximum part load (integer weight units).
    maxload: list | None = None
    matching_rate: float | None = None
    shrink: float | None = None
    moves: int = 0
    passes: int = 0
    rollbacks: int = 0
    balance_moves: int = 0
    seconds: float | None = None

    @classmethod
    def from_event(cls, ev: dict) -> "LevelRecord":
        return cls(**{k: ev[k] for k in _LEVEL_FIELDS if k in ev})

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "LevelRecord":
        return cls(**{k: d[k] for k in _LEVEL_FIELDS if k in d})


@dataclass
class MultilevelProfile:
    """The per-level story of one partitioning run."""

    method: str | None
    nparts: int | None
    ncon: int | None
    nvtxs: int | None
    nedges: int | None
    #: finest -> coarsest, one row per contraction step.
    coarsening: list[LevelRecord] = field(default_factory=list)
    #: the initial partition of the coarsest graph.
    initial: LevelRecord | None = None
    #: coarsest -> finest, one row per refined level.
    uncoarsening: list[LevelRecord] = field(default_factory=list)
    final_cut: int | None = None
    #: per-constraint imbalance of the finished partition.
    final_imbalance: list | None = None
    feasible: bool | None = None
    phase_seconds: dict = field(default_factory=dict)
    total_seconds: float | None = None
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    #: ``{name: snapshot}``, see :meth:`repro.trace.metrics.Histogram.snapshot`.
    histograms: dict = field(default_factory=dict)
    #: per-rank worker phase table of a parallel shm run: one row per
    #: rank -- ``{"rank", "compute_seconds", "pipe_wait_seconds",
    #: "publish_seconds", "steps", "phases": {phase: {...same keys...}}}``.
    #: Empty for serial runs or with worker telemetry off.
    rank_phases: list = field(default_factory=list)

    @property
    def nlevels(self) -> int:
        """Coarsening steps recorded."""
        return len(self.coarsening)

    def rows(self) -> list[LevelRecord]:
        """All rows in pipeline order: down the coarsening ladder, the
        initial partition, back up the uncoarsening ladder."""
        out = list(self.coarsening)
        if self.initial is not None:
            out.append(self.initial)
        out.extend(self.uncoarsening)
        return out

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "nparts": self.nparts,
            "ncon": self.ncon,
            "nvtxs": self.nvtxs,
            "nedges": self.nedges,
            "coarsening": [r.to_dict() for r in self.coarsening],
            "initial": self.initial.to_dict() if self.initial else None,
            "uncoarsening": [r.to_dict() for r in self.uncoarsening],
            "final_cut": self.final_cut,
            "final_imbalance": self.final_imbalance,
            "feasible": self.feasible,
            "phase_seconds": dict(self.phase_seconds),
            "total_seconds": self.total_seconds,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": dict(self.histograms),
            "rank_phases": [dict(r) for r in self.rank_phases],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "MultilevelProfile":
        return cls(
            method=d.get("method"),
            nparts=d.get("nparts"),
            ncon=d.get("ncon"),
            nvtxs=d.get("nvtxs"),
            nedges=d.get("nedges"),
            coarsening=[LevelRecord.from_dict(r)
                        for r in d.get("coarsening") or []],
            initial=(LevelRecord.from_dict(d["initial"])
                     if d.get("initial") else None),
            uncoarsening=[LevelRecord.from_dict(r)
                          for r in d.get("uncoarsening") or []],
            final_cut=d.get("final_cut"),
            final_imbalance=d.get("final_imbalance"),
            feasible=d.get("feasible"),
            phase_seconds=dict(d.get("phase_seconds") or {}),
            total_seconds=d.get("total_seconds"),
            counters=dict(d.get("counters") or {}),
            gauges=dict(d.get("gauges") or {}),
            histograms=dict(d.get("histograms") or {}),
            rank_phases=[dict(r) for r in d.get("rank_phases") or []],
        )


class FlightRecorder(Sink):
    """A sink that buffers the raw event stream of one traced run.

    Attach next to any other sinks::

        from repro.obs import FlightRecorder
        from repro.trace import Tracer

        rec = FlightRecorder()
        tracer = Tracer([rec])
        res = part_graph(g, 8, seed=0, tracer=tracer)
        tracer.finish()              # span events flush at close
        profile = rec.profile()

    The recorder itself does no work per event beyond an append, so its
    overhead rides the same budget as the in-memory sink (see
    ``benchmarks/bench_trace_overhead.py``).
    """

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def profile(self) -> MultilevelProfile:
        """Materialise the profile (call after ``tracer.finish()`` so every
        span event has been emitted)."""
        return profile_from_events(self.events)


def _scope_ids(root) -> dict:
    """Map phase name -> the span id scoping that phase's level events.

    * k-way / parallel: ``coarsen`` and ``refine`` level events are emitted
      directly under the root's phase spans; the ``initpart`` summary event
      fires after the initpart span closed, i.e. under the root itself.
    * recursive bisection: the profile follows the *first* (top) split --
      its ``coarsen`` / ``initbisect`` / ``fm_refine`` events are all
      emitted directly under the first ``bisect`` span of the ``rb`` phase.
    """
    scopes = {}
    coarsen = root.child("coarsen")
    refine = root.child("refine")
    if coarsen is not None:
        scopes["coarsen"] = coarsen.span_id
    if refine is not None:
        scopes["refine"] = refine.span_id
    scopes["initpart"] = root.span_id
    rb = root.child("rb")
    if rb is not None:
        top_bisect = rb.child("bisect")
        if top_bisect is not None:
            scopes["coarsen"] = top_bisect.span_id
            scopes["fm_refine"] = top_bisect.span_id
            scopes["initbisect"] = top_bisect.span_id
    return scopes


def profile_from_events(events) -> MultilevelProfile:
    """Build a :class:`MultilevelProfile` from a raw event stream (the
    buffered events of a :class:`FlightRecorder`, or a JSONL trace loaded
    with :func:`repro.trace.sinks.load_jsonl`)."""
    roots = spans_from_events(events)
    root = next((sp for sp in roots
                 if sp.name in ("partition", "parallel_partition")),
                roots[0] if roots else None)

    prof = MultilevelProfile(method=None, nparts=None, ncon=None,
                             nvtxs=None, nedges=None)
    for ev in events:
        if ev.get("event") == "metrics":
            prof.counters.update(ev.get("counters") or {})
            prof.gauges.update(ev.get("gauges") or {})
            prof.histograms.update(ev.get("histograms") or {})
    if root is None:
        return prof

    attrs = root.attrs
    prof.method = ("parallel" if root.name == "parallel_partition"
                   else attrs.get("method"))
    prof.nparts = attrs.get("nparts")
    prof.ncon = attrs.get("ncon")
    prof.nvtxs = attrs.get("nvtxs")
    prof.nedges = attrs.get("nedges")
    prof.final_cut = attrs.get("cut")
    prof.feasible = attrs.get("feasible")
    prof.total_seconds = root.seconds

    scopes = _scope_ids(root)
    for name in ("coarsen", "initpart", "refine", "rb"):
        sp = root.child(name)
        if sp is not None and sp.seconds is not None:
            prof.phase_seconds[name] = sp.seconds

    # Per-rank worker rows of a parallel shm run: each worker's grafted
    # ``shm_worker`` span carries its in-process totals as attributes and
    # one child span per phase (see repro.parallel.shm).
    for wsp in root.children:
        if wsp.name != "shm_worker":
            continue
        row = {
            "rank": wsp.attrs.get("rank"),
            "compute_seconds": wsp.attrs.get("compute_seconds", 0.0),
            "pipe_wait_seconds": wsp.attrs.get("pipe_wait_seconds", 0.0),
            "publish_seconds": wsp.attrs.get("publish_seconds", 0.0),
            "steps": wsp.attrs.get("steps", 0),
            "phases": {
                ph.name: {
                    "compute_seconds": ph.attrs.get("compute_seconds", 0.0),
                    "pipe_wait_seconds": ph.attrs.get("pipe_wait_seconds", 0.0),
                    "publish_seconds": ph.attrs.get("publish_seconds", 0.0),
                    "steps": ph.attrs.get("steps", 0),
                } for ph in wsp.children
            },
        }
        prof.rank_phases.append(row)
    prof.rank_phases.sort(key=lambda r: (r["rank"] is None, r["rank"]))

    refine_phases = ("refine", "fm_refine")
    initial_phases = ("initpart", "initbisect")
    for ev in events:
        if ev.get("event") != "level":
            continue
        phase = ev.get("phase")
        if scopes.get(phase) != ev.get("span"):
            continue
        rec = LevelRecord.from_event(ev)
        if phase == "coarsen":
            prof.coarsening.append(rec)
        elif phase in refine_phases:
            prof.uncoarsening.append(rec)
        elif phase in initial_phases and prof.initial is None:
            prof.initial = rec

    prof.coarsening.sort(key=lambda r: r.level)
    prof.uncoarsening.sort(key=lambda r: -r.level)  # coarsest first

    # Fill each coarsening row's cut/imbalance from the arrival state of
    # refinement at the same level (projection preserves both; see module
    # docstring).
    by_level = {r.level: r for r in prof.uncoarsening}
    for row in prof.coarsening:
        ref = by_level.get(row.level)
        if ref is not None and row.cut is None:
            row.cut = ref.cut_before
        above = by_level.get(row.level + 1) or prof.initial
        if above is not None:
            if row.imbalance is None:
                row.imbalance = above.imbalance
            if row.maxload is None:
                row.maxload = above.maxload

    if prof.uncoarsening:
        finest = prof.uncoarsening[-1]
        prof.final_imbalance = finest.imbalance
    return prof
