"""Live Prometheus scrape endpoint over a service or tracer.

:class:`MetricsServer` is a stdlib :mod:`http.server` wrapper (no new
dependencies) that serves three routes from a background daemon thread:

* ``GET /metrics`` -- the Prometheus text exposition (version 0.0.4),
  pulled fresh from the source on every scrape;
* ``GET /healthz`` -- ``ok`` while the server is up (liveness probe);
* ``GET /profile.json`` -- the attached
  :class:`~repro.obs.recorder.MultilevelProfile` as JSON (404 when none
  was attached).

The metrics ``source`` may be a live :class:`~repro.serve.service.
PartitionService` (its ``metrics_text()`` runs under the service lock, so
a scrape mid-traffic sees a consistent snapshot), a
:class:`~repro.trace.Tracer` / :class:`~repro.trace.MetricsRegistry` /
``as_dict()``-style mapping (rendered via :func:`render_prometheus`), or
a zero-argument callable returning exposition text.

Shutdown contract: :meth:`MetricsServer.close` is idempotent and safe
from any thread -- it stops accepting connections, finishes in-flight
requests, joins the serving thread, and releases the port.  Construction
failures (port in use, privileged port, out-of-range port) raise
:class:`~repro.errors.ObsError` with the bind address in the message.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ObsError
from .expose import render_prometheus

__all__ = ["MetricsServer"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve ``/metrics``, ``/healthz`` and ``/profile.json`` over HTTP.

    Parameters
    ----------
    source:
        Where ``/metrics`` text comes from: an object with a
        ``metrics_text()`` method (a :class:`PartitionService`), a
        tracer/registry/mapping accepted by :func:`render_prometheus`, or
        a zero-argument callable returning exposition text.  May be
        swapped at runtime by assigning :attr:`source`.
    port:
        TCP port to bind; ``0`` picks a free ephemeral port (read the
        bound one from :attr:`port`).
    host:
        Bind address; loopback by default -- expose deliberately.
    profile:
        Optional :class:`~repro.obs.recorder.MultilevelProfile` (or dict,
        or zero-argument callable producing either) behind
        ``/profile.json``; assignable at runtime via :attr:`profile`.
    """

    def __init__(self, source=None, *, port: int = 0,
                 host: str = "127.0.0.1", profile=None):
        if not (0 <= int(port) <= 65535):
            raise ObsError(
                f"cannot bind metrics server: port {port!r} is outside "
                "0..65535")
        self.source = source
        self.profile = profile
        self._lock = threading.Lock()
        self._closed = False
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence per-request stderr spam
                pass

            def do_GET(self):
                try:
                    if self.path in ("/metrics", "/metrics/"):
                        body = server._metrics_text().encode()
                        ctype = _CONTENT_TYPE
                    elif self.path in ("/healthz", "/healthz/"):
                        body, ctype = b"ok\n", "text/plain; charset=utf-8"
                    elif self.path in ("/profile.json", "/profile.json/"):
                        payload = server._profile_json()
                        if payload is None:
                            self.send_error(404, "no profile attached")
                            return
                        body = payload.encode()
                        ctype = "application/json; charset=utf-8"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # surface, don't kill the thread
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        try:
            self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        except OSError as exc:
            raise ObsError(
                f"cannot bind metrics server to {host}:{port}: "
                f"{exc}") from exc
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="repro-metrics-server")
        self._thread.start()

    # --------------------------------------------------------- routes

    def _metrics_text(self) -> str:
        src = self.source
        if src is None:
            return ""
        metrics_text = getattr(src, "metrics_text", None)
        if callable(metrics_text):
            return metrics_text()
        if callable(src):
            return str(src())
        return render_prometheus(src)

    def _profile_json(self) -> str | None:
        prof = self.profile
        if callable(prof):
            prof = prof()
        if prof is None:
            return None
        if hasattr(prof, "to_json"):
            return prof.to_json()
        return json.dumps(prof, indent=2, sort_keys=True, default=str)

    # ------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the port (idempotent, thread-safe)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
