"""Observability tooling layered on :mod:`repro.trace`.

Four pieces (see ``docs/observability.md`` for the full walkthrough):

* **Flight recorder** (:mod:`repro.obs.recorder`) -- a sink that buffers a
  traced run's event stream and materialises the typed
  :class:`MultilevelProfile`: one row per level of the coarsening ladder,
  the initial partition, and the uncoarsening ladder, each carrying cut
  and per-constraint imbalance.
* **Rendering** (:mod:`repro.obs.render`) -- the terminal per-level
  dashboard behind ``repro-part --profile``.
* **Exposition** (:mod:`repro.obs.expose`) -- Prometheus text format over
  the merged counter/gauge/histogram registry
  (:func:`render_prometheus`), plus the validating
  :func:`parse_exposition`.  ``PartitionService.metrics_text()`` uses the
  same renderer.
* **Drift checking** (:mod:`repro.obs.regress`) -- compare a recorded
  profile against a committed JSON baseline under explicit tolerances;
  powers the ``make obs-smoke`` gate.
* **Live scrape endpoint** (:mod:`repro.obs.server`) -- a stdlib HTTP
  server exposing ``/metrics`` (Prometheus), ``/healthz`` and
  ``/profile.json`` from a live service or tracer; CLI flag
  ``--metrics-port``.
"""

from .expose import parse_exposition, render_prometheus
from .recorder import (FlightRecorder, LevelRecord, MultilevelProfile,
                       profile_from_events)
from .regress import (DriftReport, DriftTolerances, check_baseline,
                      compare_profiles, load_baseline)
from .render import render_profile
from .server import MetricsServer

__all__ = [
    "FlightRecorder",
    "LevelRecord",
    "MultilevelProfile",
    "profile_from_events",
    "render_profile",
    "render_prometheus",
    "parse_exposition",
    "MetricsServer",
    "DriftTolerances",
    "DriftReport",
    "compare_profiles",
    "check_baseline",
    "load_baseline",
]
