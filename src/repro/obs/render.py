"""Terminal rendering of a :class:`~repro.obs.recorder.MultilevelProfile`.

One row per level of the pipeline -- down the coarsening ladder, the
initial partition, back up the uncoarsening ladder -- with cut and
per-constraint imbalance populated on *every* row (coarsening rows borrow
the arrival state of refinement; see ``repro.obs.recorder``).  This is
what ``repro-part --profile`` prints.
"""

from __future__ import annotations

from ..trace.render import format_seconds

__all__ = ["render_profile"]

_COLUMNS = ("phase", "lvl", "nvtxs", "nedges", "cut", "imbalance", "detail",
            "time")


def _fmt_imb(vec) -> str:
    if not vec:
        return "-"
    return ",".join(f"{float(x):.3f}" for x in vec)


def _fmt_int(v) -> str:
    return "-" if v is None else str(int(v))


def _detail(row) -> str:
    if row.phase == "coarsen":
        parts = []
        if row.matching_rate is not None:
            parts.append(f"match {100.0 * row.matching_rate:.0f}%")
        if row.shrink is not None:
            parts.append(f"shrink {row.shrink:.2f}")
        return " ".join(parts) or "-"
    if row.phase in ("initpart", "initbisect"):
        return "initial partition"
    parts = [f"moves {row.moves}", f"passes {row.passes}"]
    if row.rollbacks:
        parts.append(f"rbk {row.rollbacks}")
    if row.balance_moves:
        parts.append(f"bal {row.balance_moves}")
    return " ".join(parts)


def render_profile(profile) -> str:
    """Human-readable per-level dashboard of one run."""
    head = [
        f"multilevel profile: {profile.method or '?'}"
        f" k={profile.nparts} m={profile.ncon}"
        f" n={profile.nvtxs} e={profile.nedges}"
    ]
    if profile.final_cut is not None:
        feas = ("feasible" if profile.feasible
                else "INFEASIBLE" if profile.feasible is not None else "?")
        tail = (f" [{format_seconds(profile.total_seconds)}]"
                if profile.total_seconds is not None else "")
        head.append(f"final: cut={profile.final_cut}"
                    f" imbalance=[{_fmt_imb(profile.final_imbalance)}]"
                    f" {feas}{tail}")

    rows = []
    for r in profile.rows():
        rows.append((
            r.phase,
            str(r.level),
            str(r.nvtxs),
            str(r.nedges),
            _fmt_int(r.cut),
            _fmt_imb(r.imbalance),
            _detail(r),
            format_seconds(r.seconds) if r.seconds is not None else "-",
        ))

    lines = list(head)
    if rows:
        widths = [max(len(c), *(len(row[i]) for row in rows))
                  for i, c in enumerate(_COLUMNS)]
        # detail is the one left-aligned free-text column
        def fmt(cells):
            out = []
            for i, cell in enumerate(cells):
                if _COLUMNS[i] in ("phase", "detail"):
                    out.append(cell.ljust(widths[i]))
                else:
                    out.append(cell.rjust(widths[i]))
            return "  ".join(out).rstrip()

        lines.append(fmt(_COLUMNS))
        lines.append(fmt(tuple("-" * w for w in widths)))
        lines.extend(fmt(row) for row in rows)
    else:
        lines.append("(no level records -- was the run traced?)")

    if profile.phase_seconds:
        lines.append("phases: " + "  ".join(
            f"{name}={format_seconds(sec)}"
            for name, sec in profile.phase_seconds.items()))

    if profile.rank_phases:
        lines.append("workers (shm):")
        wcols = ("rank", "compute", "pipe-wait", "publish", "steps")
        wrows = [(str(r.get("rank")),
                  format_seconds(r.get("compute_seconds") or 0.0),
                  format_seconds(r.get("pipe_wait_seconds") or 0.0),
                  format_seconds(r.get("publish_seconds") or 0.0),
                  str(r.get("steps") or 0))
                 for r in profile.rank_phases]
        wwidths = [max(len(c), *(len(row[i]) for row in wrows))
                   for i, c in enumerate(wcols)]
        lines.append("  " + "  ".join(
            c.rjust(wwidths[i]) for i, c in enumerate(wcols)))
        for row in wrows:
            lines.append("  " + "  ".join(
                cell.rjust(wwidths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
