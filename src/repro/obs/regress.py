"""Baseline-drift checking over recorded multilevel profiles.

A committed baseline (``MultilevelProfile.to_dict()`` as JSON) pins the
*shape* of a seeded run: final cut, per-constraint imbalance, hierarchy
depth, coarsest size.  :func:`compare_profiles` flags drift beyond
explicit tolerances, so an accidental change to matching, refinement or
the RNG stream shows up as a failed ``make obs-smoke`` instead of a silent
quality regression.  Timings are deliberately *not* compared -- they vary
per machine; the perf guard benchmarks own that budget.

Record / refresh a baseline with ``python benchmarks/obs_smoke.py
--record``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..errors import ObsError
from .recorder import MultilevelProfile

__all__ = ["DriftTolerances", "DriftReport", "compare_profiles",
           "check_baseline", "load_baseline"]


@dataclass(frozen=True)
class DriftTolerances:
    """Allowed drift of a current profile against its baseline.

    ``cut_rel`` bounds the relative final-cut change; ``imbalance_abs``
    bounds the absolute per-constraint imbalance change; ``levels_delta``
    bounds the hierarchy-depth change; ``coarsest_rel`` bounds the relative
    change of the coarsest-graph size.  Identity fields (method, nparts,
    ncon, input sizes) always compare exactly.
    """

    cut_rel: float = 0.10
    imbalance_abs: float = 0.05
    levels_delta: int = 1
    coarsest_rel: float = 0.25


@dataclass
class DriftReport:
    """Outcome of one profile-vs-baseline comparison."""

    violations: list[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"drift check OK ({self.checked} checks)"
        lines = [f"drift check FAILED ({len(self.violations)} of "
                 f"{self.checked} checks):"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def _coarsest_nvtxs(profile: MultilevelProfile) -> int | None:
    if profile.initial is not None:
        return profile.initial.nvtxs
    if profile.uncoarsening:
        return profile.uncoarsening[0].nvtxs
    return None


def compare_profiles(current: MultilevelProfile,
                     baseline: MultilevelProfile,
                     tol: DriftTolerances | None = None) -> DriftReport:
    """Compare ``current`` against ``baseline`` under ``tol``."""
    tol = tol or DriftTolerances()
    rep = DriftReport()

    def check(cond: bool, message: str) -> None:
        rep.checked += 1
        if not cond:
            rep.violations.append(message)

    for name in ("method", "nparts", "ncon", "nvtxs", "nedges"):
        cur, base = getattr(current, name), getattr(baseline, name)
        check(cur == base, f"{name} changed: baseline {base!r}, now {cur!r}")

    if baseline.final_cut is not None:
        cur = current.final_cut
        if cur is None:
            check(False, "final_cut missing from current profile")
        else:
            lim = tol.cut_rel * max(abs(baseline.final_cut), 1)
            check(abs(cur - baseline.final_cut) <= lim,
                  f"final cut drifted: baseline {baseline.final_cut}, now "
                  f"{cur} (tolerance ±{lim:.1f})")

    if baseline.final_imbalance:
        cur = current.final_imbalance or []
        check(len(cur) == len(baseline.final_imbalance),
              "final_imbalance length changed: baseline "
              f"{len(baseline.final_imbalance)}, now {len(cur)}")
        for j, (a, b) in enumerate(zip(cur, baseline.final_imbalance)):
            check(abs(a - b) <= tol.imbalance_abs,
                  f"imbalance[{j}] drifted: baseline {b:.4f}, now {a:.4f} "
                  f"(tolerance ±{tol.imbalance_abs})")

    check(abs(current.nlevels - baseline.nlevels) <= tol.levels_delta,
          f"hierarchy depth drifted: baseline {baseline.nlevels} levels, "
          f"now {current.nlevels} (tolerance ±{tol.levels_delta})")

    base_c = _coarsest_nvtxs(baseline)
    cur_c = _coarsest_nvtxs(current)
    if base_c is not None and cur_c is not None:
        lim = tol.coarsest_rel * max(base_c, 1)
        check(abs(cur_c - base_c) <= lim,
              f"coarsest graph size drifted: baseline {base_c}, now {cur_c} "
              f"(tolerance ±{lim:.1f})")

    check(bool(current.feasible) or baseline.feasible is False,
          "current profile is infeasible but the baseline was feasible")
    return rep


def load_baseline(path) -> MultilevelProfile:
    """Load a committed baseline profile; raises
    :class:`~repro.errors.ObsError` when missing or malformed."""
    path = str(path)
    if not os.path.exists(path):
        raise ObsError(
            f"drift baseline {path!r} does not exist (record one with "
            "'python benchmarks/obs_smoke.py --record')")
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ObsError(f"drift baseline {path!r} is unreadable: {exc}") from exc
    if not isinstance(data, dict):
        raise ObsError(f"drift baseline {path!r} is not a profile dict")
    return MultilevelProfile.from_dict(data)


def check_baseline(profile: MultilevelProfile, path,
                   tol: DriftTolerances | None = None) -> DriftReport:
    """Compare ``profile`` against the baseline JSON at ``path``."""
    return compare_profiles(profile, load_baseline(path), tol)
