"""Configuration objects for the partitioning drivers."""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace

from ..errors import OptionsError, PartitionError

__all__ = ["PartitionOptions", "check_option_kwargs"]


@dataclass(frozen=True)
class PartitionOptions:
    """Tuning knobs of the multilevel partitioners.

    The defaults mirror the paper's experimental setup: heavy-edge matching
    with balanced-edge tie-break, 5% imbalance tolerance, best-of-4 initial
    bisections.

    Attributes
    ----------
    ubvec:
        Per-constraint load-imbalance tolerance; a scalar applies to every
        constraint.  The paper uses 1.05.
    seed:
        RNG seed (int / Generator / None).
    matching:
        Matching scheme for coarsening: ``"hem"`` (default, balanced-edge
        tie-break), ``"bem"``, ``"rm"``, or ``"fhem"`` (vectorised
        handshaking HEM -- fastest, no balanced-edge tie-break).
    coarsen_to:
        Coarsest-graph size for 2-way multilevel bisection (default 100).
    kway_coarsen_factor:
        The k-way driver coarsens to ``max(kway_coarsen_factor * nparts,
        coarsen_to)`` vertices.
    max_coarsen_levels, min_shrink:
        Coarsening loop bounds (see :func:`repro.coarsen.coarsen`).
    init_ntries:
        Candidate rounds in the initial bisection.
    init_methods:
        Candidate-generation methods for the initial bisection (a subset of
        :data:`repro.initpart.INITIAL_METHODS`; unknown names raise
        :class:`~repro.errors.OptionsError` with a suggestion).
    init_diverse_rounds:
        How many of the ``init_ntries`` rounds run *every* method; later
        rounds re-try only the seed-sensitive graph-growing methods.
    init_patience:
        Plateau patience of the initial bisection: stop refining candidates
        once the best (feasible, cut, balance) key has gone this many
        refined candidates without improving.  0 disables the early stop.
    strict_ntries:
        Run the exact legacy multi-start (every round runs every method,
        no plateau stop, no duplicate skipping).
    init_workers:
        Process-pool workers for initial-bisection candidate refinement
        (0 = in-process; results are bit-identical either way).
    refine_passes:
        FM passes per uncoarsening level (2-way).
    kway_refine_passes:
        Greedy passes per uncoarsening level (k-way).
    rb_multilevel:
        When false the recursive-bisection driver skips coarsening and
        bisects every (sub)graph directly -- used for the initial k-way
        partition of an already-coarse graph, and by ablation benches.
    final_balance:
        Run a global k-way balancing pass on the assembled partition when
        some constraint ended outside tolerance.
    collect_stats:
        Record a multilevel trace (per-level sizes, cut and imbalance after
        each refinement step, phase timings) in ``PartitionResult.stats``
        as a :class:`repro.trace.TraceReport`.  Equivalent to passing a
        private in-memory :class:`repro.trace.Tracer` via
        ``part_graph(..., tracer=...)``; off by default so the hot path
        runs on the no-op tracer.
    kway_policy:
        Sweep order of the k-way refiner: ``"greedy"`` (randomised
        boundary sweep) or ``"priority"`` (gain-ordered queue).
    effort:
        Quality/time trade-off preset: ``"fast"`` (cheaper initial
        partitioning -- fewer candidate rounds and refinement passes),
        ``"standard"`` (default; bit-identical to the historical single
        V-cycle pipeline) or ``"high"`` (run the standard pipeline, then
        iterated V-cycles via :func:`repro.partition.vcycle.vcycle_improve`
        -- cut is never worse than standard).  See docs/api.md
        "Effort levels".
    vcycle_max:
        Maximum number of iterated V-cycles under ``effort="high"``.
    vcycle_patience:
        Stop iterating after this many consecutive non-improving V-cycles.
    """

    ubvec: object = 1.05
    seed: object = None
    matching: str = "hem"
    coarsen_to: int = 100
    kway_coarsen_factor: int = 30
    max_coarsen_levels: int = 60
    min_shrink: float = 0.95
    init_ntries: int = 5
    init_methods: tuple = ("greedy", "prefix", "region", "gggp")
    init_diverse_rounds: int = 1
    init_patience: int = 6
    strict_ntries: bool = False
    init_workers: int = 0
    refine_passes: int = 8
    kway_refine_passes: int = 8
    rb_multilevel: bool = True
    final_balance: bool = True
    collect_stats: bool = False
    kway_policy: str = "greedy"
    effort: str = "standard"
    vcycle_max: int = 8
    vcycle_patience: int = 2

    def __post_init__(self):
        if self.matching not in ("hem", "bem", "rm", "fhem"):
            raise PartitionError(f"unknown matching scheme {self.matching!r}")
        if self.kway_policy not in ("greedy", "priority"):
            raise PartitionError(f"unknown k-way policy {self.kway_policy!r}")
        if self.effort not in ("fast", "standard", "high"):
            raise OptionsError(
                f"unknown effort level {self.effort!r}; "
                "pick from 'fast', 'standard', 'high'")
        if self.vcycle_max < 1 or self.vcycle_patience < 1:
            raise PartitionError("vcycle_max/vcycle_patience must be >= 1")
        if self.coarsen_to < 2:
            raise PartitionError("coarsen_to must be >= 2")
        if self.init_ntries < 1 or self.refine_passes < 0 or self.kway_refine_passes < 0:
            raise PartitionError("iteration counts must be positive")
        if self.init_patience < 0 or self.init_diverse_rounds < 0 or self.init_workers < 0:
            raise PartitionError("init_patience/init_diverse_rounds/init_workers must be >= 0")
        if not isinstance(self.init_methods, tuple):
            object.__setattr__(self, "init_methods", tuple(self.init_methods))
        if not self.init_methods:
            raise PartitionError("init_methods must name at least one method")
        # Deferred import: repro.initpart imports repro.refine which has no
        # cycle back here, but keeping the import local avoids ordering
        # surprises during package initialisation.
        from ..initpart.bisect import INITIAL_METHODS

        unknown = [m for m in self.init_methods if m not in INITIAL_METHODS]
        if unknown:
            parts = []
            for name in unknown:
                close = difflib.get_close_matches(name, INITIAL_METHODS, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                parts.append(f"{name!r}{hint}")
            raise OptionsError(
                f"unknown init_methods value{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(parts)}; valid methods: {', '.join(INITIAL_METHODS)}"
            )

    def with_(self, **kwargs) -> "PartitionOptions":
        """Functional update (``dataclasses.replace`` wrapper).

        Unknown option names raise :class:`~repro.errors.OptionsError`
        with a did-you-mean suggestion (see :func:`check_option_kwargs`).
        """
        check_option_kwargs(kwargs)
        return replace(self, **kwargs)


#: Valid :class:`PartitionOptions` field names, in declaration order.
OPTION_FIELDS = tuple(f.name for f in fields(PartitionOptions))


def check_option_kwargs(kwargs) -> None:
    """Reject unknown option names with a typed, suggestion-bearing error.

    ``part_graph(g, 8, ubvek=1.02)`` must fail loudly: constructing
    ``PartitionOptions(**kwargs)`` directly raises an untyped ``TypeError``
    deep in dataclass machinery, and anything that *swallowed* the typo
    would silently partition (and cache) under the default tolerance.
    """
    unknown = [name for name in kwargs if name not in OPTION_FIELDS]
    if not unknown:
        return
    parts = []
    for name in unknown:
        close = difflib.get_close_matches(name, OPTION_FIELDS, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        parts.append(f"{name!r}{hint}")
    raise OptionsError(
        f"unknown partition option{'s' if len(unknown) > 1 else ''} "
        f"{', '.join(parts)}; valid options: {', '.join(OPTION_FIELDS)}"
    )
