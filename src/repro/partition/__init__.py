"""Multilevel partitioning drivers and public API."""

from .api import METHODS, PartitionResult, part_graph
from .config import PartitionOptions
from .ensemble import EnsembleResult, best_of
from .kway import partition_kway
from .recursive import multilevel_bisection, partition_recursive
from .validate import validate_request, validate_weights

__all__ = [
    "part_graph",
    "PartitionResult",
    "PartitionOptions",
    "partition_kway",
    "partition_recursive",
    "multilevel_bisection",
    "METHODS",
    "best_of",
    "EnsembleResult",
    "validate_request",
    "validate_weights",
]
