"""Multilevel partitioning drivers and public API."""

from .api import METHODS, PartitionResult, part_graph
from .config import PartitionOptions
from .ensemble import EnsembleResult, EvolveResult, Individual, best_of, evolve
from .kway import partition_kway
from .recursive import multilevel_bisection, partition_recursive
from .validate import validate_request, validate_weights
from .vcycle import VCycleStats, vcycle_improve, vcycle_once

__all__ = [
    "part_graph",
    "PartitionResult",
    "PartitionOptions",
    "partition_kway",
    "partition_recursive",
    "multilevel_bisection",
    "METHODS",
    "best_of",
    "evolve",
    "EnsembleResult",
    "EvolveResult",
    "Individual",
    "vcycle_once",
    "vcycle_improve",
    "VCycleStats",
    "validate_request",
    "validate_weights",
]
