"""Validation front-door for partitioning requests.

Every public driver (:func:`repro.partition.part_graph`,
:func:`repro.parallel.parallel_part_graph`) runs :func:`validate_request`
before any work: malformed requests fail immediately with a precise
:class:`~repro.errors.ReproError` subclass instead of a deep stack trace
from the middle of the multilevel machinery.  The checks are O(n·m)
vectorised scans -- negligible next to a partitioning run.

What is rejected where (the documented contract; see ``docs/robustness.md``):

* ``nparts`` not an integer, < 1, or > nvtxs -> :class:`PartitionError`
* empty graph, unknown ``method``            -> :class:`PartitionError`
* NaN / infinite / negative vertex weights   -> :class:`WeightError`
* ragged or non-numeric weight arrays        -> :class:`WeightError`
  (via :func:`validate_weights`, also usable on raw pre-``Graph`` input)
* ``ubvec`` wrong length, <= 1, or non-finite -> :class:`BalanceError`
* ``target_fracs`` wrong length / non-positive / non-finite
                                             -> :class:`BalanceError`
* ``nranks`` (parallel driver) not a positive integer
                                             -> :class:`PartitionError`
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError, WeightError
from ..weights.balance import as_target_fracs, as_ubvec

__all__ = ["METHODS", "validate_request", "validate_weights"]

METHODS = ("kway", "recursive")


def _as_count(value, name: str) -> int:
    """Coerce a positive-integer parameter, rejecting bools and floats."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise PartitionError(
            f"{name} must be an integer; got {type(value).__name__} {value!r}"
        )
    return int(value)


def validate_weights(vwgt, nvtxs: int | None = None) -> np.ndarray:
    """Check a vertex-weight array *before* any integer cast.

    Accepts anything array-like; raises :class:`WeightError` on ragged or
    non-numeric input, NaN / infinity, negative entries, or a row count
    that does not match ``nvtxs``.  Returns the array (dtype unchanged).
    """
    try:
        arr = np.asarray(vwgt)
    except ValueError as exc:  # ragged nested sequences
        raise WeightError(f"vertex weights are ragged or malformed: {exc}") from exc
    if arr.dtype == object or not np.issubdtype(arr.dtype, np.number):
        raise WeightError(
            f"vertex weights must be numeric and rectangular; got dtype {arr.dtype}"
        )
    if np.issubdtype(arr.dtype, np.floating):
        if not np.all(np.isfinite(arr)):
            raise WeightError("vertex weights must be finite (no NaN/inf)")
    if arr.ndim not in (1, 2):
        raise WeightError(f"vwgt must be (n,) or (n, m); got shape {arr.shape}")
    if arr.size and arr.min() < 0:
        raise WeightError("vertex weights must be non-negative")
    if nvtxs is not None and arr.shape[0] != nvtxs:
        raise WeightError(
            f"vwgt must cover {nvtxs} vertices; got shape {arr.shape}"
        )
    return arr


def validate_request(
    graph,
    nparts,
    *,
    options=None,
    ubvec=None,
    method: str | None = None,
    target_fracs=None,
    nranks=None,
) -> None:
    """Validate a partitioning request; raise a typed error or return None.

    ``ubvec`` defaults to ``options.ubvec`` when ``options`` is given.
    ``method`` and ``nranks`` are only checked when provided (``nranks``
    is the parallel driver's rank count).
    """
    if method is not None and method not in METHODS:
        raise PartitionError(f"unknown method {method!r}; pick from {METHODS}")
    if graph.nvtxs == 0:
        raise PartitionError("cannot partition an empty graph")
    k = _as_count(nparts, "nparts")
    if k < 1:
        raise PartitionError("nparts must be >= 1")
    if k > graph.nvtxs:
        raise PartitionError(
            f"cannot cut {graph.nvtxs} vertices into {k} non-empty parts"
        )
    if nranks is not None:
        p = _as_count(nranks, "nranks")
        if p < 1:
            raise PartitionError("nranks must be >= 1")

    validate_weights(graph.vwgt, graph.nvtxs)

    if ubvec is None and options is not None:
        ubvec = options.ubvec
    if ubvec is not None:
        as_ubvec(ubvec, graph.ncon)
    if target_fracs is not None:
        as_target_fracs(target_fracs, k)
