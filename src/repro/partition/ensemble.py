"""Ensemble partitioning: multi-seed best-of and evolutionary search.

Multilevel partitioners are randomised; the paper reports *means over
three seeds* with small spread.  :func:`best_of` runs several seeds and
keeps the best (feasible-first, then cut), reporting the spread so callers
can check the variance claim themselves.

:func:`evolve` goes further ("Engineering Multilevel Graph Partitioning
Algorithms", PAPERS.md): it keeps a small population of partitions and
breeds it with two operators built on constrained V-cycles
(:mod:`repro.partition.vcycle`):

* **combine** -- overlap-cluster two parents (vertices agree on a cluster
  iff both parents agree), coarsen under that overlap as the matching
  constraint, and refine the better parent through the new hierarchy.
  The overlap is a refinement of *both* parents, so the better parent
  projects exactly and the child is never worse than it.
* **mutate** -- a perturbed-seed V-cycle of one individual: a fresh
  matching seed yields a fresh hierarchy and fresh refinement
  opportunities, again never making the individual worse.

The population keeps the **feasible Pareto front** on (cut, worst
imbalance): an individual survives unless another is at least as good on
both objectives and strictly better on one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import as_rng, spawn
from ..errors import OptionsError, PartitionError
from ..graph.csr import Graph
from ..refine.gain import edge_cut
from ..weights.balance import FEASIBILITY_EPS, as_target_fracs, as_ubvec, imbalance
from .api import PartitionResult, part_graph
from .config import PartitionOptions
from .vcycle import vcycle_once

__all__ = ["best_of", "evolve", "EnsembleResult", "EvolveResult", "Individual"]


@dataclass
class EnsembleResult:
    """Best run of an ensemble plus the ensemble's statistics."""

    best: PartitionResult
    cuts: list[int]
    imbalances: list[float]
    feasible_runs: int

    @property
    def cut_spread(self) -> float:
        """(max - min) / mean of the ensemble's cuts -- the variance the
        paper reports as "within a few percent"."""
        mean = float(np.mean(self.cuts))
        if mean == 0:
            return 0.0
        return float((max(self.cuts) - min(self.cuts)) / mean)

    def summary(self) -> str:
        return (
            f"best of {len(self.cuts)}: {self.best.summary()} "
            f"(spread {self.cut_spread:.1%}, {self.feasible_runs} feasible)"
        )


def _reject_options_kwargs(options, kwargs) -> None:
    """``options=`` plus loose option kwargs is ambiguous here.

    Historically the ensemble forwarded both to :func:`part_graph`, whose
    ``options.with_(**kwargs)`` merge silently let a stray ``seed=`` (or
    any knob already set on ``options``) override the per-member seeds --
    every "independent" run then partitioned identically.  Reject the
    combination loudly, like the ``part_graph`` front-door rejects unknown
    names, and tell the caller how to fold the knobs in.
    """
    if options is not None and kwargs:
        names = ", ".join(f"{k}={v!r}" for k, v in sorted(kwargs.items()))
        raise OptionsError(
            f"pass either options= or individual option kwargs, not both "
            f"(got options= and {names}); fold them into the options object "
            f"first: options.with_({', '.join(sorted(kwargs))}=...)"
        )
    if "seed" in kwargs:
        raise OptionsError(
            "seed= inside the forwarded option kwargs would override the "
            "ensemble's per-member seeds; pass the ensemble-level seed= "
            "parameter instead"
        )


def best_of(
    graph: Graph,
    nparts: int,
    nseeds: int = 3,
    *,
    seed=None,
    method: str = "kway",
    options: PartitionOptions | None = None,
    tracer=None,
    **kwargs,
) -> EnsembleResult:
    """Run ``nseeds`` independent partitions and keep the best.

    Results are ranked feasible-first, then by cut, then by worst
    imbalance.  ``tracer`` (a :class:`repro.trace.Tracer`) records every
    run -- one ``partition`` root span each; counters accumulate across the
    ensemble.  Remaining keyword arguments are forwarded to
    :func:`repro.partition.part_graph` -- but only when ``options`` is not
    also given (the combination raises :class:`~repro.errors.OptionsError`;
    fold the knobs into ``options.with_(...)`` instead).
    """
    if nseeds < 1:
        raise PartitionError("nseeds must be >= 1")
    _reject_options_kwargs(options, kwargs)
    rng = as_rng(seed)
    children = spawn(rng, nseeds)

    runs: list[PartitionResult] = []
    for child in children:
        if options is not None:
            res = part_graph(graph, nparts, method=method, tracer=tracer,
                             options=options.with_(seed=child))
        else:
            res = part_graph(graph, nparts, method=method, tracer=tracer,
                             seed=child, **kwargs)
        runs.append(res)

    best = min(runs, key=lambda r: (not r.feasible, r.edgecut, r.max_imbalance))
    return EnsembleResult(
        best=best,
        cuts=[r.edgecut for r in runs],
        imbalances=[r.max_imbalance for r in runs],
        feasible_runs=sum(r.feasible for r in runs),
    )


@dataclass(eq=False)
class Individual:
    """One member of the evolutionary population.

    Equality is identity (``eq=False``): membership tests on the front
    must not compare the ``part`` arrays elementwise.
    """

    part: np.ndarray = field(repr=False)
    cut: int
    max_imbalance: float
    feasible: bool

    @property
    def key(self):
        """Selection order: feasible first, then cut, then imbalance."""
        return (not self.feasible, self.cut, self.max_imbalance)

    def dominates(self, other: "Individual") -> bool:
        """Pareto dominance on (cut, max_imbalance), feasibility first."""
        if self.feasible != other.feasible:
            return self.feasible
        if self.cut <= other.cut and self.max_imbalance <= other.max_imbalance:
            return (self.cut < other.cut
                    or self.max_imbalance < other.max_imbalance)
        return False


@dataclass
class EvolveResult:
    """Outcome of :func:`evolve`.

    ``best`` is a full :class:`PartitionResult` for the best individual;
    ``front`` is the surviving feasible Pareto front (cut ascending);
    ``history`` records the best cut after the initial population and
    after each generation; ``combines``/``mutations`` count the operator
    applications that strictly improved an objective.
    """

    best: PartitionResult
    front: list[Individual]
    history: list[int]
    combines: int
    mutations: int

    def summary(self) -> str:
        return (
            f"evolve: {self.best.summary()} "
            f"(front {len(self.front)}, history {self.history})"
        )


def _individual(graph, part, nparts, ub, fracs) -> Individual:
    imb = imbalance(graph.vwgt, part, nparts, fracs)
    return Individual(
        part=part,
        cut=int(edge_cut(graph, part)),
        max_imbalance=float(imb.max(initial=0.0)),
        feasible=bool(np.all(imb <= ub + FEASIBILITY_EPS)),
    )


def _pareto_insert(front: list[Individual], cand: Individual,
                   max_size: int) -> bool:
    """Insert ``cand`` unless dominated; drop members it dominates.

    Returns True when the candidate survived.  The front is kept sorted by
    selection key and trimmed to ``max_size`` (worst key dropped first).
    """
    if any(m.dominates(cand) for m in front):
        return False
    if any(np.array_equal(m.part, cand.part) for m in front):
        return False
    front[:] = [m for m in front if not cand.dominates(m)]
    front.append(cand)
    front.sort(key=lambda m: m.key)
    del front[max_size:]
    return cand in front


def _overlap_labels(pa: np.ndarray, pb: np.ndarray, nparts: int) -> np.ndarray:
    """Dense labels of the overlap clustering of two partitions.

    Two vertices share a label iff they share a block in *both* parents,
    so the overlap refines each parent and either one projects exactly
    onto any hierarchy coarsened under it.
    """
    _, labels = np.unique(pa * np.int64(nparts) + pb, return_inverse=True)
    return labels.astype(np.int64)


def evolve(
    graph: Graph,
    nparts: int,
    *,
    population: int = 4,
    generations: int = 3,
    seed=None,
    method: str = "kway",
    options: PartitionOptions | None = None,
    target_fracs=None,
    tracer=None,
    **kwargs,
) -> EvolveResult:
    """Evolutionary ensemble search over partitions.

    Seeds a population of ``population`` independent standard-effort runs,
    then for each of ``generations`` rounds applies one **combine** (the
    two best distinct parents bred through an overlap-constrained V-cycle)
    and one **mutate** (perturbed-seed V-cycle of a random member) and
    folds the children back into the feasible Pareto front on
    (cut, worst imbalance).  Children of feasible parents are feasible by
    the V-cycle monotonicity guard, so the front never regresses.

    ``options``/kwargs follow the :func:`best_of` contract (mutually
    exclusive).  The population's base options force ``effort="standard"``
    -- the evolutionary loop *is* the high-effort mechanism, and nesting
    iterated V-cycles inside each member would square the cost.
    """
    if population < 2:
        raise PartitionError("population must be >= 2")
    if generations < 0:
        raise PartitionError("generations must be >= 0")
    _reject_options_kwargs(options, kwargs)
    if options is None:
        options = PartitionOptions(**kwargs)
    base = options.with_(effort="standard")
    ub = as_ubvec(base.ubvec, graph.ncon)
    fracs = as_target_fracs(target_fracs, nparts)
    rng = as_rng(seed)

    front: list[Individual] = []
    max_front = max(population, 2)
    for child in spawn(rng, population):
        res = part_graph(graph, nparts, method=method, tracer=tracer,
                         target_fracs=target_fracs,
                         options=base.with_(seed=child))
        _pareto_insert(front, _individual(graph, res.part, nparts, ub, fracs),
                       max_front)
    history = [front[0].cut]
    combines = mutations = 0

    for _ in range(generations):
        (combine_rng, pick_rng, mutate_rng) = spawn(rng, 3)
        # Combine the two best distinct members (if we still have two).
        if len(front) >= 2:
            pa, pb = front[0], front[1]
            child_part = vcycle_once(
                graph, pa.part, nparts, base, target_fracs=target_fracs,
                seed=combine_rng,
                constraint=_overlap_labels(pa.part, pb.part, nparts),
                tracer=tracer)
            child = _individual(graph, child_part, nparts, ub, fracs)
            if _pareto_insert(front, child, max_front):
                combines += 1
        # Mutate a random member with a fresh hierarchy seed.
        pick = front[int(as_rng(pick_rng).integers(len(front)))]
        mutant_part = vcycle_once(
            graph, pick.part, nparts, base, target_fracs=target_fracs,
            seed=mutate_rng, tracer=tracer)
        mutant = _individual(graph, mutant_part, nparts, ub, fracs)
        if _pareto_insert(front, mutant, max_front):
            mutations += 1
        history.append(front[0].cut)

    best = front[0]
    imb = imbalance(graph.vwgt, best.part, nparts, fracs)
    best_result = PartitionResult(
        part=best.part,
        nparts=nparts,
        ncon=graph.ncon,
        edgecut=best.cut,
        imbalance=imb,
        feasible=best.feasible,
        method=method,
        options=options,
    )
    return EvolveResult(
        best=best_result,
        front=[m for m in front if m.feasible],
        history=history,
        combines=combines,
        mutations=mutations,
    )
