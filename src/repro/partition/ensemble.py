"""Multi-seed ensemble runs.

Multilevel partitioners are randomised; the paper reports *means over
three seeds* with small spread.  :func:`best_of` runs several seeds and
keeps the best (feasible-first, then cut), reporting the spread so callers
can check the variance claim themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng, spawn
from ..errors import PartitionError
from ..graph.csr import Graph
from .api import PartitionResult, part_graph
from .config import PartitionOptions

__all__ = ["best_of", "EnsembleResult"]


@dataclass
class EnsembleResult:
    """Best run of an ensemble plus the ensemble's statistics."""

    best: PartitionResult
    cuts: list[int]
    imbalances: list[float]
    feasible_runs: int

    @property
    def cut_spread(self) -> float:
        """(max - min) / mean of the ensemble's cuts -- the variance the
        paper reports as "within a few percent"."""
        mean = float(np.mean(self.cuts))
        if mean == 0:
            return 0.0
        return float((max(self.cuts) - min(self.cuts)) / mean)

    def summary(self) -> str:
        return (
            f"best of {len(self.cuts)}: {self.best.summary()} "
            f"(spread {self.cut_spread:.1%}, {self.feasible_runs} feasible)"
        )


def best_of(
    graph: Graph,
    nparts: int,
    nseeds: int = 3,
    *,
    seed=None,
    method: str = "kway",
    options: PartitionOptions | None = None,
    tracer=None,
    **kwargs,
) -> EnsembleResult:
    """Run ``nseeds`` independent partitions and keep the best.

    Results are ranked feasible-first, then by cut, then by worst
    imbalance.  ``tracer`` (a :class:`repro.trace.Tracer`) records every
    run -- one ``partition`` root span each; counters accumulate across the
    ensemble.  All remaining keyword arguments are forwarded to
    :func:`repro.partition.part_graph`.
    """
    if nseeds < 1:
        raise PartitionError("nseeds must be >= 1")
    rng = as_rng(seed)
    children = spawn(rng, nseeds)

    runs: list[PartitionResult] = []
    for child in children:
        if options is not None:
            res = part_graph(graph, nparts, method=method, tracer=tracer,
                             options=options.with_(seed=child), **kwargs)
        else:
            res = part_graph(graph, nparts, method=method, tracer=tracer,
                             seed=child, **kwargs)
        runs.append(res)

    best = min(runs, key=lambda r: (not r.feasible, r.edgecut, r.max_imbalance))
    return EnsembleResult(
        best=best,
        cuts=[r.edgecut for r in runs],
        imbalances=[r.max_imbalance for r in runs],
        feasible_runs=sum(r.feasible for r in runs),
    )
