"""Public partitioning API: :func:`part_graph` and :class:`PartitionResult`."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import Graph
from ..refine.gain import edge_cut
from ..trace import TraceReport, Tracer, as_tracer
from ..weights.balance import FEASIBILITY_EPS, as_target_fracs, as_ubvec, imbalance
from .config import PartitionOptions, check_option_kwargs
from .kway import partition_kway
from .recursive import partition_recursive
from .validate import METHODS, validate_request

__all__ = ["part_graph", "PartitionResult", "METHODS"]


@dataclass
class PartitionResult:
    """Result of a partitioning run.

    Attributes
    ----------
    part:
        ``(n,)`` part id per vertex.
    nparts, ncon:
        Requested part count / number of constraints.
    edgecut:
        Total weight of cut edges.
    imbalance:
        ``(ncon,)`` achieved load imbalance per constraint (1.0 = perfect).
    feasible:
        True when every constraint is within the requested tolerance.
    method:
        ``"kway"`` or ``"recursive"``.
    options:
        The :class:`PartitionOptions` used.
    stats:
        A :class:`repro.trace.TraceReport` (span tree, phase timings,
        per-level cut/imbalance, counters/gauges) when tracing was on --
        ``options.collect_stats`` or an explicit ``tracer=`` -- and ``None``
        otherwise.  The report is dict-compatible: ``stats["levels"]``,
        ``stats["trace"]``, ``stats["coarsen_seconds"]`` ... keep working.
    """

    part: np.ndarray
    nparts: int
    ncon: int
    edgecut: int
    imbalance: np.ndarray
    feasible: bool
    method: str
    options: PartitionOptions | None = field(repr=False, default=None)
    stats: TraceReport | None = field(repr=False, default=None)

    @property
    def max_imbalance(self) -> float:
        """Worst imbalance over all constraints."""
        return float(self.imbalance.max(initial=0.0))

    def part_sizes(self) -> np.ndarray:
        """Vertex count per part."""
        return np.bincount(self.part, minlength=self.nparts)

    def summary(self) -> str:
        """One-line human-readable summary."""
        imb = ", ".join(f"{x:.3f}" for x in self.imbalance)
        return (
            f"{self.method} k={self.nparts} m={self.ncon}: "
            f"cut={self.edgecut} imbalance=[{imb}] "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )


def part_graph(
    graph: Graph,
    nparts: int,
    *,
    method: str = "kway",
    options: PartitionOptions | None = None,
    target_fracs=None,
    tracer=None,
    strict: bool = False,
    **kwargs,
) -> PartitionResult:
    """Partition ``graph`` into ``nparts`` parts balancing all ``ncon``
    vertex-weight constraints while minimising the edge-cut.

    Parameters
    ----------
    graph:
        Input graph; ``graph.vwgt`` supplies the ``(n, m)`` constraint
        weights (``m = 1`` reduces to classic single-constraint
        partitioning).
    nparts:
        Number of parts (any integer >= 1).
    method:
        ``"kway"`` (multilevel k-way, default) or ``"recursive"``
        (multilevel recursive bisection).
    options:
        A :class:`PartitionOptions`; alternatively pass individual option
        fields as keyword arguments (e.g. ``ubvec=1.03, seed=42``).
    target_fracs:
        Optional length-``nparts`` target weight fractions (non-uniform
        part sizes, e.g. heterogeneous processors); every constraint uses
        the same per-part fraction.
    tracer:
        Optional :class:`repro.trace.Tracer` to record this run into (the
        run becomes one ``partition`` root span; attach sinks to stream
        events).  When omitted, ``options.collect_stats=True`` creates a
        private in-memory tracer; otherwise the no-op tracer runs and the
        hot path pays nothing.
    strict:
        Also run the O(E) structural audit (:meth:`Graph.validate`) on
        top of the always-on request validation.  The request checks
        themselves (NaN/negative/ragged weights, bad ``ubvec``,
        out-of-range ``nparts``; see ``docs/robustness.md``) run on every
        call and raise precise :class:`~repro.errors.ReproError`
        subclasses before any partitioning work starts.

    Returns
    -------
    PartitionResult

    Examples
    --------
    >>> from repro.graph import grid_2d
    >>> from repro.partition import part_graph
    >>> res = part_graph(grid_2d(16, 16), 4, seed=0)
    >>> res.feasible
    True
    """
    check_option_kwargs(kwargs)
    if options is None:
        options = PartitionOptions(**kwargs)
    elif kwargs:
        options = options.with_(**kwargs)
    validate_request(graph, nparts, options=options, method=method,
                     target_fracs=target_fracs)
    if strict:
        graph.validate()

    owns_tracer = tracer is None and options.collect_stats
    if owns_tracer:
        tracer = Tracer()
    tracer = as_tracer(tracer)

    # Effort presets (docs/api.md "Effort levels").  "fast" trims the
    # search knobs of the base run; "standard" is the historical pipeline,
    # bit-for-bit; "high" runs the standard pipeline first (same seed, so
    # the base partition is identical to effort="standard") and then
    # iterates constrained V-cycles, which only ever improve it.
    run_options = options
    if options.effort == "fast":
        run_options = options.with_(
            effort="standard",
            init_ntries=min(options.init_ntries, 2),
            init_patience=min(options.init_patience, 2) or 2,
            refine_passes=min(options.refine_passes, 4),
            kway_refine_passes=min(options.kway_refine_passes, 4),
        )

    with tracer.span("partition", method=method, nparts=nparts,
                     nvtxs=graph.nvtxs, nedges=graph.nedges,
                     ncon=graph.ncon) as root:
        if method == "kway":
            part = partition_kway(graph, nparts, run_options, tracer=tracer,
                                  target_fracs=target_fracs)
        else:
            part = partition_recursive(graph, nparts, run_options, tracer=tracer,
                                       target_fracs=target_fracs)

        if options.effort == "high" and nparts > 1:
            from .vcycle import vcycle_improve

            part, _ = vcycle_improve(
                graph, part, nparts, options, target_fracs=target_fracs,
                tracer=tracer)

        ub = as_ubvec(options.ubvec, graph.ncon)
        imb = imbalance(graph.vwgt, part, nparts, target_fracs)
        cut = edge_cut(graph, part)
        feasible = bool(np.all(imb <= ub + FEASIBILITY_EPS))
        if tracer.enabled:
            max_imb = float(imb.max(initial=0.0))
            root.set(cut=int(cut), max_imbalance=max_imb, feasible=feasible)
            tracer.gauge("final.cut", int(cut))
            tracer.gauge("final.max_imbalance", max_imb)

    stats = TraceReport.from_tracer(tracer, root=root) if tracer.enabled else None
    if owns_tracer:
        tracer.finish()
    return PartitionResult(
        stats=stats,
        part=part,
        nparts=nparts,
        ncon=graph.ncon,
        edgecut=cut,
        imbalance=imb,
        feasible=feasible,
        method=method,
        options=options,
    )
