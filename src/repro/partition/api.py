"""Public partitioning API: :func:`part_graph` and :class:`PartitionResult`."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from ..graph.csr import Graph
from ..refine.gain import edge_cut
from ..weights.balance import as_target_fracs, as_ubvec, imbalance
from .config import PartitionOptions
from .kway import partition_kway
from .recursive import partition_recursive

__all__ = ["part_graph", "PartitionResult", "METHODS"]

METHODS = ("kway", "recursive")


@dataclass
class PartitionResult:
    """Result of a partitioning run.

    Attributes
    ----------
    part:
        ``(n,)`` part id per vertex.
    nparts, ncon:
        Requested part count / number of constraints.
    edgecut:
        Total weight of cut edges.
    imbalance:
        ``(ncon,)`` achieved load imbalance per constraint (1.0 = perfect).
    feasible:
        True when every constraint is within the requested tolerance.
    method:
        ``"kway"`` or ``"recursive"``.
    options:
        The :class:`PartitionOptions` used.
    stats:
        Multilevel trace (levels, phase timings, per-level cut/imbalance)
        when ``options.collect_stats`` was set; ``None`` otherwise.
    """

    part: np.ndarray
    nparts: int
    ncon: int
    edgecut: int
    imbalance: np.ndarray
    feasible: bool
    method: str
    options: PartitionOptions = field(repr=False, default=None)
    stats: dict | None = field(repr=False, default=None)

    @property
    def max_imbalance(self) -> float:
        """Worst imbalance over all constraints."""
        return float(self.imbalance.max(initial=0.0))

    def part_sizes(self) -> np.ndarray:
        """Vertex count per part."""
        return np.bincount(self.part, minlength=self.nparts)

    def summary(self) -> str:
        """One-line human-readable summary."""
        imb = ", ".join(f"{x:.3f}" for x in self.imbalance)
        return (
            f"{self.method} k={self.nparts} m={self.ncon}: "
            f"cut={self.edgecut} imbalance=[{imb}] "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )


def part_graph(
    graph: Graph,
    nparts: int,
    *,
    method: str = "kway",
    options: PartitionOptions | None = None,
    target_fracs=None,
    **kwargs,
) -> PartitionResult:
    """Partition ``graph`` into ``nparts`` parts balancing all ``ncon``
    vertex-weight constraints while minimising the edge-cut.

    Parameters
    ----------
    graph:
        Input graph; ``graph.vwgt`` supplies the ``(n, m)`` constraint
        weights (``m = 1`` reduces to classic single-constraint
        partitioning).
    nparts:
        Number of parts (any integer >= 1).
    method:
        ``"kway"`` (multilevel k-way, default) or ``"recursive"``
        (multilevel recursive bisection).
    options:
        A :class:`PartitionOptions`; alternatively pass individual option
        fields as keyword arguments (e.g. ``ubvec=1.03, seed=42``).
    target_fracs:
        Optional length-``nparts`` target weight fractions (non-uniform
        part sizes, e.g. heterogeneous processors); every constraint uses
        the same per-part fraction.

    Returns
    -------
    PartitionResult

    Examples
    --------
    >>> from repro.graph import grid_2d
    >>> from repro.partition import part_graph
    >>> res = part_graph(grid_2d(16, 16), 4, seed=0)
    >>> res.feasible
    True
    """
    if method not in METHODS:
        raise PartitionError(f"unknown method {method!r}; pick from {METHODS}")
    if options is None:
        options = PartitionOptions(**kwargs)
    elif kwargs:
        options = options.with_(**kwargs)
    if graph.nvtxs == 0:
        raise PartitionError("cannot partition an empty graph")

    stats: dict | None = {} if options.collect_stats else None
    if method == "kway":
        part = partition_kway(graph, nparts, options, stats=stats,
                              target_fracs=target_fracs)
    else:
        part = partition_recursive(graph, nparts, options, stats=stats,
                                   target_fracs=target_fracs)

    ub = as_ubvec(options.ubvec, graph.ncon)
    imb = imbalance(graph.vwgt, part, nparts, target_fracs)
    return PartitionResult(
        stats=stats,
        part=part,
        nparts=nparts,
        ncon=graph.ncon,
        edgecut=edge_cut(graph, part),
        imbalance=imb,
        feasible=bool(np.all(imb <= ub + 1e-9)),
        method=method,
        options=options,
    )
