"""Iterated multilevel V-cycles (KaFFPa-style quality iteration).

A single multilevel run coarsens blindly: the matching that builds the
hierarchy knows nothing about the partition that will eventually be
refined on it.  The iterated-multilevel idea ("Engineering Multilevel
Graph Partitioning Algorithms", PAPERS.md) feeds the *current* partition
back into coarsening as a matching constraint -- only vertices in the
same block may be merged -- so the partition projects exactly onto every
level of the new hierarchy:

* a collapsed edge joins same-block endpoints, so it was uncut; the
  projected coarse partition has the **same cut** as the fine one, and
* contraction sums vertex weights, so per-part loads (hence
  feasibility) are preserved level by level.

Refinement at each level therefore starts from the incoming partition
(not a fresh one) and the greedy k-way refiner never accepts a
cut-increasing move on a feasible state -- each V-cycle is monotone by
construction, and :func:`vcycle_once` additionally guards the output so
a cycle can never return something worse than its input.

:func:`vcycle_improve` repeats V-cycles with freshly seeded matchings
until ``options.vcycle_max`` cycles ran or ``options.vcycle_patience``
consecutive cycles failed to improve.  This is what
``part_graph(..., effort="high")`` runs after the standard pipeline, and
what the evolutionary ensemble (:mod:`repro.partition.ensemble`) uses as
both its combine operator (constraint = overlap of two parents) and its
mutation operator (perturbed-seed cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng, spawn
from ..coarsen.coarsener import coarsen
from ..errors import PartitionError
from ..graph.csr import Graph
from ..refine.gain import edge_cut
from ..refine.kwayref import kway_refine
from ..trace import as_tracer
from ..weights.balance import (
    FEASIBILITY_EPS,
    as_target_fracs,
    as_ubvec,
    imbalance,
)
from .config import PartitionOptions

__all__ = ["VCycleStats", "vcycle_once", "vcycle_improve"]


@dataclass
class VCycleStats:
    """Outcome of a :func:`vcycle_improve` run.

    ``cycles`` V-cycles ran; ``improved`` of them strictly improved the
    (feasible, cut, imbalance) key.  ``initial_cut``/``final_cut`` bracket
    the whole run; ``final_cut <= initial_cut`` always (on feasible input).
    """

    cycles: int
    improved: int
    initial_cut: int
    final_cut: int


def _quality_key(graph: Graph, part: np.ndarray, nparts: int, ub, fracs):
    """Total order on partitions: feasible first, then cut, then imbalance."""
    imb = imbalance(graph.vwgt, part, nparts, fracs)
    feasible = bool(np.all(imb <= ub + FEASIBILITY_EPS))
    return (not feasible, int(edge_cut(graph, part)), float(imb.max(initial=0.0)))


def _check_part(graph: Graph, part, nparts: int) -> np.ndarray:
    out = np.asarray(part, dtype=np.int64)
    if out.shape != (graph.nvtxs,):
        raise PartitionError(
            f"partition must have shape ({graph.nvtxs},); got {out.shape}")
    if out.size and (out.min() < 0 or out.max() >= nparts):
        raise PartitionError(
            f"partition labels must lie in [0, {nparts}); "
            f"got [{out.min()}, {out.max()}]")
    return out


def vcycle_once(
    graph: Graph,
    part,
    nparts: int,
    options: PartitionOptions | None = None,
    *,
    target_fracs=None,
    seed=None,
    constraint=None,
    tracer=None,
) -> np.ndarray:
    """Run one constrained V-cycle starting from ``part``.

    Coarsens ``graph`` under ``constraint`` (default: ``part`` itself, the
    plain iterated-multilevel move; the ensemble passes the finer overlap
    clustering of two parents), projects ``part`` onto the coarsest graph,
    then refines back up through the hierarchy exactly like the k-way
    driver.  Returns a **new** part vector; the output never has a worse
    (feasible, cut, imbalance) key than the input -- if the cycle somehow
    regressed, the input is returned unchanged (as a copy).

    ``seed`` defaults to ``options.seed``; pass distinct seeds to obtain
    distinct matchings (and hence distinct refinement opportunities) from
    the same starting partition.
    """
    if options is None:
        options = PartitionOptions()
    tracer = as_tracer(tracer)
    part = _check_part(graph, part, nparts)
    if nparts < 2 or graph.nvtxs <= nparts:
        return part.copy()
    rng = as_rng(options.seed if seed is None else seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    fracs = as_target_fracs(target_fracs, nparts)
    con = part if constraint is None else _check_part(
        graph, constraint, int(np.max(constraint)) + 1)

    coarsen_to = max(
        options.kway_coarsen_factor * nparts * max(1, graph.ncon - 1),
        options.coarsen_to,
    )
    (coarsen_rng, refine_rng) = spawn(rng, 2)
    in_key = _quality_key(graph, part, nparts, ub, fracs)

    with tracer.span("vcycle", nvtxs=graph.nvtxs, nparts=nparts,
                     cut_before=in_key[1]) as sp:
        hier = coarsen(
            graph,
            coarsen_to=coarsen_to,
            max_levels=options.max_coarsen_levels,
            matching=options.matching,
            min_shrink=options.min_shrink,
            seed=coarsen_rng,
            constraint=con,
        )
        # Restrict the partition level by level: matched vertices share a
        # block (the constraint is a refinement of the partition), so the
        # scatter is well-defined and cut/loads are preserved exactly.
        # kway_refine mutates in place -- copy so the caller's array is safe.
        where = part.copy()
        for lvl in hier.levels:
            ncoarse = int(lvl.cmap.max()) + 1 if lvl.cmap.size else 0
            coarse = np.empty(ncoarse, dtype=np.int64)
            coarse[lvl.cmap] = where
            where = coarse

        kway_refine(
            hier.coarsest, where, nparts, ubvec=ub, target_fracs=fracs,
            npasses=options.kway_refine_passes, policy=options.kway_policy,
            seed=refine_rng)
        for idx in range(len(hier.levels) - 1, -1, -1):
            lvl = hier.levels[idx]
            where = where[lvl.cmap]
            kway_refine(
                lvl.graph, where, nparts, ubvec=ub, target_fracs=fracs,
                npasses=options.kway_refine_passes, policy=options.kway_policy,
                seed=refine_rng)

        out_key = _quality_key(graph, where, nparts, ub, fracs)
        if out_key > in_key:  # monotonicity guard: never hand back worse
            where = part.copy()
            out_key = in_key
        if tracer.enabled:
            sp.set(levels=hier.nlevels, cut=out_key[1],
                   improved=out_key < in_key)
    return where


def vcycle_improve(
    graph: Graph,
    part,
    nparts: int,
    options: PartitionOptions | None = None,
    *,
    target_fracs=None,
    seed=None,
    tracer=None,
) -> tuple[np.ndarray, VCycleStats]:
    """Iterate :func:`vcycle_once` until the patience budget is exhausted.

    Runs at most ``options.vcycle_max`` cycles, stopping early after
    ``options.vcycle_patience`` consecutive cycles without a strict
    improvement of the (feasible, cut, imbalance) key.  Each cycle draws a
    fresh child seed, so successive cycles explore different hierarchies.
    Returns ``(best_part, VCycleStats)``; ``best_part`` is never worse
    than the input.
    """
    if options is None:
        options = PartitionOptions()
    tracer = as_tracer(tracer)
    part = _check_part(graph, part, nparts)
    rng = as_rng(options.seed if seed is None else seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    fracs = as_target_fracs(target_fracs, nparts)

    best = part.copy()
    best_key = _quality_key(graph, best, nparts, ub, fracs)
    initial_cut = best_key[1]
    cycles = improved = stale = 0

    with tracer.span("vcycle_improve", nparts=nparts,
                     cut_before=initial_cut) as sp:
        while cycles < options.vcycle_max and stale < options.vcycle_patience:
            (cycle_rng,) = spawn(rng, 1)
            cand = vcycle_once(
                graph, best, nparts, options, target_fracs=target_fracs,
                seed=cycle_rng, tracer=tracer)
            cycles += 1
            cand_key = _quality_key(graph, cand, nparts, ub, fracs)
            if cand_key < best_key:
                best, best_key = cand, cand_key
                improved += 1
                stale = 0
            else:
                stale += 1
        if tracer.enabled:
            sp.set(cycles=cycles, improved=improved, cut=best_key[1])
            tracer.incr("vcycle.cycles", cycles)
            tracer.incr("vcycle.improved", improved)

    return best, VCycleStats(
        cycles=cycles, improved=improved,
        initial_cut=initial_cut, final_cut=best_key[1])
