"""Structured per-level ``"level"`` event emission shared by the drivers.

Every multilevel driver (k-way, recursive bisection, the parallel driver)
emits one ``"level"`` event per coarsening / refinement step through
:func:`emit_level_event`; ``repro.obs.recorder`` consumes them to build a
:class:`~repro.obs.recorder.MultilevelProfile`.  The schema is documented
in ``docs/observability.md``.

Callers must guard on ``tracer.enabled`` -- the imbalance / max-load
computation here is not free -- and nothing in this module touches the RNG
stream, so recording can never perturb seeded results.
"""

from __future__ import annotations

from ..weights.balance import imbalance, part_weights

__all__ = ["emit_level_event"]


def emit_level_event(tracer, *, phase, direction, level, graph, where,
                     nparts, fracs, cut, imbvec=None, cut_before=None,
                     moves=0, passes=0, balance_moves=0, rollbacks=0,
                     seconds=None):
    """Emit one structured per-level ``"level"`` event: sizes, cut,
    per-constraint imbalance and max part load, and the refiner's move
    accounting.  ``imbvec`` may be passed when the caller already computed
    the per-constraint imbalance vector."""
    if imbvec is None:
        imbvec = imbalance(graph.vwgt, where, nparts, fracs)
    maxload = part_weights(graph.vwgt, where, nparts).max(axis=0)
    tracer.event(
        "level",
        phase=phase,
        direction=direction,
        level=int(level),
        nvtxs=graph.nvtxs,
        nedges=graph.nedges,
        cut=int(cut),
        cut_before=None if cut_before is None else int(cut_before),
        imbalance=[float(x) for x in imbvec],
        maxload=[int(x) for x in maxload],
        moves=int(moves),
        passes=int(passes),
        balance_moves=int(balance_moves),
        rollbacks=int(rollbacks),
        seconds=seconds,
    )
