"""Multilevel k-way partitioning (the "horizontal" formulation).

Coarsen once to ``O(k)`` vertices, compute an initial k-way partition of the
coarsest graph by (non-multilevel) recursive bisection, then project the
partition back level by level, running the greedy multi-constraint k-way
refiner at each level.  Compared to recursive bisection this sees all ``k``
parts at once during refinement -- which is what lets it trade weight among
*all* parts when constraints interfere, the paper's motivation for the
horizontal formulation.
"""

from __future__ import annotations

import time

import numpy as np

from .._rng import as_rng, spawn
from ..coarsen.coarsener import coarsen
from ..errors import PartitionError
from ..graph.csr import Graph
from ..refine.kwayref import balance_kway, kway_refine
from ..weights.balance import as_target_fracs, as_ubvec, imbalance
from .config import PartitionOptions
from .recursive import partition_recursive

__all__ = ["partition_kway"]


def partition_kway(
    graph: Graph,
    nparts: int,
    options: PartitionOptions | None = None,
    stats: dict | None = None,
    target_fracs=None,
) -> np.ndarray:
    """Multilevel k-way partitioning.  Returns the part vector; ``graph`` is
    not mutated.  When ``stats`` is a dict, a multilevel trace is recorded
    into it (see ``PartitionOptions.collect_stats``).  ``target_fracs``
    requests non-uniform part sizes (see :func:`partition_recursive`)."""
    if options is None:
        options = PartitionOptions()
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > max(graph.nvtxs, 1):
        raise PartitionError(
            f"cannot cut {graph.nvtxs} vertices into {nparts} non-empty parts"
        )
    if nparts == 1:
        return np.zeros(graph.nvtxs, dtype=np.int64)

    rng = as_rng(options.seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    fracs = as_target_fracs(target_fracs, nparts)
    # More constraints need a larger coarsest graph: chunky coarse vertices
    # leave too little freedom to satisfy m caps at once (the paper's
    # observation that quality drops as movable vertices become scarce).
    coarsen_to = max(
        options.kway_coarsen_factor * nparts * max(1, graph.ncon - 1),
        options.coarsen_to,
    )

    t0 = time.perf_counter()
    if graph.nvtxs > 1.5 * coarsen_to:
        hier = coarsen(
            graph,
            coarsen_to=coarsen_to,
            max_levels=options.max_coarsen_levels,
            matching=options.matching,
            min_shrink=options.min_shrink,
            seed=rng,
        )
        coarsest = hier.coarsest
    else:
        hier = None
        coarsest = graph
    t_coarsen = time.perf_counter() - t0

    # Initial k-way partition of the coarsest graph: recursive bisection.
    # The coarsest graph is O(k) vertices, so multilevel recursion inside
    # the bisection is unnecessary; a slightly relaxed tolerance leaves the
    # k-way refiner room to work.
    (init_rng, refine_rng) = spawn(rng, 2)
    init_opts = options.with_(
        seed=init_rng,
        rb_multilevel=coarsest.nvtxs > 4 * options.coarsen_to,
        final_balance=True,
    )
    t0 = time.perf_counter()
    where = partition_recursive(coarsest, nparts, init_opts, target_fracs=fracs)
    t_init = time.perf_counter() - t0

    trace: list[dict] = []
    t0 = time.perf_counter()
    if hier is not None:
        for lvl in reversed(hier.levels):
            where = where[lvl.cmap]
            st = kway_refine(
                lvl.graph,
                where,
                nparts,
                ubvec=ub,
                target_fracs=fracs,
                npasses=options.kway_refine_passes,
                policy=options.kway_policy,
                seed=refine_rng,
            )
            if stats is not None:
                trace.append({
                    "nvtxs": lvl.graph.nvtxs,
                    "cut": st.final_cut,
                    "moves": st.moves,
                    "imbalance": float(
                        imbalance(lvl.graph.vwgt, where, nparts, fracs).max()
                    ),
                })
    else:
        kway_refine(graph, where, nparts, ubvec=ub, target_fracs=fracs,
                    npasses=options.kway_refine_passes,
                    policy=options.kway_policy, seed=refine_rng)
    t_refine = time.perf_counter() - t0

    if options.final_balance:
        balance_kway(graph, where, nparts, ubvec=ub, target_fracs=fracs)

    if stats is not None:
        stats.update({
            "method": "kway",
            "levels": hier.sizes() if hier is not None else [graph.nvtxs],
            "coarsen_seconds": t_coarsen,
            "initpart_seconds": t_init,
            "refine_seconds": t_refine,
            "trace": trace,
        })
    return where
