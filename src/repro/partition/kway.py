"""Multilevel k-way partitioning (the "horizontal" formulation).

Coarsen once to ``O(k)`` vertices, compute an initial k-way partition of the
coarsest graph by (non-multilevel) recursive bisection, then project the
partition back level by level, running the greedy multi-constraint k-way
refiner at each level.  Compared to recursive bisection this sees all ``k``
parts at once during refinement -- which is what lets it trade weight among
*all* parts when constraints interfere, the paper's motivation for the
horizontal formulation.

Performance: per-level refinement runs on
:class:`~repro.refine.kwayref.KWayState`'s maintained ``id/ed`` degree
arrays, so each pass touches only boundary vertices instead of re-scanning
every edge (see ``docs/performance.md``; ``benchmarks/perf_guard.py``
gates the end-to-end speed/quality envelope).
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng, spawn
from ..coarsen.coarsener import coarsen
from ..errors import PartitionError
from ..graph.csr import Graph
from ..refine.gain import edge_cut
from ..refine.kwayref import balance_kway, kway_refine
from ..trace import as_tracer
from ..weights.balance import as_target_fracs, as_ubvec, imbalance
from ._events import emit_level_event as _emit_level_event
from .config import PartitionOptions
from .recursive import partition_recursive

__all__ = ["partition_kway"]


def partition_kway(
    graph: Graph,
    nparts: int,
    options: PartitionOptions | None = None,
    tracer=None,
    target_fracs=None,
) -> np.ndarray:
    """Multilevel k-way partitioning.  Returns the part vector; ``graph`` is
    not mutated.  ``tracer`` (a :class:`repro.trace.Tracer`) records the
    ``coarsen`` / ``initpart`` / ``refine`` phase spans with per-level
    children; pass ``None`` for the zero-overhead no-op tracer.
    ``target_fracs`` requests non-uniform part sizes (see
    :func:`partition_recursive`)."""
    if options is None:
        options = PartitionOptions()
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > max(graph.nvtxs, 1):
        raise PartitionError(
            f"cannot cut {graph.nvtxs} vertices into {nparts} non-empty parts"
        )
    if nparts == 1:
        return np.zeros(graph.nvtxs, dtype=np.int64)

    tracer = as_tracer(tracer)
    rng = as_rng(options.seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    fracs = as_target_fracs(target_fracs, nparts)
    # More constraints need a larger coarsest graph: chunky coarse vertices
    # leave too little freedom to satisfy m caps at once (the paper's
    # observation that quality drops as movable vertices become scarce).
    coarsen_to = max(
        options.kway_coarsen_factor * nparts * max(1, graph.ncon - 1),
        options.coarsen_to,
    )

    with tracer.span("coarsen", nvtxs=graph.nvtxs, nedges=graph.nedges) as csp:
        if graph.nvtxs > 1.5 * coarsen_to:
            hier = coarsen(
                graph,
                coarsen_to=coarsen_to,
                max_levels=options.max_coarsen_levels,
                matching=options.matching,
                min_shrink=options.min_shrink,
                seed=rng,
                tracer=tracer,
            )
            coarsest = hier.coarsest
        else:
            hier = None
            coarsest = graph
        if tracer.enabled:
            sizes = hier.sizes() if hier is not None else [graph.nvtxs]
            csp.set(levels=sizes, coarsest_nvtxs=coarsest.nvtxs)
            tracer.incr("coarsen.levels", len(sizes) - 1)
    if tracer.enabled:
        tracer.observe("phase_seconds.coarsen", csp.seconds)

    # Initial k-way partition of the coarsest graph: recursive bisection.
    # The coarsest graph is O(k) vertices, so multilevel recursion inside
    # the bisection is unnecessary; a slightly relaxed tolerance leaves the
    # k-way refiner room to work.
    (init_rng, refine_rng) = spawn(rng, 2)
    # The nested bisections only need a genuinely O(k)-vertex coarsest
    # graph, so cap their coarsening target below the global default --
    # the multi-start candidates then run on a smaller graph without
    # touching the outer driver's coarsen_to.
    rb_coarsen_to = min(options.coarsen_to, 80)
    init_opts = options.with_(
        seed=init_rng,
        coarsen_to=rb_coarsen_to,
        rb_multilevel=coarsest.nvtxs > 4 * rb_coarsen_to,
        final_balance=True,
    )
    with tracer.span("initpart", nvtxs=coarsest.nvtxs) as isp:
        where = partition_recursive(coarsest, nparts, init_opts,
                                    target_fracs=fracs, tracer=tracer)
        if tracer.enabled:
            isp.set(cut=int(edge_cut(coarsest, where)))
    if tracer.enabled:
        tracer.observe("phase_seconds.initpart", isp.seconds)
        _emit_level_event(
            tracer, phase="initpart", direction="initial",
            level=len(hier.levels) if hier is not None else 0,
            graph=coarsest, where=where, nparts=nparts, fracs=fracs,
            cut=int(edge_cut(coarsest, where)), seconds=isp.seconds)

    with tracer.span("refine") as rsp:
        if hier is not None:
            for idx in range(len(hier.levels) - 1, -1, -1):
                lvl = hier.levels[idx]
                where = where[lvl.cmap]
                with tracer.span("level", nvtxs=lvl.graph.nvtxs,
                                 nedges=lvl.graph.nedges) as lsp:
                    st = kway_refine(
                        lvl.graph,
                        where,
                        nparts,
                        ubvec=ub,
                        target_fracs=fracs,
                        npasses=options.kway_refine_passes,
                        policy=options.kway_policy,
                        seed=refine_rng,
                    )
                    if tracer.enabled:
                        imbvec = imbalance(lvl.graph.vwgt, where, nparts, fracs)
                        lsp.set(
                            cut=int(st.final_cut),
                            moves=int(st.moves),
                            passes=int(st.passes),
                            balance_moves=int(st.balance_moves),
                            imbalance=float(imbvec.max()),
                        )
                        tracer.incr("kway.moves", int(st.moves))
                        tracer.incr("kway.passes", int(st.passes))
                if tracer.enabled:
                    tracer.observe("level_seconds.refine", lsp.seconds)
                    _emit_level_event(
                        tracer, phase="refine", direction="uncoarsening",
                        level=idx, graph=lvl.graph, where=where,
                        nparts=nparts, fracs=fracs, imbvec=imbvec,
                        cut=int(st.final_cut), cut_before=int(st.initial_cut),
                        moves=int(st.moves), passes=int(st.passes),
                        balance_moves=int(st.balance_moves), rollbacks=0,
                        seconds=lsp.seconds)
        else:
            st = kway_refine(graph, where, nparts, ubvec=ub, target_fracs=fracs,
                             npasses=options.kway_refine_passes,
                             policy=options.kway_policy, seed=refine_rng)
            if tracer.enabled:
                rsp.set(cut=int(st.final_cut), moves=int(st.moves),
                        passes=int(st.passes))
                tracer.incr("kway.moves", int(st.moves))
                tracer.incr("kway.passes", int(st.passes))
                _emit_level_event(
                    tracer, phase="refine", direction="uncoarsening",
                    level=0, graph=graph, where=where, nparts=nparts,
                    fracs=fracs, cut=int(st.final_cut),
                    cut_before=int(st.initial_cut), moves=int(st.moves),
                    passes=int(st.passes),
                    balance_moves=int(st.balance_moves), rollbacks=0,
                    seconds=None)
    if tracer.enabled:
        tracer.observe("phase_seconds.refine", rsp.seconds)

    if options.final_balance:
        with tracer.span("balance"):
            balance_kway(graph, where, nparts, ubvec=ub, target_fracs=fracs)

    return where
