"""Multilevel recursive bisection (the paper's primary algorithm).

``partition_recursive`` splits the requested ``k`` into ``ceil(k/2)`` /
``floor(k/2)`` parts (so arbitrary ``k`` works), computes a multilevel
bisection with the matching target fraction, and recurses into the two
induced subgraphs.

Per-split tolerance: if the final partition must satisfy ``ubvec`` then each
of the ``ceil(log2 k)`` nested splits gets tolerance
``1 + (ub - 1) / ceil(log2 k)``; the compounded tolerance is then
``(1 + d)^log2(k) ≈ ub``.  Any residual violation is repaired by a global
k-way balancing pass at the end (``options.final_balance``).

Performance: this driver is the main consumer of the 2-way FM kernel --
each bisection FM-refines ``ntries × |methods|`` initial candidates at the
coarsest level plus one projection per level, so nearly all of its runtime
sits in :mod:`repro.refine.fm2way`'s incremental state (see
``docs/performance.md``; candidates are scored straight from
:class:`~repro.refine.fm2way.FMStats` rather than by rebuilding a state
per candidate).
"""

from __future__ import annotations

import math

import numpy as np

from .._rng import as_rng, spawn
from ..coarsen.coarsener import coarsen
from ..errors import PartitionError
from ..graph.csr import Graph
from ..graph.ops import induced_subgraph
from ..initpart.bisect import initial_bisection
from ..refine.fm2way import fm2way_refine
from ..refine.gain import edge_cut
from ..refine.kwayref import balance_kway
from ..trace import as_tracer
from ..weights.balance import as_target_fracs, as_ubvec
from ._events import emit_level_event
from .config import PartitionOptions

__all__ = ["partition_recursive", "multilevel_bisection"]


def multilevel_bisection(
    graph: Graph,
    target: float,
    ubvec,
    options: PartitionOptions,
    seed=None,
    tracer=None,
) -> np.ndarray:
    """One multilevel bisection: coarsen, bisect the coarsest graph, then
    project + FM-refine back up.  Returns a 0/1 vector; does not mutate
    ``graph``.  ``tracer`` records the coarsening levels, the initial
    bisection and one ``fm_level`` span per uncoarsening step."""
    tracer = as_tracer(tracer)
    rng = as_rng(seed)
    if graph.nvtxs == 0:
        return np.zeros(0, dtype=np.int64)

    if options.rb_multilevel and graph.nvtxs > 2 * options.coarsen_to:
        hier = coarsen(
            graph,
            coarsen_to=options.coarsen_to,
            max_levels=options.max_coarsen_levels,
            matching=options.matching,
            min_shrink=options.min_shrink,
            seed=rng,
            tracer=tracer,
        )
    else:
        hier = None

    coarsest = hier.coarsest if hier is not None else graph
    (init_rng, refine_rng) = spawn(rng, 2)
    pool = None
    if options.init_workers > 0:
        # Deferred import: the pool pulls in concurrent.futures machinery
        # the serial path never needs.
        from ..initpart.pool import get_pool

        pool = get_pool(options.init_workers)
    where = initial_bisection(
        coarsest,
        target_fracs=(target, 1.0 - target),
        ubvec=ubvec,
        ntries=options.init_ntries,
        seed=init_rng,
        methods=options.init_methods,
        diverse_rounds=options.init_diverse_rounds,
        patience=options.init_patience,
        strict=options.strict_ntries,
        pool=pool,
        tracer=tracer,
    )
    if hier is not None:
        for idx in range(len(hier.levels) - 1, -1, -1):
            lvl = hier.levels[idx]
            where = where[lvl.cmap]
            with tracer.span("fm_level", nvtxs=lvl.graph.nvtxs) as sp:
                st = fm2way_refine(
                    lvl.graph,
                    where,
                    target_fracs=(target, 1.0 - target),
                    ubvec=ubvec,
                    npasses=options.refine_passes,
                    seed=refine_rng,
                )
                if tracer.enabled:
                    sp.set(cut=int(st.final_cut), moves=int(st.moves),
                           passes=int(st.passes), rollbacks=int(st.rollbacks))
                    tracer.incr("fm.moves", int(st.moves))
                    tracer.incr("fm.passes", int(st.passes))
                    tracer.incr("fm.rollbacks", int(st.rollbacks))
            if tracer.enabled:
                tracer.observe("level_seconds.fm_refine", sp.seconds)
                emit_level_event(
                    tracer, phase="fm_refine", direction="uncoarsening",
                    level=idx, graph=lvl.graph, where=where, nparts=2,
                    fracs=np.array([target, 1.0 - target]),
                    cut=int(st.final_cut), cut_before=int(st.initial_cut),
                    moves=int(st.moves), passes=int(st.passes),
                    rollbacks=int(st.rollbacks), seconds=sp.seconds)
    return where


def partition_recursive(
    graph: Graph,
    nparts: int,
    options: PartitionOptions | None = None,
    tracer=None,
    target_fracs=None,
) -> np.ndarray:
    """Multilevel recursive-bisection k-way partitioning.

    Returns the part vector (``0..nparts-1``); ``graph`` is not mutated.
    ``tracer`` records one ``bisect`` span per split (vertex count, part
    count, cut) under an ``rb`` span covering the whole recursion.
    ``target_fracs`` (length ``nparts``, summing to 1) requests
    *non-uniform* part sizes -- e.g. heterogeneous processors; every
    constraint uses the same per-part fraction, as in the paper's
    formulation.
    """
    if options is None:
        options = PartitionOptions()
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > max(graph.nvtxs, 1):
        raise PartitionError(
            f"cannot cut {graph.nvtxs} vertices into {nparts} non-empty parts"
        )
    tracer = as_tracer(tracer)
    rng = as_rng(options.seed)
    ub = as_ubvec(options.ubvec, graph.ncon)
    fracs = as_target_fracs(target_fracs, nparts)
    nsplits = max(1, math.ceil(math.log2(max(nparts, 2))))
    ub_split = 1.0 + (ub - 1.0) / nsplits

    with tracer.span("rb", nvtxs=graph.nvtxs, nparts=nparts):
        where = np.zeros(graph.nvtxs, dtype=np.int64)
        _rb(graph, nparts, np.arange(graph.nvtxs, dtype=np.int64), where,
            ub_split, options, rng, tracer, fracs)

        if options.final_balance:
            balance_kway(graph, where, nparts, ubvec=ub, target_fracs=fracs)
    return where


def _rb(graph, nparts, ids, out, ub_split, options, rng, tracer,
        fracs=None) -> None:
    """Recursive worker: partition ``graph`` (the subgraph on original ids
    ``ids``) into ``nparts`` parts, writing part offsets into ``out``.
    ``fracs`` carries this block's per-part target fractions."""
    if nparts == 1:
        return
    kl = (nparts + 1) // 2
    kr = nparts - kl
    if fracs is None:
        fracs = np.full(nparts, 1.0 / nparts)
    target = float(fracs[:kl].sum() / fracs.sum())
    with tracer.span("bisect", nvtxs=graph.nvtxs, parts=nparts) as sp:
        (child,) = spawn(rng, 1)
        where = multilevel_bisection(graph, target, ub_split, options,
                                     seed=child, tracer=tracer)

        left = np.flatnonzero(where == 0)
        right = np.flatnonzero(where == 1)
        # Guarantee both sides can host their part counts even when the
        # bisection degenerated (tiny graphs): steal vertices if needed.
        left, right = _ensure_capacity(left, right, kl, kr)

        if tracer.enabled:
            sp.set(cut=int(edge_cut(graph, where)))
            tracer.incr("rb.bisections")

    out[ids[right]] += kl  # right block's parts start at offset kl
    if kl > 1:
        _rb(induced_subgraph(graph, left), kl, ids[left], out, ub_split,
            options, rng, tracer, fracs[:kl])
    if kr > 1:
        _rb(induced_subgraph(graph, right), kr, ids[right], out, ub_split,
            options, rng, tracer, fracs[kl:])


def _ensure_capacity(left, right, kl, kr):
    """Move arbitrary vertices across a degenerate split so each side has at
    least as many vertices as parts it must host."""
    left = list(left)
    right = list(right)
    while len(left) < kl and len(right) > kr:
        left.append(right.pop())
    while len(right) < kr and len(left) > kl:
        right.append(left.pop())
    return np.asarray(left, dtype=np.int64), np.asarray(right, dtype=np.int64)
