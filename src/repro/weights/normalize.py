"""Weight normalisation.

The multi-constraint formulation (SC'98, Section 2) normalises each of the
``m`` vertex-weight components so it sums to one over the whole graph; a
partition then has to give every part roughly ``1/k`` of *each* component.
All balance arithmetic in this library runs on these relative weights so
that constraints with very different absolute scales are comparable.
"""

from __future__ import annotations

import numpy as np

from ..errors import WeightError

__all__ = ["relative_weights", "totals", "max_relative_weight"]


# Refuse per-constraint totals above 2**62: the int64 accumulator wraps at
# 2**63, and downstream balance arithmetic multiplies totals by tolerance
# factors > 1, so a factor-2 headroom keeps every derived quantity exact.
_TOTAL_LIMIT = 2**62


def totals(vwgt: np.ndarray) -> np.ndarray:
    """``(m,)`` per-constraint total weight of an ``(n, m)`` weight matrix.

    Raises :class:`~repro.errors.WeightError` when a column total would
    overflow the int64 accumulator (adversarially large synthetic weights):
    a silently wrapped -- possibly negative -- total would poison every
    relative weight and balance ratio computed from it.
    """
    vwgt = np.asarray(vwgt)
    if vwgt.ndim != 2:
        raise WeightError(f"vwgt must be (n, m); got shape {vwgt.shape}")
    t = vwgt.sum(axis=0, dtype=np.int64)
    if vwgt.size:
        # A float64 shadow sum cannot wrap; at int64 scale its relative
        # error (~2**-53 per addend) is far below the factor-2 headroom.
        est = vwgt.sum(axis=0, dtype=np.float64)
        if np.any(est > _TOTAL_LIMIT) or np.any(t < 0):
            bad = np.flatnonzero((t < 0) | (est > _TOTAL_LIMIT)).tolist()
            raise WeightError(
                f"constraints {bad}: total vertex weight exceeds {_TOTAL_LIMIT} "
                f"and would overflow int64; rescale the weights"
            )
    return t


def relative_weights(vwgt: np.ndarray) -> np.ndarray:
    """Normalise an ``(n, m)`` integer weight matrix column-wise.

    Every column of the result sums to 1 (columns that are entirely zero
    are rejected: a constraint with no weight anywhere is meaningless and
    would make every partition "balanced" vacuously).
    """
    t = totals(vwgt)
    if np.any(t <= 0):
        bad = np.flatnonzero(t <= 0).tolist()
        raise WeightError(f"constraints {bad} have zero total weight")
    return np.asarray(vwgt, dtype=np.float64) / t


def max_relative_weight(vwgt: np.ndarray) -> float:
    """Largest single relative vertex weight over all constraints.

    This is the granularity parameter that appears in the paper's balanced-
    bisection bounds: no algorithm can balance better than the heaviest
    indivisible vertex allows.
    """
    return float(relative_weights(vwgt).max(initial=0.0))
