"""Multi-constraint weight substrate: normalisation, balance arithmetic,
and the paper's synthetic workload generators."""

from .balance import (
    as_target_fracs,
    as_ubvec,
    FEASIBILITY_EPS,
    imbalance,
    is_balanced,
    max_imbalance,
    part_weights,
)
from .generators import (
    DEFAULT_ACTIVE_FRACTIONS,
    coactivity_edge_weights,
    random_vwgt,
    type1_region_weights,
    type2_multiphase,
)
from .normalize import max_relative_weight, relative_weights, totals
from .traces import drifting_phases_trace, growing_region_trace, moving_front_trace

__all__ = [
    "part_weights",
    "FEASIBILITY_EPS",
    "imbalance",
    "max_imbalance",
    "is_balanced",
    "as_ubvec",
    "as_target_fracs",
    "relative_weights",
    "totals",
    "max_relative_weight",
    "random_vwgt",
    "type1_region_weights",
    "type2_multiphase",
    "coactivity_edge_weights",
    "DEFAULT_ACTIVE_FRACTIONS",
    "moving_front_trace",
    "growing_region_trace",
    "drifting_phases_trace",
]
