"""Time-evolving workload traces for adaptive-repartitioning studies.

Adaptive simulations change their weight vectors between repartitioning
calls; these generators produce *sequences* of ``(n, m)`` weight matrices
with the spatial/temporal structure of the motivating applications:

* :func:`moving_front_trace` -- a heavy band (crash front, shock) sweeping
  across the mesh; position indexed by BFS depth from a source, so no
  coordinates are needed;
* :func:`growing_region_trace` -- a heavy region (flame, refined zone)
  growing from a seed vertex;
* :func:`drifting_phases_trace` -- Type-2 multi-phase activity whose active
  region sets are re-drawn with partial overlap step to step.

Every step keeps a constant base constraint (column 0), so the single-
constraint baseline stays meaningful throughout the trace.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng, spawn
from ..errors import WeightError
from ..graph.csr import Graph
from ..graph.ops import bfs_levels, bfs_regions

__all__ = ["moving_front_trace", "growing_region_trace", "drifting_phases_trace"]

_INT = np.int64


def _front_band(depth: np.ndarray, centre: float, width: float) -> np.ndarray:
    dmax = float(depth.max())
    if dmax == 0:
        return np.ones_like(depth, dtype=bool)
    return np.abs(depth - centre * dmax) <= width * dmax


def moving_front_trace(
    graph: Graph,
    nsteps: int,
    *,
    front_cost: int = 5,
    width: float = 0.1,
    span: tuple[float, float] = (0.1, 0.9),
    source: int = 0,
    seed=None,
) -> list[np.ndarray]:
    """Two-constraint trace: constraint 0 is uniform base work, constraint 1
    is ``front_cost`` inside a band of relative width ``width`` whose centre
    sweeps linearly from ``span[0]`` to ``span[1]`` of the BFS depth range.
    """
    if nsteps < 1:
        raise WeightError("nsteps must be >= 1")
    if not (0 < width < 0.5):
        raise WeightError("width must be in (0, 0.5)")
    depth = bfs_levels(graph, source).astype(np.float64)
    depth[depth < 0] = depth.max(initial=0.0)  # unreachable: park at far end
    centres = np.linspace(span[0], span[1], nsteps)
    out = []
    for c in centres:
        band = _front_band(depth, float(c), width)
        contact = np.where(band, front_cost, 0).astype(_INT)
        if contact.sum() == 0:
            contact[int(np.argmin(np.abs(depth - c * depth.max())))] = front_cost
        out.append(np.stack([np.ones(graph.nvtxs, dtype=_INT), contact], axis=1))
    return out


def growing_region_trace(
    graph: Graph,
    nsteps: int,
    *,
    peak_fraction: float = 0.5,
    region_cost: int = 4,
    seed=None,
) -> list[np.ndarray]:
    """Two-constraint trace: a heavy region grows (by BFS distance from a
    random seed vertex) from near-zero to ``peak_fraction`` of the mesh."""
    if nsteps < 1:
        raise WeightError("nsteps must be >= 1")
    if not (0 < peak_fraction <= 1):
        raise WeightError("peak_fraction must be in (0, 1]")
    rng = as_rng(seed)
    n = graph.nvtxs
    depth = bfs_levels(graph, int(rng.integers(n))).astype(np.float64)
    depth[depth < 0] = depth.max(initial=0.0) + 1
    order = np.argsort(depth, kind="stable")
    out = []
    for t in range(1, nsteps + 1):
        count = max(1, int(round(peak_fraction * n * t / nsteps)))
        mask = np.zeros(n, dtype=bool)
        mask[order[:count]] = True
        heavy = np.where(mask, region_cost, 0).astype(_INT)
        out.append(np.stack([np.ones(n, dtype=_INT), heavy], axis=1))
    return out


def drifting_phases_trace(
    graph: Graph,
    nsteps: int,
    nphases: int = 3,
    *,
    nregions: int = 32,
    active_fraction: float = 0.5,
    drift: float = 0.25,
    seed=None,
) -> list[np.ndarray]:
    """Multi-phase trace with temporal coherence: each phase activates a
    set of contiguous regions; every step, a ``drift`` fraction of each
    phase's active regions is swapped for fresh ones (phase 0 stays fully
    active, as in the Type-2 construction)."""
    if nsteps < 1 or nphases < 1:
        raise WeightError("nsteps and nphases must be >= 1")
    if not (0 <= drift <= 1):
        raise WeightError("drift must be in [0, 1]")
    rng = as_rng(seed)
    regions = bfs_regions(graph, nregions, seed=rng)
    nact = max(1, int(round(active_fraction * nregions)))

    active_sets = []
    for p in range(nphases):
        if p == 0:
            active_sets.append(set(range(nregions)))
        else:
            (child,) = spawn(rng, 1)
            active_sets.append(set(child.choice(nregions, nact, replace=False).tolist()))

    out = []
    for _ in range(nsteps):
        vw = np.zeros((graph.nvtxs, nphases), dtype=_INT)
        for p, act in enumerate(active_sets):
            mask = np.isin(regions, list(act))
            vw[:, p] = mask.astype(_INT)
            if vw[:, p].sum() == 0:
                vw[0, p] = 1
        out.append(vw)
        # Drift every non-base phase.
        for p in range(1, nphases):
            act = active_sets[p]
            nswap = int(round(drift * len(act)))
            if nswap == 0:
                continue
            (child,) = spawn(rng, 1)
            leaving = child.choice(sorted(act), size=min(nswap, len(act)),
                                   replace=False)
            outside = sorted(set(range(nregions)) - act)
            if not outside:
                continue
            arriving = child.choice(outside, size=min(nswap, len(outside)),
                                    replace=False)
            act.difference_update(leaving.tolist())
            act.update(arriving.tolist())
    return out
