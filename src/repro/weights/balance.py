"""Balance arithmetic for multi-constraint partitions.

Definitions (matching the paper):

* ``part_weights(vwgt, part, k)[j, i]`` -- total weight of constraint ``i``
  in part ``j``.
* load imbalance of constraint ``i`` = ``max_j pw[j, i] / (t_i * f_j)``
  where ``t_i`` is the total weight of constraint ``i`` and ``f_j`` the
  target fraction of part ``j`` (``1/k`` by default).  A perfectly balanced
  partition has imbalance 1.0 for every constraint; the paper's experiments
  use a 5% tolerance, i.e. ``ubvec = [1.05] * m``.
"""

from __future__ import annotations

import numpy as np

from ..errors import BalanceError, PartitionError

__all__ = [
    "FEASIBILITY_EPS",
    "part_weights",
    "imbalance",
    "max_imbalance",
    "is_balanced",
    "as_ubvec",
    "as_target_fracs",
]

#: Shared slack for every "is this partition within tolerance?" verdict:
#: ``imbalance <= ubvec + FEASIBILITY_EPS``.  Imbalance ratios are computed
#: in float64 from integer weights, so a partition sitting exactly on its
#: cap can land a few ulps above it; the slack absorbs that rounding without
#: admitting any genuinely over-cap partition (one indivisible weight unit
#: moves the ratio by far more than 1e-9).  Every feasibility check in the
#: library -- ``part_graph``, :func:`is_balanced`, the refiners' cap tests,
#: the adaptive and parallel drivers -- uses this one constant so a cached
#: result's ``feasible`` flag can never disagree with a recomputation.
#: (Distinct from the 1e-12 *comparison* epsilons used to order nearly-equal
#: float scores, e.g. matching tie-breaks -- those are not feasibility
#: verdicts.)
FEASIBILITY_EPS = 1e-9


def part_weights(vwgt: np.ndarray, part: np.ndarray, nparts: int) -> np.ndarray:
    """``(nparts, m)`` total weight per part per constraint (vectorised)."""
    vwgt = np.asarray(vwgt)
    part = np.asarray(part)
    if vwgt.ndim != 2:
        raise PartitionError("vwgt must be (n, m)")
    if part.shape != (vwgt.shape[0],):
        raise PartitionError("part vector must align with vwgt rows")
    if part.size and (part.min() < 0 or part.max() >= nparts):
        raise PartitionError("part ids out of range")
    out = np.empty((nparts, vwgt.shape[1]), dtype=np.int64)
    for c in range(vwgt.shape[1]):
        out[:, c] = np.bincount(part, weights=vwgt[:, c], minlength=nparts).astype(np.int64)
    return out


def imbalance(
    vwgt: np.ndarray,
    part: np.ndarray,
    nparts: int,
    target_fracs=None,
) -> np.ndarray:
    """``(m,)`` load imbalance per constraint (1.0 = perfect)."""
    pw = part_weights(vwgt, part, nparts)
    t = pw.sum(axis=0)
    fr = as_target_fracs(target_fracs, nparts)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = pw / (t[None, :] * fr[:, None])
    ratios = np.where(np.isfinite(ratios), ratios, 0.0)
    return ratios.max(axis=0)


def max_imbalance(vwgt, part, nparts, target_fracs=None) -> float:
    """Worst imbalance over all constraints (the number the paper reports)."""
    return float(imbalance(vwgt, part, nparts, target_fracs).max(initial=0.0))


def is_balanced(vwgt, part, nparts, ubvec, target_fracs=None) -> bool:
    """True when every constraint's imbalance is within its tolerance."""
    ub = as_ubvec(ubvec, np.asarray(vwgt).shape[1])
    return bool(np.all(
        imbalance(vwgt, part, nparts, target_fracs) <= ub + FEASIBILITY_EPS))


def as_ubvec(ubvec, ncon: int) -> np.ndarray:
    """Coerce a tolerance spec into an ``(m,)`` float array.

    Accepts a scalar (same tolerance for all constraints) or a length-``m``
    sequence.  Values must be > 1 (a tolerance of exactly 1.0 is
    unsatisfiable with indivisible vertices).
    """
    try:
        ub = np.asarray(ubvec, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise BalanceError(f"ubvec must be numeric: {exc}") from exc
    if ub.ndim == 0:
        ub = np.full(ncon, float(ub))
    if ub.shape != (ncon,):
        raise BalanceError(f"ubvec must be scalar or length {ncon}; got {ub.shape}")
    if not np.all(np.isfinite(ub)):
        raise BalanceError("balance tolerances must be finite (no NaN/inf)")
    if np.any(ub <= 1.0):
        raise BalanceError("every balance tolerance must be > 1.0")
    return ub


def as_target_fracs(target_fracs, nparts: int) -> np.ndarray:
    """Coerce target part fractions to a ``(nparts,)`` array summing to 1."""
    if target_fracs is None:
        return np.full(nparts, 1.0 / nparts)
    try:
        fr = np.asarray(target_fracs, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise BalanceError(f"target_fracs must be numeric: {exc}") from exc
    if fr.shape != (nparts,):
        raise BalanceError(f"target_fracs must have length {nparts}")
    if not np.all(np.isfinite(fr)):
        raise BalanceError("target fractions must be finite (no NaN/inf)")
    if np.any(fr <= 0):
        raise BalanceError("target fractions must be positive")
    s = fr.sum()
    if not np.isclose(s, 1.0, atol=1e-9):
        fr = fr / s
    return fr
