"""Synthetic multi-weight workload generators.

These reproduce the two experiment families of the paper's evaluation:

**Type 1 ("contiguous-region weights").**  A 16-way pre-decomposition of the
graph is computed, and every vertex inside a region receives the *same*
random ``m``-vector with components drawn uniformly from ``0..19``.  (The
paper notes that assigning random weights per-*vertex* degenerates to the
single-constraint problem by the law of large numbers, so region-correlated
weights are required to make the problem genuinely multi-constraint.)

**Type 2 ("multi-phase computations").**  A 32-way pre-decomposition is
computed and, for each phase ``i``, a random subset of regions totalling a
given active fraction is selected.  Vertex ``v`` has ``w_i(v) = 1`` iff it
is active in phase ``i``.  Edge weights are set to the number of phases in
which *both* endpoints are active (the co-activity communication model).

The default active fractions follow the paper: for five phases
``(100, 75, 50, 50, 25)%``, truncated prefixes for fewer phases.

Both generators accept an explicit ``regions`` array or compute regions by
multi-source BFS growth (:func:`repro.graph.ops.bfs_regions`), which yields
the contiguous regions the construction requires without depending on the
partitioner being built.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..errors import WeightError
from ..graph.csr import Graph
from ..graph.ops import bfs_regions

__all__ = [
    "random_vwgt",
    "type1_region_weights",
    "type2_multiphase",
    "coactivity_edge_weights",
    "DEFAULT_ACTIVE_FRACTIONS",
]

_INT = np.int64

#: Active fraction per phase used in the paper's Type-2 problems (5-phase
#: case; shorter experiments use the prefix).
DEFAULT_ACTIVE_FRACTIONS = (1.00, 0.75, 0.50, 0.50, 0.25)


def random_vwgt(n: int, ncon: int, low: int = 0, high: int = 19, seed=None) -> np.ndarray:
    """Independent uniform integer weights in ``[low, high]`` per vertex and
    constraint.  (The degenerate scheme the paper warns about -- kept as a
    control input for tests and ablations.)

    Columns that come out all-zero are bumped so every constraint has mass.
    """
    if ncon < 1:
        raise WeightError("ncon must be >= 1")
    if low < 0 or high < low:
        raise WeightError("need 0 <= low <= high")
    rng = as_rng(seed)
    w = rng.integers(low, high + 1, size=(n, ncon), dtype=_INT)
    zero = w.sum(axis=0) == 0
    if np.any(zero):
        w[0, zero] = max(high, 1)
    return w


def type1_region_weights(
    graph: Graph,
    ncon: int,
    nregions: int = 16,
    low: int = 0,
    high: int = 19,
    seed=None,
    regions=None,
) -> np.ndarray:
    """Type-1 workload: the same random ``m``-vector for every vertex of
    each contiguous region.

    Returns an ``(n, ncon)`` integer weight matrix.  Every constraint is
    guaranteed non-zero overall (a zero column would make the constraint
    vacuous), by redrawing offending region vectors.
    """
    if ncon < 1:
        raise WeightError("ncon must be >= 1")
    rng = as_rng(seed)
    if regions is None:
        regions = bfs_regions(graph, nregions, seed=rng)
    else:
        regions = np.asarray(regions, dtype=_INT)
        if regions.shape != (graph.nvtxs,):
            raise WeightError("regions must be a per-vertex array")
        nregions = int(regions.max()) + 1

    rvec = rng.integers(low, high + 1, size=(nregions, ncon), dtype=_INT)
    # Ensure no constraint is all-zero across regions.
    for c in range(ncon):
        if rvec[:, c].sum() == 0:
            rvec[rng.integers(nregions), c] = max(high, 1)
    return rvec[regions]


def type2_multiphase(
    graph: Graph,
    nphases: int,
    active_fractions=None,
    nregions: int = 32,
    seed=None,
    regions=None,
    set_edge_weights: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Type-2 workload: overlapping multi-phase activity.

    Returns ``(vwgt, active)`` where ``vwgt`` is the ``(n, nphases)`` 0/1
    weight matrix (``vwgt[v, i] = 1`` iff vertex ``v`` is active in phase
    ``i``) and ``active`` is the same matrix as booleans.  When
    ``set_edge_weights`` is true the caller should combine the result with
    :func:`coactivity_edge_weights`.

    Phase 0 always activates the entire graph (the paper's first phase is
    100% active), further phases activate a random subset of regions whose
    count matches the requested fraction.
    """
    if nphases < 1:
        raise WeightError("nphases must be >= 1")
    if active_fractions is None:
        if nphases > len(DEFAULT_ACTIVE_FRACTIONS):
            raise WeightError(
                f"no default active fractions for {nphases} phases; pass them explicitly"
            )
        active_fractions = DEFAULT_ACTIVE_FRACTIONS[:nphases]
    fr = np.asarray(active_fractions, dtype=np.float64)
    if fr.shape != (nphases,):
        raise WeightError("active_fractions must have one entry per phase")
    if np.any(fr <= 0) or np.any(fr > 1):
        raise WeightError("active fractions must lie in (0, 1]")

    rng = as_rng(seed)
    if regions is None:
        regions = bfs_regions(graph, nregions, seed=rng)
    else:
        regions = np.asarray(regions, dtype=_INT)
        if regions.shape != (graph.nvtxs,):
            raise WeightError("regions must be a per-vertex array")
        nregions = int(regions.max()) + 1

    active = np.zeros((graph.nvtxs, nphases), dtype=bool)
    for i, f in enumerate(fr):
        nact = max(1, int(round(f * nregions)))
        if nact >= nregions:
            active[:, i] = True
        else:
            chosen = rng.choice(nregions, size=nact, replace=False)
            mask = np.zeros(nregions, dtype=bool)
            mask[chosen] = True
            active[:, i] = mask[regions]
    vwgt = active.astype(_INT)
    return vwgt, active


def coactivity_edge_weights(graph: Graph, active: np.ndarray) -> np.ndarray:
    """Edge weights for a multi-phase workload: weight of edge ``(u, v)`` is
    the number of phases in which both ``u`` and ``v`` are active (the
    paper's model of per-phase information exchange).  Returns an array
    aligned with ``graph.adjncy``; pair with :meth:`Graph.with_adjwgt`.

    Edges never co-active in any phase get weight 0 -- they cost nothing to
    cut, exactly as in the paper's model.
    """
    active = np.asarray(active, dtype=bool)
    if active.shape[0] != graph.nvtxs:
        raise WeightError("active matrix must align with vertices")
    src = np.repeat(np.arange(graph.nvtxs, dtype=_INT), np.diff(graph.xadj))
    both = active[src] & active[graph.adjncy]
    return both.sum(axis=1).astype(_INT)
