"""Trace sinks: where span/metrics events go.

Every event is a plain dict (see ``Span.to_event`` and
``docs/observability.md`` for the schema).  Spans are emitted when they
*close*, so children precede parents in a stream; the ``id``/``parent``
fields let :func:`spans_from_events` rebuild the exact tree regardless of
order, which is what makes the JSONL files round-trippable.
"""

from __future__ import annotations

import json

import numpy as np

from .spans import Span

__all__ = ["Sink", "InMemorySink", "JsonlSink", "load_jsonl", "spans_from_events"]


class Sink:
    """Event consumer interface; subclasses override :meth:`emit`.

    Sinks are context managers: ``__exit__`` calls :meth:`close`, so a
    file-backed sink used outside a :class:`~repro.trace.spans.Tracer`
    (which closes its sinks in ``finish()``) still flushes reliably::

        with JsonlSink("run.jsonl") as sink:
            sink.emit({"event": "span", ...})
    """

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class InMemorySink(Sink):
    """Collects events in a list (the default for programmatic use)."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()


def _json_default(obj):
    """Make numpy scalars/arrays (the natural attr payloads) serialisable."""
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


class JsonlSink(Sink):
    """Writes one JSON object per event to a file (JSON-lines).

    :meth:`close` flushes and releases the file handle and is idempotent;
    emitting after close raises a clear :class:`ValueError` instead of an
    ``AttributeError`` from a dead handle.
    """

    def __init__(self, path):
        self.path = str(path)
        self._fh = open(self.path, "w")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        self._fh.write(json.dumps(event, default=_json_default,
                                  separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def load_jsonl(path) -> list[dict]:
    """Read a JSONL trace file back into a list of event dicts."""
    events = []
    with open(str(path)) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def spans_from_events(events) -> list[Span]:
    """Rebuild the span forest from ``"span"`` events (any order).

    Returns the root spans; children are ordered by span id, which is the
    opening order within one tracer.
    """
    spans: dict[int, Span] = {}
    for ev in events:
        if ev.get("event") != "span":
            continue
        sp = Span(ev["name"], ev.get("attrs") or {}, span_id=ev["id"],
                  parent_id=ev.get("parent"), t_start=ev.get("start", 0.0))
        sp.seconds = ev.get("seconds")
        spans[sp.span_id] = sp
    roots = []
    for sp in sorted(spans.values(), key=lambda s: s.span_id):
        parent = spans.get(sp.parent_id) if sp.parent_id is not None else None
        if parent is None:
            roots.append(sp)
        else:
            parent.children.append(sp)
    return roots
