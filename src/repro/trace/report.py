"""Typed report over a finished trace: :class:`TraceReport`.

``PartitionResult.stats`` is a :class:`TraceReport` whenever tracing was on
(``collect_stats=True`` or an explicit ``tracer=``).  It exposes

* the raw span tree (``report.root``) and metrics snapshots,
* typed accessors for the quantities the paper's evaluation reasons about
  (phase timings, per-level refinement trace, bisection trace), and
* a *dict-compatible view*: ``report["levels"]``, ``report["trace"]``,
  ``report["coarsen_seconds"]`` ... keep every pre-subsystem consumer
  (benches, examples, tutorial snippets) working unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping

from .render import render_span_tree
from .sinks import spans_from_events
from .spans import Span

__all__ = ["TraceReport"]


class TraceReport(Mapping):
    """A finished run's trace: span tree + counters/gauges.

    Behaves as a read-only mapping over the legacy ``stats`` dict schema
    (see :meth:`to_dict`), so ``res.stats["trace"]`` works exactly as it
    did when ``stats`` was a plain dict.
    """

    def __init__(self, root: Span | None, counters=None, gauges=None,
                 histograms=None):
        self.root = root
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        #: ``{name: snapshot}`` histogram snapshots
        #: (see :meth:`repro.trace.metrics.Histogram.snapshot`).
        self.histograms = dict(histograms or {})
        self._dict: dict | None = None

    # ---------------------------------------------------- constructors

    @classmethod
    def from_tracer(cls, tracer, root: Span | None = None) -> "TraceReport":
        """Snapshot ``tracer`` (optionally a specific root span)."""
        return cls(
            root if root is not None else tracer.root,
            tracer.metrics.counter_values(),
            tracer.metrics.gauge_values(),
            tracer.metrics.histogram_values(),
        )

    @classmethod
    def from_events(cls, events) -> "TraceReport":
        """Rebuild a report from JSONL events (see ``sinks.load_jsonl``)."""
        roots = spans_from_events(events)
        root = next((sp for sp in roots if sp.name == "partition"),
                    roots[0] if roots else None)
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for ev in events:
            if ev.get("event") == "metrics":
                counters.update(ev.get("counters") or {})
                gauges.update(ev.get("gauges") or {})
                histograms.update(ev.get("histograms") or {})
        return cls(root, counters, gauges, histograms)

    # ------------------------------------------------- typed accessors

    @property
    def method(self) -> str | None:
        """``"kway"`` / ``"recursive"`` (the root span's ``method`` attr)."""
        return self.root.attrs.get("method") if self.root is not None else None

    @property
    def total_seconds(self) -> float:
        return float(self.root.seconds or 0.0) if self.root is not None else 0.0

    def phase(self, name: str) -> Span | None:
        """The named top-level phase span (direct child of the root, with a
        deep-search fallback for non-standard trees)."""
        if self.root is None:
            return None
        return self.root.child(name) or self.root.find(name)

    def phase_seconds(self, name: str) -> float:
        sp = self.phase(name)
        return float(sp.seconds or 0.0) if sp is not None else 0.0

    @property
    def levels(self) -> list:
        """Vertex count per level, finest first, including the coarsest."""
        sp = self.phase("coarsen")
        if sp is not None and "levels" in sp.attrs:
            return list(sp.attrs["levels"])
        if self.root is not None and "nvtxs" in self.root.attrs:
            return [self.root.attrs["nvtxs"]]
        return []

    def level_trace(self) -> list[dict]:
        """Per-level k-way refinement records (coarse → fine): attrs of the
        ``level`` spans under the ``refine`` phase."""
        sp = self.phase("refine")
        if sp is None:
            return []
        return [dict(child.attrs) for child in sp.children
                if child.name == "level"]

    def bisection_trace(self) -> list[dict]:
        """Per-bisection records of the recursive driver, in split order."""
        if self.root is None:
            return []
        return [dict(sp.attrs) for sp in self.root.find_all("bisect")]

    # ------------------------------------------- dict-compatible view

    def to_dict(self) -> dict:
        """The legacy ``stats`` dict for this run (computed once).

        kway runs carry ``levels`` / ``trace`` / per-phase ``*_seconds``;
        recursive runs carry ``bisections`` / ``trace`` / ``total_seconds``.
        """
        if self._dict is None:
            d: dict = {"method": self.method}
            if self.method == "recursive":
                trace = self.bisection_trace()
                rb = self.phase("rb")
                d.update({
                    "bisections": len(trace),
                    "trace": trace,
                    "total_seconds": float(rb.seconds or 0.0)
                    if rb is not None else self.total_seconds,
                })
            else:
                d.update({
                    "levels": self.levels,
                    "coarsen_seconds": self.phase_seconds("coarsen"),
                    "initpart_seconds": self.phase_seconds("initpart"),
                    "refine_seconds": self.phase_seconds("refine"),
                    "trace": self.level_trace(),
                })
            d["counters"] = dict(self.counters)
            d["gauges"] = dict(self.gauges)
            self._dict = d
        return self._dict

    def render(self, *, max_depth: int | None = None) -> str:
        """The human-readable span tree (plus a metrics footer)."""
        if self.root is None:
            return "(empty trace)"
        out = render_span_tree(self.root, max_depth=max_depth)
        if self.counters:
            out += "\ncounters: " + " ".join(
                f"{k}={v}" for k, v in self.counters.items())
        if self.gauges:
            out += "\ngauges: " + " ".join(
                f"{k}={v}" for k, v in self.gauges.items())
        return out

    # ------------------------------------------------ Mapping protocol

    def __getitem__(self, key):
        return self.to_dict()[key]

    def __iter__(self):
        return iter(self.to_dict())

    def __len__(self):
        return len(self.to_dict())

    def __repr__(self) -> str:
        nspans = sum(1 for _ in self.root.walk()) if self.root is not None else 0
        return (f"TraceReport(method={self.method!r}, spans={nspans}, "
                f"seconds={self.total_seconds:.4f})")
