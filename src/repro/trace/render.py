"""Human-readable rendering of a span tree.

``render_span_tree`` turns the trace of a run into the box-drawing tree the
CLI prints under ``--trace-summary``::

    partition · 1.92s · method=kway nparts=8 cut=2841 max_imbalance=1.036
    ├─ coarsen · 0.31s · levels=[2000, 1044, 560, 480]
    │  ├─ coarsen_level · 0.17s · nvtxs=2000 coarse_nvtxs=1044 ...
    ...
"""

from __future__ import annotations

__all__ = ["render_span_tree", "format_attrs", "format_seconds"]


def format_seconds(seconds) -> str:
    """Compact duration: ``1.92s`` / ``31.4ms`` / ``87µs`` / ``open``."""
    if seconds is None:
        return "open"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    return str(value)


def format_attrs(attrs: dict) -> str:
    """``key=value`` pairs, space-separated, floats shortened."""
    return " ".join(f"{k}={_format_value(v)}" for k, v in attrs.items())


def render_span_tree(root, *, max_depth: int | None = None) -> str:
    """Render ``root`` and its descendants as an indented tree string.

    ``max_depth`` truncates the tree (0 = just the root line); deeper
    levels are summarised as ``... (n spans)``.
    """
    lines: list[str] = []

    def line(span) -> str:
        parts = [span.name, format_seconds(span.seconds)]
        if span.attrs:
            parts.append(format_attrs(span.attrs))
        return " · ".join(parts)

    def walk(span, prefix: str, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        kids = list(span.children)
        if max_depth is not None and depth == max_depth and kids:
            nspans = sum(1 for _ in span.walk()) - 1
            lines.append(prefix + f"└─ ... ({nspans} spans)")
            return
        for i, child in enumerate(kids):
            last = i == len(kids) - 1
            lines.append(prefix + ("└─ " if last else "├─ ") + line(child))
            walk(child, prefix + ("   " if last else "│  "), depth + 1)

    lines.append(line(root))
    walk(root, "", 0)
    return "\n".join(lines)
