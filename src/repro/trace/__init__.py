"""Structured tracing & metrics for the multilevel pipeline.

The subsystem has four pieces:

* **Spans** (:mod:`repro.trace.spans`) -- nested timed regions with
  structured attributes; :data:`NULL_TRACER` is the zero-overhead off
  switch the drivers use by default.
* **Metrics** (:mod:`repro.trace.metrics`) -- counters/gauges in a small
  create-on-first-use registry owned by each tracer.
* **Sinks** (:mod:`repro.trace.sinks`) -- in-memory, JSON-lines file
  (round-trippable via :func:`load_jsonl` / :func:`spans_from_events`).
* **Reports** (:mod:`repro.trace.report`, :mod:`repro.trace.render`) --
  the typed :class:`TraceReport` exposed on ``PartitionResult.stats`` and
  the human-readable tree renderer behind ``repro-part --trace-summary``.

Quickstart::

    from repro import part_graph
    from repro.trace import Tracer, JsonlSink

    tracer = Tracer([JsonlSink("run.jsonl")])
    res = part_graph(g, 8, seed=0, tracer=tracer)
    tracer.finish()
    print(res.stats.render())           # span tree with timings
    res.stats["trace"]                  # dict-compatible legacy view

See ``docs/observability.md`` for the span names and the JSONL schema.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, labeled
from .render import format_attrs, format_seconds, render_span_tree
from .report import TraceReport
from .sinks import InMemorySink, JsonlSink, Sink, load_jsonl, spans_from_events
from .spans import NULL_TRACER, NullTracer, Span, Tracer, as_tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "labeled",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "load_jsonl",
    "spans_from_events",
    "TraceReport",
    "render_span_tree",
    "format_attrs",
    "format_seconds",
]
