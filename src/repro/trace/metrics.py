"""Counters, gauges and histograms with a small named registry.

Counters accumulate (moves committed, candidates tried); gauges hold the
latest value (final cut, final imbalance); histograms record value
distributions (request latencies, per-phase durations) into fixed
log-spaced buckets with exact small-sample quantiles.  The registry
creates metrics on first use so instrumentation sites never need set-up
code::

    registry.counter("kway.moves").inc(42)
    registry.gauge("final.cut").set(1234)
    registry.histogram("serve.latency.cold").observe(0.031)

The :class:`~repro.trace.spans.Tracer` owns one registry and exposes the
shorthands ``tracer.incr(name, n)`` / ``tracer.gauge(name, value)`` /
``tracer.observe(name, value)``.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_latency_bounds"]


class Counter:
    """A monotonically accumulating named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n=1) -> "Counter":
        self.value += n
        return self

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = None

    def set(self, value) -> "Gauge":
        self.value = value
        return self

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


def default_latency_bounds() -> tuple[float, ...]:
    """Log-spaced bucket upper bounds for durations in seconds.

    Half-decade steps from 1 microsecond to 100 seconds (17 finite
    buckets); everything above the last bound lands in the implicit
    ``+Inf`` bucket.  The same ladder serves request latencies and phase
    durations, which keeps every exposition's ``le`` labels comparable.
    """
    return tuple(10.0 ** (-6 + i / 2) for i in range(17))


class Histogram:
    """Fixed-bucket distribution with exact small-sample quantiles.

    Two regimes, switched automatically:

    * up to ``exact_cap`` observations the raw samples are kept sorted and
      quantiles are *exact* (linear interpolation between order statistics,
      numpy's default) -- the common case for per-run phase timings where a
      handful of samples must not be smeared across log buckets;
    * past the cap, samples stop being retained and quantiles are estimated
      from the cumulative bucket counts (linear within the containing
      bucket, the standard Prometheus ``histogram_quantile`` scheme).

    Snapshots are plain-JSON-safe: the ``+Inf`` bucket bound is rendered as
    the string ``"+Inf"``.
    """

    __slots__ = ("name", "bounds", "count", "sum", "min", "max",
                 "_bucket_counts", "_samples", "_exact_cap")

    def __init__(self, name: str, bounds=None, exact_cap: int = 512):
        self.name = name
        self.bounds = tuple(float(b) for b in
                            (bounds if bounds is not None
                             else default_latency_bounds()))
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self._samples: list[float] | None = []
        self._exact_cap = int(exact_cap)

    def observe(self, value) -> "Histogram":
        v = float(value)
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        self._bucket_counts[bisect_left(self.bounds, v)] += 1
        if self._samples is not None:
            if self.count <= self._exact_cap:
                insort(self._samples, v)
            else:
                self._samples = None  # switch to bucket-estimated quantiles
        return self

    @property
    def exact(self) -> bool:
        """True while quantiles come from the raw (retained) samples."""
        return self._samples is not None

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (``0 <= q <= 1``); ``None`` when empty."""
        if self.count == 0:
            return None
        if self._samples is not None:
            s = self._samples
            pos = q * (len(s) - 1)
            lo = math.floor(pos)
            hi = min(lo + 1, len(s) - 1)
            frac = pos - lo
            return s[lo] * (1.0 - frac) + s[hi] * frac
        # Bucket estimate: find the bucket holding the q-th observation and
        # interpolate linearly inside it.
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self._bucket_counts):
            prev = cum
            cum += c
            if cum >= rank and c > 0:
                if i >= len(self.bounds):        # +Inf bucket
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else min(self.min, 0.0)
                hi = self.bounds[i]
                return lo + (hi - lo) * ((rank - prev) / c)
        return self.max

    def snapshot(self) -> dict:
        """JSON-safe summary: count/sum/min/max, p50/p90/p99, cumulative
        buckets as ``[upper_bound, cumulative_count]`` pairs (last bound is
        the string ``"+Inf"``)."""
        buckets = []
        cum = 0
        for bound, c in zip(self.bounds, self._bucket_counts):
            cum += c
            buckets.append([bound, cum])
        buckets.append(["+Inf", self.count])
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "exact": self.exact,
            "buckets": buckets,
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.quantile(0.5)})")


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds=None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds=bounds)
        return h

    def counter_values(self) -> dict:
        """``{name: value}`` snapshot of every counter."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> dict:
        """``{name: value}`` snapshot of every gauge."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histogram_values(self) -> dict:
        """``{name: snapshot}`` of every histogram (see
        :meth:`Histogram.snapshot`)."""
        return {name: h.snapshot()
                for name, h in sorted(self._histograms.items())}

    def as_dict(self) -> dict:
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": self.histogram_values(),
        }
