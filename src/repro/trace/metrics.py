"""Counters, gauges and histograms with a small named registry.

Counters accumulate (moves committed, candidates tried); gauges hold the
latest value (final cut, final imbalance); histograms record value
distributions (request latencies, per-phase durations) into fixed
log-spaced buckets with exact small-sample quantiles.  The registry
creates metrics on first use so instrumentation sites never need set-up
code::

    registry.counter("kway.moves").inc(42)
    registry.gauge("final.cut").set(1234)
    registry.histogram("serve.latency.cold").observe(0.031)

The :class:`~repro.trace.spans.Tracer` owns one registry and exposes the
shorthands ``tracer.incr(name, n)`` / ``tracer.gauge(name, value)`` /
``tracer.observe(name, value)``.

Registries merge across process boundaries: a worker ships
:meth:`MetricsRegistry.state` (a plain-picklable dict) over its result
pipe, and the parent folds it in with :meth:`MetricsRegistry.merge` --
counters sum, gauges keep the incoming value (last write per labeled
name), histograms combine bucket counts and, while still possible,
exact-sample reservoirs (see :meth:`Histogram.merge`).  Per-origin series
are kept apart by encoding Prometheus-style labels into the metric name
with :func:`labeled` (``labeled("steps", rank=0)`` ->
``'steps{rank="0"}'``); :func:`repro.obs.expose.render_prometheus`
splits the suffix back into real exposition labels.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_latency_bounds", "labeled"]


def labeled(name: str, **labels) -> str:
    """Encode ``labels`` into ``name`` as a Prometheus-style suffix.

    The registry itself is label-blind -- each label combination is just a
    distinct metric name -- but the exposition layer recognises the
    ``name{key="value"}`` shape and renders proper labeled series under
    one metric family.  Keys are emitted sorted so the same label set
    always produces the same name.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically accumulating named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n=1) -> "Counter":
        self.value += n
        return self

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = None

    def set(self, value) -> "Gauge":
        self.value = value
        return self

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


def default_latency_bounds() -> tuple[float, ...]:
    """Log-spaced bucket upper bounds for durations in seconds.

    Half-decade steps from 1 microsecond to 100 seconds (17 finite
    buckets); everything above the last bound lands in the implicit
    ``+Inf`` bucket.  The same ladder serves request latencies and phase
    durations, which keeps every exposition's ``le`` labels comparable.
    """
    return tuple(10.0 ** (-6 + i / 2) for i in range(17))


class Histogram:
    """Fixed-bucket distribution with exact small-sample quantiles.

    Two regimes, switched automatically:

    * up to ``exact_cap`` observations the raw samples are kept sorted and
      quantiles are *exact* (linear interpolation between order statistics,
      numpy's default) -- the common case for per-run phase timings where a
      handful of samples must not be smeared across log buckets;
    * past the cap, samples stop being retained and quantiles are estimated
      from the cumulative bucket counts (linear within the containing
      bucket, the standard Prometheus ``histogram_quantile`` scheme).

    Snapshots are plain-JSON-safe: the ``+Inf`` bucket bound is rendered as
    the string ``"+Inf"``.
    """

    __slots__ = ("name", "bounds", "count", "sum", "min", "max",
                 "_bucket_counts", "_samples", "_exact_cap")

    def __init__(self, name: str, bounds=None, exact_cap: int = 512):
        self.name = name
        self.bounds = tuple(float(b) for b in
                            (bounds if bounds is not None
                             else default_latency_bounds()))
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self._samples: list[float] | None = []
        self._exact_cap = int(exact_cap)

    def observe(self, value) -> "Histogram":
        v = float(value)
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        self._bucket_counts[bisect_left(self.bounds, v)] += 1
        if self._samples is not None:
            if self.count <= self._exact_cap:
                insort(self._samples, v)
            else:
                self._samples = None  # switch to bucket-estimated quantiles
        return self

    @property
    def exact(self) -> bool:
        """True while quantiles come from the raw (retained) samples."""
        return self._samples is not None

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (``0 <= q <= 1``); ``None`` when empty."""
        if self.count == 0:
            return None
        if self._samples is not None:
            s = self._samples
            pos = q * (len(s) - 1)
            lo = math.floor(pos)
            hi = min(lo + 1, len(s) - 1)
            frac = pos - lo
            return s[lo] * (1.0 - frac) + s[hi] * frac
        # Bucket estimate: find the bucket holding the q-th observation and
        # interpolate linearly inside it.
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self._bucket_counts):
            prev = cum
            cum += c
            if cum >= rank and c > 0:
                if i >= len(self.bounds):        # +Inf bucket
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else min(self.min, 0.0)
                hi = self.bounds[i]
                return lo + (hi - lo) * ((rank - prev) / c)
        return self.max

    def snapshot(self) -> dict:
        """JSON-safe summary: count/sum/min/max, p50/p90/p99, cumulative
        buckets as ``[upper_bound, cumulative_count]`` pairs (last bound is
        the string ``"+Inf"``).

        ``quantile_source`` says where the quantiles came from: ``"exact"``
        while the raw samples are retained, ``"bucket_estimate"`` once the
        reservoir was dropped (past ``exact_cap`` observations, or after a
        merge that could not keep exactness) -- in that regime a
        ``quantile_caveat`` string spells out that p50/p90/p99 are
        interpolated within log-spaced buckets rather than measured.
        """
        buckets = []
        cum = 0
        for bound, c in zip(self.bounds, self._bucket_counts):
            cum += c
            buckets.append([bound, cum])
        buckets.append(["+Inf", self.count])
        snap = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "exact": self.exact,
            "quantile_source": "exact" if self.exact else "bucket_estimate",
            "buckets": buckets,
        }
        if not self.exact:
            snap["quantile_caveat"] = (
                "quantiles are interpolated from bucket counts (exact "
                f"sample cap {self._exact_cap} exceeded); p99 especially "
                "is an estimate bounded by the containing bucket")
        return snap

    # ------------------------------------------------- cross-process merge

    def state(self) -> dict:
        """Plain-picklable full state for shipping across a process
        boundary; the inverse of :meth:`from_state` and the payload
        :meth:`merge` accepts."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self._bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples) if self._samples is not None
                       else None,
            "exact_cap": self._exact_cap,
        }

    @classmethod
    def from_state(cls, name: str, state: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`state` output."""
        h = cls(name, bounds=state["bounds"],
                exact_cap=state.get("exact_cap", 512))
        h.count = int(state["count"])
        h.sum = float(state["sum"])
        h.min = state["min"]
        h.max = state["max"]
        counts = list(state["counts"])
        if len(counts) != len(h._bucket_counts):
            raise ValueError(
                f"histogram state for {name!r} has {len(counts)} buckets, "
                f"expected {len(h._bucket_counts)}")
        h._bucket_counts = counts
        samples = state["samples"]
        h._samples = sorted(float(v) for v in samples) \
            if samples is not None else None
        return h

    def merge(self, other) -> "Histogram":
        """Fold another histogram (or its :meth:`state` dict) into this one.

        Bucket bounds must match exactly.  Counts, sums and extrema
        combine; the exact-sample reservoirs are merged *honestly*: the
        result stays exact only when both sides still retain their samples
        AND the combined count fits under this histogram's ``exact_cap``.
        Otherwise the samples are dropped and quantiles degrade to bucket
        estimates -- never a silently subsampled pseudo-exact list.
        """
        st = other.state() if isinstance(other, Histogram) else other
        if tuple(float(b) for b in st["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                "differ")
        other_count = int(st["count"])
        if other_count == 0:
            return self
        self.count += other_count
        self.sum += float(st["sum"])
        if st["min"] is not None and (self.min is None or st["min"] < self.min):
            self.min = st["min"]
        if st["max"] is not None and (self.max is None or st["max"] > self.max):
            self.max = st["max"]
        for i, c in enumerate(st["counts"]):
            self._bucket_counts[i] += c
        other_samples = st["samples"]
        if (self._samples is not None and other_samples is not None
                and self.count <= self._exact_cap):
            for v in other_samples:
                insort(self._samples, float(v))
        else:
            self._samples = None
        return self

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.quantile(0.5)})")


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds=None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds=bounds)
        return h

    def counter_values(self) -> dict:
        """``{name: value}`` snapshot of every counter."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> dict:
        """``{name: value}`` snapshot of every gauge."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histogram_values(self) -> dict:
        """``{name: snapshot}`` of every histogram (see
        :meth:`Histogram.snapshot`)."""
        return {name: h.snapshot()
                for name, h in sorted(self._histograms.items())}

    def as_dict(self) -> dict:
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": self.histogram_values(),
        }

    # ------------------------------------------------- cross-process merge

    def state(self) -> dict:
        """Plain-picklable full state (histograms keep raw samples, unlike
        the summary :meth:`as_dict`); the payload :meth:`merge` accepts."""
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": {name: h.state()
                           for name, h in sorted(self._histograms.items())},
        }

    def merge(self, other, *, labels=None, prefix: str = "") -> "MetricsRegistry":
        """Fold another registry (or its :meth:`state` dict) into this one.

        Counters sum; gauges take the incoming value (last write wins --
        per-origin series stay apart because ``labels`` produce distinct
        names); histograms combine via :meth:`Histogram.merge`.  Each
        incoming name is rewritten to ``prefix + name`` plus the
        :func:`labeled` suffix for ``labels``, so a parent can merge many
        workers into one registry without collisions::

            parent.merge(worker_state, labels={"rank": r},
                         prefix="parallel.shm.")
        """
        st = other.state() if isinstance(other, MetricsRegistry) else other
        labels = labels or {}

        def rename(name: str) -> str:
            return labeled(prefix + name, **labels)

        for name, value in st.get("counters", {}).items():
            self.counter(rename(name)).inc(value)
        for name, value in st.get("gauges", {}).items():
            self.gauge(rename(name)).set(value)
        for name, hstate in st.get("histograms", {}).items():
            if isinstance(hstate, Histogram):
                hstate = hstate.state()
            full = rename(name)
            h = self._histograms.get(full)
            if h is None:
                h = self._histograms[full] = Histogram(
                    full, bounds=hstate["bounds"],
                    exact_cap=hstate.get("exact_cap", 512))
            h.merge(hstate)
        return self
