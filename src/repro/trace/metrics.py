"""Counters and gauges with a small named registry.

Counters accumulate (moves committed, candidates tried); gauges hold the
latest value (final cut, final imbalance).  The registry creates metrics on
first use so instrumentation sites never need set-up code::

    registry.counter("kway.moves").inc(42)
    registry.gauge("final.cut").set(1234)

The :class:`~repro.trace.spans.Tracer` owns one registry and exposes the
shorthands ``tracer.incr(name, n)`` / ``tracer.gauge(name, value)``.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A monotonically accumulating named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n=1) -> "Counter":
        self.value += n
        return self

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = None

    def set(self, value) -> "Gauge":
        self.value = value
        return self

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class MetricsRegistry:
    """Create-on-first-use registry of counters and gauges."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def counter_values(self) -> dict:
        """``{name: value}`` snapshot of every counter."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> dict:
        """``{name: value}`` snapshot of every gauge."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def as_dict(self) -> dict:
        return {"counters": self.counter_values(), "gauges": self.gauge_values()}
