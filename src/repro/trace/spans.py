"""Nested timing spans and the :class:`Tracer`.

A :class:`Span` is one timed region of the multilevel pipeline (``coarsen``,
``refine``, a per-level child, ...) carrying structured attributes (vertex
counts, cut, imbalance, move counts).  Spans nest: the :class:`Tracer`
maintains a stack, so a span opened while another is active becomes its
child, and the whole run forms a tree rooted at the driver's top span.

Spans are context managers::

    with tracer.span("refine") as sp:
        ...
        sp.set(cut=cut, moves=moves)

When a span closes it is emitted to every sink attached to the tracer
(see :mod:`repro.trace.sinks`), children before parents; the in-memory tree
remains available afterwards for reports and rendering.

The :data:`NULL_TRACER` singleton implements the same surface as no-ops so
the hot paths can be instrumented unconditionally: with tracing off, a span
is a shared, attribute-less object whose enter/exit/``set`` do nothing
(see ``benchmarks/bench_trace_overhead.py`` for the cost budget).  Code
that would *compute* something expensive purely for tracing should guard on
``tracer.enabled``.

Tracers are not thread-safe; use one tracer per run.
"""

from __future__ import annotations

import time

from .metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "as_tracer"]


class Span:
    """One timed, attributed region of a run.

    Attributes
    ----------
    name:
        Region name (``"coarsen"``, ``"level"``, ...).
    attrs:
        Structured payload; extend with :meth:`set`.
    span_id, parent_id:
        Tree identity (stable within one tracer; used by the JSONL sinks so
        a file round-trips to the same tree).
    t_start:
        Start time in seconds relative to the tracer's epoch.
    seconds:
        Duration; ``None`` while the span is still open.
    children:
        Child spans in opening order.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_start",
                 "seconds", "children", "_tracer")

    def __init__(self, name, attrs=None, span_id=0, parent_id=None,
                 tracer=None, t_start=0.0):
        self.name = str(name)
        self.attrs = dict(attrs) if attrs else {}
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.seconds = None
        self.children: list[Span] = []
        self._tracer = tracer

    # ------------------------------------------------------------- tree

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def closed(self) -> bool:
        return self.seconds is not None

    def walk(self, depth: int = 0):
        """Yield ``(depth, span)`` pre-order over this span and descendants."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """First descendant (pre-order, excluding self) named ``name``."""
        for _, sp in self.walk():
            if sp is not self and sp.name == name:
                return sp
        return None

    def find_all(self, name: str) -> "list[Span]":
        """All descendants (pre-order, excluding self) named ``name``."""
        return [sp for _, sp in self.walk() if sp is not self and sp.name == name]

    def child(self, name: str) -> "Span | None":
        """First *direct* child named ``name``."""
        for sp in self.children:
            if sp.name == name:
                return sp
        return None

    def to_event(self) -> dict:
        """The sink-facing record for this span (see docs/observability.md)."""
        return {
            "event": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.t_start,
            "seconds": self.seconds,
            "attrs": self.attrs,
        }

    # ------------------------------------------------- context manager

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._tracer is not None:
            self._tracer._close(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.seconds:.4f}s" if self.closed else "open"
        return f"Span({self.name!r}, {dur}, attrs={self.attrs!r}, children={len(self.children)})"


class Tracer:
    """Collects a tree of spans plus counters/gauges and feeds sinks.

    Parameters
    ----------
    sinks:
        Iterable of sinks (:class:`repro.trace.sinks.Sink`).  Each closed
        span is emitted to every sink as a dict event; :meth:`finish` emits
        the final metrics event and closes the sinks.
    """

    enabled = True

    def __init__(self, sinks=()):
        self.sinks = list(sinks)
        self.metrics = MetricsRegistry()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._t0 = time.perf_counter()
        self._finished = False

    # ------------------------------------------------------------ spans

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Span | None:
        """The first top-level span of this tracer (one run = one root)."""
        return self.roots[0] if self.roots else None

    def span(self, name: str, **attrs) -> Span:
        """Open a child span of the current span (context manager)."""
        parent = self.current
        sp = Span(
            name,
            attrs,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            tracer=self,
            t_start=time.perf_counter() - self._t0,
        )
        self._next_id += 1
        if parent is None:
            self.roots.append(sp)
        else:
            parent.children.append(sp)
        self._stack.append(sp)
        return sp

    def _close(self, span: Span) -> None:
        now = time.perf_counter() - self._t0
        # Tolerate skipped exits: close every span opened after `span` too.
        while self._stack:
            top = self._stack.pop()
            if top.seconds is None:
                top.seconds = now - top.t_start
                self._emit(top.to_event())
            if top is span:
                break

    def graft(self, span: Span, parent: Span | None = None) -> Span:
        """Adopt a closed span tree built by *another* tracer (typically a
        worker process, rebuilt from shipped events via
        :func:`repro.trace.sinks.spans_from_events`).

        The tree is renumbered from this tracer's id counter so ids stay
        unique, re-parented under ``parent`` (default: this tracer's root
        span, or adopted as a new root when there is none), and its span
        events are emitted to the sinks children-before-parents -- the
        same order live spans emit in.  The parent may already be closed:
        event consumers rebuild the tree by id, not by arrival order.
        """
        if parent is None:
            parent = self.root

        def renumber(sp: Span, parent_id) -> None:
            sp.span_id = self._next_id
            self._next_id += 1
            sp.parent_id = parent_id
            sp._tracer = self
            for child in sp.children:
                renumber(child, sp.span_id)

        renumber(span, parent.span_id if parent is not None else None)
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)

        def emit_tree(sp: Span) -> None:
            for child in sp.children:
                emit_tree(child)
            self._emit(sp.to_event())

        emit_tree(span)
        return span

    # ---------------------------------------------------------- metrics

    def incr(self, name: str, n=1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` to ``value``."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        """Record ``value`` into histogram ``name``."""
        self.metrics.histogram(name).observe(value)

    # ------------------------------------------------------------ sinks

    def event(self, kind: str, **payload) -> None:
        """Emit a structured non-span event to every sink immediately.

        The event dict is ``{"event": kind, "span": <enclosing span id>,
        **payload}``; ``span`` lets consumers (e.g. the flight recorder)
        scope the event to its position in the span tree even though span
        events themselves are only emitted at close.  Used by the drivers
        for the per-level ``"level"`` records (see ``docs/observability.md``
        for the schema).
        """
        cur = self.current
        ev = {"event": kind, "span": cur.span_id if cur is not None else None}
        ev.update(payload)
        self._emit(ev)

    def _emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def finish(self) -> list[Span]:
        """Close any open spans, emit the metrics event, close the sinks.

        Idempotent; returns the list of root spans.
        """
        if not self._finished:
            while self._stack:
                self._close(self._stack[-1])
            counters = self.metrics.counter_values()
            gauges = self.metrics.gauge_values()
            histograms = self.metrics.histogram_values()
            if counters or gauges or histograms:
                ev = {"event": "metrics", "counters": counters,
                      "gauges": gauges}
                if histograms:
                    ev["histograms"] = histograms
                self._emit(ev)
            for sink in self.sinks:
                sink.close()
            self._finished = True
        return self.roots


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    name = ""
    attrs: dict = {}
    children: tuple = ()
    seconds = 0.0
    closed = True

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: every call returns immediately.

    The partitioning drivers accept ``tracer=None`` and normalise it to
    :data:`NULL_TRACER` via :func:`as_tracer`, so the hot path never
    branches on "is tracing on" except to skip *computing* trace-only
    quantities (guard those on ``tracer.enabled``).
    """

    enabled = False
    current = None
    root = None
    roots: tuple = ()
    sinks: tuple = ()
    metrics = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def graft(self, span, parent=None):
        return span

    def incr(self, name: str, n=1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value) -> None:
        pass

    def event(self, kind: str, **payload) -> None:
        pass

    def finish(self) -> tuple:
        return ()


NULL_TRACER = NullTracer()


def as_tracer(tracer) -> "Tracer | NullTracer":
    """Normalise ``None`` to the shared :data:`NULL_TRACER`."""
    return NULL_TRACER if tracer is None else tracer
