"""Mesh generators: structured triangle/tetrahedral meshes and Delaunay
meshes of random point clouds -- the inputs from which the paper-style dual
graphs are derived."""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..errors import GraphError
from .simplicial import SimplicialMesh

__all__ = ["triangle_grid", "tet_grid", "delaunay_triangulation"]

_INT = np.int64


def triangle_grid(nx: int, ny: int) -> SimplicialMesh:
    """Structured triangulation of the unit square: an ``nx`` x ``ny`` node
    grid whose cells are split into two triangles each
    (``2 (nx-1)(ny-1)`` elements)."""
    if nx < 2 or ny < 2:
        raise GraphError("triangle_grid needs nx, ny >= 2")
    xs, ys = np.meshgrid(np.linspace(0, 1, nx), np.linspace(0, 1, ny),
                         indexing="ij")
    points = np.stack([xs.ravel(), ys.ravel()], axis=1)
    ids = np.arange(nx * ny).reshape(nx, ny)
    a = ids[:-1, :-1].ravel()
    b = ids[1:, :-1].ravel()
    c = ids[:-1, 1:].ravel()
    d = ids[1:, 1:].ravel()
    lower = np.stack([a, b, d], axis=1)
    upper = np.stack([a, d, c], axis=1)
    return SimplicialMesh(np.concatenate([lower, upper]), points)


def tet_grid(nx: int, ny: int, nz: int) -> SimplicialMesh:
    """Structured tetrahedralisation of the unit cube: each grid cell is
    split into six tetrahedra (the Kuhn / Freudenthal subdivision), giving a
    conforming mesh of ``6 (nx-1)(ny-1)(nz-1)`` elements."""
    if min(nx, ny, nz) < 2:
        raise GraphError("tet_grid needs nx, ny, nz >= 2")
    xs, ys, zs = np.meshgrid(
        np.linspace(0, 1, nx), np.linspace(0, 1, ny), np.linspace(0, 1, nz),
        indexing="ij",
    )
    points = np.stack([xs.ravel(), ys.ravel(), zs.ravel()], axis=1)
    ids = np.arange(nx * ny * nz).reshape(nx, ny, nz)

    # Cube corner ids per cell, vectorised over all cells.
    c = {}
    for dx in (0, 1):
        for dy in (0, 1):
            for dz in (0, 1):
                c[(dx, dy, dz)] = ids[dx:nx - 1 + dx, dy:ny - 1 + dy,
                                      dz:nz - 1 + dz].ravel()
    # Kuhn subdivision: six tets around the main diagonal 000 -> 111.
    # Each tet's vertices follow a monotone path of the cube corners.
    paths = [
        ((0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)),
        ((0, 0, 0), (1, 0, 0), (1, 0, 1), (1, 1, 1)),
        ((0, 0, 0), (0, 1, 0), (1, 1, 0), (1, 1, 1)),
        ((0, 0, 0), (0, 1, 0), (0, 1, 1), (1, 1, 1)),
        ((0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 1, 1)),
        ((0, 0, 0), (0, 0, 1), (0, 1, 1), (1, 1, 1)),
    ]
    tets = [np.stack([c[p0], c[p1], c[p2], c[p3]], axis=1)
            for p0, p1, p2, p3 in paths]
    return SimplicialMesh(np.concatenate(tets), points)


def delaunay_triangulation(n: int, seed=None) -> SimplicialMesh:
    """Delaunay triangulation of ``n`` uniform random points in the unit
    square (an irregular conforming triangle mesh)."""
    from scipy.spatial import Delaunay

    if n < 4:
        raise GraphError("delaunay_triangulation needs n >= 4")
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    tri = Delaunay(pts)
    return SimplicialMesh(tri.simplices.astype(_INT), pts)
