"""METIS mesh-file IO.

The METIS tool family reads meshes as element lists: a header with the
element count, then one line of (1-based) node ids per element.  We support
the simplicial subset (3-node triangles, 4-node tetrahedra; all elements of
one kind per file), matching this library's :class:`SimplicialMesh`.
Optional node coordinates use the companion ``.xyz`` convention: one
``x y [z]`` line per node.
"""

from __future__ import annotations

import io as _io
import os

import numpy as np

from ..errors import GraphFormatError
from .simplicial import SimplicialMesh

__all__ = ["read_metis_mesh", "write_metis_mesh", "read_xyz", "write_xyz"]

_INT = np.int64


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, os.PathLike)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_metis_mesh(path_or_file, points=None) -> SimplicialMesh:
    """Parse a METIS mesh file (simplicial elements only).

    ``points`` optionally supplies node coordinates (array or a path/file in
    ``.xyz`` format).
    """
    fh, owned = _open(path_or_file, "r")
    try:
        lines = [ln for ln in fh if ln.strip() and not ln.lstrip().startswith("%")]
    finally:
        if owned:
            fh.close()
    if not lines:
        raise GraphFormatError("empty mesh file")
    try:
        ne = int(lines[0].split()[0])
    except ValueError as exc:
        raise GraphFormatError(f"bad mesh header: {lines[0]!r}") from exc
    if len(lines) - 1 != ne:
        raise GraphFormatError(f"expected {ne} element lines, found {len(lines) - 1}")

    rows = []
    width = None
    for i, ln in enumerate(lines[1:]):
        try:
            nodes = [int(t) for t in ln.split()]
        except ValueError as exc:
            raise GraphFormatError(f"non-integer node id on line {i + 2}") from exc
        if width is None:
            width = len(nodes)
            if width not in (3, 4):
                raise GraphFormatError(
                    "only simplicial meshes (3- or 4-node elements) are supported"
                )
        elif len(nodes) != width:
            raise GraphFormatError(f"mixed element sizes at line {i + 2}")
        if min(nodes) < 1:
            raise GraphFormatError(f"node ids are 1-based; line {i + 2}")
        rows.append([n - 1 for n in nodes])

    pts = None
    if points is not None:
        pts = points if isinstance(points, np.ndarray) else read_xyz(points)
    return SimplicialMesh(np.asarray(rows, dtype=_INT), pts)


def write_metis_mesh(mesh: SimplicialMesh, path_or_file) -> None:
    """Write a mesh in METIS element-list format (1-based node ids)."""
    buf = _io.StringIO()
    buf.write(f"{mesh.nelements}\n")
    for row in mesh.elements:
        buf.write(" ".join(str(int(x) + 1) for x in row) + "\n")
    fh, owned = _open(path_or_file, "w")
    try:
        fh.write(buf.getvalue())
    finally:
        if owned:
            fh.close()


def read_xyz(path_or_file) -> np.ndarray:
    """Read node coordinates: one ``x y [z]`` line per node."""
    fh, owned = _open(path_or_file, "r")
    try:
        rows = []
        for ln in fh:
            s = ln.strip()
            if not s or s[0] in "%#":
                continue
            vals = [float(t) for t in s.split()]
            if len(vals) not in (2, 3):
                raise GraphFormatError(f"bad coordinate line: {ln!r}")
            rows.append(vals)
    finally:
        if owned:
            fh.close()
    if not rows:
        raise GraphFormatError("empty coordinate file")
    widths = {len(r) for r in rows}
    if len(widths) != 1:
        raise GraphFormatError("mixed 2-D and 3-D coordinate lines")
    return np.asarray(rows, dtype=np.float64)


def write_xyz(points: np.ndarray, path_or_file) -> None:
    """Write node coordinates, one line per node."""
    pts = np.asarray(points, dtype=np.float64)
    fh, owned = _open(path_or_file, "w")
    try:
        for row in pts:
            fh.write(" ".join(f"{x:.17g}" for x in row) + "\n")
    finally:
        if owned:
            fh.close()
