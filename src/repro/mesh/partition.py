"""Partitioning directly at the mesh level.

FEM users think in elements and nodes, not graph vertices; this wrapper
runs the multi-constraint partitioner on the mesh's dual graph and derives
the induced node assignment, mirroring METIS's ``PartMeshDual`` entry
point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WeightError
from ..partition.api import PartitionResult, part_graph
from .simplicial import SimplicialMesh, dual_graph

__all__ = ["MeshPartition", "partition_mesh", "nodes_from_elements"]


@dataclass
class MeshPartition:
    """Element and node assignments of a mesh decomposition."""

    element_part: np.ndarray
    node_part: np.ndarray
    result: PartitionResult

    @property
    def nparts(self) -> int:
        return self.result.nparts

    def summary(self) -> str:
        return "mesh " + self.result.summary()


def nodes_from_elements(mesh: SimplicialMesh, element_part, nparts: int) -> np.ndarray:
    """Derive a node assignment from an element assignment: each node goes
    to the part owning the most of its incident elements (ties to the
    lowest part id).  Nodes in no element get part 0."""
    element_part = np.asarray(element_part)
    if element_part.shape != (mesh.nelements,):
        raise WeightError("element_part must cover all elements")
    nn = mesh.nnodes
    votes = np.zeros((nn, nparts), dtype=np.int64)
    k = mesh.elements.shape[1]
    flat_nodes = mesh.elements.ravel()
    flat_parts = np.repeat(element_part, k)
    np.add.at(votes, (flat_nodes, flat_parts), 1)
    return votes.argmax(axis=1).astype(np.int64)


def partition_mesh(
    mesh: SimplicialMesh,
    nparts: int,
    *,
    element_weights=None,
    **kwargs,
) -> MeshPartition:
    """Partition a mesh by its dual graph.

    Parameters
    ----------
    mesh:
        A :class:`SimplicialMesh`.
    nparts:
        Number of parts.
    element_weights:
        Optional ``(nelem,)`` or ``(nelem, m)`` per-element constraint
        weights (e.g. from :class:`repro.multiphase.MultiPhaseComputation`).
    kwargs:
        Forwarded to :func:`repro.partition.part_graph`
        (``method=``, ``ubvec=``, ``seed=``, ...).
    """
    g = dual_graph(mesh)
    if element_weights is not None:
        g = g.with_vwgt(element_weights)
    res = part_graph(g, nparts, **kwargs)
    return MeshPartition(
        element_part=res.part,
        node_part=nodes_from_elements(mesh, res.part, nparts),
        result=res,
    )
