"""Simplicial meshes and the mesh-to-graph pipeline (dual / nodal graphs),
mirroring the FEM inputs the paper's partitioners were built for."""

from .generators import delaunay_triangulation, tet_grid, triangle_grid
from .io import read_metis_mesh, read_xyz, write_metis_mesh, write_xyz
from .partition import MeshPartition, nodes_from_elements, partition_mesh
from .simplicial import SimplicialMesh, dual_graph, nodal_graph

__all__ = [
    "SimplicialMesh",
    "dual_graph",
    "nodal_graph",
    "triangle_grid",
    "tet_grid",
    "delaunay_triangulation",
    "partition_mesh",
    "MeshPartition",
    "nodes_from_elements",
    "read_metis_mesh",
    "write_metis_mesh",
    "read_xyz",
    "write_xyz",
]
