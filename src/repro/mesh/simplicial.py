"""Simplicial meshes and their graphs.

The paper partitions *meshes* — its graphs are the duals of 2-D/3-D finite
element meshes (each element a vertex, elements that share a face joined by
an edge).  This module provides the mesh→graph pipeline so users can start
from an element list instead of a prebuilt graph, mirroring METIS's
``mesh-to-dual`` / ``mesh-to-nodal`` conversions:

* :class:`SimplicialMesh` — elements as ``(nelem, d+1)`` node-id rows
  (triangles or tetrahedra);
* :func:`dual_graph` — elements adjacent iff they share a facet (edge in
  2-D, triangular face in 3-D); this is the graph the partitioners see;
* :func:`nodal_graph` — mesh nodes adjacent iff they share an element.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from ..graph.build import from_edges
from ..graph.csr import Graph

__all__ = ["SimplicialMesh", "dual_graph", "nodal_graph"]

_INT = np.int64


@dataclass
class SimplicialMesh:
    """A simplicial mesh: ``elements[i]`` lists the ``d+1`` node ids of
    element ``i`` (triangles for ``d=2``, tetrahedra for ``d=3``).

    ``points`` is an optional ``(nnodes, d)`` coordinate array.
    """

    elements: np.ndarray
    points: np.ndarray | None = None

    def __post_init__(self):
        self.elements = np.ascontiguousarray(self.elements, dtype=_INT)
        if self.elements.ndim != 2 or self.elements.shape[1] not in (3, 4):
            raise GraphError(
                "elements must be (nelem, 3) triangles or (nelem, 4) tetrahedra"
            )
        if self.elements.size and self.elements.min() < 0:
            raise GraphError("negative node ids")
        # Nodes inside an element must be distinct.
        srt = np.sort(self.elements, axis=1)
        if np.any(srt[:, 1:] == srt[:, :-1]):
            raise GraphError("degenerate element (repeated node)")
        if self.points is not None:
            self.points = np.ascontiguousarray(self.points, dtype=np.float64)
            if self.points.ndim != 2:
                raise GraphError("points must be (nnodes, d)")
            if self.elements.size and self.elements.max() >= self.points.shape[0]:
                raise GraphError("element references a missing point")

    @property
    def nelements(self) -> int:
        return self.elements.shape[0]

    @property
    def nnodes(self) -> int:
        if self.points is not None:
            return self.points.shape[0]
        return int(self.elements.max()) + 1 if self.elements.size else 0

    @property
    def dim(self) -> int:
        """Topological dimension (2 for triangles, 3 for tets)."""
        return self.elements.shape[1] - 1

    def facets(self) -> np.ndarray:
        """All element facets as sorted node-id tuples, ``(nelem * (d+1),
        d)``; element ``i`` owns rows ``i*(d+1) .. (i+1)*(d+1)-1``."""
        el = self.elements
        k = el.shape[1]
        faces = []
        for drop in range(k):
            keep = [c for c in range(k) if c != drop]
            faces.append(el[:, keep])
        # Interleave per element: row-major stacking then reshape keeps the
        # "element i owns k consecutive rows" property.
        stacked = np.stack(faces, axis=1).reshape(-1, k - 1)
        return np.sort(stacked, axis=1)

    def element_centroids(self) -> np.ndarray:
        """``(nelem, d)`` centroid coordinates (requires ``points``)."""
        if self.points is None:
            raise GraphError("mesh has no point coordinates")
        return self.points[self.elements].mean(axis=1)


def dual_graph(mesh: SimplicialMesh) -> Graph:
    """Element-adjacency (dual) graph: elements joined iff they share a
    full facet.  This is the graph the paper's partitioners consume; element
    centroids are attached as coordinates when available.

    Fully vectorised: facets are sorted-key rows, shared facets found with
    one ``np.unique`` over a packed key.
    """
    ne = mesh.nelements
    if ne == 0:
        return Graph(np.zeros(1, dtype=_INT), np.empty(0, dtype=_INT))
    faces = mesh.facets()
    k = mesh.elements.shape[1]
    owner = np.repeat(np.arange(ne, dtype=_INT), k)

    # Pack each facet row into a single comparable key via lexsort grouping.
    order = np.lexsort(faces.T[::-1])
    sorted_faces = faces[order]
    sorted_owner = owner[order]
    same_as_prev = np.all(sorted_faces[1:] == sorted_faces[:-1], axis=1)

    # A facet is interior iff exactly two elements share it (conforming
    # mesh); consecutive equal rows pair up their owners.
    u = sorted_owner[:-1][same_as_prev]
    v = sorted_owner[1:][same_as_prev]
    mask = u != v
    g = from_edges(ne, np.stack([u[mask], v[mask]], axis=1))
    if mesh.points is not None:
        g.coords = mesh.element_centroids()
    return g


def nodal_graph(mesh: SimplicialMesh) -> Graph:
    """Node-adjacency graph: mesh nodes joined iff they appear in a common
    element (the graph a nodal FEM discretisation communicates over)."""
    nn = mesh.nnodes
    el = mesh.elements
    k = el.shape[1]
    pairs = []
    for i in range(k):
        for j in range(i + 1, k):
            pairs.append(el[:, [i, j]])
    edges = np.concatenate(pairs) if pairs else np.empty((0, 2), dtype=_INT)
    g = from_edges(nn, edges)
    if mesh.points is not None:
        g.coords = mesh.points
    return g
