"""Structured quality reports and plain-text tables for experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import Graph
from ..weights.balance import imbalance, part_weights
from .quality import boundary_vertices, comm_volume, edge_cut, interface_sizes

__all__ = ["PartitionReport", "format_table"]


@dataclass
class PartitionReport:
    """Every quality number of a partition, computed in one pass."""

    nparts: int
    ncon: int
    edgecut: int
    comm_volume: int
    nboundary: int
    imbalance: np.ndarray
    max_imbalance: float
    part_weights: np.ndarray
    max_subdomain_degree: int

    @classmethod
    def from_partition(cls, graph: Graph, part, nparts: int) -> "PartitionReport":
        """Compute a full report for ``part`` on ``graph``."""
        imb = imbalance(graph.vwgt, part, nparts)
        return cls(
            nparts=nparts,
            ncon=graph.ncon,
            edgecut=edge_cut(graph, part),
            comm_volume=comm_volume(graph, part),
            nboundary=int(boundary_vertices(graph, part).shape[0]),
            imbalance=imb,
            max_imbalance=float(imb.max(initial=0.0)),
            part_weights=part_weights(graph.vwgt, part, nparts),
            max_subdomain_degree=int(interface_sizes(graph, part, nparts).max(initial=0)),
        )

    def __str__(self) -> str:
        imb = ", ".join(f"{x:.3f}" for x in self.imbalance)
        return (
            f"k={self.nparts} m={self.ncon} cut={self.edgecut} "
            f"vol={self.comm_volume} boundary={self.nboundary} "
            f"imbalance=[{imb}] maxdeg={self.max_subdomain_degree}"
        )


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render a plain-text table (used by the benchmark harness to print the
    same row layout the paper's tables use)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(x) -> str:
    if isinstance(x, float):
        return f"{x:.3f}"
    return str(x)
