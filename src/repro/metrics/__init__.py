"""Partition-quality metrics and reports."""

from .quality import (
    boundary_vertices,
    comm_volume,
    edge_cut,
    interface_sizes,
    subdomain_matrix,
)
from .report import PartitionReport, format_table

__all__ = [
    "edge_cut",
    "comm_volume",
    "boundary_vertices",
    "subdomain_matrix",
    "interface_sizes",
    "PartitionReport",
    "format_table",
]
