"""Partition-quality metrics.

Besides the paper's two headline numbers -- edge-cut and per-constraint load
imbalance -- this module provides the standard secondary metrics used to
judge partitioners: total communication volume, boundary size, and the
subdomain connectivity matrix.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.csr import Graph
from ..refine.gain import edge_cut

__all__ = [
    "edge_cut",
    "comm_volume",
    "boundary_vertices",
    "subdomain_matrix",
    "interface_sizes",
]


def _check(graph: Graph, part) -> np.ndarray:
    part = np.asarray(part)
    if part.shape != (graph.nvtxs,):
        raise PartitionError("part vector must cover all vertices")
    return part


def comm_volume(graph: Graph, part) -> int:
    """Total communication volume: for each vertex, the number of *distinct*
    foreign parts among its neighbours, summed over vertices.  This models
    one message-payload per (vertex, foreign subdomain) pair per exchange
    step -- often a better predictor of communication cost than the cut."""
    part = _check(graph, part)
    n = graph.nvtxs
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    dst_part = part[graph.adjncy]
    foreign = dst_part != part[src]
    pairs = np.stack([src[foreign], dst_part[foreign]], axis=1)
    if pairs.shape[0] == 0:
        return 0
    uniq = np.unique(pairs, axis=0)
    return int(uniq.shape[0])


def boundary_vertices(graph: Graph, part) -> np.ndarray:
    """Ids of vertices with at least one neighbour in another part."""
    part = _check(graph, part)
    src = np.repeat(np.arange(graph.nvtxs, dtype=np.int64), np.diff(graph.xadj))
    crossing = part[src] != part[graph.adjncy]
    return np.unique(src[crossing])


def subdomain_matrix(graph: Graph, part, nparts: int) -> np.ndarray:
    """``(k, k)`` symmetric matrix of cut edge weight between each pair of
    parts (diagonal = internal edge weight, counted once)."""
    part = _check(graph, part)
    src = np.repeat(np.arange(graph.nvtxs, dtype=np.int64), np.diff(graph.xadj))
    pu = part[src]
    pv = part[graph.adjncy]
    mat = np.zeros((nparts, nparts), dtype=np.int64)
    np.add.at(mat, (pu, pv), graph.adjwgt)
    # Off-diagonal entries already count each cross edge once per ordered
    # pair; internal edges hit the diagonal twice (once per direction).
    mat[np.diag_indices(nparts)] //= 2
    return mat


def interface_sizes(graph: Graph, part, nparts: int) -> np.ndarray:
    """Number of foreign parts adjacent to each part (subdomain degree)."""
    mat = subdomain_matrix(graph, part, nparts)
    off = mat.copy()
    np.fill_diagonal(off, 0)
    return (off > 0).sum(axis=1)
