"""Gain bookkeeping shared by the refinement algorithms.

For a 2-way partition, every vertex has an *internal degree* ``id[v]`` (edge
weight to its own part) and *external degree* ``ed[v]`` (edge weight to the
other part); its FM gain is ``ed[v] - id[v]`` and the cut equals
``ed.sum() / 2``.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.csr import Graph

__all__ = [
    "edge_cut",
    "compute_2way_degrees",
    "kway_degrees",
    "boundary_from_ed",
    "neighbor_part_weights",
]

_INT = np.int64


def edge_cut(graph: Graph, where) -> int:
    """Total weight of edges whose endpoints lie in different parts
    (vectorised over all directed edges)."""
    where = np.asarray(where)
    if where.shape != (graph.nvtxs,):
        raise PartitionError("partition vector must cover all vertices")
    src = np.repeat(np.arange(graph.nvtxs, dtype=_INT), np.diff(graph.xadj))
    crossing = where[src] != where[graph.adjncy]
    return int(graph.adjwgt[crossing].sum()) // 2


def compute_2way_degrees(graph: Graph, where) -> tuple[np.ndarray, np.ndarray]:
    """Internal/external degree arrays for a 2-way partition (vectorised)."""
    where = np.asarray(where)
    n = graph.nvtxs
    src = np.repeat(np.arange(n, dtype=_INT), np.diff(graph.xadj))
    same = where[src] == where[graph.adjncy]
    id_ = np.zeros(n, dtype=_INT)
    ed = np.zeros(n, dtype=_INT)
    np.add.at(id_, src[same], graph.adjwgt[same])
    np.add.at(ed, src[~same], graph.adjwgt[~same])
    return id_, ed


def kway_degrees(graph: Graph, where) -> tuple[np.ndarray, np.ndarray]:
    """Internal/external degree arrays for an arbitrary k-way partition.

    ``id[v]`` is the edge weight from ``v`` into its own part, ``ed[v]`` the
    weight into all other parts; a vertex is a boundary vertex iff
    ``ed[v] > 0``.  The computation only compares part ids of edge
    endpoints, so it is the same bulk sweep as the 2-way case."""
    return compute_2way_degrees(graph, where)


def boundary_from_ed(ed: np.ndarray) -> np.ndarray:
    """Vertex ids with positive external degree."""
    return np.flatnonzero(ed > 0)


def neighbor_part_weights(graph: Graph, where, v: int) -> dict[int, int]:
    """Edge weight from ``v`` to each adjacent part (including its own),
    as a small dict ``{part: weight}``.  O(deg v)."""
    out: dict[int, int] = {}
    beg, end = graph.xadj[v], graph.xadj[v + 1]
    nbrs = graph.adjncy[beg:end]
    ws = graph.adjwgt[beg:end]
    parts = where[nbrs]
    for p, w in zip(parts.tolist(), ws.tolist()):
        out[p] = out.get(p, 0) + w
    return out
