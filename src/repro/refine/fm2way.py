"""Multi-constraint 2-way FM refinement (the paper's bisection refiner).

The classic Fiduccia--Mattheyses refinement keeps one priority queue per
side and repeatedly moves the best-gain vertex, allowing a bounded streak of
cut-increasing moves and rolling back to the best prefix.  The
multi-constraint extension (SC'98, Section 5.2) keeps ``m`` queues per side
-- vertex ``v`` lives in the queue of its *dominant* weight component -- so
that when some constraint drifts out of tolerance, moves can be drawn
specifically from vertices that are heavy in that constraint on the
overweight side.

Two modes cooperate:

* :func:`balance_2way` -- driven purely by the total balance excess
  ``B = sum_j,i max(0, pw[j,i] - cap[j,i])``; every move must strictly
  decrease ``B`` (which guarantees termination), picking the best-gain
  vertex among candidates from the dominant queue of the worst violation.
* :func:`fm2way_refine` -- hill-climbing FM passes over boundary vertices;
  from a feasible state only destination-feasible moves are taken (the
  serial algorithm never explores the infeasible space once balanced --
  exactly the behaviour the paper describes), with rollback to the best
  observed prefix.

Performance
-----------
FM is the hottest kernel of the whole pipeline (the initial-partitioning
phase alone FM-refines hundreds of candidate bisections), and its inner
loop is dominated by *per-element* operations: one gain lookup, an m-entry
feasibility check, a few queue ops.  NumPy is the wrong tool at that grain
-- every ufunc call costs ~1us of dispatch for ~3 elements of work -- so
:class:`TwoWayState` keeps **pure-Python scalar mirrors** (plain lists) of
the hot state next to the NumPy-facing views:

* gain initialisation (:meth:`TwoWayState.build_queues`) is one vectorised
  sweep over the CSR arrays followed by a bulk ``heapify`` per queue;
* per-move updates (``id/ed``, part weights, the balance objective) touch
  only the moved vertex and its neighbours, in plain-int arithmetic;
* the selection loop peeks queue tops inline (no function call per queue).

The arithmetic is IEEE-identical to the previous NumPy-scalar version, so
seeded runs keep their results; ``tests/test_perf_kernels.py`` pins the
parity against the per-vertex reference implementations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .._rng import as_rng
from ..errors import PartitionError
from ..graph.csr import Graph
from ..weights.balance import FEASIBILITY_EPS, as_ubvec
from .gain import compute_2way_degrees
from .pq import LazyMaxPQ

__all__ = ["BisectScratch", "TwoWayState", "balance_2way", "fm2way_refine", "FMStats"]

_EPS = 1e-12


class BisectScratch:
    """Graph-side constants of repeated 2-way refinements, shared across
    candidates.

    Building a :class:`TwoWayState` converts the CSR arrays, the relative
    weight matrix and the per-side caps into plain-Python lists (the FM
    hot-path mirrors) -- O(V + E) work that is *identical* for every
    candidate partition of the same graph under the same
    ``(target_fracs, ubvec)``.  The multi-start initial bisection refines
    ~20 candidates per coarsest graph; one scratch hoists the conversion
    out of that loop (pass it via ``fm2way_refine(..., scratch=...)``).

    A scratch is read-only after construction: per-move bookkeeping only
    ever mutates the *where-dependent* state (``pw``, ``id/ed``, ``cut``),
    which each :class:`TwoWayState` still builds for itself.
    """

    __slots__ = (
        "graph", "relw", "dom", "fracs", "caps",
        "_m", "_xadj", "_adj", "_adjw", "_relwl", "_doml", "_capsl",
    )

    def __init__(self, graph: Graph, target_fracs=(0.5, 0.5), ubvec=1.05):
        m = graph.ncon
        t = graph.vwgt.sum(axis=0).astype(np.float64)
        t[t == 0] = 1.0
        self.graph = graph
        self.relw = graph.vwgt / t
        self.dom = (np.argmax(self.relw, axis=1) if m > 1
                    else np.zeros(graph.nvtxs, dtype=np.int64))

        fr = np.asarray(target_fracs, dtype=np.float64)
        if fr.shape != (2,) or np.any(fr <= 0):
            raise PartitionError("target_fracs must be two positive numbers")
        fr = fr / fr.sum()
        ub = as_ubvec(ubvec, m)
        self.fracs = fr
        self.caps = fr[:, None] * ub[None, :]

        self._m = m
        self._xadj = graph.xadj.tolist()
        self._adj = graph.adjncy.tolist()
        self._adjw = graph.adjwgt.tolist()
        self._relwl = self.relw.tolist()
        self._doml = self.dom.tolist()
        self._capsl = self.caps.tolist()

    def matches(self, graph: Graph, target_fracs, ubvec) -> bool:
        """Cheap guard: does this scratch describe ``graph`` under the same
        normalised fractions and caps?  (Mismatch falls back to a rebuild.)"""
        if graph is not self.graph:
            return False
        fr = np.asarray(target_fracs, dtype=np.float64)
        if fr.shape != (2,) or np.any(fr <= 0):
            return False
        fr = fr / fr.sum()
        return (np.array_equal(fr, self.fracs)
                and np.array_equal(fr[:, None] * as_ubvec(ubvec, self._m)[None, :],
                                   self.caps))


@dataclass
class FMStats:
    """Outcome of a refinement run."""

    initial_cut: int
    final_cut: int
    passes: int
    moves: int
    feasible: bool
    #: Final total balance excess (0.0 when feasible); lets drivers score
    #: candidates without rebuilding a state around the refined partition.
    balance: float = 0.0
    #: Speculative moves undone by per-pass rollback to the best prefix;
    #: a high ratio of rollbacks to moves means passes explored far past
    #: their best state (observability signal, no algorithmic effect).
    rollbacks: int = 0


class TwoWayState:
    """Mutable state of a 2-way multi-constraint partition.

    Tracks relative part weights, internal/external degrees and the cut;
    every mutation goes through :meth:`move` so the invariants
    ``cut == ed.sum()/2`` and ``pw == sum of relw per side`` hold at all
    times (asserted by the test-suite's property checks).

    ``pw``, ``id_`` and ``ed`` are exposed as NumPy arrays (views built on
    access); the authoritative copies live in plain-Python lists so the
    per-move bookkeeping runs at interpreter speed instead of paying ufunc
    dispatch per touched element.
    """

    def __init__(self, graph: Graph, where, target_fracs=(0.5, 0.5), ubvec=1.05,
                 scratch: BisectScratch | None = None):
        where = np.asarray(where, dtype=np.int64)
        if where.shape != (graph.nvtxs,):
            raise PartitionError("where must cover all vertices")
        if where.size and not np.all((where == 0) | (where == 1)):
            raise PartitionError("2-way state requires parts {0, 1}")
        self.graph = graph
        self.where = where
        m = graph.ncon
        if scratch is None or not scratch.matches(graph, target_fracs, ubvec):
            scratch = BisectScratch(graph, target_fracs, ubvec)
        # Graph-side constants (possibly shared across many states).
        self.relw = scratch.relw
        self.dom = scratch.dom
        self.fracs = scratch.fracs
        self.caps = scratch.caps
        self._m = m
        self._xadj = scratch._xadj
        self._adj = scratch._adj
        self._adjw = scratch._adjw
        self._relwl = scratch._relwl
        self._doml = scratch._doml
        self._capsl = scratch._capsl

        pw = np.zeros((2, m), dtype=np.float64)
        pw[0] = self.relw[where == 0].sum(axis=0)
        pw[1] = self.relw[where == 1].sum(axis=0)
        id_, ed = compute_2way_degrees(graph, where)
        self.cut = int(ed.sum()) // 2

        # Hot-path mirrors of the where-dependent state: plain-Python
        # scalars, no ufunc dispatch.
        self._wh = where.tolist()
        self._pw = pw.tolist()
        self._id = id_.tolist()
        self._ed = ed.tolist()

    # ---------------------------------------------------------- views #

    @property
    def pw(self) -> np.ndarray:
        """``(2, m)`` relative part weights (snapshot of the live state)."""
        return np.array(self._pw)

    @property
    def id_(self) -> np.ndarray:
        """``(n,)`` internal degrees (snapshot)."""
        return np.array(self._id, dtype=np.int64)

    @property
    def ed(self) -> np.ndarray:
        """``(n,)`` external degrees (snapshot)."""
        return np.array(self._ed, dtype=np.int64)

    # -------------------------------------------------------------- #

    def gain(self, v: int) -> int:
        return self._ed[v] - self._id[v]

    def excess(self) -> np.ndarray:
        """(2, m) positive part of ``pw - caps``."""
        return np.maximum(self.pw - self.caps, 0.0)

    def balance_obj(self) -> float:
        """Total balance excess ``B`` (0 when feasible)."""
        b = 0.0
        for pwi, ci in zip(self._pw, self._capsl):
            for j in range(self._m):
                d = pwi[j] - ci[j]
                if d > 0.0:
                    b += d
        return b

    def feasible(self) -> bool:
        return self.balance_obj() <= FEASIBILITY_EPS

    def dest_fits(self, v: int) -> bool:
        """Would moving ``v`` keep its destination within its caps?"""
        pwd = self._pw[1 - self._wh[v]]
        capd = self._capsl[1 - self._wh[v]]
        rv = self._relwl[v]
        for j in range(self._m):
            if pwd[j] + rv[j] > capd[j] + FEASIBILITY_EPS:
                return False
        return True

    def balance_after(self, v: int) -> float:
        """Balance objective if ``v`` were moved."""
        s = self._wh[v]
        rv = self._relwl[v]
        b = 0.0
        for i in (0, 1):
            pwi = self._pw[i]
            ci = self._capsl[i]
            sign = -1.0 if i == s else 1.0
            for j in range(self._m):
                d = pwi[j] + sign * rv[j] - ci[j]
                if d > 0.0:
                    b += d
        return b

    def move(self, v: int, queues=None, locked=None) -> None:
        """Move ``v`` to the other side, updating degrees, cut, part
        weights, and (optionally) the gain queues of its free neighbours."""
        wh = self._wh
        idl, edl = self._id, self._ed
        s = wh[v]
        d = 1 - s
        self.cut -= edl[v] - idl[v]
        rv = self._relwl[v]
        pws, pwd = self._pw[s], self._pw[d]
        for j in range(self._m):
            pws[j] -= rv[j]
            pwd[j] += rv[j]
        wh[v] = d
        self.where[v] = d
        idl[v], edl[v] = edl[v], idl[v]

        adj, adjw, dom = self._adj, self._adjw, self._doml
        heappush = heapq.heappush
        for i in range(self._xadj[v], self._xadj[v + 1]):
            u = adj[i]
            w = adjw[i]
            if wh[u] == d:  # u is now on v's side
                idl[u] += w
                edl[u] -= w
            else:
                idl[u] -= w
                edl[u] += w
            if queues is not None and (locked is None or not locked[u]):
                # Inline queue insert/update (see LazyMaxPQ invariants):
                # refresh u's gain if queued, enqueue if it just became a
                # boundary vertex.
                q = queues[wh[u]][dom[u]]
                prio = q._prio
                queued = u in prio
                if queued or edl[u] > 0:
                    g_u = edl[u] - idl[u]
                    stamp = q._stamp
                    s_u = stamp.get(u, 0) + 1
                    stamp[u] = s_u
                    if not queued:
                        q._size += 1
                    prio[u] = g_u
                    heappush(q._heap, (-g_u, u, s_u))

    # -------------------------------------------------------------- #

    def build_queues(self, *, boundary_only: bool = True, locked=None):
        """Fresh ``queues[side][con]`` of free (un-locked) vertices.

        One vectorised sweep: candidate vertices, their gains and their
        (side, dominant-constraint) bucket come straight from the CSR-based
        degree arrays; each bucket then becomes a queue via a single
        ``heapify`` (same pop order as per-vertex inserts).
        """
        m = self._m
        ed = np.asarray(self._ed, dtype=np.int64)
        if boundary_only:
            verts = np.flatnonzero(ed > 0)
        else:
            verts = np.arange(self.graph.nvtxs)
        if locked is not None:
            lk = np.asarray(locked, dtype=bool)
            verts = verts[~lk[verts]]
        gains = (ed - np.asarray(self._id, dtype=np.int64))[verts]
        bucket = self.where[verts] * m + self.dom[verts]
        order = np.argsort(bucket, kind="stable")
        verts, gains, bucket = verts[order], gains[order], bucket[order]
        starts = np.searchsorted(bucket, np.arange(2 * m + 1))
        queues = []
        for side in range(2):
            row = []
            for c in range(m):
                lo, hi = starts[side * m + c], starts[side * m + c + 1]
                row.append(LazyMaxPQ.from_items(verts[lo:hi].tolist(),
                                                gains[lo:hi].tolist()))
            queues.append(row)
        return queues

    def _reference_build_queues(self, *, boundary_only: bool = True, locked=None):
        """Per-vertex oracle for :meth:`build_queues` (parity tests)."""
        m = self._m
        queues = [[LazyMaxPQ() for _ in range(m)] for _ in range(2)]
        if boundary_only:
            verts = np.flatnonzero(np.asarray(self._ed) > 0)
        else:
            verts = np.arange(self.graph.nvtxs)
        for v in verts.tolist():
            if locked is not None and locked[v]:
                continue
            queues[self._wh[v]][self._doml[v]].insert(v, self.gain(v))
        return queues


def _drain_for_balance(state: TwoWayState, q: LazyMaxPQ, b_now: float, limit: int) -> int:
    """Pop candidates from ``q`` in gain order until one strictly reduces
    the balance objective below ``b_now``; give up after ``limit + 1``
    rejections.  Returns the accepted vertex (logically removed from ``q``)
    or -1.  Rejected pops are physical only -- the identical entry tuples
    are pushed back, which restores the exact abstract queue state."""
    heap = q._heap
    stamp = q._stamp
    heappop = heapq.heappop
    popped: list[tuple] = []
    found = -1
    while True:
        while heap:
            entry = heap[0]
            if stamp.get(entry[1]) == entry[2]:
                break
            heappop(heap)
        if not heap:
            break
        entry = heappop(heap)
        v = entry[1]
        if state.balance_after(v) < b_now - _EPS:
            del q._prio[v]
            stamp[v] = entry[2] + 1
            q._size -= 1
            found = v
            break
        popped.append(entry)
        if len(popped) > limit:
            break
    for entry in popped:
        heapq.heappush(heap, entry)
    return found


def balance_2way(state: TwoWayState, max_moves: int | None = None) -> int:
    """Restore feasibility by moving vertices out of overweight sides.

    Each move must strictly reduce the balance objective ``B``; ties and
    increases are rejected, so the loop terminates.  Among acceptable
    candidates of the dominant queue of the worst violation, the best-gain
    vertex is chosen (minimum cut damage).  Returns the number of moves.
    """
    if state.feasible():
        return 0
    n = state.graph.nvtxs
    if max_moves is None:
        max_moves = 4 * n + 16
    queues = state.build_queues(boundary_only=False)
    moves = 0
    m = state._m
    while moves < max_moves:
        # Worst single violation (row-major first-max, like np.argmax over
        # the excess matrix) and total excess, in one scalar sweep.
        b_now = 0.0
        worst = 0.0
        side = con = 0
        for i in (0, 1):
            pwi = state._pw[i]
            ci = state._capsl[i]
            for j in range(m):
                d = pwi[j] - ci[j]
                if d > 0.0:
                    b_now += d
                    if d > worst:
                        worst = d
                        side, con = i, j
        if b_now <= FEASIBILITY_EPS:
            break
        chosen = -1
        # Try the dominant queue of the violated constraint first, then the
        # side's other queues.
        for c in [con] + [c for c in range(m) if c != con]:
            chosen = _drain_for_balance(state, queues[side][c], b_now, 64)
            if chosen >= 0:
                break
        if chosen < 0:
            break
        state.move(chosen, queues=queues)
        # The mover switched sides: place it in its new side's queue so it
        # can participate in later corrections (B strictly decreases, so it
        # cannot oscillate forever).
        queues[state._wh[chosen]][state._doml[chosen]].insert(chosen, state.gain(chosen))
        moves += 1
    return moves


def fm2way_refine(
    graph: Graph,
    where,
    *,
    target_fracs=(0.5, 0.5),
    ubvec=1.05,
    npasses: int = 8,
    max_bad_moves: int | None = None,
    seed=None,
    scratch: BisectScratch | None = None,
) -> FMStats:
    """Refine a 2-way partition in place with multi-constraint FM.

    Parameters
    ----------
    graph, where:
        The graph and its (mutated in place) 0/1 partition vector.
    target_fracs:
        Target weight fraction of part 0 and part 1 (every constraint uses
        the same split -- the paper's formulation).
    ubvec:
        Per-constraint load-imbalance tolerance (scalar or length-``m``).
    npasses:
        Maximum FM passes.
    max_bad_moves:
        Abort a pass after this many consecutive non-improving moves
        (default ``max(64, n // 20)``).
    scratch:
        Optional :class:`BisectScratch` for ``graph`` under the same
        ``(target_fracs, ubvec)``; hoists the O(V + E) list-mirror
        construction out of multi-candidate loops.  A mismatched scratch
        is ignored (the state rebuilds its own constants).

    Returns
    -------
    FMStats
        Cut before/after, passes, total committed moves, and the final
        balance excess.
    """
    as_rng(seed)  # reserved: selection is deterministic, seed kept for API symmetry
    where = np.asarray(where, dtype=np.int64)
    state = TwoWayState(graph, where, target_fracs, ubvec, scratch=scratch)
    initial_cut = state.cut
    n = graph.nvtxs
    if max_bad_moves is None:
        max_bad_moves = max(64, n // 20)

    total_moves = 0
    total_rollbacks = 0
    passes = 0
    for _ in range(npasses):
        if not state.feasible():
            total_moves += balance_2way(state)
        improved, nmoves, nrollbacks = _fm_pass(state, max_bad_moves)
        passes += 1
        total_moves += nmoves
        total_rollbacks += nrollbacks
        if not improved:
            break
    if not state.feasible():
        total_moves += balance_2way(state)
    return FMStats(
        initial_cut=initial_cut,
        final_cut=state.cut,
        passes=passes,
        moves=total_moves,
        feasible=state.feasible(),
        balance=state.balance_obj(),
        rollbacks=total_rollbacks,
    )


def _state_key(state: TwoWayState):
    """Ordering key: feasible-and-low-cut beats everything; among
    infeasible states prefer lower excess, then lower cut."""
    b = state.balance_obj()
    return (0, state.cut, 0.0) if b <= FEASIBILITY_EPS else (1, b, state.cut)


def _fm_pass(state: TwoWayState, max_bad_moves: int) -> tuple[bool, int, int]:
    """One FM pass with rollback.  Returns (improved, committed moves,
    rolled-back moves)."""
    n = state.graph.nvtxs
    locked = [False] * n
    queues = state.build_queues(boundary_only=True, locked=locked)
    m = state._m

    best_key = _state_key(state)
    start_key = best_key
    history: list[int] = []
    best_len = 0
    bad = 0
    # Pass-start snapshot of the integer state, for the rollback fast
    # path below (three pointer-level list copies; cheap next to even one
    # skipped move replay on the coarsest graphs this dominates).
    snap_wh = state._wh.copy()
    snap_id = state._id.copy()
    snap_ed = state._ed.copy()
    snap_cut = state.cut

    while bad < max_bad_moves:
        v = _select_move(state, queues, m)
        if v < 0:
            break
        state.move(v, queues=queues, locked=locked)
        locked[v] = True
        history.append(v)
        key = _state_key(state)
        if key < best_key:
            best_key = key
            best_len = len(history)
            bad = 0
        else:
            bad += 1

    # Roll back everything after the best prefix, by whichever replay is
    # shorter: reverse-replaying the rolled suffix, or restoring the
    # snapshot and forward-replaying the committed prefix.  Both rebuild
    # the identical state -- the integer bookkeeping (sides, degrees, cut)
    # has exact inverses either way, and the float part weights are always
    # computed by the reverse replay's own operations (IEEE add/sub is not
    # exactly invertible, so a float snapshot would NOT reproduce the
    # pinned reverse-replay bit patterns).
    rolled = len(history) - best_len
    if rolled:
        if best_len < rolled:
            _rollback_to_prefix(state, history, best_len, m,
                                snap_wh, snap_id, snap_ed, snap_cut)
        else:
            for v in reversed(history[best_len:]):
                state.move(v)
    return best_key < start_key, best_len, rolled


def _rollback_to_prefix(state: TwoWayState, history, best_len: int, m: int,
                        snap_wh, snap_id, snap_ed, snap_cut: int) -> None:
    """Return ``state`` to its best prefix without replaying every rolled
    move: reverse-replay only the *float* part-weight updates of the
    rolled suffix (bit-for-bit the operations :meth:`TwoWayState.move`
    would do), then rebuild the integer state from the pass-start
    snapshot by re-applying the committed prefix's integer bookkeeping.
    Exact because integer adds are invertible; worthwhile because the
    common rolled-back pass is the final non-improving one, whose prefix
    is empty."""
    pw = state._pw
    wh = state._wh
    relwl = state._relwl
    rng_m = range(m)
    where = state.where
    for v in reversed(history[best_len:]):
        s = wh[v]  # the side the forward move put v on
        rv = relwl[v]
        pws = pw[s]
        pwd = pw[1 - s]
        for j in rng_m:
            pws[j] -= rv[j]
            pwd[j] += rv[j]
        where[v] = 1 - s

    # Integer state: snapshot + forward replay of the committed prefix
    # (each vertex moves at most once per pass, so the replay's evolving
    # side vector sees exactly what the original forward moves saw).
    cut = snap_cut
    wh, idl, edl = snap_wh, snap_id, snap_ed
    xadj, adj, adjw = state._xadj, state._adj, state._adjw
    for v in history[:best_len]:
        cut -= edl[v] - idl[v]
        d = 1 - wh[v]
        wh[v] = d
        idl[v], edl[v] = edl[v], idl[v]
        for i in range(xadj[v], xadj[v + 1]):
            u = adj[i]
            w = adjw[i]
            if wh[u] == d:
                idl[u] += w
                edl[u] -= w
            else:
                idl[u] -= w
                edl[u] += w
    state._wh = wh
    state._id = idl
    state._ed = edl
    state.cut = cut


def _select_move(state: TwoWayState, queues, m: int) -> int:
    """Pick the next vertex to move.

    When the state is infeasible, draw from the dominant queue of the worst
    violation (accepting only excess-reducing moves); otherwise take the
    best gain over all ``2m`` queue tops whose move keeps the destination
    feasible.  Rejected pops are re-inserted.  Returns -1 when nothing is
    movable.

    The feasible path is the hottest loop of the whole library; queue tops
    are skimmed inline (peeking 2m queues per move through method calls is
    what the profile said made FM slow).
    """
    # Worst violation + total excess in one scalar sweep (row-major
    # first-max, like np.argmax over the excess matrix).
    b_now = 0.0
    worst = 0.0
    side = con = 0
    for i in (0, 1):
        pwi = state._pw[i]
        ci = state._capsl[i]
        for c in range(m):
            d = pwi[c] - ci[c]
            if d > 0.0:
                b_now += d
                if d > worst:
                    worst = d
                    side, con = i, c
    if b_now > FEASIBILITY_EPS:
        order = [con] + [c for c in range(m) if c != con]
        for c in order:
            q = queues[side][c]
            found = _drain_for_balance(state, q, b_now, 32)
            if found >= 0:
                return found
        return -1

    # Feasible: best gain over all queues, destination must stay feasible.
    # All 2m queues are skimmed once up front; each iteration then scans
    # their live tops directly.  Nothing restales a top during selection
    # (rejected pops are physical-only and touch one queue, which is
    # re-skimmed below), so the one-time skim stays valid.  First queue
    # wins gain ties (side 0 before side 1, constraint 0 before
    # constraint 1, ...), matching the (neg_gain, queue_order) meta-heap
    # this scan replaces -- at 2m queues a flat scan is cheaper than
    # maintaining a heap of tops.
    heappop = heapq.heappop
    qlist = []
    for side in (0, 1):
        qrow = queues[side]
        for c in range(m):
            q = qrow[c]
            # Inline skim (see LazyMaxPQ invariants).
            heap = q._heap
            stamp = q._stamp
            while heap:
                entry = heap[0]
                if stamp.get(entry[1]) == entry[2]:
                    break
                heappop(heap)
            qlist.append(q)

    # Rejected pops are *physical only*: the stamp/priority dicts are left
    # untouched, so pushing the identical entry tuples back afterwards
    # restores the exact abstract queue state (pop order is a function of
    # the live entry set) at half the cost of pop + reinsert.
    heappush = heapq.heappush
    popped: list[tuple[list, tuple]] = []
    chosen = -1
    wh = state._wh
    pw = state._pw
    capsl = state._capsl
    relwl = state._relwl
    rng_m = range(m)
    for _ in range(64):
        best = None
        bq = None
        for q in qlist:
            heap = q._heap
            if heap:
                top = heap[0][0]
                if best is None or top < best:
                    best = top
                    bq = q
        if bq is None:
            break
        heap = bq._heap
        entry = heappop(heap)
        v = entry[1]
        # Inline dest_fits(v).
        d = 1 - wh[v]
        pwd = pw[d]
        capd = capsl[d]
        rv = relwl[v]
        fits = True
        for j in rng_m:
            if pwd[j] + rv[j] > capd[j] + FEASIBILITY_EPS:
                fits = False
                break
        if fits:
            # Logical removal of the accepted vertex only.
            del bq._prio[v]
            bq._stamp[v] = entry[2] + 1
            bq._size -= 1
            chosen = v
            break
        popped.append((heap, entry))
        stamp = bq._stamp
        while heap:
            entry = heap[0]
            if stamp.get(entry[1]) == entry[2]:
                break
            heappop(heap)
    for heap, entry in popped:
        heappush(heap, entry)
    return chosen
