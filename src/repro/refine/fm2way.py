"""Multi-constraint 2-way FM refinement (the paper's bisection refiner).

The classic Fiduccia--Mattheyses refinement keeps one priority queue per
side and repeatedly moves the best-gain vertex, allowing a bounded streak of
cut-increasing moves and rolling back to the best prefix.  The
multi-constraint extension (SC'98, Section 5.2) keeps ``m`` queues per side
-- vertex ``v`` lives in the queue of its *dominant* weight component -- so
that when some constraint drifts out of tolerance, moves can be drawn
specifically from vertices that are heavy in that constraint on the
overweight side.

Two modes cooperate:

* :func:`balance_2way` -- driven purely by the total balance excess
  ``B = sum_j,i max(0, pw[j,i] - cap[j,i])``; every move must strictly
  decrease ``B`` (which guarantees termination), picking the best-gain
  vertex among candidates from the dominant queue of the worst violation.
* :func:`fm2way_refine` -- hill-climbing FM passes over boundary vertices;
  from a feasible state only destination-feasible moves are taken (the
  serial algorithm never explores the infeasible space once balanced --
  exactly the behaviour the paper describes), with rollback to the best
  observed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng
from ..errors import PartitionError
from ..graph.csr import Graph
from ..weights.balance import as_ubvec
from .gain import compute_2way_degrees
from .pq import LazyMaxPQ

__all__ = ["TwoWayState", "balance_2way", "fm2way_refine", "FMStats"]

_EPS = 1e-12


@dataclass
class FMStats:
    """Outcome of a refinement run."""

    initial_cut: int
    final_cut: int
    passes: int
    moves: int
    feasible: bool


class TwoWayState:
    """Mutable state of a 2-way multi-constraint partition.

    Tracks relative part weights, internal/external degrees and the cut;
    every mutation goes through :meth:`move` so the invariants
    ``cut == ed.sum()/2`` and ``pw == sum of relw per side`` hold at all
    times (asserted by the test-suite's property checks).
    """

    def __init__(self, graph: Graph, where, target_fracs=(0.5, 0.5), ubvec=1.05):
        where = np.asarray(where, dtype=np.int64)
        if where.shape != (graph.nvtxs,):
            raise PartitionError("where must cover all vertices")
        if where.size and not np.all((where == 0) | (where == 1)):
            raise PartitionError("2-way state requires parts {0, 1}")
        self.graph = graph
        self.where = where
        m = graph.ncon
        t = graph.vwgt.sum(axis=0).astype(np.float64)
        # A constraint with zero total weight in this (sub)graph is vacuous;
        # normalising by 1 leaves its relative weights identically zero.
        t[t == 0] = 1.0
        self.relw = graph.vwgt / t
        self.dom = np.argmax(self.relw, axis=1) if m > 1 else np.zeros(graph.nvtxs, dtype=np.int64)

        fr = np.asarray(target_fracs, dtype=np.float64)
        if fr.shape != (2,) or np.any(fr <= 0):
            raise PartitionError("target_fracs must be two positive numbers")
        fr = fr / fr.sum()
        ub = as_ubvec(ubvec, m)
        self.fracs = fr
        self.caps = fr[:, None] * ub[None, :]

        self.pw = np.zeros((2, m), dtype=np.float64)
        self.pw[0] = self.relw[where == 0].sum(axis=0)
        self.pw[1] = self.relw[where == 1].sum(axis=0)
        self.id_, self.ed = compute_2way_degrees(graph, where)
        self.cut = int(self.ed.sum()) // 2

    # -------------------------------------------------------------- #

    def gain(self, v: int) -> int:
        return int(self.ed[v] - self.id_[v])

    def excess(self) -> np.ndarray:
        """(2, m) positive part of ``pw - caps``."""
        return np.maximum(self.pw - self.caps, 0.0)

    def balance_obj(self) -> float:
        """Total balance excess ``B`` (0 when feasible)."""
        return float(self.excess().sum())

    def feasible(self) -> bool:
        return self.balance_obj() <= 1e-9

    def dest_fits(self, v: int) -> bool:
        """Would moving ``v`` keep its destination within its caps?"""
        d = 1 - self.where[v]
        return bool(np.all(self.pw[d] + self.relw[v] <= self.caps[d] + 1e-9))

    def balance_after(self, v: int) -> float:
        """Balance objective if ``v`` were moved."""
        s = self.where[v]
        d = 1 - s
        pw = self.pw.copy()
        pw[s] -= self.relw[v]
        pw[d] += self.relw[v]
        return float(np.maximum(pw - self.caps, 0.0).sum())

    def move(self, v: int, queues=None, locked=None) -> None:
        """Move ``v`` to the other side, updating degrees, cut, part
        weights, and (optionally) the gain queues of its free neighbours."""
        s = int(self.where[v])
        d = 1 - s
        self.cut -= self.gain(v)
        self.pw[s] -= self.relw[v]
        self.pw[d] += self.relw[v]
        self.where[v] = d
        self.id_[v], self.ed[v] = self.ed[v], self.id_[v]

        g = self.graph
        beg, end = g.xadj[v], g.xadj[v + 1]
        nbrs = g.adjncy[beg:end]
        ws = g.adjwgt[beg:end]
        wh = self.where
        for u, w in zip(nbrs.tolist(), ws.tolist()):
            if wh[u] == d:  # u is now on v's side
                self.id_[u] += w
                self.ed[u] -= w
            else:
                self.id_[u] -= w
                self.ed[u] += w
            if queues is not None and (locked is None or not locked[u]):
                q = queues[wh[u]][self.dom[u]]
                if u in q:
                    q.update(u, self.ed[u] - self.id_[u])
                elif self.ed[u] > 0:
                    q.insert(u, self.ed[u] - self.id_[u])

    # -------------------------------------------------------------- #

    def build_queues(self, *, boundary_only: bool = True, locked=None):
        """Fresh ``queues[side][con]`` of free (un-locked) vertices."""
        m = self.relw.shape[1]
        queues = [[LazyMaxPQ() for _ in range(m)] for _ in range(2)]
        if boundary_only:
            verts = np.flatnonzero(self.ed > 0)
        else:
            verts = np.arange(self.graph.nvtxs)
        for v in verts.tolist():
            if locked is not None and locked[v]:
                continue
            queues[self.where[v]][self.dom[v]].insert(v, self.gain(v))
        return queues


def balance_2way(state: TwoWayState, max_moves: int | None = None) -> int:
    """Restore feasibility by moving vertices out of overweight sides.

    Each move must strictly reduce the balance objective ``B``; ties and
    increases are rejected, so the loop terminates.  Among acceptable
    candidates of the dominant queue of the worst violation, the best-gain
    vertex is chosen (minimum cut damage).  Returns the number of moves.
    """
    if state.feasible():
        return 0
    n = state.graph.nvtxs
    if max_moves is None:
        max_moves = 4 * n + 16
    queues = state.build_queues(boundary_only=False)
    moves = 0
    m = state.relw.shape[1]
    while not state.feasible() and moves < max_moves:
        exc = state.excess()
        side, con = np.unravel_index(int(np.argmax(exc)), exc.shape)
        b_now = state.balance_obj()
        chosen = -1
        # Try the dominant queue of the violated constraint first, then the
        # side's other queues.
        for c in [con] + [c for c in range(m) if c != con]:
            q = queues[side][c]
            rejected = []
            while True:
                top = q.pop()
                if top is None:
                    break
                v, _ = top
                if state.balance_after(v) < b_now - _EPS:
                    chosen = v
                    break
                rejected.append(v)
                if len(rejected) > 64:
                    break
            for r in rejected:
                q.insert(r, state.gain(r))
            if chosen >= 0:
                break
        if chosen < 0:
            break
        state.move(chosen, queues=queues)
        # The mover switched sides: place it in its new side's queue so it
        # can participate in later corrections (B strictly decreases, so it
        # cannot oscillate forever).
        queues[state.where[chosen]][state.dom[chosen]].insert(chosen, state.gain(chosen))
        moves += 1
    return moves


def fm2way_refine(
    graph: Graph,
    where,
    *,
    target_fracs=(0.5, 0.5),
    ubvec=1.05,
    npasses: int = 8,
    max_bad_moves: int | None = None,
    seed=None,
) -> FMStats:
    """Refine a 2-way partition in place with multi-constraint FM.

    Parameters
    ----------
    graph, where:
        The graph and its (mutated in place) 0/1 partition vector.
    target_fracs:
        Target weight fraction of part 0 and part 1 (every constraint uses
        the same split -- the paper's formulation).
    ubvec:
        Per-constraint load-imbalance tolerance (scalar or length-``m``).
    npasses:
        Maximum FM passes.
    max_bad_moves:
        Abort a pass after this many consecutive non-improving moves
        (default ``max(64, n // 20)``).

    Returns
    -------
    FMStats
        Cut before/after, passes and total committed moves.
    """
    as_rng(seed)  # reserved: selection is deterministic, seed kept for API symmetry
    where = np.asarray(where, dtype=np.int64)
    state = TwoWayState(graph, where, target_fracs, ubvec)
    initial_cut = state.cut
    n = graph.nvtxs
    if max_bad_moves is None:
        max_bad_moves = max(64, n // 20)

    total_moves = 0
    passes = 0
    for _ in range(npasses):
        if not state.feasible():
            total_moves += balance_2way(state)
        improved, nmoves = _fm_pass(state, max_bad_moves)
        passes += 1
        total_moves += nmoves
        if not improved:
            break
    if not state.feasible():
        total_moves += balance_2way(state)
    return FMStats(
        initial_cut=initial_cut,
        final_cut=state.cut,
        passes=passes,
        moves=total_moves,
        feasible=state.feasible(),
    )


def _state_key(state: TwoWayState):
    """Ordering key: feasible-and-low-cut beats everything; among
    infeasible states prefer lower excess, then lower cut."""
    feas = state.feasible()
    return (0, state.cut, 0.0) if feas else (1, state.balance_obj(), state.cut)


def _fm_pass(state: TwoWayState, max_bad_moves: int) -> tuple[bool, int]:
    """One FM pass with rollback.  Returns (improved, committed moves)."""
    n = state.graph.nvtxs
    locked = np.zeros(n, dtype=bool)
    queues = state.build_queues(boundary_only=True, locked=locked)
    m = state.relw.shape[1]

    best_key = _state_key(state)
    start_key = best_key
    history: list[int] = []
    best_len = 0
    bad = 0

    while bad < max_bad_moves:
        v = _select_move(state, queues, m)
        if v < 0:
            break
        state.move(v, queues=queues, locked=locked)
        locked[v] = True
        history.append(v)
        key = _state_key(state)
        if key < best_key:
            best_key = key
            best_len = len(history)
            bad = 0
        else:
            bad += 1

    # Roll back everything after the best prefix.
    for v in reversed(history[best_len:]):
        state.move(v)
    return best_key < start_key, best_len


def _select_move(state: TwoWayState, queues, m: int) -> int:
    """Pick the next vertex to move.

    When the state is infeasible, draw from the dominant queue of the worst
    violation (accepting only excess-reducing moves); otherwise take the
    best gain over all ``2m`` queue tops whose move keeps the destination
    feasible.  Rejected pops are re-inserted.  Returns -1 when nothing is
    movable.
    """
    if not state.feasible():
        exc = state.excess()
        side, con = np.unravel_index(int(np.argmax(exc)), exc.shape)
        b_now = state.balance_obj()
        order = [con] + [c for c in range(m) if c != con]
        for c in order:
            q = queues[side][c]
            rejected = []
            found = -1
            while True:
                top = q.pop()
                if top is None:
                    break
                v, _ = top
                if state.balance_after(v) < b_now - _EPS:
                    found = v
                    break
                rejected.append(v)
                if len(rejected) > 32:
                    break
            for r in rejected:
                q.insert(r, state.gain(r))
            if found >= 0:
                return found
        return -1

    # Feasible: best gain over all queues, destination must stay feasible.
    rejected_all: list[int] = []
    chosen = -1
    for _ in range(64):
        best_q = None
        best_gain = None
        for side in range(2):
            for c in range(m):
                top = queues[side][c].peek()
                if top is None:
                    continue
                _, g = top
                if best_gain is None or g > best_gain:
                    best_gain = g
                    best_q = queues[side][c]
        if best_q is None:
            break
        v, _ = best_q.pop()
        if state.dest_fits(v):
            chosen = v
            break
        rejected_all.append(v)
    for r in rejected_all:
        queues[state.where[r]][state.dom[r]].insert(r, state.gain(r))
    return chosen
