"""Lazy-deletion max-priority queue used by the FM refinement.

FM updates vertex gains constantly; a classic bucket queue needs bounded
integer gains, while our gains are arbitrary integers (weighted edges).  A
binary heap with lazy deletion gives ``O(log n)`` updates: stale entries are
left in the heap and skipped at pop time by checking a per-vertex stamp.

Hot-path notes
--------------
Heap entries are ``(-prio, key, stamp)`` tuples; an entry is *live* iff
``_stamp[key] == stamp`` (every mutation bumps the stamp).  Because tuples
are totally ordered, the pop sequence is a pure function of the live entry
set -- which is what lets :meth:`from_items` build a queue with one
``heapify`` call (O(n)) instead of n pushes and still pop in exactly the
same order as sequential inserts.  The refinement kernels exploit the same
invariant to peek tops inline without a function call.
"""

from __future__ import annotations

import heapq

__all__ = ["LazyMaxPQ"]


class LazyMaxPQ:
    """Max-priority queue over integer keys with updatable priorities.

    ``insert``/``update`` push a fresh entry and bump the key's stamp;
    ``pop``/``peek`` discard entries whose stamp is stale.  ``remove`` just
    bumps the stamp, so removal is O(1).
    """

    __slots__ = ("_heap", "_stamp", "_prio", "_size")

    def __init__(self):
        self._heap: list[tuple[float, int, int]] = []
        self._stamp: dict[int, int] = {}
        self._prio: dict[int, float] = {}
        self._size = 0

    @classmethod
    def from_items(cls, keys, prios) -> "LazyMaxPQ":
        """Bulk-build a fresh queue from parallel ``keys`` / ``prios``
        sequences (each key at most once).  One O(n) ``heapify`` instead of
        n pushes; the pop order is identical to sequential inserts."""
        q = cls()
        heap = [(-p, k, 1) for k, p in zip(keys, prios)]
        heapq.heapify(heap)
        q._heap = heap
        q._stamp = dict.fromkeys(keys, 1)
        q._prio = dict(zip(keys, prios))
        q._size = len(heap)
        return q

    def __len__(self) -> int:
        """Number of live keys."""
        return self._size

    def __contains__(self, key: int) -> bool:
        return key in self._prio

    def insert(self, key: int, prio: float) -> None:
        """Insert ``key`` (or update it if present) with priority ``prio``."""
        stamp = self._stamp.get(key, 0) + 1
        self._stamp[key] = stamp
        if key not in self._prio:
            self._size += 1
        self._prio[key] = prio
        heapq.heappush(self._heap, (-prio, key, stamp))

    # update is the same operation; alias kept for call-site readability.
    update = insert

    def remove(self, key: int) -> None:
        """Remove ``key`` if present (O(1), lazy)."""
        if key in self._prio:
            self._stamp[key] = self._stamp.get(key, 0) + 1
            del self._prio[key]
            self._size -= 1

    def priority(self, key: int):
        """Current priority of ``key`` or ``None``."""
        return self._prio.get(key)

    def _skim(self) -> None:
        heap = self._heap
        stamp = self._stamp
        while heap:
            entry = heap[0]
            if stamp.get(entry[1]) == entry[2]:
                return
            heapq.heappop(heap)

    def peek(self):
        """``(key, prio)`` of the max element, or ``None`` when empty."""
        self._skim()
        if not self._heap:
            return None
        negp, key, _ = self._heap[0]
        return key, -negp

    def pop(self):
        """Pop and return ``(key, prio)`` of the max element, or ``None``."""
        top = self.peek()
        if top is None:
            return None
        key, prio = top
        heapq.heappop(self._heap)
        del self._prio[key]
        self._stamp[key] += 1
        self._size -= 1
        return key, prio

    def clear(self) -> None:
        self._heap.clear()
        self._stamp.clear()
        self._prio.clear()
        self._size = 0
