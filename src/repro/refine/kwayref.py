"""Greedy multi-constraint k-way refinement (the "horizontal" refiner used
by the multilevel k-way algorithm).

Unlike 2-way FM, the k-way refiner makes only greedy passes over boundary
vertices (the standard design of multilevel k-way partitioners): a vertex
moves to the adjacent part with the largest positive gain among the
destinations that keep **every** constraint within tolerance; zero-gain
moves are taken when they strictly reduce the total balance excess.

:func:`balance_kway` is the explicit balancer the paper's approach requires
when a projected partition violates some constraint: it drains the worst
(part, constraint) violation through minimum-cut-damage moves, accepting
cut-increasing moves when necessary (this is exactly the "few edge-cut
increasing moves" escape hatch the parallel follow-on paper describes for
single-constraint refiners -- made multi-constraint-safe by requiring every
move to strictly reduce the total excess, which guarantees termination).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng
from ..errors import PartitionError
from ..graph.csr import Graph
from ..weights.balance import as_target_fracs, as_ubvec
from .gain import edge_cut

__all__ = ["KWayState", "kway_refine", "balance_kway", "KWayStats"]

_EPS = 1e-12


@dataclass
class KWayStats:
    """Outcome of a k-way refinement run."""

    initial_cut: int
    final_cut: int
    passes: int
    moves: int
    balance_moves: int
    feasible: bool


class KWayState:
    """Mutable state of a k-way multi-constraint partition."""

    def __init__(self, graph: Graph, where, nparts: int, ubvec=1.05, target_fracs=None):
        where = np.asarray(where, dtype=np.int64)
        if where.shape != (graph.nvtxs,):
            raise PartitionError("where must cover all vertices")
        if where.size and (where.min() < 0 or where.max() >= nparts):
            raise PartitionError("part ids out of range")
        self.graph = graph
        self.where = where
        self.nparts = nparts
        m = graph.ncon
        t = graph.vwgt.sum(axis=0).astype(np.float64)
        t[t == 0] = 1.0
        self.relw = graph.vwgt / t

        fr = as_target_fracs(target_fracs, nparts)
        ub = as_ubvec(ubvec, m)
        self.caps = fr[:, None] * ub[None, :]

        self.pw = np.zeros((nparts, m), dtype=np.float64)
        for c in range(m):
            self.pw[:, c] = np.bincount(where, weights=self.relw[:, c], minlength=nparts)
        self.counts = np.bincount(where, minlength=nparts)

    # -------------------------------------------------------------- #

    def excess(self) -> np.ndarray:
        return np.maximum(self.pw - self.caps, 0.0)

    def balance_obj(self) -> float:
        return float(self.excess().sum())

    def feasible(self) -> bool:
        return self.balance_obj() <= 1e-9

    def dest_fits(self, v: int, d: int) -> bool:
        return bool(np.all(self.pw[d] + self.relw[v] <= self.caps[d] + 1e-9))

    def balance_delta(self, v: int, d: int) -> float:
        """Change in balance objective if ``v`` moved to part ``d``
        (negative = improvement)."""
        s = self.where[v]
        if d == s:
            return 0.0
        w = self.relw[v]
        before = (
            np.maximum(self.pw[s] - self.caps[s], 0.0).sum()
            + np.maximum(self.pw[d] - self.caps[d], 0.0).sum()
        )
        after = (
            np.maximum(self.pw[s] - w - self.caps[s], 0.0).sum()
            + np.maximum(self.pw[d] + w - self.caps[d], 0.0).sum()
        )
        return float(after - before)

    def move(self, v: int, d: int) -> None:
        s = int(self.where[v])
        self.pw[s] -= self.relw[v]
        self.pw[d] += self.relw[v]
        self.counts[s] -= 1
        self.counts[d] += 1
        self.where[v] = d

    def boundary(self) -> np.ndarray:
        """Vertex ids with at least one neighbour in another part."""
        g = self.graph
        src = np.repeat(np.arange(g.nvtxs, dtype=np.int64), np.diff(g.xadj))
        crossing = self.where[src] != self.where[g.adjncy]
        return np.unique(src[crossing])

    def neighbor_weights(self, v: int) -> dict[int, int]:
        """Edge weight from ``v`` to each adjacent part (including own)."""
        g = self.graph
        beg, end = g.xadj[v], g.xadj[v + 1]
        out: dict[int, int] = {}
        for p, w in zip(self.where[g.adjncy[beg:end]].tolist(),
                        g.adjwgt[beg:end].tolist()):
            out[p] = out.get(p, 0) + w
        return out


def kway_refine(
    graph: Graph,
    where,
    nparts: int,
    *,
    ubvec=1.05,
    target_fracs=None,
    npasses: int = 10,
    policy: str = "greedy",
    seed=None,
) -> KWayStats:
    """Greedy k-way refinement; mutates ``where`` in place.

    Runs :func:`balance_kway` first whenever the partition is infeasible,
    then boundary passes until a pass makes no move (or ``npasses`` is
    exhausted).  ``policy`` selects the sweep order:

    * ``"greedy"`` -- randomised boundary sweep (the coarse-grain-friendly
      order, cheap);
    * ``"priority"`` -- a gain-ordered priority queue: the highest-gain
      boundary vertex moves first and neighbour priorities are updated
      incrementally (closer to the serial FM spirit, a little slower).
    """
    if policy not in ("greedy", "priority"):
        raise PartitionError(f"unknown k-way refinement policy {policy!r}")
    rng = as_rng(seed)
    where = np.asarray(where, dtype=np.int64)
    initial_cut = edge_cut(graph, where)
    state = KWayState(graph, where, nparts, ubvec, target_fracs)

    balance_moves = 0
    if not state.feasible():
        balance_moves += balance_kway_state(state)

    sweep = _greedy_pass if policy == "greedy" else _priority_pass
    total_moves = 0
    passes = 0
    for _ in range(npasses):
        passes += 1
        moved = sweep(state, rng)
        total_moves += moved
        if not state.feasible():
            balance_moves += balance_kway_state(state)
        if moved == 0:
            break
    return KWayStats(
        initial_cut=initial_cut,
        final_cut=edge_cut(graph, state.where),
        passes=passes,
        moves=total_moves,
        balance_moves=balance_moves,
        feasible=state.feasible(),
    )


def _greedy_pass(state: KWayState, rng) -> int:
    """One randomized sweep over boundary vertices.  Returns moves made."""
    bnd = state.boundary()
    if bnd.size == 0:
        return 0
    rng.shuffle(bnd)
    moves = 0
    for v in bnd.tolist():
        s = int(state.where[v])
        nbw = state.neighbor_weights(v)
        w_in = nbw.get(s, 0)
        if state.counts[s] <= 1:
            continue  # never empty a part
        best_d = -1
        best_key = None
        for d, wd in nbw.items():
            if d == s:
                continue
            gain = wd - w_in
            if gain < 0 or not state.dest_fits(v, d):
                continue
            bal = state.balance_delta(v, d)
            if gain == 0 and bal >= -_EPS:
                continue  # zero-gain moves must strictly help balance
            key = (gain, -bal)
            if best_key is None or key > best_key:
                best_key = key
                best_d = d
        if best_d >= 0:
            state.move(v, best_d)
            moves += 1
    return moves


def _best_move_for(state: KWayState, v: int):
    """Best admissible move of ``v`` under the refinement rules, or
    ``(-1, 0, 0.0)``.  Returns ``(dest, gain, balance_delta)``."""
    s = int(state.where[v])
    if state.counts[s] <= 1:
        return -1, 0, 0.0
    nbw = state.neighbor_weights(v)
    w_in = nbw.get(s, 0)
    best = (-1, 0, 0.0)
    best_key = None
    for d, wd in nbw.items():
        if d == s:
            continue
        gain = wd - w_in
        if gain < 0 or not state.dest_fits(v, d):
            continue
        bal = state.balance_delta(v, d)
        if gain == 0 and bal >= -_EPS:
            continue
        key = (gain, -bal)
        if best_key is None or key > best_key:
            best_key = key
            best = (d, gain, bal)
    return best


def _priority_pass(state: KWayState, rng) -> int:
    """One gain-ordered sweep: pop the boundary vertex with the highest
    *potential* gain, re-evaluate its best admissible move (gains go stale
    as neighbours move), and commit it; each vertex moves at most once per
    pass."""
    from .pq import LazyMaxPQ

    bnd = state.boundary()
    if bnd.size == 0:
        return 0
    g = state.graph
    q = LazyMaxPQ()
    jitter = rng.random(g.nvtxs) * 1e-6  # randomised tie-breaks
    for v in bnd.tolist():
        nbw = state.neighbor_weights(v)
        w_in = nbw.get(int(state.where[v]), 0)
        ext = max((wd for d, wd in nbw.items() if d != state.where[v]),
                  default=0)
        q.insert(v, ext - w_in + jitter[v])

    moved_flag = np.zeros(g.nvtxs, dtype=bool)
    moves = 0
    while True:
        top = q.pop()
        if top is None:
            break
        v, _ = top
        if moved_flag[v]:
            continue
        d, gain, bal = _best_move_for(state, v)
        if d < 0:
            continue
        state.move(v, d)
        moved_flag[v] = True
        moves += 1
        for u in g.neighbors(v).tolist():
            if moved_flag[u]:
                continue
            nbw = state.neighbor_weights(u)
            w_in = nbw.get(int(state.where[u]), 0)
            ext = max((wd for p, wd in nbw.items() if p != state.where[u]),
                      default=None)
            if ext is None:
                q.remove(u)
            else:
                q.insert(u, ext - w_in + jitter[u])
    return moves


def balance_kway_state(state: KWayState, max_moves: int | None = None) -> int:
    """Restore feasibility of a :class:`KWayState` by draining overweight
    parts.  Every committed move strictly reduces the total excess, so the
    loop terminates.  Returns the number of moves made."""
    if state.feasible():
        return 0
    n = state.graph.nvtxs
    if max_moves is None:
        max_moves = 4 * n + 16
    moves = 0
    stuck_parts: set[int] = set()
    while not state.feasible() and moves < max_moves:
        exc = state.excess()
        # Worst violated part that is not known-stuck.
        order = np.argsort(-exc.max(axis=1))
        src_part = -1
        for p in order.tolist():
            if exc[p].max() > 1e-9 and p not in stuck_parts:
                src_part = p
                break
        if src_part < 0:
            break
        v, d = _best_balance_move(state, src_part)
        if v < 0:
            stuck_parts.add(src_part)
            continue
        state.move(v, d)
        stuck_parts.clear()
        moves += 1
    return moves


def _best_balance_move(state: KWayState, src_part: int) -> tuple[int, int]:
    """Best (vertex, destination) draining ``src_part``: must strictly
    reduce the excess; among candidates prefer maximum gain (least cut
    damage), then largest excess reduction."""
    g = state.graph
    members = np.flatnonzero(state.where == src_part)
    if members.size <= 1:
        return -1, -1
    best = (-1, -1)
    best_key = None
    for v in members.tolist():
        nbw = state.neighbor_weights(v)
        w_in = nbw.get(src_part, 0)
        # Adjacent parts first; fall back to any part with room.
        cand = [d for d in nbw if d != src_part]
        if not cand:
            cand = [d for d in range(state.nparts) if d != src_part]
        for d in cand:
            bal = state.balance_delta(v, d)
            # The destination may end over its caps as long as the *total*
            # excess strictly decreases -- with several constraints the
            # only escape route often trades one small violation for a
            # bigger one elsewhere, and strict decrease still guarantees
            # termination.
            if bal >= -_EPS:
                continue
            gain = nbw.get(d, 0) - w_in
            key = (-gain, bal)  # max gain, then most negative bal
            if best_key is None or key < best_key:
                best_key = key
                best = (v, d)
    return best


def balance_kway(
    graph: Graph,
    where,
    nparts: int,
    *,
    ubvec=1.05,
    target_fracs=None,
) -> int:
    """Convenience wrapper: build a state around ``where`` (mutated in
    place) and run :func:`balance_kway_state`."""
    state = KWayState(graph, np.asarray(where, dtype=np.int64), nparts, ubvec, target_fracs)
    moved = balance_kway_state(state)
    np.copyto(np.asarray(where), state.where)
    return moved
