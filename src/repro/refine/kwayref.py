"""Greedy multi-constraint k-way refinement (the "horizontal" refiner used
by the multilevel k-way algorithm).

Unlike 2-way FM, the k-way refiner makes only greedy passes over boundary
vertices (the standard design of multilevel k-way partitioners): a vertex
moves to the adjacent part with the largest positive gain among the
destinations that keep **every** constraint within tolerance; zero-gain
moves are taken when they strictly reduce the total balance excess.

:func:`balance_kway` is the explicit balancer the paper's approach requires
when a projected partition violates some constraint: it drains the worst
(part, constraint) violation through minimum-cut-damage moves, accepting
cut-increasing moves when necessary (this is exactly the "few edge-cut
increasing moves" escape hatch the parallel follow-on paper describes for
single-constraint refiners -- made multi-constraint-safe by requiring every
move to strictly reduce the total excess, which guarantees termination).

Performance
-----------
:class:`KWayState` maintains the classic incremental refinement state
(Sanders & Schulz-style) instead of recomputing it per query:

* ``id/ed`` internal/external degree arrays, updated per move by touching
  only the moved vertex and its neighbours;
* the boundary, read off ``ed > 0`` in O(n) instead of an O(E) edge scan
  per pass;
* plain-Python mirrors of the part-weight / capacity arrays so the
  per-candidate feasibility and balance-delta checks cost interpreter
  arithmetic, not ufunc dispatch.

``neighbor_weights`` still answers from the CSR arrays in O(deg v), but
through pre-extracted Python lists (building a numpy slice pair per vertex
was the old hot spot).  ``tests/test_perf_kernels.py`` pins the maintained
arrays against from-scratch recomputation after random move sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng
from ..errors import PartitionError
from ..graph.csr import Graph
from ..weights.balance import FEASIBILITY_EPS, as_target_fracs, as_ubvec
from .gain import edge_cut, kway_degrees

__all__ = ["KWayState", "kway_refine", "balance_kway", "KWayStats"]

_EPS = 1e-12


@dataclass
class KWayStats:
    """Outcome of a k-way refinement run."""

    initial_cut: int
    final_cut: int
    passes: int
    moves: int
    balance_moves: int
    feasible: bool


class KWayState:
    """Mutable state of a k-way multi-constraint partition.

    ``pw`` and ``counts`` are exposed as NumPy snapshots (built on access);
    the authoritative copies live in plain-Python lists updated
    incrementally by :meth:`move` together with the ``id/ed`` degree
    arrays.
    """

    def __init__(self, graph: Graph, where, nparts: int, ubvec=1.05, target_fracs=None):
        where = np.asarray(where, dtype=np.int64)
        if where.shape != (graph.nvtxs,):
            raise PartitionError("where must cover all vertices")
        if where.size and (where.min() < 0 or where.max() >= nparts):
            raise PartitionError("part ids out of range")
        self.graph = graph
        self.where = where
        self.nparts = nparts
        m = graph.ncon
        t = graph.vwgt.sum(axis=0).astype(np.float64)
        t[t == 0] = 1.0
        self.relw = graph.vwgt / t

        fr = as_target_fracs(target_fracs, nparts)
        ub = as_ubvec(ubvec, m)
        self.caps = fr[:, None] * ub[None, :]

        pw = np.zeros((nparts, m), dtype=np.float64)
        for c in range(m):
            pw[:, c] = np.bincount(where, weights=self.relw[:, c], minlength=nparts)

        id_, ed = kway_degrees(graph, where)

        # Hot-path mirrors: plain-Python scalars, no ufunc dispatch.
        self._m = m
        self._xadj = graph.xadj.tolist()
        self._adj = graph.adjncy.tolist()
        self._adjw = graph.adjwgt.tolist()
        self._wh = where.tolist()
        self._relwl = self.relw.tolist()
        self._capsl = self.caps.tolist()
        self._pw = pw.tolist()
        self._counts = np.bincount(where, minlength=nparts).tolist()
        self._id = id_.tolist()
        self._ed = ed.tolist()

    # ---------------------------------------------------------- views #

    @property
    def pw(self) -> np.ndarray:
        """``(nparts, m)`` relative part weights (snapshot)."""
        return np.array(self._pw)

    @property
    def counts(self) -> np.ndarray:
        """``(nparts,)`` vertex count per part (snapshot)."""
        return np.array(self._counts, dtype=np.int64)

    @property
    def id_(self) -> np.ndarray:
        """``(n,)`` edge weight from each vertex into its own part."""
        return np.array(self._id, dtype=np.int64)

    @property
    def ed(self) -> np.ndarray:
        """``(n,)`` edge weight from each vertex into other parts."""
        return np.array(self._ed, dtype=np.int64)

    # -------------------------------------------------------------- #

    def excess(self) -> np.ndarray:
        return np.maximum(self.pw - self.caps, 0.0)

    def balance_obj(self) -> float:
        b = 0.0
        for pwi, ci in zip(self._pw, self._capsl):
            for j in range(self._m):
                d = pwi[j] - ci[j]
                if d > 0.0:
                    b += d
        return b

    def feasible(self) -> bool:
        return self.balance_obj() <= FEASIBILITY_EPS

    def dest_fits(self, v: int, d: int) -> bool:
        pwd = self._pw[d]
        capd = self._capsl[d]
        rv = self._relwl[v]
        for j in range(self._m):
            if pwd[j] + rv[j] > capd[j] + FEASIBILITY_EPS:
                return False
        return True

    def balance_delta(self, v: int, d: int) -> float:
        """Change in balance objective if ``v`` moved to part ``d``
        (negative = improvement)."""
        s = self._wh[v]
        if d == s:
            return 0.0
        rv = self._relwl[v]
        pws, pwd = self._pw[s], self._pw[d]
        cs, cd = self._capsl[s], self._capsl[d]
        before = 0.0
        after = 0.0
        for j in range(self._m):
            x = pws[j] - cs[j]
            if x > 0.0:
                before += x
            x = pws[j] - rv[j] - cs[j]
            if x > 0.0:
                after += x
        for j in range(self._m):
            x = pwd[j] - cd[j]
            if x > 0.0:
                before += x
            x = pwd[j] + rv[j] - cd[j]
            if x > 0.0:
                after += x
        return after - before

    def move(self, v: int, d: int) -> None:
        """Move ``v`` to part ``d``, updating part weights, counts and the
        ``id/ed`` degrees of ``v`` and its neighbours."""
        wh = self._wh
        s = wh[v]
        rv = self._relwl[v]
        pws, pwd = self._pw[s], self._pw[d]
        for j in range(self._m):
            pws[j] -= rv[j]
            pwd[j] += rv[j]
        self._counts[s] -= 1
        self._counts[d] += 1
        wh[v] = d
        self.where[v] = d
        if d == s:
            return
        idl, edl = self._id, self._ed
        adj, adjw = self._adj, self._adjw
        wtod = 0
        wdeg = 0
        for i in range(self._xadj[v], self._xadj[v + 1]):
            u = adj[i]
            w = adjw[i]
            wdeg += w
            pu = wh[u]
            if pu == s:
                idl[u] -= w
                edl[u] += w
            elif pu == d:
                idl[u] += w
                edl[u] -= w
                wtod += w
        idl[v] = wtod
        edl[v] = wdeg - wtod

    def boundary(self) -> np.ndarray:
        """Vertex ids with at least one neighbour in another part (read off
        the maintained external degrees; ascending order)."""
        return np.flatnonzero(np.asarray(self._ed, dtype=np.int64) > 0)

    def neighbor_weights(self, v: int) -> dict[int, int]:
        """Edge weight from ``v`` to each adjacent part (including own)."""
        wh = self._wh
        adj, adjw = self._adj, self._adjw
        out: dict[int, int] = {}
        get = out.get
        for i in range(self._xadj[v], self._xadj[v + 1]):
            p = wh[adj[i]]
            out[p] = get(p, 0) + adjw[i]
        return out

    def _reference_boundary(self) -> np.ndarray:
        """O(E) boundary recomputation (oracle for :meth:`boundary`)."""
        g = self.graph
        src = np.repeat(np.arange(g.nvtxs, dtype=np.int64), np.diff(g.xadj))
        crossing = self.where[src] != self.where[g.adjncy]
        return np.unique(src[crossing])


def kway_refine(
    graph: Graph,
    where,
    nparts: int,
    *,
    ubvec=1.05,
    target_fracs=None,
    npasses: int = 10,
    policy: str = "greedy",
    seed=None,
) -> KWayStats:
    """Greedy k-way refinement; mutates ``where`` in place.

    Runs :func:`balance_kway` first whenever the partition is infeasible,
    then boundary passes until a pass makes no move (or ``npasses`` is
    exhausted).  ``policy`` selects the sweep order:

    * ``"greedy"`` -- randomised boundary sweep (the coarse-grain-friendly
      order, cheap);
    * ``"priority"`` -- a gain-ordered priority queue: the highest-gain
      boundary vertex moves first and neighbour priorities are updated
      incrementally (closer to the serial FM spirit, a little slower).
    """
    if policy not in ("greedy", "priority"):
        raise PartitionError(f"unknown k-way refinement policy {policy!r}")
    rng = as_rng(seed)
    where = np.asarray(where, dtype=np.int64)
    initial_cut = edge_cut(graph, where)
    state = KWayState(graph, where, nparts, ubvec, target_fracs)

    balance_moves = 0
    if not state.feasible():
        balance_moves += balance_kway_state(state)

    sweep = _greedy_pass if policy == "greedy" else _priority_pass
    total_moves = 0
    passes = 0
    for _ in range(npasses):
        passes += 1
        moved = sweep(state, rng)
        total_moves += moved
        if not state.feasible():
            balance_moves += balance_kway_state(state)
        if moved == 0:
            break
    return KWayStats(
        initial_cut=initial_cut,
        final_cut=edge_cut(graph, state.where),
        passes=passes,
        moves=total_moves,
        balance_moves=balance_moves,
        feasible=state.feasible(),
    )


def _greedy_pass(state: KWayState, rng) -> int:
    """One randomized sweep over boundary vertices.  Returns moves made."""
    bnd = state.boundary()
    if bnd.size == 0:
        return 0
    rng.shuffle(bnd)
    moves = 0
    wh = state._wh
    counts = state._counts
    xadj = state._xadj
    adj = state._adj
    adjw = state._adjw
    dest_fits = state.dest_fits
    balance_delta = state.balance_delta
    # Reusable per-part accumulator replacing the neighbor_weights() dict
    # build (hashing every edge was this pass's hot spot).  ``touched``
    # records first-touch order, which is exactly the insertion order the
    # dict would iterate in, so the candidate scan below sees the same
    # destinations in the same order.
    nparts = state.nparts
    acc = [0] * nparts
    seen = [0] * nparts
    touched: list[int] = []
    stamp = 0
    # Vectorized pass-start prefilter: a vertex whose heaviest external
    # connection is lighter than its internal weight has gain < 0 towards
    # every destination and can never move (zero-gain moves need gain == 0
    # exactly, negative gains are never taken) -- skip it without the edge
    # scan.  The verdict is computed against pass-start part ids, so it is
    # only trusted while the vertex's neighbourhood is untouched by this
    # pass's moves; each committed move dirties its neighbours.
    g = state.graph
    n = g.nvtxs
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.xadj))
    nw = np.bincount(src * nparts + state.where[g.adjncy],
                     weights=g.adjwgt, minlength=n * nparts)
    nw = nw.reshape(n, nparts)
    rows = np.arange(n)
    w_in_vec = nw[rows, state.where].copy()
    nw[rows, state.where] = -1.0
    maybe = (nw.max(axis=1) >= w_in_vec).tolist()
    dirty = [False] * n
    for v in bnd.tolist():
        if not dirty[v] and not maybe[v]:
            continue
        s = wh[v]
        if counts[s] <= 1:
            continue  # never empty a part
        stamp += 1
        for i in range(xadj[v], xadj[v + 1]):
            p = wh[adj[i]]
            if seen[p] != stamp:
                seen[p] = stamp
                acc[p] = adjw[i]
                touched.append(p)
            else:
                acc[p] += adjw[i]
        w_in = acc[s] if seen[s] == stamp else 0
        best_d = -1
        best_key = None
        for d in touched:
            if d == s:
                continue
            gain = acc[d] - w_in
            if gain < 0 or not dest_fits(v, d):
                continue
            bal = balance_delta(v, d)
            if gain == 0 and bal >= -_EPS:
                continue  # zero-gain moves must strictly help balance
            key = (gain, -bal)
            if best_key is None or key > best_key:
                best_key = key
                best_d = d
        touched.clear()
        if best_d >= 0:
            state.move(v, best_d)
            moves += 1
            for i in range(xadj[v], xadj[v + 1]):
                dirty[adj[i]] = True
    return moves


def _best_move_for(state: KWayState, v: int):
    """Best admissible move of ``v`` under the refinement rules, or
    ``(-1, 0, 0.0)``.  Returns ``(dest, gain, balance_delta)``."""
    s = state._wh[v]
    if state._counts[s] <= 1:
        return -1, 0, 0.0
    nbw = state.neighbor_weights(v)
    w_in = nbw.get(s, 0)
    best = (-1, 0, 0.0)
    best_key = None
    for d, wd in nbw.items():
        if d == s:
            continue
        gain = wd - w_in
        if gain < 0 or not state.dest_fits(v, d):
            continue
        bal = state.balance_delta(v, d)
        if gain == 0 and bal >= -_EPS:
            continue
        key = (gain, -bal)
        if best_key is None or key > best_key:
            best_key = key
            best = (d, gain, bal)
    return best


def _priority_pass(state: KWayState, rng) -> int:
    """One gain-ordered sweep: pop the boundary vertex with the highest
    *potential* gain, re-evaluate its best admissible move (gains go stale
    as neighbours move), and commit it; each vertex moves at most once per
    pass."""
    from .pq import LazyMaxPQ

    bnd = state.boundary()
    if bnd.size == 0:
        return 0
    g = state.graph
    wh = state._wh
    q = LazyMaxPQ()
    jitter = rng.random(g.nvtxs) * 1e-6  # randomised tie-breaks
    for v in bnd.tolist():
        nbw = state.neighbor_weights(v)
        w_in = nbw.get(wh[v], 0)
        ext = max((wd for d, wd in nbw.items() if d != wh[v]), default=0)
        q.insert(v, ext - w_in + jitter[v])

    moved_flag = [False] * g.nvtxs
    moves = 0
    adj = state._adj
    while True:
        top = q.pop()
        if top is None:
            break
        v, _ = top
        if moved_flag[v]:
            continue
        d, gain, bal = _best_move_for(state, v)
        if d < 0:
            continue
        state.move(v, d)
        moved_flag[v] = True
        moves += 1
        for i in range(state._xadj[v], state._xadj[v + 1]):
            u = adj[i]
            if moved_flag[u]:
                continue
            nbw = state.neighbor_weights(u)
            w_in = nbw.get(wh[u], 0)
            ext = max((wd for p, wd in nbw.items() if p != wh[u]), default=None)
            if ext is None:
                q.remove(u)
            else:
                q.insert(u, ext - w_in + jitter[u])
    return moves


def balance_kway_state(state: KWayState, max_moves: int | None = None) -> int:
    """Restore feasibility of a :class:`KWayState` by draining overweight
    parts.  Every committed move strictly reduces the total excess, so the
    loop terminates.  Returns the number of moves made."""
    if state.feasible():
        return 0
    n = state.graph.nvtxs
    if max_moves is None:
        max_moves = 4 * n + 16
    moves = 0
    stuck_parts: set[int] = set()
    while not state.feasible() and moves < max_moves:
        exc = state.excess()
        # Worst violated part that is not known-stuck.
        order = np.argsort(-exc.max(axis=1))
        src_part = -1
        for p in order.tolist():
            if exc[p].max() > FEASIBILITY_EPS and p not in stuck_parts:
                src_part = p
                break
        if src_part < 0:
            break
        v, d = _best_balance_move(state, src_part)
        if v < 0:
            stuck_parts.add(src_part)
            continue
        state.move(v, d)
        stuck_parts.clear()
        moves += 1
    return moves


def _best_balance_move(state: KWayState, src_part: int) -> tuple[int, int]:
    """Best (vertex, destination) draining ``src_part``: must strictly
    reduce the excess; among candidates prefer maximum gain (least cut
    damage), then largest excess reduction."""
    members = np.flatnonzero(state.where == src_part)
    if members.size <= 1:
        return -1, -1
    best = (-1, -1)
    best_key = None
    for v in members.tolist():
        nbw = state.neighbor_weights(v)
        w_in = nbw.get(src_part, 0)
        # Adjacent parts first; fall back to any part with room.
        cand = [d for d in nbw if d != src_part]
        if not cand:
            cand = [d for d in range(state.nparts) if d != src_part]
        for d in cand:
            bal = state.balance_delta(v, d)
            # The destination may end over its caps as long as the *total*
            # excess strictly decreases -- with several constraints the
            # only escape route often trades one small violation for a
            # bigger one elsewhere, and strict decrease still guarantees
            # termination.
            if bal >= -_EPS:
                continue
            gain = nbw.get(d, 0) - w_in
            key = (-gain, bal)  # max gain, then most negative bal
            if best_key is None or key < best_key:
                best_key = key
                best = (v, d)
    return best


def balance_kway(
    graph: Graph,
    where,
    nparts: int,
    *,
    ubvec=1.05,
    target_fracs=None,
) -> int:
    """Convenience wrapper: build a state around ``where`` (mutated in
    place) and run :func:`balance_kway_state`."""
    state = KWayState(graph, np.asarray(where, dtype=np.int64), nparts, ubvec, target_fracs)
    moved = balance_kway_state(state)
    np.copyto(np.asarray(where), state.where)
    return moved
