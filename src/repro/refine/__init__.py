"""Refinement phase: multi-constraint 2-way FM and greedy k-way refiners."""

from .fm2way import FMStats, TwoWayState, balance_2way, fm2way_refine
from .gain import boundary_from_ed, compute_2way_degrees, edge_cut, neighbor_part_weights
from .kwayref import KWayState, KWayStats, balance_kway, balance_kway_state, kway_refine
from .pq import LazyMaxPQ

__all__ = [
    "edge_cut",
    "compute_2way_degrees",
    "boundary_from_ed",
    "neighbor_part_weights",
    "LazyMaxPQ",
    "TwoWayState",
    "FMStats",
    "fm2way_refine",
    "balance_2way",
    "KWayState",
    "KWayStats",
    "kway_refine",
    "balance_kway",
    "balance_kway_state",
]
