"""repro: multilevel multi-constraint graph partitioning.

A from-scratch Python reproduction of the algorithms of

    G. Karypis and V. Kumar,
    "Multilevel Algorithms for Multi-Constraint Graph Partitioning",
    Proceedings of Supercomputing (SC) 1998.

Quickstart
----------
>>> from repro import mesh_like, type1_region_weights, part_graph
>>> g = mesh_like(2000, seed=0)
>>> g = g.with_vwgt(type1_region_weights(g, 3, seed=1))   # 3 constraints
>>> res = part_graph(g, 8, ubvec=1.05, seed=2)
>>> res.feasible
True

Package map
-----------
``repro.graph``      CSR graphs, IO, generators, graph algorithms.
``repro.weights``    balance arithmetic + synthetic multi-weight workloads.
``repro.coarsen``    matchings and the multilevel coarsener.
``repro.initpart``   balanced-bisection theory + initial partitioning.
``repro.refine``     multi-constraint FM and greedy k-way refiners.
``repro.partition``  multilevel drivers and the :func:`part_graph` API.
``repro.metrics``    quality metrics and reports.
``repro.trace``      structured tracing & metrics (spans, sinks, reports).
``repro.baselines``  single-constraint / spectral / trivial comparators.
``repro.multiphase`` multi-phase computation model (the motivating use).
``repro.parallel``   simulated coarse-grain parallel formulation
                     (future-work extension; see DESIGN.md).
``repro.faults``     seeded fault injection + recovery policies for the
                     parallel simulation (see docs/robustness.md).
``repro.serve``      cached, batched, warm-starting partition service
                     (see docs/serving.md).
"""

from .errors import (
    BalanceError,
    CommError,
    ConvergenceError,
    DegradedResult,
    FaultError,
    FaultSpecError,
    GraphError,
    GraphFormatError,
    MessageDropError,
    OptionsError,
    PartitionError,
    PermanentCommError,
    PhaseTimeoutError,
    RankCrashedError,
    RankUnavailableError,
    ReproError,
    RetryExhaustedError,
    ServeError,
    ServeTimeoutError,
    ServiceClosedError,
    TransientCommError,
    WeightError,
)
from .graph import (
    Graph,
    delaunay_mesh,
    from_edges,
    grid_2d,
    grid_3d,
    mesh_like,
    random_geometric,
    read_metis_graph,
    write_metis_graph,
)
from .metrics import PartitionReport, comm_volume, edge_cut
from .partition import PartitionOptions, PartitionResult, part_graph
from .trace import NULL_TRACER, TraceReport, Tracer
from .weights import (
    coactivity_edge_weights,
    imbalance,
    max_imbalance,
    type1_region_weights,
    type2_multiphase,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "WeightError",
    "PartitionError",
    "BalanceError",
    "OptionsError",
    "ConvergenceError",
    "CommError",
    "TransientCommError",
    "MessageDropError",
    "RankUnavailableError",
    "PermanentCommError",
    "RankCrashedError",
    "FaultError",
    "FaultSpecError",
    "RetryExhaustedError",
    "PhaseTimeoutError",
    "DegradedResult",
    "ServeError",
    "ServeTimeoutError",
    "ServiceClosedError",
    # graph
    "Graph",
    "from_edges",
    "grid_2d",
    "grid_3d",
    "mesh_like",
    "delaunay_mesh",
    "random_geometric",
    "read_metis_graph",
    "write_metis_graph",
    # weights
    "imbalance",
    "max_imbalance",
    "type1_region_weights",
    "type2_multiphase",
    "coactivity_edge_weights",
    # partitioning
    "part_graph",
    "PartitionResult",
    "PartitionOptions",
    # tracing
    "Tracer",
    "TraceReport",
    "NULL_TRACER",
    # metrics
    "edge_cut",
    "comm_volume",
    "PartitionReport",
]
