"""Multilevel diagnostics: coarsening profiles, matching efficiency,
partition anatomy -- fed either from a :class:`~repro.coarsen.Hierarchy`
or from a traced run's :class:`repro.trace.TraceReport`."""

from .diagnostics import (
    coarsening_profile,
    coarsening_profile_from_trace,
    matching_efficiency,
    partition_anatomy,
    profile_text,
    refinement_profile,
    refinement_profile_text,
)

__all__ = [
    "coarsening_profile",
    "coarsening_profile_from_trace",
    "matching_efficiency",
    "partition_anatomy",
    "profile_text",
    "refinement_profile",
    "refinement_profile_text",
]
