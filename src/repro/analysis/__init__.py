"""Multilevel diagnostics: coarsening profiles, matching efficiency,
partition anatomy."""

from .diagnostics import (
    coarsening_profile,
    matching_efficiency,
    partition_anatomy,
    profile_text,
)

__all__ = [
    "coarsening_profile",
    "matching_efficiency",
    "partition_anatomy",
    "profile_text",
]
