"""Diagnostics for studying multilevel behaviour.

These tools expose the quantities the paper's analysis reasons about:
coarsening rate, exposed edge weight per level (what heavy-edge matching
removes), matching efficiency, and the per-part anatomy of a partition.
They feed the ablation benches and the analysis example.

Two input paths share one data model: :func:`coarsening_profile` walks a
:class:`~repro.coarsen.coarsener.Hierarchy` directly, while
:func:`coarsening_profile_from_trace` / :func:`refinement_profile` read the
same per-level rows out of a live run's :class:`repro.trace.TraceReport` --
so offline studies and production traces feed the same tables
(:func:`profile_text`).
"""

from __future__ import annotations

import numpy as np

from ..coarsen.coarsener import Hierarchy
from ..errors import PartitionError
from ..graph.csr import Graph
from ..metrics.quality import boundary_vertices, subdomain_matrix
from ..weights.balance import part_weights

__all__ = [
    "coarsening_profile",
    "coarsening_profile_from_trace",
    "matching_efficiency",
    "partition_anatomy",
    "profile_text",
    "refinement_profile",
    "refinement_profile_text",
]


def coarsening_profile(hier: Hierarchy) -> list[dict]:
    """Per-level statistics of a coarsening hierarchy.

    For each level (finest first, including the coarsest) reports the
    vertex/edge counts, average degree, total (exposed) edge weight, and
    the shrink factor from the previous level -- the quantities behind the
    paper's 'slow coarsening' and exposed-edge-weight discussion.
    """
    graphs = [lvl.graph for lvl in hier.levels]
    if hier.coarsest is not None:
        graphs.append(hier.coarsest)
    out = []
    prev_n = None
    for depth, g in enumerate(graphs):
        n = g.nvtxs
        out.append({
            "level": depth,
            "nvtxs": n,
            "nedges": g.nedges,
            "avg_degree": (2 * g.nedges / n) if n else 0.0,
            "exposed_edge_weight": g.total_adjwgt(),
            "shrink": (n / prev_n) if prev_n else 1.0,
            "max_vwgt": int(g.vwgt.max(initial=0)),
        })
        prev_n = n
    return out


def coarsening_profile_from_trace(report) -> list[dict]:
    """:func:`coarsening_profile` rows rebuilt from a run's trace.

    ``report`` is a :class:`repro.trace.TraceReport` from a traced run
    (``collect_stats=True`` / ``tracer=`` / a loaded JSONL file); the rows
    come from the ``coarsen_level`` spans, so live runs need no separate
    :func:`repro.coarsen.coarsen` call to get the profile.
    """
    coarsen = report.phase("coarsen")
    if coarsen is None:
        return []
    spans = coarsen.find_all("coarsen_level")
    out = []
    prev_n = None
    for sp in spans:
        a = sp.attrs
        if "coarse_nvtxs" not in a:  # stalled attempt, no contraction
            continue
        n = a["nvtxs"]
        out.append({
            "level": len(out),
            "nvtxs": n,
            "nedges": a["nedges"],
            "avg_degree": (2 * a["nedges"] / n) if n else 0.0,
            "exposed_edge_weight": a["exposed_edge_weight"],
            "shrink": (n / prev_n) if prev_n else 1.0,
            "max_vwgt": a["max_vwgt"],
            "seconds": sp.seconds,
        })
        prev_n = n
    if out:
        last = spans[-1].attrs  # the coarsest graph, from the final step
        n = last["coarse_nvtxs"]
        out.append({
            "level": len(out),
            "nvtxs": n,
            "nedges": last["coarse_nedges"],
            "avg_degree": (2 * last["coarse_nedges"] / n) if n else 0.0,
            "exposed_edge_weight": last["coarse_exposed_edge_weight"],
            "shrink": (n / prev_n) if prev_n else 1.0,
            "max_vwgt": last["coarse_max_vwgt"],
            "seconds": None,
        })
    return out


def refinement_profile(report) -> list[dict]:
    """Per-level uncoarsening/refinement rows from a traced k-way run.

    Each row is one projection step (coarse → fine): level size, cut,
    moves/passes committed by the k-way refiner, imbalance after the step,
    and the step's wall time.
    """
    return [
        {
            "level": i,
            "nvtxs": t.get("nvtxs"),
            "cut": t.get("cut"),
            "moves": t.get("moves"),
            "passes": t.get("passes"),
            "imbalance": t.get("imbalance"),
            "seconds": sp.seconds,
        }
        for i, (t, sp) in enumerate(_level_rows(report))
    ]


def _level_rows(report):
    refine = report.phase("refine")
    if refine is None:
        return []
    spans = [sp for sp in refine.children if sp.name == "level"]
    return [(sp.attrs, sp) for sp in spans]


def refinement_profile_text(profile: list[dict]) -> str:
    """Render a refinement profile as a compact table string."""
    from ..metrics.report import format_table

    rows = [
        [p["level"], p["nvtxs"], p["cut"], p["moves"], p["passes"],
         f"{p['imbalance']:.3f}" if p["imbalance"] is not None else "-",
         f"{p['seconds'] * 1e3:.1f}" if p["seconds"] is not None else "-"]
        for p in profile
    ]
    return format_table(
        ["level", "vertices", "cut", "moves", "passes", "imbalance", "ms"],
        rows,
        title="refinement trace (coarse -> fine)",
    )


def matching_efficiency(match: np.ndarray) -> float:
    """Fraction of vertices that found a partner (1.0 = perfect matching).

    The coarse-grain parallel matching is systematically below the serial
    one here -- the mechanism behind the slow-coarsening effect.
    """
    match = np.asarray(match)
    if match.size == 0:
        return 0.0
    return float(np.count_nonzero(match != np.arange(match.shape[0])) / match.shape[0])


def partition_anatomy(graph: Graph, part, nparts: int) -> list[dict]:
    """Per-part breakdown: vertex count, weight vector, boundary size,
    internal edge weight, external (cut) edge weight, and subdomain degree.
    """
    part = np.asarray(part)
    if part.shape != (graph.nvtxs,):
        raise PartitionError("part vector must cover all vertices")
    pw = part_weights(graph.vwgt, part, nparts)
    counts = np.bincount(part, minlength=nparts)
    mat = subdomain_matrix(graph, part, nparts)
    bnd = boundary_vertices(graph, part)
    bnd_per_part = np.bincount(part[bnd], minlength=nparts)
    off = mat.copy()
    np.fill_diagonal(off, 0)
    return [
        {
            "part": j,
            "nvtxs": int(counts[j]),
            "weights": pw[j].tolist(),
            "boundary": int(bnd_per_part[j]),
            "internal_edge_weight": int(mat[j, j]),
            "external_edge_weight": int(off[j].sum()),
            "subdomain_degree": int((off[j] > 0).sum()),
        }
        for j in range(nparts)
    ]


def profile_text(profile: list[dict]) -> str:
    """Render a coarsening profile as a compact table string."""
    from ..metrics.report import format_table

    rows = [
        [p["level"], p["nvtxs"], p["nedges"], f"{p['avg_degree']:.2f}",
         p["exposed_edge_weight"], f"{p['shrink']:.2f}", p["max_vwgt"]]
        for p in profile
    ]
    return format_table(
        ["level", "vertices", "edges", "avg deg", "exposed w", "shrink", "max vwgt"],
        rows,
        title="coarsening profile",
    )
