"""Matching algorithms for the coarsening phase.

The paper extends heavy-edge matching (HEM) with a *balanced-edge* criterion:
when collapsing two vertices, prefer pairs whose **combined** weight vector is
as uniform as possible across the ``m`` constraints.  Keeping coarse vertex
weight vectors uniform preserves freedom for the initial-partitioning and
refinement phases (a coarse vertex that is heavy in only one constraint is
hard to place).

Four schemes are provided (ablated by benchmark A1):

* :func:`random_matching` -- match with a random unmatched neighbour;
* :func:`heavy_edge_matching` -- maximise collapsed edge weight, with the
  balanced-edge score as tie-break (the paper's preferred combination);
* :func:`balanced_edge_matching` -- minimise the balanced-edge score, with
  edge weight as tie-break;
* :func:`fast_heavy_edge_matching` -- bulk-synchronous handshaking HEM
  (the vectorised / parallel-protocol variant), honouring the balanced
  tie-break when relative weights are supplied.

:func:`two_hop_matching` augments any of them when matching stalls.

All return a ``match`` array with ``match[v] == u`` and ``match[u] == v``
for matched pairs, and ``match[v] == v`` for unmatched vertices.

Constrained (partition-respecting) matching
-------------------------------------------
Every matcher accepts an optional ``constraint`` array (one integer label
per vertex): vertices with *different* labels are never matched together.
Passing the current partition as the constraint is the iterated-multilevel
("V-cycle") device of KaFFPa-style partitioners -- the contracted hierarchy
then reproduces the partition exactly at every level, so refinement can
only improve it (see :mod:`repro.partition.vcycle`).  ``constraint=None``
(the default) takes the exact unconstrained code paths, bit-identical to
before the parameter existed.

Performance
-----------
The greedy matchers precompute the balanced-edge score of **every** directed
edge in one NumPy sweep (:func:`_edge_balance_scores`) and then run the
sequential scan over plain-Python lists -- the per-vertex
``_best_candidate`` inner loop over numpy slices was the coarsening hot
spot.  The original per-vertex implementations are kept verbatim as
``_reference_*`` oracles; ``tests/test_perf_kernels.py`` pins exact
matching parity on seeded graphs.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..errors import GraphError
from ..graph.csr import Graph

__all__ = [
    "random_matching",
    "heavy_edge_matching",
    "balanced_edge_matching",
    "fast_heavy_edge_matching",
    "matching_to_cmap",
    "is_matching",
    "MATCHERS",
]

_INT = np.int64


def _balance_score(combined: np.ndarray) -> float:
    """Balanced-edge objective for a combined (relative) weight vector:
    spread between the largest and smallest scaled component.  0 means the
    collapsed vertex is perfectly uniform; for ``m == 1`` it is always 0,
    so HEM degenerates to classic heavy-edge matching."""
    m = combined.shape[0]
    if m == 1:
        return 0.0
    s = combined.sum()
    if s <= 0:
        return 0.0
    scaled = combined * (m / s)
    return float(scaled.max() - scaled.min())


def _edge_balance_scores(graph: Graph, relw: np.ndarray) -> np.ndarray:
    """Balanced-edge score of every directed edge, in CSR edge order.

    Bulk equivalent of calling :func:`_balance_score` on
    ``relw[src] + relw[dst]`` per edge: per-row sums over ``m <= 8``
    components are sequential in NumPy, so the scores are bitwise identical
    to the scalar routine."""
    e = graph.adjncy.shape[0]
    m = relw.shape[1]
    if e == 0 or m == 1:
        return np.zeros(e, dtype=np.float64)
    src = np.repeat(np.arange(graph.nvtxs, dtype=_INT), np.diff(graph.xadj))
    combined = relw[src] + relw[graph.adjncy]
    s = combined.sum(axis=1)
    out = np.zeros(e, dtype=np.float64)
    ok = s > 0
    scaled = combined[ok] * (m / s[ok])[:, None]
    out[ok] = scaled.max(axis=1) - scaled.min(axis=1)
    return out


def _as_constraint(graph: Graph, constraint) -> list | None:
    """Validate a per-vertex matching-constraint array -> flat list."""
    if constraint is None:
        return None
    con = np.asarray(constraint)
    if con.shape != (graph.nvtxs,):
        raise GraphError(
            f"matching constraint must have shape ({graph.nvtxs},); "
            f"got {con.shape}")
    return con.tolist()


def random_matching(graph: Graph, seed=None, *, constraint=None) -> np.ndarray:
    """Match each vertex (in random order) with a random unmatched
    neighbour.

    Single shuffled pass over plain lists; the free-neighbour scan reuses
    one preallocated buffer instead of building a filtered numpy array per
    vertex.  Seeded results are identical to
    :func:`_reference_random_matching`.  ``constraint`` restricts matches
    to same-label pairs (constrained results share the RNG stream shape of
    the unconstrained ones only when no candidate is filtered)."""
    rng = as_rng(seed)
    n = graph.nvtxs
    con = _as_constraint(graph, constraint)
    matchl = list(range(n))
    xadj = graph.xadj.tolist()
    adj = graph.adjncy.tolist()
    free_buf = [0] * (int(np.diff(graph.xadj).max()) if n and graph.adjncy.size else 1)
    for v in rng.permutation(n).tolist():
        if matchl[v] != v:
            continue
        k = 0
        for i in range(xadj[v], xadj[v + 1]):
            u = adj[i]
            if matchl[u] == u and (con is None or con[u] == con[v]):
                free_buf[k] = u
                k += 1
        if k:
            u = free_buf[int(rng.integers(k))]
            matchl[v] = u
            matchl[u] = v
    return np.asarray(matchl, dtype=_INT)


def _reference_random_matching(graph: Graph, seed=None) -> np.ndarray:
    """Original per-vertex numpy implementation (parity oracle for
    :func:`random_matching`)."""
    rng = as_rng(seed)
    n = graph.nvtxs
    match = np.arange(n, dtype=_INT)
    xadj, adjncy = graph.xadj, graph.adjncy
    for v in rng.permutation(n):
        if match[v] != v:
            continue
        nbrs = adjncy[xadj[v] : xadj[v + 1]]
        free = nbrs[match[nbrs] == nbrs]
        if free.size:
            u = int(free[rng.integers(free.size)])
            match[v] = u
            match[u] = v
    return match


def heavy_edge_matching(graph: Graph, seed=None, *, relw: np.ndarray | None = None,
                        constraint=None) -> np.ndarray:
    """Heavy-edge matching with balanced-edge tie-breaking.

    Parameters
    ----------
    graph:
        Graph to match.
    relw:
        Optional ``(n, m)`` *relative* vertex weights used by the
        balanced-edge tie-break.  When ``None`` the graph's own weights are
        normalised by their per-constraint totals.
    constraint:
        Optional ``(n,)`` integer labels; only same-label vertices are
        matched (partition-respecting matching for iterated V-cycles).
    """
    return _greedy_matching(graph, seed, relw, primary="heavy",
                            constraint=constraint)


def balanced_edge_matching(graph: Graph, seed=None, *, relw: np.ndarray | None = None,
                           constraint=None) -> np.ndarray:
    """Balanced-edge matching with heavy-edge tie-breaking (the dual
    priority order of :func:`heavy_edge_matching`)."""
    return _greedy_matching(graph, seed, relw, primary="balanced",
                            constraint=constraint)


def _resolve_relw(graph: Graph, relw) -> np.ndarray:
    if relw is None:
        t = graph.vwgt.sum(axis=0, dtype=np.float64)
        t[t == 0] = 1.0
        return graph.vwgt / t
    if relw.shape != graph.vwgt.shape:
        raise GraphError("relw must align with graph.vwgt")
    return relw


def _greedy_matching(graph: Graph, seed, relw, primary: str,
                     constraint=None) -> np.ndarray:
    """Sequential greedy matcher over precomputed bulk edge scores.

    Visits vertices in one seeded permutation (same RNG consumption as the
    reference) and scans each free vertex's adjacency in CSR order with the
    exact tie-break rules of :func:`_best_candidate`, reading edge weight
    and balanced score from flat Python lists.  ``constraint`` (per-vertex
    labels) restricts candidates to same-label neighbours; ``None`` keeps
    the original unconstrained scan bit-identical."""
    rng = as_rng(seed)
    n = graph.nvtxs
    relw = _resolve_relw(graph, relw)
    con = _as_constraint(graph, constraint)

    b_all = _edge_balance_scores(graph, relw).tolist()
    xadj = graph.xadj.tolist()
    adj = graph.adjncy.tolist()
    adjw = graph.adjwgt.tolist()
    matchl = list(range(n))
    heavy_first = primary == "heavy"
    inf = float("inf")

    for v in rng.permutation(n).tolist():
        if matchl[v] != v:
            continue
        best = -1
        best_w = -1
        best_b = inf
        for i in range(xadj[v], xadj[v + 1]):
            u = adj[i]
            if matchl[u] != u:
                continue
            if con is not None and con[u] != con[v]:
                continue
            w = adjw[i]
            b = b_all[i]
            if heavy_first:
                better = w > best_w or (w == best_w and b < best_b)
            else:
                better = b < best_b - 1e-12 or (abs(b - best_b) <= 1e-12 and w > best_w)
            if better:
                best, best_w, best_b = u, w, b
        if best >= 0:
            matchl[v] = best
            matchl[best] = v
    return np.asarray(matchl, dtype=_INT)


def _reference_greedy_matching(graph: Graph, seed, relw, primary: str) -> np.ndarray:
    """Original per-vertex implementation (parity oracle for
    :func:`_greedy_matching`)."""
    rng = as_rng(seed)
    n = graph.nvtxs
    relw = _resolve_relw(graph, relw)

    match = np.arange(n, dtype=_INT)
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    heavy_first = primary == "heavy"

    for v in rng.permutation(n):
        if match[v] != v:
            continue
        beg, end = xadj[v], xadj[v + 1]
        nbrs = adjncy[beg:end]
        free_mask = match[nbrs] == nbrs
        if not free_mask.any():
            continue
        cand = nbrs[free_mask]
        ws = adjwgt[beg:end][free_mask]
        best = _best_candidate(relw[v], cand, ws, relw, heavy_first)
        if best >= 0:
            match[v] = best
            match[best] = v
    return match


def _best_candidate(wv, cand, ws, relw, heavy_first: bool) -> int:
    """Pick the best matching partner among candidate neighbours.

    ``heavy_first`` selects the priority order: edge weight then balance
    score (HEM), or balance score then edge weight (BEM).  Returns the
    chosen vertex id, or -1 when there is no candidate.
    """
    best = -1
    best_w = -1
    best_b = np.inf
    for u, w in zip(cand.tolist(), ws.tolist()):
        b = _balance_score(wv + relw[u])
        if heavy_first:
            better = w > best_w or (w == best_w and b < best_b)
        else:
            better = b < best_b - 1e-12 or (abs(b - best_b) <= 1e-12 and w > best_w)
        if better:
            best, best_w, best_b = u, w, b
    return best


def fast_heavy_edge_matching(graph: Graph, seed=None, *, relw=None, rounds: int = 10,
                             constraint=None) -> np.ndarray:
    """Vectorised heavy-edge matching by mutual proposals (handshaking).

    Each round, every free vertex proposes to its heaviest free neighbour;
    mutual proposals become matches.  Every round is a pure NumPy array
    pass -- no per-vertex Python loop.  When ``relw`` is given (and the
    graph is multi-constraint) weight ties are broken towards the smaller
    balanced-edge score, mirroring :func:`heavy_edge_matching`; a random
    jitter breaks any remaining ties.

    Measured honestly: at mesh scales up to ~150k vertices this is *not*
    faster than :func:`heavy_edge_matching` in CPython (the per-round
    ``lexsort`` over the live edges costs about as much as the sequential
    scan's flat-list loop).  It is kept because (a) its bulk-synchronous
    structure is exactly the parallel handshaking protocol, making it the
    reference for `repro.parallel`-style ports, and (b) it is the variant
    that vectorises onto compiled/GPU backends.  Matchings are slightly
    less maximal (mutual-only acceptance).  Registered as ``"fhem"``.
    """
    rng = as_rng(seed)
    n = graph.nvtxs
    match = np.arange(n, dtype=_INT)
    if n == 0 or graph.adjncy.shape[0] == 0:
        return match
    src_all = np.repeat(np.arange(n, dtype=_INT), np.diff(graph.xadj))
    dst_all = graph.adjncy
    w_all = graph.adjwgt.astype(np.float64)
    balanced = relw is not None and relw.shape[1] > 1
    b_all = _edge_balance_scores(graph, relw) if balanced else None
    allowed = None
    if constraint is not None:
        con = np.asarray(_as_constraint(graph, constraint), dtype=_INT)
        allowed = con[src_all] == con[dst_all]

    for _ in range(rounds):
        free = match == np.arange(n)
        if not free.any():
            break
        live = free[src_all] & free[dst_all]
        if allowed is not None:
            live &= allowed
        if not live.any():
            break
        src = src_all[live]
        dst = dst_all[live]
        # Segment-max: sort ascending so the last entry per src wins the
        # overwrite below.
        if balanced:
            jitter = rng.random(src.shape[0])
            # Primary src, then weight (max last), then balanced score
            # (min last), then jitter.
            order = np.lexsort((jitter, -b_all[live], w_all[live], src))
        else:
            w = w_all[live] + rng.random(src.shape[0])  # jitter breaks ties
            order = np.lexsort((w, src))
        prop = np.full(n, -1, dtype=_INT)
        prop[src[order]] = dst[order]
        # Mutual proposals pair up (symmetric by construction).
        cand = np.flatnonzero(prop >= 0)
        mutual = cand[prop[prop[cand]] == cand]
        match[mutual] = prop[mutual]
    return match


def two_hop_matching(graph: Graph, match: np.ndarray, seed=None, *,
                     max_pair_degree: int | None = None,
                     constraint=None) -> np.ndarray:
    """Augment ``match`` by pairing leftover vertices that share a common
    neighbour (two-hop pairs).

    Star-like regions stall ordinary matching: all leaves stay unmatched
    because their only neighbour (the hub) is taken.  Pairing leaves of the
    same hub keeps coarsening moving (METIS 5 uses the same device).  Only
    vertices unmatched in ``match`` are touched; the input is not modified.
    The scan runs over flat Python lists (same seeded results as the
    original numpy-slice version).

    Parameters
    ----------
    graph, match:
        The graph and an existing matching (``match[v] == v`` marks
        unmatched vertices).
    max_pair_degree:
        Only consider unmatched vertices of degree at most this (default:
        no limit); two-hop merging high-degree vertices creates dense
        coarse rows.
    constraint:
        Optional per-vertex labels; two-hop pairs are only formed between
        same-label vertices.
    """
    rng = as_rng(seed)
    out = np.asarray(match, dtype=_INT).copy()
    n = graph.nvtxs
    con = _as_constraint(graph, constraint)
    free = np.flatnonzero(out == np.arange(n))
    if max_pair_degree is not None:
        deg = np.diff(graph.xadj)
        free = free[deg[free] <= max_pair_degree]
    if free.size < 2:
        return out

    outl = out.tolist()
    xadj = graph.xadj.tolist()
    adj = graph.adjncy.tolist()

    # Group leftover vertices by a (random) common neighbour and pair
    # within each bucket.
    buckets: dict[int, int] = {}
    for v in rng.permutation(free).tolist():
        if outl[v] != v:
            continue
        beg, end = xadj[v], xadj[v + 1]
        if beg == end:
            continue
        for i in range(beg, end):
            u = adj[i]
            waiting = buckets.get(u, -1)
            if (waiting >= 0 and outl[waiting] == waiting and waiting != v
                    and (con is None or con[waiting] == con[v])):
                outl[v] = waiting
                outl[waiting] = v
                buckets[u] = -1
                break
        else:
            # Park v at one of its hubs and keep scanning.
            hub = adj[beg + int(rng.integers(end - beg))]
            if buckets.get(hub, -1) < 0:
                buckets[hub] = v
    return np.asarray(outl, dtype=_INT)


def matching_to_cmap(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Convert a match array into a coarse map ``(cmap, ncoarse)``.

    Each matched pair and each unmatched vertex becomes one coarse vertex;
    ids are assigned in order of the pair's lower endpoint, so the result is
    deterministic given the matching.
    """
    match = np.asarray(match, dtype=_INT)
    n = match.shape[0]
    reps = np.minimum(np.arange(n, dtype=_INT), match)
    is_rep = reps == np.arange(n)
    cmap = np.full(n, -1, dtype=_INT)
    cmap[is_rep] = np.arange(int(is_rep.sum()), dtype=_INT)
    cmap[~is_rep] = cmap[match[~is_rep]]
    return cmap, int(is_rep.sum())


def is_matching(graph: Graph, match: np.ndarray) -> bool:
    """Check that ``match`` is a valid matching on ``graph``: involutive and
    every matched pair is an actual edge (one bulk sweep over the edge
    list)."""
    match = np.asarray(match, dtype=_INT)
    n = graph.nvtxs
    if match.shape != (n,):
        return False
    if match.size and (match.min() < 0 or match.max() >= n):
        return False
    ar = np.arange(n)
    if not np.array_equal(match[match], ar):
        return False
    matched = match != ar
    if not matched.any():
        return True
    src = np.repeat(ar, np.diff(graph.xadj))
    hits = match[src] == graph.adjncy
    has_edge = np.bincount(src[hits], minlength=n) > 0
    return bool(np.all(has_edge | ~matched))


#: Registry used by the coarsener configuration.
MATCHERS = {
    "rm": random_matching,
    "hem": heavy_edge_matching,
    "bem": balanced_edge_matching,
    "fhem": fast_heavy_edge_matching,
}
