"""Coarsening phase: matchings and the multilevel coarsener."""

from .coarsener import Hierarchy, Level, coarsen
from .matching import (
    MATCHERS,
    balanced_edge_matching,
    fast_heavy_edge_matching,
    heavy_edge_matching,
    is_matching,
    matching_to_cmap,
    random_matching,
    two_hop_matching,
)

__all__ = [
    "coarsen",
    "Hierarchy",
    "Level",
    "random_matching",
    "heavy_edge_matching",
    "balanced_edge_matching",
    "fast_heavy_edge_matching",
    "matching_to_cmap",
    "two_hop_matching",
    "is_matching",
    "MATCHERS",
]
