"""The coarsening phase of the multilevel paradigm.

Repeatedly match and contract until the graph is small enough for initial
partitioning.  The produced :class:`Hierarchy` records every level and its
coarse map so the uncoarsening phase can project partitions back up.

Stopping rules (all standard for multilevel partitioners):

* the coarse graph has at most ``coarsen_to`` vertices, or
* a level shrinks by less than ``min_shrink`` (matching has stalled, e.g.
  on star-like graphs where few independent pairs exist), or
* ``max_levels`` levels were produced.

Performance
-----------
Each level is two bulk kernels: a matcher that reads precomputed per-edge
scores (see ``coarsen.matching``; the balanced-edge tie-break of *every*
non-random matcher, including the handshaking one, comes from one
vectorised :func:`~repro.coarsen.matching._edge_balance_scores` sweep) and
a fully vectorised :func:`~repro.graph.contract.contract`.  Contraction
builds coarse graphs that are valid by construction, so re-validation is
skipped on this hot path (``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import as_rng, spawn
from ..errors import GraphError
from ..graph.contract import contract
from ..graph.csr import Graph
from ..trace import as_tracer
from .matching import MATCHERS, matching_to_cmap, two_hop_matching

__all__ = ["Level", "Hierarchy", "coarsen"]


@dataclass
class Level:
    """One coarsening step: ``graph`` is the fine graph of the step and
    ``cmap`` maps its vertices onto the next-coarser graph's vertices."""

    graph: Graph
    cmap: np.ndarray


@dataclass
class Hierarchy:
    """A full coarsening hierarchy.

    ``levels[0].graph`` is the input graph; ``coarsest`` is the final coarse
    graph.  ``project(part)`` lifts a coarse partition one level at a time;
    see :meth:`project_to_finest`.
    """

    levels: list[Level] = field(default_factory=list)
    coarsest: Graph | None = None

    @property
    def nlevels(self) -> int:
        """Number of coarsening steps performed."""
        return len(self.levels)

    def sizes(self) -> list[int]:
        """Vertex count per level, finest first (including the coarsest)."""
        out = [lvl.graph.nvtxs for lvl in self.levels]
        if self.coarsest is not None:
            out.append(self.coarsest.nvtxs)
        return out

    def project_to_finest(self, coarse_part: np.ndarray) -> np.ndarray:
        """Project a partition of the coarsest graph to the finest graph by
        composing the coarse maps (no refinement)."""
        part = np.asarray(coarse_part)
        for lvl in reversed(self.levels):
            part = part[lvl.cmap]
        return part


def coarsen(
    graph: Graph,
    *,
    coarsen_to: int = 100,
    max_levels: int = 60,
    matching: str = "hem",
    min_shrink: float = 0.95,
    two_hop: bool = True,
    seed=None,
    tracer=None,
    constraint=None,
) -> Hierarchy:
    """Build a coarsening hierarchy for ``graph``.

    Parameters
    ----------
    graph:
        Input (finest) graph.
    coarsen_to:
        Target size of the coarsest graph.
    max_levels:
        Upper bound on coarsening steps.
    matching:
        One of ``"rm"``, ``"hem"`` (heavy-edge with balanced-edge
        tie-break -- the paper's default) or ``"bem"``.
    min_shrink:
        Stop when ``ncoarse > min_shrink * nfine`` (coarsening stalled).
    two_hop:
        When ordinary matching stalls, pair leftover vertices that share a
        common neighbour before giving up (keeps star-like graphs
        coarsening).  Default on.
    seed:
        RNG seed / generator.
    tracer:
        Optional :class:`repro.trace.Tracer`; each match+contract step is
        recorded as a ``coarsen_level`` span (fine/coarse sizes, exposed
        edge weight, shrink factor).
    constraint:
        Optional per-vertex integer labels restricting matching: only
        same-label vertices may be merged, so any partition that is constant
        on each label class projects exactly onto every coarse level.  This
        is the iterated-multilevel (V-cycle) hook -- pass the current
        partition (or any refinement of it) to coarsen *within* its blocks.
        The labels are propagated to each coarse level through the coarse
        map.  ``None`` (the default) leaves matching unrestricted and is
        bit-identical to the pre-constraint behaviour.
    """
    if matching not in MATCHERS:
        raise GraphError(f"unknown matching scheme {matching!r}; pick from {sorted(MATCHERS)}")
    if coarsen_to < 1:
        raise GraphError("coarsen_to must be >= 1")
    matcher = MATCHERS[matching]
    tracer = as_tracer(tracer)
    rng = as_rng(seed)

    con = None
    if constraint is not None:
        con = np.asarray(constraint)
        if con.shape != (graph.nvtxs,):
            raise GraphError(
                f"coarsening constraint must have shape ({graph.nvtxs},); "
                f"got {con.shape}")

    # Relative weights are with respect to the *finest* totals, which are
    # invariant under contraction, so one totals vector serves every level.
    tvwgt = graph.total_vwgt().astype(np.float64)
    tvwgt[tvwgt == 0] = 1.0

    hier = Hierarchy()
    cur = graph
    while cur.nvtxs > coarsen_to and hier.nlevels < max_levels:
        stalled = False
        nxt = None
        with tracer.span("coarsen_level", nvtxs=cur.nvtxs) as sp:
            (child_rng,) = spawn(rng, 1)
            if matching == "rm":
                match = matcher(cur, child_rng, constraint=con)
            else:
                match = matcher(cur, child_rng, relw=cur.vwgt / tvwgt,
                                constraint=con)
            cmap, ncoarse = matching_to_cmap(match)
            if ncoarse > min_shrink * cur.nvtxs and two_hop:
                (hop_rng,) = spawn(rng, 1)
                match = two_hop_matching(cur, match, seed=hop_rng,
                                         constraint=con)
                cmap, ncoarse = matching_to_cmap(match)
            if ncoarse > min_shrink * cur.nvtxs:
                sp.set(stalled=True)
                stalled = True
            else:
                hier.levels.append(Level(graph=cur, cmap=cmap))
                nxt = contract(cur, cmap, ncoarse)
                if tracer.enabled:
                    sp.set(
                        nedges=cur.nedges,
                        exposed_edge_weight=int(cur.total_adjwgt()),
                        max_vwgt=int(cur.vwgt.max(initial=0)),
                        coarse_nvtxs=nxt.nvtxs,
                        coarse_nedges=nxt.nedges,
                        coarse_exposed_edge_weight=int(nxt.total_adjwgt()),
                        coarse_max_vwgt=int(nxt.vwgt.max(initial=0)),
                        shrink=ncoarse / cur.nvtxs,
                    )
        if stalled:
            break
        if con is not None:
            # Matched vertices share a label, so scattering through the
            # coarse map is well-defined (later writes repeat earlier ones).
            coarse_con = np.empty(nxt.nvtxs, dtype=con.dtype)
            coarse_con[cmap] = con
            con = coarse_con
        if tracer.enabled:
            # Structured per-level record (see docs/observability.md).  The
            # matching rate is the fraction of fine vertices absorbed into
            # pairs: 2 * (n - ncoarse) / n.
            tracer.event(
                "level",
                phase="coarsen",
                direction="coarsening",
                level=hier.nlevels - 1,
                nvtxs=cur.nvtxs,
                nedges=cur.nedges,
                coarse_nvtxs=nxt.nvtxs,
                coarse_nedges=nxt.nedges,
                matching_rate=2.0 * (cur.nvtxs - nxt.nvtxs) / max(cur.nvtxs, 1),
                shrink=nxt.nvtxs / cur.nvtxs,
                max_vwgt=int(cur.vwgt.max(initial=0)),
                seconds=sp.seconds,
            )
        cur = nxt
    hier.coarsest = cur
    return hier
