"""Geometric partitioning baselines.

Before multilevel schemes took over, meshes were partitioned geometrically;
these are the classic comparators of the paper's era and remain useful
sanity anchors (they need coordinates, which our mesh generators attach):

* :func:`rcb` -- recursive coordinate bisection (Berger--Bokhari): split at
  the weighted median along the longest axis, recurse;
* :func:`rib` -- recursive inertial bisection (Simon): like RCB but along
  the principal (inertial) axis of the point set;
* :func:`sfc_partition` -- space-filling-curve partitioning: order vertices
  along a Morton (Z-order) curve and cut the order into ``k`` weight-equal
  slabs (the cheap dynamic-balancing favourite).

All balance the per-vertex *sum* of constraint weights (geometric methods
have no notion of multiple constraints -- part of the paper's motivation).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError, PartitionError
from ..graph.csr import Graph

__all__ = ["rcb", "rib", "sfc_partition", "morton_order"]


def _coords_and_weights(graph: Graph):
    if graph.coords is None:
        raise GraphError("geometric partitioners need vertex coordinates")
    w = graph.vwgt.sum(axis=1).astype(np.float64)
    if w.sum() == 0:
        w = np.ones(graph.nvtxs)
    return graph.coords.astype(np.float64), w


def _check_nparts(graph: Graph, nparts: int):
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > max(graph.nvtxs, 1):
        raise PartitionError("more parts than vertices")


def _weighted_median_split(order: np.ndarray, w: np.ndarray, frac: float) -> int:
    """Index into ``order`` where the weight prefix first reaches ``frac``
    of the total (at least 1, at most len-1 when possible)."""
    csum = np.cumsum(w[order])
    k = int(np.searchsorted(csum, frac * csum[-1])) + 1
    return min(max(k, 1), order.shape[0] - 1) if order.shape[0] > 1 else 0


def rcb(graph: Graph, nparts: int) -> np.ndarray:
    """Recursive coordinate bisection along the longest axis."""
    _check_nparts(graph, nparts)
    pts, w = _coords_and_weights(graph)
    out = np.zeros(graph.nvtxs, dtype=np.int64)
    _rcb(pts, w, np.arange(graph.nvtxs, dtype=np.int64), nparts, out, axis_mode="extent")
    return out


def rib(graph: Graph, nparts: int) -> np.ndarray:
    """Recursive inertial bisection: split along the principal axis."""
    _check_nparts(graph, nparts)
    pts, w = _coords_and_weights(graph)
    out = np.zeros(graph.nvtxs, dtype=np.int64)
    _rcb(pts, w, np.arange(graph.nvtxs, dtype=np.int64), nparts, out, axis_mode="inertial")
    return out


def _rcb(pts, w, ids, nparts, out, axis_mode: str) -> None:
    if nparts == 1 or ids.shape[0] <= 1:
        return
    kl = (nparts + 1) // 2
    kr = nparts - kl
    sub = pts[ids]
    if axis_mode == "extent":
        axis = int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))
        proj = sub[:, axis]
    else:
        centred = sub - np.average(sub, axis=0, weights=w[ids])
        cov = (centred * w[ids, None]).T @ centred
        vals, vecs = np.linalg.eigh(cov)
        proj = centred @ vecs[:, -1]
    order = ids[np.argsort(proj, kind="stable")]
    k = _weighted_median_split(order, w, kl / nparts)
    # Guarantee each side can host its part count.
    k = min(max(k, kl), order.shape[0] - kr)
    left, right = order[:k], order[k:]
    out[right] += kl
    if kl > 1:
        _rcb(pts, w, left, kl, out, axis_mode)
    if kr > 1:
        _rcb(pts, w, right, kr, out, axis_mode)


def morton_order(coords: np.ndarray, bits: int = 16) -> np.ndarray:
    """Vertex ordering along a Morton (Z-order) curve.

    Coordinates are scaled to a ``2^bits`` grid per axis and their bits
    interleaved; supports 2-D and 3-D.
    """
    pts = np.asarray(coords, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] not in (2, 3):
        raise GraphError("morton_order supports 2-D or 3-D coordinates")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0] = 1.0
    grid = ((pts - lo) / span * (2**bits - 1)).astype(np.uint64)

    def spread(x: np.ndarray, stride: int) -> np.ndarray:
        out = np.zeros_like(x)
        for b in range(bits):
            out |= ((x >> np.uint64(b)) & np.uint64(1)) << np.uint64(stride * b)
        return out

    d = pts.shape[1]
    key = np.zeros(pts.shape[0], dtype=np.uint64)
    for axis in range(d):
        key |= spread(grid[:, axis], d) << np.uint64(axis)
    return np.argsort(key, kind="stable")


def sfc_partition(graph: Graph, nparts: int) -> np.ndarray:
    """Space-filling-curve partitioning: weight-equal slabs of the Morton
    order."""
    _check_nparts(graph, nparts)
    pts, w = _coords_and_weights(graph)
    order = morton_order(pts)
    csum = np.cumsum(w[order])
    total = csum[-1]
    bounds = np.searchsorted(csum, total * np.arange(1, nparts) / nparts)
    part = np.zeros(graph.nvtxs, dtype=np.int64)
    prev = 0
    for j, b in enumerate(list(bounds) + [graph.nvtxs]):
        b = max(int(b), prev + 1) if graph.nvtxs - prev > (nparts - j) else int(b)
        b = min(b, graph.nvtxs)
        part[order[prev:b]] = j
        prev = b
    # Any trailing unassigned (degenerate) vertices go to the last part.
    part[order[prev:]] = nparts - 1
    return part
