"""Trivial baselines: random, block, and BFS region-growing partitions.

These anchor the benchmark tables: any multilevel result should beat BFS
growth on cut, and random partitioning bounds the worst case.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..errors import PartitionError
from ..graph.csr import Graph
from ..graph.ops import bfs_regions

__all__ = ["random_partition", "block_partition", "bfs_partition"]


def _check(graph: Graph, nparts: int) -> None:
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > max(graph.nvtxs, 1):
        raise PartitionError("more parts than vertices")


def random_partition(graph: Graph, nparts: int, seed=None) -> np.ndarray:
    """Balanced-by-count random partition: a shuffled block split, so part
    sizes differ by at most one vertex (weights are ignored)."""
    _check(graph, nparts)
    rng = as_rng(seed)
    n = graph.nvtxs
    part = np.arange(n, dtype=np.int64) % nparts
    rng.shuffle(part)
    return part


def block_partition(graph: Graph, nparts: int) -> np.ndarray:
    """Contiguous-id block partition (what a naive striping of mesh element
    ids gives)."""
    _check(graph, nparts)
    n = graph.nvtxs
    return (np.arange(n, dtype=np.int64) * nparts) // max(n, 1)


def bfs_partition(graph: Graph, nparts: int, seed=None) -> np.ndarray:
    """Multi-seed BFS region growing: contiguous parts, roughly equal
    vertex counts, no weight balancing and no cut optimisation."""
    _check(graph, nparts)
    return bfs_regions(graph, nparts, seed=seed)
