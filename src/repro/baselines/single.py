"""Single-constraint baseline.

The paper's baseline is the single-constraint multilevel partitioner
(MeTiS): the *same* multilevel machinery run with scalar vertex weights.
:func:`as_single_constraint` collapses an ``m``-constraint graph to one
constraint and :func:`part_graph_single` partitions with it, so every
"normalised by MeTiS" figure can be reproduced without a C dependency --
the comparison is exactly "multi-constraint extensions on vs off".
"""

from __future__ import annotations

import numpy as np

from ..errors import WeightError
from ..graph.csr import Graph
from ..partition.api import PartitionResult, part_graph

__all__ = ["as_single_constraint", "part_graph_single", "COLLAPSE_MODES"]

COLLAPSE_MODES = ("sum", "first", "unit")


def as_single_constraint(graph: Graph, mode: str = "sum") -> Graph:
    """Collapse an ``m``-constraint graph to a single constraint.

    ``mode``:

    * ``"sum"`` -- the per-vertex sum of all components (the natural
      "total work" scalarisation the paper argues is *insufficient* for
      multi-phase codes: it balances the sum but not each phase);
    * ``"first"`` -- keep only the first component;
    * ``"unit"`` -- unit weights (balance vertex counts).
    """
    if mode not in COLLAPSE_MODES:
        raise WeightError(f"unknown collapse mode {mode!r}; pick from {COLLAPSE_MODES}")
    if mode == "sum":
        vw = graph.vwgt.sum(axis=1, keepdims=True)
    elif mode == "first":
        vw = graph.vwgt[:, :1].copy()
    else:
        vw = np.ones((graph.nvtxs, 1), dtype=np.int64)
    if vw.sum() == 0:
        vw = np.ones((graph.nvtxs, 1), dtype=np.int64)
    return graph.with_vwgt(vw)


def part_graph_single(
    graph: Graph,
    nparts: int,
    *,
    mode: str = "sum",
    method: str = "kway",
    **kwargs,
) -> PartitionResult:
    """Partition with the single-constraint baseline (collapse + partition).

    The returned result's ``part`` vector indexes the *original* graph's
    vertices, so its quality can be evaluated against the original
    multi-constraint weights."""
    return part_graph(as_single_constraint(graph, mode), nparts, method=method, **kwargs)
