"""Spectral recursive bisection baseline.

Multilevel schemes displaced spectral bisection (Hendrickson & Leland's
starting point) as the method of choice; this implementation provides the
classic comparator: split at the weighted median of the Fiedler vector of
the graph Laplacian, recursively.

Only single-constraint (scalar-weight) balance is attempted -- spectral
bisection has no natural multi-constraint extension, which is part of the
paper's motivation.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph.csr import Graph
from ..graph.ops import induced_subgraph

__all__ = ["fiedler_vector", "spectral_bisection", "spectral_recursive"]


def fiedler_vector(graph: Graph, tol: float = 1e-6, seed: int = 0) -> np.ndarray:
    """Second-smallest eigenvector of the weighted graph Laplacian.

    Uses dense ``eigh`` below 400 vertices and LOBPCG-free ``eigsh``
    (shift-invert-free, smallest-magnitude on the deflated operator) above.
    Disconnected graphs are allowed: any zero-eigenvalue vector beyond the
    constant one separates components, which is fine for bisection.
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    n = graph.nvtxs
    if n < 2:
        raise PartitionError("fiedler_vector needs at least 2 vertices")
    adj = sp.csr_matrix(
        (graph.adjwgt.astype(np.float64), graph.adjncy, graph.xadj), shape=(n, n)
    )
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg) - adj

    if n < 400:
        vals, vecs = np.linalg.eigh(lap.toarray())
        return vecs[:, 1]
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    vals, vecs = spla.eigsh(lap, k=2, sigma=-1e-3, which="LM", v0=v0, tol=tol)
    order = np.argsort(vals)
    return vecs[:, order[1]]


def spectral_bisection(graph: Graph, seed: int = 0) -> np.ndarray:
    """Bisect at the weighted median of the Fiedler vector (scalar weights:
    the per-vertex sum of all constraints)."""
    n = graph.nvtxs
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    fv = fiedler_vector(graph, seed=seed)
    w = graph.vwgt.sum(axis=1).astype(np.float64)
    order = np.argsort(fv, kind="stable")
    csum = np.cumsum(w[order])
    half = csum[-1] / 2.0
    k = int(np.searchsorted(csum, half)) + 1
    k = min(max(k, 1), n - 1)
    where = np.ones(n, dtype=np.int64)
    where[order[:k]] = 0
    return where


def spectral_recursive(graph: Graph, nparts: int, seed: int = 0) -> np.ndarray:
    """Recursive spectral bisection into ``nparts`` parts (power-of-two
    counts split evenly; other counts use ceil/floor like the multilevel
    driver)."""
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > max(graph.nvtxs, 1):
        raise PartitionError("more parts than vertices")
    out = np.zeros(graph.nvtxs, dtype=np.int64)
    _recurse(graph, nparts, np.arange(graph.nvtxs, dtype=np.int64), out, seed)
    return out


def _recurse(graph, nparts, ids, out, seed) -> None:
    if nparts == 1 or graph.nvtxs <= 1:
        return
    kl = (nparts + 1) // 2
    kr = nparts - kl
    where = spectral_bisection(graph, seed=seed)
    left = np.flatnonzero(where == 0)
    right = np.flatnonzero(where == 1)
    # Degenerate guard (all weight on one side).
    if left.size == 0 or right.size == 0:
        half = graph.nvtxs // 2
        left, right = np.arange(half), np.arange(half, graph.nvtxs)
    out[ids[right]] += kl
    if kl > 1:
        _recurse(induced_subgraph(graph, left), kl, ids[left], out, seed + 1)
    if kr > 1:
        _recurse(induced_subgraph(graph, right), kr, ids[right], out, seed + 2)
