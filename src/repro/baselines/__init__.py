"""Baseline partitioners: single-constraint multilevel (the paper's MeTiS
comparator), trivial partitions, and spectral recursive bisection."""

from .geometric import morton_order, rcb, rib, sfc_partition
from .simple import bfs_partition, block_partition, random_partition
from .single import COLLAPSE_MODES, as_single_constraint, part_graph_single
from .spectral import fiedler_vector, spectral_bisection, spectral_recursive

__all__ = [
    "as_single_constraint",
    "part_graph_single",
    "COLLAPSE_MODES",
    "random_partition",
    "block_partition",
    "bfs_partition",
    "fiedler_vector",
    "spectral_bisection",
    "spectral_recursive",
    "rcb",
    "rib",
    "sfc_partition",
    "morton_order",
]
