"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
taxonomy has three branches (see ``docs/robustness.md`` for the full
contract and which layer raises what):

* **input errors** -- :class:`GraphError`, :class:`WeightError`,
  :class:`PartitionError`, :class:`BalanceError`: the request itself is
  malformed; raised by the validation front-door before any work runs.
* **communication errors** -- :class:`CommError` and subclasses: the
  simulated network misbehaved.  :class:`TransientCommError` kinds are
  retryable (the parallel driver retries them with backoff);
  :class:`PermanentCommError` kinds are not.
* **fault-handling errors** -- :class:`FaultError` and subclasses: the
  recovery machinery itself gave up (retry budget, phase timeout, bad
  fault spec), plus :class:`DegradedResult`, raised in strict mode when
  the driver would otherwise fall back to the serial path.
* **serving errors** -- :class:`ServeError` and subclasses: the
  :mod:`repro.serve` front-end failed a request (deadline exceeded,
  service shut down) even though the request itself was well-formed.
* **observability errors** -- :class:`ObsError`: the :mod:`repro.obs`
  tooling could not use an artifact (missing/malformed drift baseline,
  invalid Prometheus exposition).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """The graph structure is malformed or violates a required invariant."""


class GraphFormatError(GraphError):
    """A graph file could not be parsed."""


class WeightError(ReproError):
    """Vertex or edge weights are malformed (wrong shape, negative, NaN,
    ragged, ...)."""


class PartitionError(ReproError):
    """A partitioning request is invalid or a partition vector is malformed."""


class BalanceError(PartitionError):
    """A balance constraint cannot be represented or satisfied."""


class OptionsError(PartitionError):
    """A :class:`~repro.partition.PartitionOptions` keyword does not exist.

    Raised by ``part_graph(..., **kwargs)`` / ``PartitionOptions.with_``
    when an option name is unknown, with a did-you-mean suggestion for the
    nearest valid field.  A silently-ignored typo (``ubvek=1.02``) would
    otherwise run with the default tolerance -- and, through the serving
    layer, cache the result under key semantics the caller never asked for."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration budget."""


# --------------------------------------------------------------------- #
# Simulated-communication failures (repro.parallel + repro.faults)
# --------------------------------------------------------------------- #


class CommError(ReproError):
    """A simulated communication operation failed.

    Subclasses split into :class:`TransientCommError` (retryable: the
    parallel driver retries the failed phase with backoff) and
    :class:`PermanentCommError` (not retryable: the driver degrades to
    the serial path, or raises :class:`DegradedResult` in strict mode).
    """


class TransientCommError(CommError):
    """A retryable communication failure (lost messages, a rank that is
    temporarily unresponsive).  Retrying the collective may succeed."""


class MessageDropError(TransientCommError):
    """One or more messages of a collective were lost in transit; the
    collective aborted at the superstep barrier and can be retried."""


class RankUnavailableError(TransientCommError):
    """A rank is transiently down (simulated crash-and-reboot); it will
    come back after a bounded number of failed collectives."""


class PermanentCommError(CommError):
    """A communication failure that no amount of retrying can fix."""


class RankCrashedError(PermanentCommError):
    """A rank crashed permanently; every later collective involving it
    fails.  Carries the crashed rank ids in :attr:`ranks`."""

    def __init__(self, message: str, ranks=()):
        super().__init__(message)
        self.ranks = tuple(ranks)


# --------------------------------------------------------------------- #
# Fault-handling layer (repro.faults)
# --------------------------------------------------------------------- #


class FaultError(ReproError):
    """The fault-handling machinery itself failed (bad spec, exhausted
    retry budget, phase timeout)."""


class FaultSpecError(FaultError):
    """A fault specification string/dict could not be parsed or holds
    out-of-range rates."""


class RetryExhaustedError(FaultError):
    """Transient failures persisted past the retry budget of the
    :class:`repro.faults.RecoveryPolicy`.  The original communication
    error is chained as ``__cause__``."""


class PhaseTimeoutError(FaultError):
    """A pipeline phase exceeded its simulated-time budget
    (``RecoveryPolicy.phase_timeout``)."""


# --------------------------------------------------------------------- #
# Serving layer (repro.serve)
# --------------------------------------------------------------------- #


class ServeError(ReproError):
    """The partition service failed to deliver a result for a well-formed
    request (the request-validation errors above cover malformed ones)."""


class ServeTimeoutError(ServeError):
    """A served request missed its deadline: either the caller's wait
    timed out, or the request's deadline had already passed when a worker
    picked it up (the compute is skipped, not interrupted)."""


class ServiceClosedError(ServeError):
    """The :class:`repro.serve.PartitionService` was closed; no new
    requests are accepted."""


class ServeOverloadError(ServeError):
    """The service shed this request at admission: the pending-compute
    queue was at its bound (``ServiceConfig.max_pending``) and the
    request's class did not qualify for the remaining headroom.  Shedding
    happens *before* any compute is queued -- retry later, lower the
    offered load, or raise the bound.  Carries the request class in
    :attr:`klass` and the queue depth observed at rejection in
    :attr:`queue_depth`."""

    def __init__(self, message: str, *, klass: str = "interactive",
                 queue_depth: int = 0):
        super().__init__(message)
        self.klass = klass
        self.queue_depth = queue_depth


class ImproverRejectedError(ServeError):
    """The background improver could not upgrade a cached entry.

    Raised by :meth:`repro.serve.improver.Improver.improve_digest` when the
    entry is gone from the cache, its graph was not retained
    (``ServiceConfig.retain_graphs``), it is already at the target effort
    level, or its request is uncacheable.  Carries the request digest in
    :attr:`digest` and the machine-readable cause in :attr:`reason`
    (``"missing"`` / ``"no_graph"`` / ``"already_high"`` /
    ``"uncacheable"``).  The sweep API (``Improver.run_once``) records
    rejections as counters instead of raising."""

    def __init__(self, message: str, *, digest: str = "", reason: str = ""):
        super().__init__(message)
        self.digest = digest
        self.reason = reason


class ServeBatchError(ServeError):
    """One or more requests of a :meth:`PartitionService.batch` failed.

    The batch is gathered to completion before this is raised, so the
    successful results are not abandoned: :attr:`results` holds the
    per-request outcome in submission order (a
    :class:`~repro.partition.PartitionResult` or ``None`` for a failed
    slot) and :attr:`errors` maps each failed index to the exception that
    killed it."""

    def __init__(self, message: str, *, results=(), errors=None):
        super().__init__(message)
        self.results = list(results)
        self.errors = dict(errors or {})


class ObsError(ReproError):
    """An observability artifact is unusable: a drift baseline is missing
    or malformed, or a Prometheus exposition fails validation
    (:func:`repro.obs.expose.parse_exposition`).  Partitioning itself never
    raises this -- only the :mod:`repro.obs` tooling around it."""


class DegradedResult(ReproError):
    """Raised *instead of* degrading to the serial fallback when strict
    mode (``strict=True`` / ``RecoveryPolicy(allow_degraded=False)``)
    forbids it.  ``reason`` holds the human-readable cause; the original
    failure is chained as ``__cause__``."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason
