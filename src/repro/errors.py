"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """The graph structure is malformed or violates a required invariant."""


class GraphFormatError(GraphError):
    """A graph file could not be parsed."""


class WeightError(ReproError):
    """Vertex or edge weights are malformed (wrong shape, negative, ...)."""


class PartitionError(ReproError):
    """A partitioning request is invalid or a partition vector is malformed."""


class BalanceError(PartitionError):
    """A balance constraint cannot be represented or satisfied."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration budget."""
