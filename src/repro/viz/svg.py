"""Dependency-free SVG rendering of 2-D partitions.

Meshes carry coordinates (generators and the mesh pipeline attach them);
this module draws the graph with vertices coloured by part and cut edges
emphasised -- enough to eyeball a decomposition without matplotlib.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError, PartitionError
from ..graph.csr import Graph

__all__ = ["partition_svg", "save_partition_svg", "PALETTE"]

#: 16 visually-distinct fill colours; parts beyond 16 cycle.
PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
    "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#1f77b4", "#2ca02c",
    "#d62728", "#9467bd", "#8c564b", "#17becf",
]


def partition_svg(
    graph: Graph,
    part,
    *,
    size: int = 640,
    radius: float = 2.5,
    show_edges: bool = True,
    highlight_cut: bool = True,
) -> str:
    """Render ``graph`` (which must have 2-D coordinates) with vertices
    coloured by ``part``.  Returns the SVG document as a string."""
    if graph.coords is None or graph.coords.shape[1] < 2:
        raise GraphError("partition_svg needs 2-D vertex coordinates")
    part = np.asarray(part)
    if part.shape != (graph.nvtxs,):
        raise PartitionError("part vector must cover all vertices")

    xy = graph.coords[:, :2].astype(np.float64)
    lo = xy.min(axis=0)
    span = xy.max(axis=0) - lo
    span[span == 0] = 1.0
    pad = 8.0
    scale = (size - 2 * pad) / span.max()
    pts = (xy - lo) * scale + pad
    # SVG's y axis points down; flip so plots look conventional.
    pts[:, 1] = size - pts[:, 1]

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    if show_edges:
        us, vs, _ = graph.edge_arrays()
        cut_mask = part[us] != part[vs]
        segs_plain = []
        segs_cut = []
        for u, v, is_cut in zip(us.tolist(), vs.tolist(), cut_mask.tolist()):
            seg = (f'M{pts[u, 0]:.1f} {pts[u, 1]:.1f}'
                   f'L{pts[v, 0]:.1f} {pts[v, 1]:.1f}')
            (segs_cut if is_cut and highlight_cut else segs_plain).append(seg)
        if segs_plain:
            out.append(
                f'<path d="{"".join(segs_plain)}" stroke="#dddddd" '
                f'stroke-width="0.6" fill="none"/>'
            )
        if segs_cut:
            out.append(
                f'<path d="{"".join(segs_cut)}" stroke="#222222" '
                f'stroke-width="1.1" fill="none"/>'
            )
    for p in np.unique(part):
        colour = PALETTE[int(p) % len(PALETTE)]
        members = np.flatnonzero(part == p)
        circles = "".join(
            f'<circle cx="{pts[v, 0]:.1f}" cy="{pts[v, 1]:.1f}" r="{radius}"/>'
            for v in members.tolist()
        )
        out.append(f'<g fill="{colour}">{circles}</g>')
    out.append("</svg>")
    return "\n".join(out)


def save_partition_svg(graph: Graph, part, path, **kwargs) -> None:
    """Render and write to ``path``."""
    with open(path, "w") as fh:
        fh.write(partition_svg(graph, part, **kwargs))
