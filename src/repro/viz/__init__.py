"""Visual tooling: SVG partition plots."""

from .svg import PALETTE, partition_svg, save_partition_svg

__all__ = ["partition_svg", "save_partition_svg", "PALETTE"]
