"""Constructors that build :class:`~repro.graph.csr.Graph` objects from
common graph representations (edge lists, adjacency lists, SciPy sparse
matrices, NetworkX graphs) and exporters back to those representations."""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import Graph

__all__ = [
    "from_edges",
    "from_adjlist",
    "from_scipy_sparse",
    "to_scipy_sparse",
    "from_networkx",
    "to_networkx",
]

_INT = np.int64


def from_edges(nvtxs: int, edges, weights=None, vwgt=None, *, dedupe: bool = True) -> Graph:
    """Build a graph from an undirected edge list.

    Parameters
    ----------
    nvtxs:
        Number of vertices.
    edges:
        Iterable / array of ``(u, v)`` pairs, each undirected edge listed
        once.  Self-loops are rejected.
    weights:
        Optional per-edge weights aligned with ``edges`` (default 1).
    vwgt:
        Optional vertex weights, ``(n,)`` or ``(n, m)``.
    dedupe:
        When true (default), duplicate edges are merged and their weights
        summed; when false, duplicates raise :class:`GraphError`.
    """
    e = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=_INT)
    if e.size == 0:
        e = e.reshape(0, 2)
    if e.ndim != 2 or e.shape[1] != 2:
        raise GraphError(f"edges must be (E, 2); got shape {e.shape}")
    if weights is None:
        w = np.ones(e.shape[0], dtype=_INT)
    else:
        w = np.ascontiguousarray(weights, dtype=_INT)
        if w.shape != (e.shape[0],):
            raise GraphError("weights must align with edges")

    if e.shape[0]:
        if e.min() < 0 or e.max() >= nvtxs:
            raise GraphError("edge endpoints out of range")
        if np.any(e[:, 0] == e[:, 1]):
            raise GraphError("self-loops are not allowed")

    # Canonicalise (u < v) and handle duplicates.
    u = np.minimum(e[:, 0], e[:, 1])
    v = np.maximum(e[:, 0], e[:, 1])
    key = u * _INT(nvtxs) + v
    uniq, inverse = np.unique(key, return_inverse=True)
    if uniq.shape[0] != key.shape[0]:
        if not dedupe:
            raise GraphError("duplicate edges present and dedupe=False")
        wsum = np.zeros(uniq.shape[0], dtype=_INT)
        np.add.at(wsum, inverse, w)
        u = (uniq // nvtxs).astype(_INT)
        v = (uniq % nvtxs).astype(_INT)
        w = wsum

    # Symmetrise into CSR.
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    ww = np.concatenate([w, w])
    # Canonical CSR: adjacency lists sorted by neighbour id, so graphs that
    # are equal as edge sets compare equal as arrays.
    order = np.lexsort((dst, src))
    src, dst, ww = src[order], dst[order], ww[order]
    xadj = np.zeros(nvtxs + 1, dtype=_INT)
    np.add.at(xadj, src + 1, 1)
    np.cumsum(xadj, out=xadj)
    return Graph(xadj, dst, vwgt=vwgt, adjwgt=ww, validate=False)


def from_adjlist(adjlist, vwgt=None) -> Graph:
    """Build a graph from an adjacency list (sequence of neighbour id
    sequences).  Edge weights are 1; the list must be symmetric."""
    nvtxs = len(adjlist)
    edges = [
        (u, v)
        for u, nbrs in enumerate(adjlist)
        for v in nbrs
        if u < v
    ]
    g = from_edges(nvtxs, edges, vwgt=vwgt)
    # Symmetry check: every directed entry must have appeared.
    expected = sum(len(nbrs) for nbrs in adjlist)
    if expected != g.adjncy.shape[0]:
        raise GraphError("adjacency list is not symmetric")
    return g


def from_scipy_sparse(mat, vwgt=None) -> Graph:
    """Build a graph from a symmetric SciPy sparse matrix.

    Off-diagonal non-zeros become edges with the (integer-rounded) matrix
    value as weight; diagonal entries are ignored.
    """
    import scipy.sparse as sp

    m = sp.coo_matrix(mat)
    if m.shape[0] != m.shape[1]:
        raise GraphError("matrix must be square")
    mask = (m.row < m.col) & (m.data != 0)
    edges = np.stack([m.row[mask], m.col[mask]], axis=1)
    weights = np.abs(np.rint(m.data[mask])).astype(_INT)
    weights = np.maximum(weights, 1)
    g = from_edges(m.shape[0], edges, weights, vwgt=vwgt)
    return g


def to_scipy_sparse(graph: Graph):
    """Export the adjacency structure as a ``scipy.sparse.csr_matrix``."""
    import scipy.sparse as sp

    n = graph.nvtxs
    return sp.csr_matrix(
        (graph.adjwgt.astype(np.float64), graph.adjncy.astype(np.int64), graph.xadj),
        shape=(n, n),
    )


def from_networkx(nxg, weight: str = "weight", vwgt=None) -> Graph:
    """Build a graph from an (undirected) NetworkX graph.

    Nodes are relabelled to ``0..n-1`` in sorted order; ``weight`` edge
    attributes (default 1) become edge weights.
    """
    nodes = sorted(nxg.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    edges, weights = [], []
    for u, v, data in nxg.edges(data=True):
        if u == v:
            continue
        edges.append((index[u], index[v]))
        weights.append(int(data.get(weight, 1)))
    return from_edges(len(nodes), edges, weights, vwgt=vwgt)


def to_networkx(graph: Graph):
    """Export to a :class:`networkx.Graph` with ``weight`` edge attributes
    and ``vwgt`` node attributes (tuples)."""
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(
        (v, {"vwgt": tuple(int(x) for x in graph.vwgt[v])})
        for v in range(graph.nvtxs)
    )
    us, vs, ws = graph.edge_arrays()
    nxg.add_weighted_edges_from(
        zip(us.tolist(), vs.tolist(), ws.tolist()), weight="weight"
    )
    return nxg
