"""Graph contraction: collapse groups of vertices into coarse vertices.

Given a coarse map ``cmap`` (``cmap[v]`` = coarse vertex id of fine vertex
``v``), the coarse graph has

* vertex-weight vectors equal to the per-group **sum** of fine weight
  vectors (this additivity is what lets the multilevel paradigm preserve all
  ``m`` balance constraints across levels), and
* edge weights equal to the sum of fine edge weights between the two groups
  (edges internal to a group disappear, which is exactly the "exposed edge
  weight" the coarsening phase removes).

The implementation is fully vectorised: it maps all directed edges at once,
drops the ones that became self-loops, and merges parallel edges with a
single ``np.unique`` pass.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import Graph

__all__ = ["contract"]

_INT = np.int64


def contract(graph: Graph, cmap, ncoarse: int | None = None) -> Graph:
    """Contract ``graph`` according to ``cmap``.

    Parameters
    ----------
    graph:
        Fine graph.
    cmap:
        ``(n,)`` array mapping each fine vertex to a coarse vertex id in
        ``[0, ncoarse)``.  Every coarse id in the range must be used by at
        least one fine vertex.
    ncoarse:
        Number of coarse vertices; inferred as ``cmap.max() + 1`` when
        omitted.

    Returns
    -------
    Graph
        The coarse graph (same ``ncon``).
    """
    cmap = np.ascontiguousarray(cmap, dtype=_INT)
    n = graph.nvtxs
    if cmap.shape != (n,):
        raise GraphError(f"cmap must have shape ({n},); got {cmap.shape}")
    if n == 0:
        return Graph(np.zeros(1, dtype=_INT), np.empty(0, dtype=_INT),
                     np.empty((0, graph.ncon), dtype=_INT), validate=False)
    if ncoarse is None:
        ncoarse = int(cmap.max()) + 1
    if cmap.min() < 0 or cmap.max() >= ncoarse:
        raise GraphError("cmap values out of range")
    used = np.bincount(cmap, minlength=ncoarse)
    if np.any(used == 0):
        raise GraphError("cmap must use every coarse id at least once")

    # Coarse vertex weights: per-column grouped sums.
    cvwgt = np.zeros((ncoarse, graph.ncon), dtype=_INT)
    for c in range(graph.ncon):
        cvwgt[:, c] = np.bincount(cmap, weights=graph.vwgt[:, c], minlength=ncoarse).astype(_INT)

    # Coarse edges: map both endpoints of every directed edge, drop
    # self-loops, merge duplicates.
    src = np.repeat(np.arange(n, dtype=_INT), np.diff(graph.xadj))
    cu = cmap[src]
    cv = cmap[graph.adjncy]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], graph.adjwgt[keep]

    key = cu * _INT(ncoarse) + cv
    uniq, inverse = np.unique(key, return_inverse=True)
    cw = np.zeros(uniq.shape[0], dtype=np.float64)
    np.add.at(cw, inverse, w.astype(np.float64))
    cw = cw.astype(_INT)
    cu = (uniq // ncoarse).astype(_INT)
    cv = (uniq % ncoarse).astype(_INT)

    # uniq is sorted by key = cu * ncoarse + cv, i.e. grouped by cu with cv
    # ascending inside each group -- exactly CSR order.
    cxadj = np.zeros(ncoarse + 1, dtype=_INT)
    np.add.at(cxadj, cu + 1, 1)
    np.cumsum(cxadj, out=cxadj)

    coarse = Graph(cxadj, cv, cvwgt, cw, validate=False)
    if graph.coords is not None:
        # Coarse coordinates: unweighted centroid of each group (cosmetic,
        # used only for visual tooling).
        csum = np.zeros((ncoarse, graph.coords.shape[1]))
        np.add.at(csum, cmap, graph.coords)
        coarse.coords = csum / used[:, None]
    return coarse
