"""Graph contraction: collapse groups of vertices into coarse vertices.

Given a coarse map ``cmap`` (``cmap[v]`` = coarse vertex id of fine vertex
``v``), the coarse graph has

* vertex-weight vectors equal to the per-group **sum** of fine weight
  vectors (this additivity is what lets the multilevel paradigm preserve all
  ``m`` balance constraints across levels), and
* edge weights equal to the sum of fine edge weights between the two groups
  (edges internal to a group disappear, which is exactly the "exposed edge
  weight" the coarsening phase removes).

The implementation is fully vectorised: it maps all directed edges at once,
drops the ones that became self-loops, and merges parallel edges with one
stable argsort + ``np.add.reduceat`` segment sum (exact int64 arithmetic).

Validation audit: contraction builds the coarse CSR arrays sorted and
symmetric *by construction* (every directed fine edge is mapped, so both
directions of a coarse edge receive the same merged weight), which is why
the coarse :class:`Graph` is constructed with ``validate=False`` by
default -- re-running the O(E log E) symmetry check per level roughly
doubled coarsening cost.  Pass ``validate=True`` to re-enable the check
(tests do, as a belt-and-braces audit of the construction argument).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import Graph

__all__ = ["contract"]

_INT = np.int64


def contract(graph: Graph, cmap, ncoarse: int | None = None, *, validate: bool = False) -> Graph:
    """Contract ``graph`` according to ``cmap``.

    Parameters
    ----------
    graph:
        Fine graph.
    cmap:
        ``(n,)`` array mapping each fine vertex to a coarse vertex id in
        ``[0, ncoarse)``.  Every coarse id in the range must be used by at
        least one fine vertex.
    ncoarse:
        Number of coarse vertices; inferred as ``cmap.max() + 1`` when
        omitted.
    validate:
        Run :meth:`Graph.validate` on the coarse graph.  Off by default:
        the construction below is symmetric and CSR-sorted by design (see
        module docstring), so the check is redundant on the hot path.

    Returns
    -------
    Graph
        The coarse graph (same ``ncon``).
    """
    cmap = np.ascontiguousarray(cmap, dtype=_INT)
    n = graph.nvtxs
    if cmap.shape != (n,):
        raise GraphError(f"cmap must have shape ({n},); got {cmap.shape}")
    if n == 0:
        return Graph(np.zeros(1, dtype=_INT), np.empty(0, dtype=_INT),
                     np.empty((0, graph.ncon), dtype=_INT), validate=False)
    if ncoarse is None:
        ncoarse = int(cmap.max()) + 1
    if cmap.min() < 0 or cmap.max() >= ncoarse:
        raise GraphError("cmap values out of range")
    used = np.bincount(cmap, minlength=ncoarse)
    if np.any(used == 0):
        raise GraphError("cmap must use every coarse id at least once")

    # Coarse vertex weights: per-column grouped sums.
    cvwgt = np.zeros((ncoarse, graph.ncon), dtype=_INT)
    for c in range(graph.ncon):
        cvwgt[:, c] = np.bincount(cmap, weights=graph.vwgt[:, c], minlength=ncoarse).astype(_INT)

    # Coarse edges: map both endpoints of every directed edge, drop
    # self-loops, merge duplicates.
    src = np.repeat(np.arange(n, dtype=_INT), np.diff(graph.xadj))
    cu = cmap[src]
    cv = cmap[graph.adjncy]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], graph.adjwgt[keep]

    # Merge parallel edges: group by composite key with one stable sort,
    # then segment-sum the weights (exact int64; the previous
    # ``np.unique(return_inverse)`` + float ``np.add.at`` combination was
    # both slower and lossy for very large weights).
    key = cu * _INT(ncoarse) + cv
    if key.shape[0]:
        order = np.argsort(key, kind="stable")
        ks = key[order]
        starts = np.flatnonzero(np.concatenate(([True], ks[1:] != ks[:-1])))
        uniq = ks[starts]
        cw = np.add.reduceat(w[order], starts)
    else:
        uniq = np.empty(0, dtype=_INT)
        cw = np.empty(0, dtype=_INT)
    cu = uniq // ncoarse
    cv = uniq % ncoarse

    # uniq is sorted by key = cu * ncoarse + cv, i.e. grouped by cu with cv
    # ascending inside each group -- exactly CSR order.
    cxadj = np.zeros(ncoarse + 1, dtype=_INT)
    np.add.at(cxadj, cu + 1, 1)
    np.cumsum(cxadj, out=cxadj)

    coarse = Graph(cxadj, cv, cvwgt, cw, validate=validate)
    if graph.coords is not None:
        # Coarse coordinates: unweighted centroid of each group (cosmetic,
        # used only for visual tooling).
        csum = np.zeros((ncoarse, graph.coords.shape[1]))
        np.add.at(csum, cmap, graph.coords)
        coarse.coords = csum / used[:, None]
    return coarse
