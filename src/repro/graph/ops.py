"""Graph algorithms used across the library: traversal, connectivity,
induced subgraphs, and multi-source BFS region growing (the region generator
behind the paper's synthetic Type-1/Type-2 workloads)."""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..errors import GraphError
from .csr import Graph

__all__ = [
    "bfs_order",
    "bfs_levels",
    "connected_components",
    "is_connected",
    "largest_component",
    "induced_subgraph",
    "bfs_regions",
    "degree_histogram",
]

_INT = np.int64


def bfs_order(graph: Graph, source: int = 0) -> np.ndarray:
    """Vertices reachable from ``source`` in BFS visiting order."""
    levels = bfs_levels(graph, source)
    reach = np.flatnonzero(levels >= 0)
    return reach[np.argsort(levels[reach], kind="stable")]


def bfs_levels(graph: Graph, source) -> np.ndarray:
    """``(n,)`` BFS distance from ``source`` (an id or an array of ids);
    unreachable vertices get ``-1``.

    Implemented with vectorised frontier expansion (no per-vertex Python
    loop): each round gathers all neighbours of the current frontier at
    once.
    """
    n = graph.nvtxs
    levels = np.full(n, -1, dtype=_INT)
    frontier = np.atleast_1d(np.asarray(source, dtype=_INT))
    if frontier.size and (frontier.min() < 0 or frontier.max() >= n):
        raise GraphError("source vertex out of range")
    levels[frontier] = 0
    depth = 0
    xadj, adjncy = graph.xadj, graph.adjncy
    while frontier.size:
        starts, ends = xadj[frontier], xadj[frontier + 1]
        counts = ends - starts
        if counts.sum() == 0:
            break
        idx = np.repeat(starts, counts) + _ranges(counts)
        nbrs = adjncy[idx]
        nbrs = np.unique(nbrs[levels[nbrs] < 0])
        depth += 1
        levels[nbrs] = depth
        frontier = nbrs
    return levels


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts (vectorised)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=_INT)
    out = np.ones(total, dtype=_INT)
    out[0] = 0
    bounds = np.cumsum(counts)[:-1]
    # np.add.at accumulates when zero-length segments make boundaries
    # coincide; boundaries == total come from trailing empty segments.
    inside = bounds < total
    np.add.at(out, bounds[inside], -counts[:-1][inside])
    return np.cumsum(out)


def connected_components(graph: Graph) -> np.ndarray:
    """``(n,)`` component id per vertex (ids are ``0..ncomp-1`` in order of
    discovery from the lowest-numbered vertex)."""
    n = graph.nvtxs
    comp = np.full(n, -1, dtype=_INT)
    cid = 0
    for v in range(n):
        if comp[v] >= 0:
            continue
        levels = bfs_levels(graph, v)
        # bfs_levels may touch vertices already labelled?  No: BFS from v
        # only reaches vertices in v's component, which are unlabelled.
        comp[levels >= 0] = cid
        cid += 1
    return comp


def is_connected(graph: Graph) -> bool:
    """True when the graph has a single connected component (or is empty)."""
    if graph.nvtxs == 0:
        return True
    return bool(np.all(bfs_levels(graph, 0) >= 0))


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Return the induced subgraph of the largest connected component and
    the array of original vertex ids it retains."""
    comp = connected_components(graph)
    sizes = np.bincount(comp)
    keep = np.flatnonzero(comp == int(np.argmax(sizes)))
    return induced_subgraph(graph, keep), keep


def induced_subgraph(graph: Graph, vertices) -> Graph:
    """Induced subgraph on ``vertices`` (any order, no duplicates).

    Vertex ``vertices[i]`` becomes vertex ``i`` of the subgraph; vertex
    weights and internal edge weights are preserved.  Fully vectorised.
    """
    vertices = np.ascontiguousarray(vertices, dtype=_INT)
    n = graph.nvtxs
    if vertices.size:
        if vertices.min() < 0 or vertices.max() >= n:
            raise GraphError("subgraph vertex ids out of range")
    local = np.full(n, -1, dtype=_INT)
    local[vertices] = np.arange(vertices.shape[0], dtype=_INT)
    if np.count_nonzero(local >= 0) != vertices.shape[0]:
        raise GraphError("duplicate vertex ids in subgraph request")

    counts = np.diff(graph.xadj)[vertices]
    idx = np.repeat(graph.xadj[vertices], counts) + _ranges(counts)
    src_local = np.repeat(np.arange(vertices.shape[0], dtype=_INT), counts)
    dst_local = local[graph.adjncy[idx]]
    w = graph.adjwgt[idx]
    keep = dst_local >= 0
    src_local, dst_local, w = src_local[keep], dst_local[keep], w[keep]

    xadj = np.zeros(vertices.shape[0] + 1, dtype=_INT)
    np.add.at(xadj, src_local + 1, 1)
    np.cumsum(xadj, out=xadj)
    sub = Graph(xadj, dst_local, graph.vwgt[vertices], w, validate=False)
    if graph.coords is not None:
        sub.coords = graph.coords[vertices]
    return sub


def bfs_regions(graph: Graph, nregions: int, seed=None) -> np.ndarray:
    """Partition vertices into ``nregions`` contiguous regions by
    multi-source BFS growth from random seed vertices.

    This is the cheap "geometrically contiguous region" generator used to
    synthesise the paper's Type-1 and Type-2 multi-weight workloads: it
    produces connected, roughly equal-count regions without needing the
    partitioner itself (avoiding a circular dependency).

    Returns a ``(n,)`` region-id array.  Vertices unreachable from any seed
    (isolated components) are assigned round-robin.
    """
    rng = as_rng(seed)
    n = graph.nvtxs
    if nregions <= 0:
        raise GraphError("nregions must be positive")
    if nregions >= n:
        return np.arange(n, dtype=_INT) % nregions

    seeds = rng.choice(n, size=nregions, replace=False)
    region = np.full(n, -1, dtype=_INT)
    region[seeds] = np.arange(nregions, dtype=_INT)
    frontier = seeds.astype(_INT)
    xadj, adjncy = graph.xadj, graph.adjncy
    while frontier.size:
        counts = xadj[frontier + 1] - xadj[frontier]
        idx = np.repeat(xadj[frontier], counts) + _ranges(counts)
        nbrs = adjncy[idx]
        owners = np.repeat(region[frontier], counts)
        unclaimed = region[nbrs] < 0
        nbrs, owners = nbrs[unclaimed], owners[unclaimed]
        # First claim wins within a round (stable unique keeps the earliest
        # proposal, which belongs to a random seed ordering).
        uniq, first = np.unique(nbrs, return_index=True)
        region[uniq] = owners[first]
        frontier = uniq
    left = np.flatnonzero(region < 0)
    if left.size:
        region[left] = np.arange(left.size, dtype=_INT) % nregions
    return region


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of vertices of degree ``d``."""
    return np.bincount(np.diff(graph.xadj))
