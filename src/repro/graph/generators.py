"""Synthetic graph generators.

The SC'98 evaluation used irregular finite-element meshes (and the follow-on
work used the ``mrng*`` series of mesh duals).  Those meshes are not
redistributable, so this module provides stand-ins with the same structural
character the multilevel algorithms rely on:

* bounded small degree,
* geometric locality (cuts grow like surfaces: ``n^(1/2)`` in 2-D,
  ``n^(2/3)`` in 3-D),
* steady coarsening rates under heavy-edge matching.

``grid_2d``/``grid_3d``/``torus_2d`` give structured meshes;
``random_geometric`` and ``delaunay_mesh`` give irregular ones;
``mesh_like`` ("mrng-style") matches the vertex/edge density of the mesh
duals used by the paper's experiments (about 4 edges per vertex).
"""

from __future__ import annotations

import numpy as np

from .._rng import as_rng
from ..errors import GraphError
from .build import from_edges
from .csr import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_2d",
    "grid_3d",
    "torus_2d",
    "random_geometric",
    "delaunay_mesh",
    "mesh_like",
    "random_regular_like",
]

_INT = np.int64


def path_graph(n: int) -> Graph:
    """Path on ``n`` vertices."""
    if n < 1:
        raise GraphError("n must be >= 1")
    edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    return from_edges(n, edges)


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError("cycle needs n >= 3")
    us = np.arange(n)
    return from_edges(n, np.stack([us, (us + 1) % n], axis=1))


def star_graph(n: int) -> Graph:
    """Star: vertex 0 joined to vertices ``1..n-1``."""
    if n < 2:
        raise GraphError("star needs n >= 2")
    edges = np.stack([np.zeros(n - 1, dtype=_INT), np.arange(1, n)], axis=1)
    return from_edges(n, edges)


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` vertices."""
    iu = np.triu_indices(n, k=1)
    return from_edges(n, np.stack(iu, axis=1))


def _grid_coords(shape) -> np.ndarray:
    grids = np.meshgrid(*[np.arange(s) for s in shape], indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1).astype(np.float64)


def grid_2d(nx: int, ny: int) -> Graph:
    """4-connected ``nx`` x ``ny`` grid (vertex ``(i, j)`` has id
    ``i * ny + j``); coordinates attached."""
    if nx < 1 or ny < 1:
        raise GraphError("grid dimensions must be >= 1")
    ids = np.arange(nx * ny).reshape(nx, ny)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    g = from_edges(nx * ny, np.concatenate([right, down]))
    g.coords = _grid_coords((nx, ny))
    return g


def grid_3d(nx: int, ny: int, nz: int) -> Graph:
    """6-connected 3-D grid; coordinates attached."""
    if min(nx, ny, nz) < 1:
        raise GraphError("grid dimensions must be >= 1")
    ids = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    e = [
        np.stack([ids[:, :, :-1].ravel(), ids[:, :, 1:].ravel()], axis=1),
        np.stack([ids[:, :-1, :].ravel(), ids[:, 1:, :].ravel()], axis=1),
        np.stack([ids[:-1, :, :].ravel(), ids[1:, :, :].ravel()], axis=1),
    ]
    g = from_edges(nx * ny * nz, np.concatenate(e))
    g.coords = _grid_coords((nx, ny, nz))
    return g


def torus_2d(nx: int, ny: int) -> Graph:
    """2-D torus (grid with wraparound); needs ``nx, ny >= 3``."""
    if nx < 3 or ny < 3:
        raise GraphError("torus needs nx, ny >= 3")
    ids = np.arange(nx * ny).reshape(nx, ny)
    right = np.stack([ids.ravel(), np.roll(ids, -1, axis=1).ravel()], axis=1)
    down = np.stack([ids.ravel(), np.roll(ids, -1, axis=0).ravel()], axis=1)
    g = from_edges(nx * ny, np.concatenate([right, down]))
    g.coords = _grid_coords((nx, ny))
    return g


def random_geometric(n: int, k: int = 6, dim: int = 2, seed=None) -> Graph:
    """Random geometric graph: ``n`` uniform points in the unit cube, each
    joined to its ``k`` nearest neighbours (symmetrised).

    Produces irregular bounded-degree graphs with FEM-like geometric
    locality.  Coordinates are attached.
    """
    from scipy.spatial import cKDTree

    if n < 2:
        raise GraphError("n must be >= 2")
    rng = as_rng(seed)
    k = min(k, n - 1)
    pts = rng.random((n, dim))
    tree = cKDTree(pts)
    _, idx = tree.query(pts, k=k + 1, workers=-1)
    src = np.repeat(np.arange(n, dtype=_INT), k)
    dst = idx[:, 1:].astype(_INT).ravel()
    g = from_edges(n, np.stack([src, dst], axis=1))
    g.coords = pts
    return g


def delaunay_mesh(n: int, seed=None) -> Graph:
    """Delaunay triangulation of ``n`` uniform random points in the unit
    square: a planar, irregular triangle mesh -- the closest synthetic
    analogue of a 2-D FEM mesh.  Coordinates are attached."""
    from scipy.spatial import Delaunay

    if n < 4:
        raise GraphError("delaunay_mesh needs n >= 4")
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    tri = Delaunay(pts)
    s = tri.simplices
    edges = np.concatenate([s[:, [0, 1]], s[:, [1, 2]], s[:, [0, 2]]])
    g = from_edges(n, edges)
    g.coords = pts
    return g


def mesh_like(n: int, dim: int = 3, seed=None) -> Graph:
    """"mrng-style" synthetic mesh dual: an irregular bounded-degree graph
    with roughly 4 edges per vertex (the density of the tetrahedral mesh
    duals used in the paper's experiment family).

    Built as a ``dim``-dimensional random geometric kNN graph with ``k``
    chosen so the symmetrised edge count lands near ``4 n``.
    """
    # kNN symmetrisation yields roughly k..1.3k edges per vertex halved;
    # k = 7 empirically gives ~3.9-4.3 edges/vertex in 3-D.
    return random_geometric(n, k=7, dim=dim, seed=seed)


def random_regular_like(n: int, degree: int, seed=None) -> Graph:
    """Random graph with near-uniform degree (configuration-model style with
    rejection of self-loops and duplicates).  Not geometric; used as an
    adversarial non-mesh input in tests."""
    if degree >= n:
        raise GraphError("degree must be < n")
    rng = as_rng(seed)
    src = np.repeat(np.arange(n, dtype=_INT), degree)
    dst = rng.permutation(src)
    mask = src != dst
    g = from_edges(n, np.stack([src[mask], dst[mask]], axis=1))
    return g
