"""Reading and writing graphs in the METIS / Chaco text format, plus
partition files and plain edge lists.

METIS graph format (as used by `metis` 4.x/5.x and by the paper's tooling):

* header line: ``<nvtxs> <nedges> [fmt [ncon]]``
* ``fmt`` is up to three digits ``XYZ``: ``X`` = has vertex sizes (we reject
  these: not part of this paper's model), ``Y`` = has vertex weights,
  ``Z`` = has edge weights.
* line ``v`` (1-based): ``[w_1 ... w_ncon] u_1 [ew_1] u_2 [ew_2] ...`` with
  1-based neighbour ids.
* ``%``-prefixed lines are comments.
"""

from __future__ import annotations

import io as _io
import os

import numpy as np

from ..errors import GraphFormatError, PartitionError
from .build import from_edges
from .csr import Graph

__all__ = [
    "read_metis_graph",
    "write_metis_graph",
    "read_partition",
    "write_partition",
    "read_edgelist",
    "write_edgelist",
    "save_npz",
    "load_npz",
]

_INT = np.int64


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, os.PathLike)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_metis_graph(path_or_file) -> Graph:
    """Parse a METIS-format graph file (path or open text file)."""
    fh, owned = _open(path_or_file, "r")
    try:
        lines = [ln for ln in fh if ln.strip() and not ln.lstrip().startswith("%")]
    finally:
        if owned:
            fh.close()
    if not lines:
        raise GraphFormatError("empty graph file")

    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError("header must contain at least <nvtxs> <nedges>")
    try:
        nvtxs, nedges = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphFormatError(f"bad header: {lines[0]!r}") from exc
    fmt = header[2] if len(header) > 2 else "0"
    ncon = int(header[3]) if len(header) > 3 else 1
    fmt = fmt.zfill(3)
    if len(fmt) != 3 or any(c not in "01" for c in fmt):
        raise GraphFormatError(f"bad fmt field {fmt!r}")
    has_vsize, has_vwgt, has_ewgt = (c == "1" for c in fmt)
    if has_vsize:
        raise GraphFormatError("vertex sizes (fmt=1xx) are not supported")
    if not has_vwgt:
        ncon = 1

    if len(lines) - 1 != nvtxs:
        raise GraphFormatError(
            f"expected {nvtxs} vertex lines, found {len(lines) - 1}"
        )

    vwgt = np.ones((nvtxs, ncon), dtype=_INT) if not has_vwgt else np.empty((nvtxs, ncon), dtype=_INT)
    srcs, dsts, ws = [], [], []
    for v, line in enumerate(lines[1:]):
        try:
            vals = [int(t) for t in line.split()]
        except ValueError as exc:
            raise GraphFormatError(f"non-integer token on line {v + 2}") from exc
        pos = 0
        if has_vwgt:
            if len(vals) < ncon:
                raise GraphFormatError(f"line {v + 2}: missing vertex weights")
            vwgt[v] = vals[:ncon]
            pos = ncon
        rest = vals[pos:]
        if has_ewgt:
            if len(rest) % 2:
                raise GraphFormatError(f"line {v + 2}: dangling edge weight")
            nbrs, ew = rest[0::2], rest[1::2]
        else:
            nbrs, ew = rest, [1] * len(rest)
        for u, w in zip(nbrs, ew):
            if not (1 <= u <= nvtxs):
                raise GraphFormatError(f"line {v + 2}: neighbour id {u} out of range")
            srcs.append(v)
            dsts.append(u - 1)
            ws.append(w)

    if len(srcs) != 2 * nedges:
        raise GraphFormatError(
            f"header promises {nedges} edges but found {len(srcs)} directed entries"
        )
    src = np.asarray(srcs, dtype=_INT)
    dst = np.asarray(dsts, dtype=_INT)
    w = np.asarray(ws, dtype=_INT)
    keep = src < dst
    g = from_edges(nvtxs, np.stack([src[keep], dst[keep]], axis=1), w[keep],
                   vwgt=vwgt, dedupe=False)
    g.validate()
    return g


def write_metis_graph(graph: Graph, path_or_file) -> None:
    """Write ``graph`` in METIS format.

    Vertex weights are written whenever ``ncon > 1`` or any weight differs
    from 1; edge weights whenever any differs from 1.
    """
    has_vwgt = graph.ncon > 1 or bool(np.any(graph.vwgt != 1))
    has_ewgt = bool(np.any(graph.adjwgt != 1))
    fmt = f"0{int(has_vwgt)}{int(has_ewgt)}"

    buf = _io.StringIO()
    header = f"{graph.nvtxs} {graph.nedges}"
    if has_vwgt or has_ewgt:
        header += f" {fmt}"
        if has_vwgt:
            header += f" {graph.ncon}"
    buf.write(header + "\n")
    for v in range(graph.nvtxs):
        parts = []
        if has_vwgt:
            parts.extend(str(int(x)) for x in graph.vwgt[v])
        nbrs = graph.neighbors(v)
        ews = graph.edge_weights(v)
        if has_ewgt:
            for u, w in zip(nbrs, ews):
                parts.append(str(int(u) + 1))
                parts.append(str(int(w)))
        else:
            parts.extend(str(int(u) + 1) for u in nbrs)
        buf.write(" ".join(parts) + "\n")

    fh, owned = _open(path_or_file, "w")
    try:
        fh.write(buf.getvalue())
    finally:
        if owned:
            fh.close()


def read_partition(path_or_file, nvtxs: int | None = None) -> np.ndarray:
    """Read a METIS partition file: one part id per line."""
    fh, owned = _open(path_or_file, "r")
    try:
        try:
            part = np.asarray(
                [int(ln.strip()) for ln in fh if ln.strip()], dtype=_INT
            )
        except ValueError as exc:
            raise PartitionError("partition file contains a non-integer line") from exc
        except OverflowError as exc:
            raise PartitionError("partition id out of range") from exc
    finally:
        if owned:
            fh.close()
    if nvtxs is not None and part.shape[0] != nvtxs:
        raise PartitionError(
            f"partition file has {part.shape[0]} entries, expected {nvtxs}"
        )
    if part.size and part.min() < 0:
        raise PartitionError("partition ids must be non-negative")
    return part


def write_partition(part, path_or_file) -> None:
    """Write a partition vector, one part id per line."""
    part = np.asarray(part, dtype=_INT)
    fh, owned = _open(path_or_file, "w")
    try:
        fh.write("\n".join(str(int(p)) for p in part))
        if part.size:
            fh.write("\n")
    finally:
        if owned:
            fh.close()


def read_edgelist(path_or_file, nvtxs: int | None = None) -> Graph:
    """Read a whitespace edge list ``u v [w]`` (0-based ids, ``%``/``#``
    comments allowed)."""
    fh, owned = _open(path_or_file, "r")
    try:
        rows = []
        for ln in fh:
            s = ln.strip()
            if not s or s[0] in "%#":
                continue
            toks = s.split()
            if len(toks) not in (2, 3):
                raise GraphFormatError(f"bad edge line: {ln!r}")
            try:
                rows.append(tuple(int(t) for t in toks))
            except ValueError as exc:
                raise GraphFormatError(f"non-integer token in {ln!r}") from exc
    finally:
        if owned:
            fh.close()
    if not rows:
        raise GraphFormatError("empty edge list")
    edges = np.asarray([(r[0], r[1]) for r in rows], dtype=_INT)
    ws = np.asarray([r[2] if len(r) == 3 else 1 for r in rows], dtype=_INT)
    n = nvtxs if nvtxs is not None else int(edges.max()) + 1
    return from_edges(n, edges, ws)


def write_edgelist(graph: Graph, path_or_file) -> None:
    """Write the graph as ``u v w`` lines (0-based, each edge once)."""
    us, vs, ws = graph.edge_arrays()
    fh, owned = _open(path_or_file, "w")
    try:
        for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            fh.write(f"{u} {v} {w}\n")
    finally:
        if owned:
            fh.close()


def save_npz(graph: Graph, path_or_file) -> None:
    """Save a graph (structure, weights, optional coordinates) to a
    compressed ``.npz`` file -- the fast binary alternative to the METIS
    text format for large graphs."""
    arrays = {
        "xadj": graph.xadj,
        "adjncy": graph.adjncy,
        "adjwgt": graph.adjwgt,
        "vwgt": graph.vwgt,
    }
    if graph.coords is not None:
        arrays["coords"] = graph.coords
    np.savez_compressed(path_or_file, **arrays)


def load_npz(path_or_file) -> Graph:
    """Load a graph written by :func:`save_npz` (validated on load)."""
    with np.load(path_or_file) as data:
        try:
            g = Graph(data["xadj"], data["adjncy"], data["vwgt"],
                      data["adjwgt"], validate=True)
        except KeyError as exc:
            raise GraphFormatError(f"npz file is missing array {exc}") from exc
        if "coords" in data:
            g.coords = data["coords"]
    return g
