"""Compressed-sparse-row graph structure with multi-component vertex weights.

This is the central substrate of the library: an undirected graph stored in
the same CSR layout used by METIS (``xadj``/``adjncy``/``adjwgt``) extended
with an ``(n, m)`` integer vertex-weight matrix, where ``m`` is the number of
balance constraints of the multi-constraint partitioning problem
(Karypis & Kumar, SC'98).

Design notes
------------
* Arrays are stored contiguous and typed (``int64``) so that the hot
  vectorized kernels (contraction, gain initialisation, balance sums) run at
  NumPy speed, per the HPC-Python guidance of profiling-then-vectorising.
* Every *undirected* edge ``{u, v}`` appears twice in ``adjncy`` (once in
  each endpoint's adjacency list) with equal weight; :meth:`Graph.validate`
  checks this symmetry.
* Self-loops are disallowed: they can never be cut, so they only distort
  coarsening statistics.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import GraphError, WeightError

__all__ = ["Graph"]

_INT = np.int64


def _as_int_array(a, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(a, dtype=_INT)
    if arr.ndim != 1:
        raise GraphError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


class Graph:
    """An undirected graph in CSR form with ``ncon`` vertex weights per vertex.

    Parameters
    ----------
    xadj:
        ``(n + 1,)`` adjacency index array; the neighbours of vertex ``v``
        are ``adjncy[xadj[v]:xadj[v + 1]]``.
    adjncy:
        ``(2E,)`` flattened adjacency lists (each undirected edge stored in
        both directions).
    vwgt:
        Vertex weights.  Either ``None`` (unit weights, one constraint),
        a ``(n,)`` array (one constraint) or a ``(n, m)`` array
        (``m`` constraints).  Must be non-negative integers.
    adjwgt:
        Edge weights aligned with ``adjncy``; ``None`` means unit weights.
        Must be non-negative integers and symmetric.
    validate:
        When true (default) run :meth:`validate` on construction.  Internal
        callers that construct graphs from already-checked arrays pass
        ``False`` to skip the O(E) check.
    """

    __slots__ = ("xadj", "adjncy", "adjwgt", "vwgt", "_coords")

    def __init__(self, xadj, adjncy, vwgt=None, adjwgt=None, *, validate: bool = True):
        self.xadj = _as_int_array(xadj, "xadj")
        self.adjncy = _as_int_array(adjncy, "adjncy")
        n = self.xadj.shape[0] - 1
        if n < 0:
            raise GraphError("xadj must have at least one entry")

        if vwgt is None:
            vw = np.ones((n, 1), dtype=_INT)
        else:
            try:
                raw = np.asarray(vwgt)
            except ValueError as exc:  # ragged nested sequences
                raise WeightError(f"vwgt is ragged or malformed: {exc}") from exc
            if raw.dtype == object or not np.issubdtype(raw.dtype, np.number):
                raise WeightError(
                    f"vwgt must be numeric and rectangular; got dtype {raw.dtype}"
                )
            if np.issubdtype(raw.dtype, np.floating) and not np.all(np.isfinite(raw)):
                raise WeightError("vertex weights must be finite (no NaN/inf)")
            vw = np.ascontiguousarray(raw, dtype=_INT)
            if vw.ndim == 1:
                vw = vw.reshape(n, 1) if vw.shape[0] == n else vw
            if vw.ndim != 2 or vw.shape[0] != n:
                raise WeightError(
                    f"vwgt must have shape ({n},) or ({n}, m); got {np.shape(vwgt)}"
                )
        self.vwgt = vw

        if adjwgt is None:
            aw = np.ones_like(self.adjncy)
        else:
            aw = _as_int_array(adjwgt, "adjwgt")
        self.adjwgt = aw

        # Optional vertex coordinates (set by generators); not part of the
        # partitioning model, only used by geometric tooling and examples.
        self._coords = None

        if validate:
            self.validate()

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def nvtxs(self) -> int:
        """Number of vertices."""
        return self.xadj.shape[0] - 1

    @property
    def nedges(self) -> int:
        """Number of *undirected* edges."""
        return self.adjncy.shape[0] // 2

    @property
    def ncon(self) -> int:
        """Number of balance constraints (vertex-weight components)."""
        return self.vwgt.shape[1]

    @property
    def coords(self):
        """Optional ``(n, d)`` vertex coordinates, or ``None``."""
        return self._coords

    @coords.setter
    def coords(self, value):
        if value is not None:
            value = np.ascontiguousarray(value, dtype=np.float64)
            if value.ndim != 2 or value.shape[0] != self.nvtxs:
                raise GraphError(
                    f"coords must have shape ({self.nvtxs}, d); got {value.shape}"
                )
        self._coords = value

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        """``(n,)`` array of vertex degrees."""
        return np.diff(self.xadj)

    def neighbors(self, v: int) -> np.ndarray:
        """View of the neighbour ids of ``v`` (do not mutate)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """View of the edge weights incident to ``v``, aligned with
        :meth:`neighbors`."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def total_vwgt(self) -> np.ndarray:
        """``(ncon,)`` total vertex weight per constraint."""
        return self.vwgt.sum(axis=0, dtype=_INT)

    def total_adjwgt(self) -> int:
        """Total *undirected* edge weight (each edge counted once)."""
        return int(self.adjwgt.sum()) // 2

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self.nvtxs):
            for idx in range(int(self.xadj[u]), int(self.xadj[u + 1])):
                v = int(self.adjncy[idx])
                if u < v:
                    yield u, v, int(self.adjwgt[idx])

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised edge list ``(us, vs, ws)`` with ``us < vs``."""
        src = np.repeat(np.arange(self.nvtxs, dtype=_INT), np.diff(self.xadj))
        mask = src < self.adjncy
        return src[mask], self.adjncy[mask], self.adjwgt[mask]

    # ------------------------------------------------------------------ #
    # Derivation helpers
    # ------------------------------------------------------------------ #

    def copy(self) -> "Graph":
        """Deep copy."""
        g = Graph(
            self.xadj.copy(),
            self.adjncy.copy(),
            self.vwgt.copy(),
            self.adjwgt.copy(),
            validate=False,
        )
        if self._coords is not None:
            g.coords = self._coords.copy()
        return g

    def with_vwgt(self, vwgt) -> "Graph":
        """Return a graph sharing this topology but with new vertex weights."""
        g = Graph(self.xadj, self.adjncy, vwgt, self.adjwgt, validate=False)
        vw = g.vwgt
        if vw.shape[0] != self.nvtxs:
            raise WeightError(
                f"vwgt must cover {self.nvtxs} vertices; got shape {vw.shape}"
            )
        if np.any(vw < 0):
            raise WeightError("vertex weights must be non-negative")
        g._coords = self._coords
        return g

    def with_adjwgt(self, adjwgt) -> "Graph":
        """Return a graph sharing this topology but with new edge weights."""
        g = Graph(self.xadj, self.adjncy, self.vwgt, adjwgt, validate=False)
        if g.adjwgt.shape != self.adjncy.shape:
            raise WeightError("adjwgt must align with adjncy")
        if np.any(g.adjwgt < 0):
            raise WeightError("edge weights must be non-negative")
        g.validate()
        g._coords = self._coords
        return g

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` on failure.

        Checks: monotone ``xadj``; neighbour ids in range; no self-loops;
        symmetric adjacency with symmetric edge weights; non-negative
        weights; aligned array lengths.
        """
        n = self.nvtxs
        if self.xadj[0] != 0 or self.xadj[-1] != self.adjncy.shape[0]:
            raise GraphError("xadj must start at 0 and end at len(adjncy)")
        if np.any(np.diff(self.xadj) < 0):
            raise GraphError("xadj must be non-decreasing")
        if self.adjwgt.shape != self.adjncy.shape:
            raise GraphError("adjwgt must align with adjncy")
        if self.vwgt.shape[0] != n:
            raise WeightError(f"vwgt has {self.vwgt.shape[0]} rows, expected {n}")
        if np.any(self.vwgt < 0):
            raise WeightError("vertex weights must be non-negative")
        if np.any(self.adjwgt < 0):
            raise WeightError("edge weights must be non-negative")
        if self.adjncy.shape[0] == 0:
            return
        if self.adjncy.min() < 0 or self.adjncy.max() >= n:
            raise GraphError("adjncy contains out-of-range vertex ids")

        src = np.repeat(np.arange(n, dtype=_INT), np.diff(self.xadj))
        if np.any(src == self.adjncy):
            raise GraphError("self-loops are not allowed")

        # Symmetry: the multiset of (u, v, w) directed edges must equal the
        # multiset of (v, u, w).  Encode each endpoint pair as one composite
        # int64 key (safe: u * n + v < n**2 <= 2**63 for any graph that fits
        # in memory) so the comparison needs two 2-key lexsorts instead of
        # the previous 3-key ones.
        key_fwd = src * _INT(n) + self.adjncy
        key_rev = self.adjncy * _INT(n) + src
        fwd = np.lexsort((self.adjwgt, key_fwd))
        rev = np.lexsort((self.adjwgt, key_rev))
        if not (
            np.array_equal(key_fwd[fwd], key_rev[rev])
            and np.array_equal(self.adjwgt[fwd], self.adjwgt[rev])
        ):
            raise GraphError("adjacency (or edge weights) not symmetric")

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(nvtxs={self.nvtxs}, nedges={self.nedges}, ncon={self.ncon})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self.xadj, other.xadj)
            and np.array_equal(self.adjncy, other.adjncy)
            and np.array_equal(self.adjwgt, other.adjwgt)
            and np.array_equal(self.vwgt, other.vwgt)
        )

    # Graphs are mutable containers of arrays; keep them unhashable.
    __hash__ = None
