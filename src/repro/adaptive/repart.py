"""Adaptive repartitioning.

In adaptive multi-phase simulations the weight vectors change as the
computation evolves (the crash front moves, particles drift), and the mesh
must be re-decomposed *frequently*.  Partitioning from scratch each step
optimises the cut but ignores **migration**: every vertex that changes
parts must ship its data.  This module provides:

* :func:`migration_volume` / :func:`migration_stats` -- the data-movement
  cost of replacing one partition with another;
* :func:`refine_partition` -- local repartitioning: keep the old assignment,
  restore balance under the *new* weights, then run multi-constraint k-way
  refinement (small migration, slightly worse cut);
* :func:`adaptive_repartition` -- compute both the locally-refined and the
  from-scratch partition, score each as ``cut + itr * migration`` (the
  standard relative-cost knob: ``itr`` = cost of migrating one unit of
  vertex weight in units of cut weight), and return the cheaper one.

This mirrors the adaptive mode the multi-constraint partitioner family grew
(in ParMETIS) for exactly these workloads; SC'98's algorithms are the
static core it builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng, spawn
from ..errors import PartitionError
from ..graph.csr import Graph
from ..partition.api import PartitionResult, part_graph
from ..partition.config import PartitionOptions
from ..refine.gain import edge_cut
from ..refine.kwayref import KWayState, balance_kway_state, kway_refine
from ..weights.balance import FEASIBILITY_EPS, as_ubvec, imbalance

__all__ = [
    "migration_volume",
    "migration_stats",
    "refine_partition",
    "adaptive_repartition",
    "RepartitionResult",
]


def migration_volume(vwgt: np.ndarray, old_part, new_part) -> int:
    """Total (summed over constraints) weight of vertices whose part
    changes -- the data volume that must move."""
    old_part = np.asarray(old_part)
    new_part = np.asarray(new_part)
    if old_part.shape != new_part.shape:
        raise PartitionError("partition vectors must align")
    moved = old_part != new_part
    return int(np.asarray(vwgt)[moved].sum())


def migration_stats(vwgt: np.ndarray, old_part, new_part) -> dict:
    """Moved-vertex count, per-constraint moved weight, and the summed
    migration volume.

    Every value is a plain Python int/float/list (``moved_weight`` is a
    length-``ncon`` list of ints), so the dict round-trips through
    ``json.dumps`` unchanged -- stats payloads are shipped over the serve
    layer and raw numpy scalars/arrays are not JSON-serialisable.
    """
    old_part = np.asarray(old_part)
    new_part = np.asarray(new_part)
    moved = old_part != new_part
    w = np.asarray(vwgt)
    return {
        "moved_vertices": int(moved.sum()),
        "moved_fraction": float(moved.mean()) if moved.size else 0.0,
        "moved_weight": [int(x) for x in np.atleast_1d(w[moved].sum(axis=0))],
        "volume": int(w[moved].sum()),
    }


@dataclass
class RepartitionResult:
    """Outcome of an adaptive repartitioning step."""

    part: np.ndarray
    nparts: int
    edgecut: int
    imbalance: np.ndarray
    feasible: bool
    migration: dict
    strategy: str  # "refine" or "scratch"

    @property
    def max_imbalance(self) -> float:
        return float(self.imbalance.max(initial=0.0))

    def summary(self) -> str:
        imb = ", ".join(f"{x:.3f}" for x in self.imbalance)
        return (
            f"repartition[{self.strategy}] k={self.nparts}: cut={self.edgecut} "
            f"imbalance=[{imb}] moved={self.migration['moved_fraction']:.1%}"
        )


def refine_partition(
    graph: Graph,
    old_part,
    nparts: int,
    *,
    ubvec=1.05,
    npasses: int = 8,
    seed=None,
) -> RepartitionResult:
    """Locally repartition: rebalance ``old_part`` under ``graph``'s
    (possibly changed) weights, then refine.  Does not mutate ``old_part``.
    """
    old_part = np.asarray(old_part, dtype=np.int64)
    if old_part.shape != (graph.nvtxs,):
        raise PartitionError("old_part must cover all vertices")
    if old_part.size and (old_part.min() < 0 or old_part.max() >= nparts):
        raise PartitionError("old_part ids out of range")
    ub = as_ubvec(ubvec, graph.ncon)
    where = old_part.copy()

    state = KWayState(graph, where, nparts, ub)
    balance_kway_state(state)
    kway_refine(graph, where, nparts, ubvec=ub, npasses=npasses, seed=seed)

    imb = imbalance(graph.vwgt, where, nparts)
    return RepartitionResult(
        part=where,
        nparts=nparts,
        edgecut=edge_cut(graph, where),
        imbalance=imb,
        feasible=bool(np.all(imb <= ub + FEASIBILITY_EPS)),
        migration=migration_stats(graph.vwgt, old_part, where),
        strategy="refine",
    )


def adaptive_repartition(
    graph: Graph,
    old_part,
    nparts: int,
    *,
    ubvec=1.05,
    itr: float = 0.05,
    options: PartitionOptions | None = None,
    seed=None,
) -> RepartitionResult:
    """Repartition after a weight change, trading cut against migration.

    Computes the locally-refined candidate and the from-scratch candidate;
    an infeasible candidate always loses to a feasible one, otherwise the
    score ``edgecut + itr * migration_volume`` decides (``itr`` is the
    relative cost of moving one unit of vertex weight vs. communicating one
    unit of cut per step; small ``itr`` favours from-scratch quality, large
    ``itr`` favours staying put).
    """
    rng = as_rng(seed)
    (s1, s2) = spawn(rng, 2)
    local = refine_partition(graph, old_part, nparts, ubvec=ubvec, seed=s1)

    if options is None:
        options = PartitionOptions(ubvec=ubvec, seed=s2)
    else:
        options = options.with_(ubvec=ubvec, seed=s2)
    scratch_res: PartitionResult = part_graph(graph, nparts, options=options)
    scratch = RepartitionResult(
        part=scratch_res.part,
        nparts=nparts,
        edgecut=scratch_res.edgecut,
        imbalance=scratch_res.imbalance,
        feasible=scratch_res.feasible,
        migration=migration_stats(graph.vwgt, np.asarray(old_part), scratch_res.part),
        strategy="scratch",
    )

    def score(r: RepartitionResult):
        return (not r.feasible, r.edgecut + itr * r.migration["volume"])

    return min((local, scratch), key=score)
