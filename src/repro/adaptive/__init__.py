"""Adaptive repartitioning: local refinement of an existing partition under
changed weights, migration accounting, and the cut-vs-migration trade."""

from .repart import (
    RepartitionResult,
    adaptive_repartition,
    migration_stats,
    migration_volume,
    refine_partition,
)

__all__ = [
    "migration_volume",
    "migration_stats",
    "refine_partition",
    "adaptive_repartition",
    "RepartitionResult",
]
