#!/usr/bin/env python3
"""Look inside the multilevel machine.

Walks one multi-constraint partitioning run end to end and prints what the
paper's analysis reasons about at each stage:

1. the coarsening profile (shrink rate, exposed edge weight per level --
   what heavy-edge matching removes),
2. the per-level refinement trace (cut and balance after every projection),
3. the anatomy of the final partition (per-part weights, boundaries,
   subdomain degrees), and
4. an SVG rendering of the decomposition (written next to this script).

Run:  python examples/multilevel_anatomy.py
"""

import os

from repro import part_graph
from repro.analysis import coarsening_profile, partition_anatomy, profile_text
from repro.coarsen import coarsen
from repro.mesh import delaunay_triangulation, dual_graph
from repro.metrics import format_table
from repro.viz import save_partition_svg
from repro.weights import type1_region_weights

N_POINTS = 4000
K = 6
M = 2
SEED = 21


def main() -> None:
    # Start from an actual FEM-style mesh and take its dual -- the paper's
    # input pipeline.
    mesh = delaunay_triangulation(N_POINTS, seed=SEED)
    graph = dual_graph(mesh)
    graph = graph.with_vwgt(type1_region_weights(graph, M, seed=SEED))
    print(f"Delaunay mesh: {mesh.nelements} elements -> dual {graph}")

    # 1. Coarsening profile.
    hier = coarsen(graph, coarsen_to=100, seed=SEED)
    print()
    print(profile_text(coarsening_profile(hier)))

    # 2. Full partition with the multilevel trace enabled.
    res = part_graph(graph, K, seed=SEED, collect_stats=True)
    print()
    print(format_table(
        ["level size", "cut", "moves", "imbalance"],
        [[t["nvtxs"], t["cut"], t["moves"], f"{t['imbalance']:.3f}"]
         for t in res.stats["trace"]],
        title="refinement trace (coarse -> fine)",
    ))
    print(f"\nphase timings: coarsen {res.stats['coarsen_seconds']:.2f}s, "
          f"initial {res.stats['initpart_seconds']:.2f}s, "
          f"refine {res.stats['refine_seconds']:.2f}s")

    # 3. Final anatomy.
    print()
    rows = [
        [r["part"], r["nvtxs"], r["weights"], r["boundary"],
         r["internal_edge_weight"], r["external_edge_weight"],
         r["subdomain_degree"]]
        for r in partition_anatomy(graph, res.part, K)
    ]
    print(format_table(
        ["part", "vertices", "weights", "boundary", "internal w",
         "external w", "degree"],
        rows,
        title=f"final {K}-way partition anatomy ({res.summary()})",
    ))

    # 4. Picture.
    out = os.path.join(os.path.dirname(__file__), "multilevel_anatomy.svg")
    save_partition_svg(graph, res.part, out)
    print(f"\nSVG rendering written to {out}")


if __name__ == "__main__":
    main()
