#!/usr/bin/env python3
"""Simulated parallel multi-constraint partitioning (extension).

Runs the coarse-grain parallel formulation -- conflict-arbitrated matching
plus reservation-based refinement -- on a simulated cluster with an
alpha-beta cost model, sweeping the rank count.  Quality should stay at the
serial level while the modelled time drops (until the graph is too small
per rank, exactly the efficiency cliff the parallel literature reports).

NOTE: this reproduces the *future-work* direction of the SC'98 paper
(realised by its Euro-Par 2000 follow-on), on a simulation -- see DESIGN.md.

Run:  python examples/parallel_simulation.py
"""

from repro import mesh_like, part_graph, type1_region_weights
from repro.metrics import format_table
from repro.parallel import parallel_part_graph
from repro.partition import PartitionOptions

N = 12000
K = 16
M = 3
SEED = 5


def main() -> None:
    graph = mesh_like(N, seed=SEED)
    graph = graph.with_vwgt(type1_region_weights(graph, M, seed=SEED))
    print(f"{graph} -- {K}-way, {M} constraints, simulated cluster\n")

    serial = part_graph(graph, K, seed=SEED)
    print(f"serial reference: cut={serial.edgecut} "
          f"imbalance={serial.max_imbalance:.3f}\n")

    rows = []
    t1 = None
    for p in (1, 2, 4, 8, 16, 32):
        res = parallel_part_graph(graph, K, p, options=PartitionOptions(seed=SEED))
        if t1 is None:
            t1 = res.simulated_time
        speedup = t1 / res.simulated_time
        rows.append([
            p,
            res.edgecut,
            f"{res.edgecut / serial.edgecut:.2f}",
            f"{res.max_imbalance:.3f}",
            f"{res.simulated_time * 1e3:.2f}",
            f"{speedup:.2f}",
            f"{speedup / p:.2f}",
            res.stats.total_bytes // 1024,
        ])

    print(format_table(
        ["ranks", "cut", "cut/serial", "imbalance", "t_sim (ms)",
         "speedup", "efficiency", "KiB moved"],
        rows,
        title="Simulated parallel multi-constraint partitioner (alpha-beta model)",
    ))
    print("\nEfficiency decays once the per-rank share of the graph is small --")
    print("the O(p^2 log p) isoefficiency shape of the coarse-grain formulation.")


if __name__ == "__main__":
    main()
