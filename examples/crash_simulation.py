#!/usr/bin/env python3
"""Multi-phase load balancing for a crash-worthiness-style simulation.

The paper's motivating scenario (Basermann et al. used exactly this
partitioner for Audi/BMW frontal-impact simulations): each timestep runs a
finite-element phase over the whole mesh and a contact-detection phase over
the crumple zone only, with a synchronisation point between them.  A
partitioner that balances total work piles the contact zone onto a few
processors; per-phase (multi-constraint) balancing fixes it.

This example quantifies the modelled timestep duration (makespan) under
both partitioners.

Run:  python examples/crash_simulation.py
"""

from repro import mesh_like, part_graph
from repro.baselines import part_graph_single
from repro.metrics import format_table
from repro.multiphase import crash_simulation

N = 10000
SEED = 7


def main() -> None:
    mesh = mesh_like(N, seed=SEED)
    sim = crash_simulation(mesh, contact_fraction=0.12, contact_cost=4.0, seed=SEED)
    graph = sim.weighted_graph()
    print(f"Crash mesh: {mesh.nvtxs} elements; contact zone carries "
          f"{sim.phases[1].active.mean():.0%} of elements at "
          f"{sim.phases[1].cost.max():.0f}x cost.")

    rows = []
    for k in (4, 8, 16):
        sc = part_graph_single(graph, k, mode="sum", seed=SEED)
        mc = part_graph(graph, k, seed=SEED)
        ms_sc = sim.makespan(sc.part, k)
        ms_mc = sim.makespan(mc.part, k)
        rows.append([
            k,
            f"{ms_sc:.0f}", f"{sim.efficiency(sc.part, k):.2f}",
            f"{ms_mc:.0f}", f"{sim.efficiency(mc.part, k):.2f}",
            f"{ms_sc / ms_mc:.2f}x",
        ])

    print()
    print(format_table(
        ["k", "SC makespan", "SC eff", "MC makespan", "MC eff", "MC speedup"],
        rows,
        title="Modelled timestep duration: single- vs multi-constraint partitioning",
    ))
    print()
    k = 8
    mc = part_graph(graph, k, seed=SEED)
    sc = part_graph_single(graph, k, mode="sum", seed=SEED)
    print("Per-phase imbalance at k=8 (max part work / average part work):")
    print(format_table(
        ["phase", "single-constraint", "multi-constraint"],
        [
            [ph.name, f"{si:.2f}", f"{mi:.2f}"]
            for ph, si, mi in zip(
                sim.phases,
                sim.phase_imbalance(sc.part, k),
                sim.phase_imbalance(mc.part, k),
            )
        ],
    ))


if __name__ == "__main__":
    main()
