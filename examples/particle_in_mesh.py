#!/usr/bin/env python3
"""Particle-in-mesh: two coupled phases with very different spatial
distributions.

Phase 1 solves fields on every cell; phase 2 pushes particles that cluster
in one region of the domain.  The example sweeps the number of constraints
exposed to the partitioner:

* m=1 ("sum")    -- classic partitioning of total work,
* m=2 ("phases") -- one constraint per phase (the paper's formulation),

and reports modelled efficiency plus the communication price paid for the
extra constraint (edge-cut ratio).

Run:  python examples/particle_in_mesh.py
"""

from repro import part_graph
from repro.baselines import part_graph_single
from repro.graph import delaunay_mesh
from repro.metrics import format_table
from repro.multiphase import particle_in_mesh

N = 6000
K = 8
SEED = 11


def main() -> None:
    mesh = delaunay_mesh(N, seed=SEED)
    sim = particle_in_mesh(mesh, particle_fraction=0.25,
                           particles_per_cell=6.0, seed=SEED)
    graph = sim.weighted_graph()
    part_frac = sim.phases[1].active.mean()
    print(f"Delaunay mesh, {N} cells; particles occupy {part_frac:.0%} of cells.")
    print(f"Total work: mesh={sim.phases[0].total_work:.0f}, "
          f"particles={sim.phases[1].total_work:.0f}")

    sc = part_graph_single(graph, K, mode="sum", seed=SEED)
    mc = part_graph(graph, K, seed=SEED)

    rows = [
        ["single-constraint (total work)", sc.edgecut,
         f"{sim.phase_imbalance(sc.part, K)[0]:.2f}",
         f"{sim.phase_imbalance(sc.part, K)[1]:.2f}",
         f"{sim.efficiency(sc.part, K):.2f}"],
        ["multi-constraint (per phase)", mc.edgecut,
         f"{sim.phase_imbalance(mc.part, K)[0]:.2f}",
         f"{sim.phase_imbalance(mc.part, K)[1]:.2f}",
         f"{sim.efficiency(mc.part, K):.2f}"],
    ]
    print()
    print(format_table(
        ["partitioner", "edge-cut", "mesh-phase imb", "particle-phase imb", "efficiency"],
        rows,
        title=f"{K}-way decomposition of a particle-in-mesh timestep",
    ))
    print()
    cut_ratio = mc.edgecut / max(sc.edgecut, 1)
    print(f"The multi-constraint partition pays a {cut_ratio:.2f}x edge-cut to win "
          f"{sim.efficiency(mc.part, K) / sim.efficiency(sc.part, K):.2f}x efficiency --")
    print("the communication/idle-time trade the paper quantifies.")


if __name__ == "__main__":
    main()
