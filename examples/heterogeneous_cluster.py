#!/usr/bin/env python3
"""Non-uniform target part sizes: decomposing for a heterogeneous cluster.

A common deployment reality: nodes of different speeds.  Four node classes
with relative speeds 4:2:1:1 should receive matching shares of *every*
phase's work.  The partitioner supports this through ``target_fracs``
(the METIS ``tpwgts`` analogue); every constraint uses the same per-part
fraction, as in the paper's formulation.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import mesh_like, part_graph, type1_region_weights
from repro.metrics import format_table
from repro.weights import part_weights

N = 6000
SEED = 17

# Eight processors: two fast (4x), two medium (2x), four slow (1x).
SPEEDS = np.array([4.0, 4.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0])


def main() -> None:
    graph = mesh_like(N, seed=SEED)
    graph = graph.with_vwgt(type1_region_weights(graph, 2, seed=SEED))
    fracs = SPEEDS / SPEEDS.sum()
    k = len(SPEEDS)

    res = part_graph(graph, k, target_fracs=fracs, ubvec=1.05, seed=SEED)
    pw = part_weights(graph.vwgt, res.part, k).astype(float)
    pw /= pw.sum(axis=0)

    rows = []
    for j in range(k):
        rows.append([
            j, f"{SPEEDS[j]:.0f}x", f"{fracs[j]:.3f}",
            f"{pw[j, 0]:.3f}", f"{pw[j, 1]:.3f}",
            f"{max(pw[j]) / fracs[j]:.3f}",
        ])
    print(format_table(
        ["part", "speed", "target share", "constraint-0 share",
         "constraint-1 share", "worst ratio"],
        rows,
        title=f"{k}-way heterogeneous decomposition "
              f"({res.summary()})",
    ))
    print()
    print("Each node's share of BOTH constraints tracks its speed; the")
    print("'worst ratio' column is the per-part imbalance against its own")
    print("target (1.00 = perfect, tolerance 1.05).")

    # Contrast: uniform targets on the same graph would overload the slow
    # nodes by 2x relative to their capacity.
    uni = part_graph(graph, k, ubvec=1.05, seed=SEED)
    pw_u = part_weights(graph.vwgt, uni.part, k).astype(float)
    pw_u /= pw_u.sum(axis=0)
    slow_load = pw_u[4:, :].max()
    print(f"\nWith uniform targets the slow nodes would receive up to "
          f"{slow_load:.3f} of the work each -- {slow_load / fracs[4]:.1f}x "
          f"their fair share.")


if __name__ == "__main__":
    main()
