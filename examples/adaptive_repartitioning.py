#!/usr/bin/env python3
"""Adaptive repartitioning of a moving multi-phase workload.

A crash front sweeps across the mesh over 8 timesteps: the second phase's
active zone (and its weight) moves, so yesterday's balanced decomposition
drifts out of balance.  Three policies are compared per step:

* **static**  -- keep the t=0 partition (no migration, balance decays);
* **scratch** -- repartition from scratch each step (best cut, huge
  migration);
* **adaptive** -- ``repro.adaptive.adaptive_repartition`` (local refinement
  unless a fresh partition is worth its migration).

Run:  python examples/adaptive_repartitioning.py
"""

import numpy as np

from repro import mesh_like, part_graph
from repro.adaptive import adaptive_repartition, migration_stats
from repro.graph.ops import bfs_levels
from repro.metrics import format_table
from repro.weights import max_imbalance

N = 8000
K = 8
STEPS = 8
SEED = 3


def step_weights(graph, front_pos: float) -> np.ndarray:
    """Two-constraint weights for one timestep: constraint 0 = base FE work
    (uniform), constraint 1 = contact work in a band of the mesh whose
    position follows ``front_pos`` in [0, 1] (measured by BFS depth from a
    fixed corner, a cheap geometry-free 'sweep coordinate')."""
    depth = step_weights.depth
    dmax = depth.max()
    # The front sweeps the bulk of the mesh but stops short of the sparse
    # far tail of the BFS ordering, where the active band would hold too
    # few (weight-5, indivisible) elements to be divisible 8 ways at 5%.
    centre = (0.1 + 0.7 * front_pos) * dmax
    band = np.abs(depth - centre) <= 0.1 * dmax
    contact = np.where(band, 5, 0)
    if contact.sum() == 0:
        contact[0] = 5
    return np.stack([np.ones(graph.nvtxs, dtype=np.int64), contact], axis=1)


def main() -> None:
    graph = mesh_like(N, seed=SEED)
    step_weights.depth = bfs_levels(graph, 0).astype(np.float64)

    g0 = graph.with_vwgt(step_weights(graph, 0.0))
    base = part_graph(g0, K, seed=SEED)
    static = base.part
    scratch_prev = base.part
    adaptive_prev = base.part

    rows = []
    totals = {"scratch": 0, "adaptive": 0}
    for t in range(1, STEPS + 1):
        g = graph.with_vwgt(step_weights(graph, t / STEPS))

        st_imb = max_imbalance(g.vwgt, static, K)

        sc = part_graph(g, K, seed=SEED + t)
        sc_mig = migration_stats(g.vwgt, scratch_prev, sc.part)
        scratch_prev = sc.part
        totals["scratch"] += sc_mig["volume"]

        ad = adaptive_repartition(g, adaptive_prev, K, itr=0.5, seed=SEED + t)
        adaptive_prev = ad.part
        totals["adaptive"] += ad.migration["volume"]

        rows.append([
            t, f"{st_imb:.2f}",
            sc.edgecut, f"{sc_mig['moved_fraction']:.0%}",
            ad.edgecut, f"{ad.migration['moved_fraction']:.0%}",
            ad.strategy, f"{ad.max_imbalance:.3f}",
        ])

    print(format_table(
        ["step", "static imb", "scratch cut", "scratch moved",
         "adaptive cut", "adaptive moved", "choice", "adaptive imb"],
        rows,
        title=f"Moving crash front, {K}-way, {STEPS} steps "
              f"(tolerance 5%, itr=0.5)",
    ))
    print()
    ratio = totals["scratch"] / max(totals["adaptive"], 1)
    print(f"Total migrated weight: scratch={totals['scratch']}, "
          f"adaptive={totals['adaptive']}  ({ratio:.1f}x less movement)")
    print("The static partition's imbalance grows as the front moves;")
    print("adaptive repartitioning keeps balance at a fraction of the")
    print("migration cost of partitioning from scratch.")


if __name__ == "__main__":
    main()
