#!/usr/bin/env python3
"""One-shot reproduction driver (fast slice).

Runs a condensed version of the headline experiments without pytest and
prints the paper-shaped tables:

* E1 slice -- multi-constraint cut vs single-constraint, m = 2..5;
* E2 slice -- per-phase balance: multi-constraint vs sum-balanced;
* E4 slice -- run time vs number of constraints;
* M1 slice -- modelled multi-phase makespan win.

The full sweeps (all graphs, all k, ablations, parallel scaling) live in
``pytest benchmarks/ --benchmark-only``; this script is the five-minute
version.

Run:  python examples/reproduce_paper.py
"""

import time

from repro import mesh_like, part_graph
from repro.baselines import part_graph_single
from repro.metrics import format_table
from repro.multiphase import from_type2
from repro.weights import (
    imbalance,
    type1_region_weights,
    type2_multiphase,
)
from repro.weights.generators import coactivity_edge_weights

N = 5000
K = 8
SEED = 1998


def e1_slice(base):
    sc = part_graph(base, K, seed=SEED)
    rows = []
    for m in (2, 3, 4, 5):
        g = base.with_vwgt(type1_region_weights(base, m, seed=SEED + m))
        mc = part_graph(g, K, seed=SEED)
        rows.append([
            f"{m} cons 1", mc.edgecut,
            f"{mc.edgecut / max(sc.edgecut, 1):.2f}",
            f"{mc.max_imbalance:.3f}",
            "yes" if mc.feasible else "NO",
        ])
    print(format_table(
        ["problem", "MC cut", "cut / SC", "max imbalance", "balanced"],
        rows,
        f"E1 (slice): Type-1 problems, k={K}, tolerance 5%",
    ))


def e2_slice(base):
    rows = []
    for m in (2, 3, 4):
        vw, act = type2_multiphase(base, m, seed=SEED + m)
        g = base.with_vwgt(vw).with_adjwgt(coactivity_edge_weights(base, act))
        sc = part_graph_single(g, K, mode="sum", seed=SEED)
        mc = part_graph(g, K, seed=SEED)
        rows.append([
            f"{m} cons 2",
            f"{float(imbalance(g.vwgt, sc.part, K).max()):.3f}",
            f"{mc.max_imbalance:.3f}",
            f"{mc.edgecut / max(sc.edgecut, 1):.2f}",
        ])
    print(format_table(
        ["problem", "SC worst phase imb", "MC worst phase imb", "cut price"],
        rows,
        f"\nE2 (slice): Type-2 multi-phase problems, k={K}",
    ))


def e4_slice(base):
    rows = []
    t1 = None
    for m in (1, 2, 3, 5):
        g = base if m == 1 else base.with_vwgt(
            type1_region_weights(base, m, seed=SEED + m)
        )
        t0 = time.perf_counter()
        part_graph(g, K, seed=SEED)
        dt = time.perf_counter() - t0
        if t1 is None:
            t1 = dt
        rows.append([m, f"{dt:.2f}", f"{dt / t1:.2f}"])
    print(format_table(
        ["constraints m", "time (s)", "vs m=1"],
        rows,
        "\nE4 (slice): run time vs number of constraints (O(nm) claim)",
    ))


def m1_slice(base):
    rows = []
    for m in (2, 4):
        sim = from_type2(base, m, seed=SEED + m)
        g = sim.weighted_graph()
        sc = part_graph_single(g, K, mode="sum", seed=SEED)
        mc = part_graph(g, K, seed=SEED)
        rows.append([
            m,
            f"{sim.efficiency(sc.part, K):.2f}",
            f"{sim.efficiency(mc.part, K):.2f}",
            f"{sim.makespan(sc.part, K) / sim.makespan(mc.part, K):.2f}x",
        ])
    print(format_table(
        ["phases", "SC efficiency", "MC efficiency", "MC speedup"],
        rows,
        "\nM1 (slice): modelled multi-phase timestep duration",
    ))


def main() -> None:
    print(f"Reproduction slice on a {N}-vertex synthetic mesh "
          f"(full sweeps: pytest benchmarks/ --benchmark-only)\n")
    base = mesh_like(N, seed=SEED)
    e1_slice(base)
    e2_slice(base)
    e4_slice(base)
    m1_slice(base)
    print("\nExpected shapes (see EXPERIMENTS.md): cut ratio grows ~1.2 -> ~2.4")
    print("with m; MC balances every phase at 5% where SC does not; time grows")
    print("mildly with m; MC wins the modelled makespan.")


if __name__ == "__main__":
    main()
