#!/usr/bin/env python3
"""Quickstart: partition an irregular mesh under three balance constraints.

Builds a synthetic FEM-style mesh, attaches a Type-1 multi-weight workload
(three constraints, constant per contiguous region -- the paper's first
experiment family), partitions it 8 ways with both multilevel formulations,
and compares against the single-constraint baseline.

Run:  python examples/quickstart.py
"""

from repro import mesh_like, part_graph, type1_region_weights
from repro.baselines import part_graph_single
from repro.metrics import PartitionReport, format_table
from repro.weights import imbalance

N = 8000
K = 8
M = 3
SEED = 42


def main() -> None:
    print(f"Building a {N}-vertex mesh with {M} region-correlated constraints ...")
    graph = mesh_like(N, seed=SEED)
    graph = graph.with_vwgt(type1_region_weights(graph, M, seed=SEED))
    print(f"  {graph}")

    rows = []
    results = {}
    for method in ("kway", "recursive"):
        res = part_graph(graph, K, method=method, ubvec=1.05, seed=SEED)
        results[method] = res
        rows.append([method, res.edgecut, f"{res.max_imbalance:.3f}",
                     "yes" if res.feasible else "NO"])

    # Single-constraint baseline: balances total weight, ignores the
    # individual constraints.
    sc = part_graph_single(graph, K, mode="sum", seed=SEED)
    sc_imb = imbalance(graph.vwgt, sc.part, K)
    rows.append(["single-constraint (sum)", sc.edgecut,
                 f"{sc_imb.max():.3f}", "n/a (1 constraint)"])

    print()
    print(format_table(
        ["partitioner", "edge-cut", "worst imbalance", "all constraints ok"],
        rows,
        title=f"{K}-way partition, {M} constraints, 5% tolerance",
    ))

    print()
    best = results["kway"]
    print("Full report for the k-way partition:")
    print(" ", PartitionReport.from_partition(graph, best.part, K))
    print()
    print("Note how the single-constraint baseline achieves a low cut but")
    print("violates the per-constraint balance -- the problem this paper's")
    print("algorithms exist to solve.")


if __name__ == "__main__":
    main()
