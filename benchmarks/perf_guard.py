#!/usr/bin/env python
"""Performance-regression guard for the hot-path kernels.

Runs the end-to-end partitioning benchmark family (the ``bench_runtime_n``
ladder), collects per-phase timings from ``repro.trace`` spans, and writes
a ``BENCH_kernels.json`` artifact.  When a recorded baseline exists the run
**fails (exit 1) if edge-cut or balance regress beyond tolerance** -- wall
clock is reported but never gated in smoke mode, so the quality guard is
safe to run on shared CI machines.

Modes
-----
``full`` (default)
    sm1-sm3 graphs, k=16, m=3 -- the acceptance configuration.  Reports
    the speedup against the recorded pre-optimization reference timings.
``--smoke``
    Tiny graphs (~500 vertices), quality-only assertions, no wall-clock
    gating; fast enough for every PR (see ``make bench-smoke``).

Usage
-----
    PYTHONPATH=src python benchmarks/perf_guard.py            # guard vs baseline
    PYTHONPATH=src python benchmarks/perf_guard.py --smoke    # CI quality guard
    PYTHONPATH=src python benchmarks/perf_guard.py --record   # (re)record baseline

See ``docs/performance.md`` for how to read the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _util import MASTER_SEED, RESULTS_DIR, type1_graph  # noqa: E402

from repro.graph import mesh_like  # noqa: E402
from repro.partition import part_graph  # noqa: E402
from repro.weights import type1_region_weights  # noqa: E402

DEFAULT_BASELINE = os.path.join(RESULTS_DIR, "BENCH_kernels.json")

K = 16
M = 3
SEED = 4  # the bench_runtime_n configuration

SMOKE_SIZES = (400, 700)
SMOKE_K = 4
SMOKE_M = 2


def _smoke_graph(n: int):
    g = mesh_like(n, seed=MASTER_SEED + n)
    return g.with_vwgt(type1_region_weights(g, SMOKE_M, nregions=8, seed=MASTER_SEED + n))


def _run_case(name, graph, k, seed, repeats=5):
    # Wall clock from untraced runs (best of ``repeats``; this machine's
    # run-to-run noise is large, so more repeats than the old best-of-2
    # reference); phase breakdown from one traced run so tracing overhead
    # never rides on the reported seconds.
    secs = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        res = part_graph(graph, k, seed=seed)
        dt = time.perf_counter() - t0
        secs = dt if secs is None else min(secs, dt)
    res = part_graph(graph, k, seed=seed, collect_stats=True)
    rep = res.stats
    return {
        "graph": name,
        "nvtxs": graph.nvtxs,
        "nedges": graph.nedges,
        "ncon": graph.ncon,
        "seconds": round(secs, 4),
        "coarsen_seconds": round(rep.phase_seconds("coarsen"), 4),
        "initpart_seconds": round(rep.phase_seconds("initpart"), 4),
        "refine_seconds": round(rep.phase_seconds("refine"), 4),
        "edgecut": int(res.edgecut),
        "max_imbalance": round(res.max_imbalance, 6),
        "imbalance": [round(float(x), 6) for x in res.imbalance],
        "feasible": bool(res.feasible),
    }


def _with_fraction(case: dict) -> dict:
    """Attach the initpart phase fraction (initpart over the sum of the
    traced phases -- consistent units from the same traced run)."""
    phases = (case.get("coarsen_seconds", 0.0) + case.get("initpart_seconds", 0.0)
              + case.get("refine_seconds", 0.0))
    case["initpart_fraction"] = round(
        case.get("initpart_seconds", 0.0) / phases, 4) if phases > 0 else 0.0
    return case


def run_suite(smoke: bool) -> dict:
    cases = []
    if smoke:
        for n in SMOKE_SIZES:
            cases.append(_with_fraction(
                _run_case(f"smoke{n}", _smoke_graph(n), SMOKE_K, SEED,
                          repeats=1)))
        config = {"k": SMOKE_K, "m": SMOKE_M, "seed": SEED}
    else:
        for name in ("sm1", "sm2", "sm3"):
            cases.append(_with_fraction(
                _run_case(name, type1_graph(name, M), K, SEED)))
        config = {"k": K, "m": M, "seed": SEED}
    return {
        "schema": "BENCH_kernels/v1",
        "mode": "smoke" if smoke else "full",
        "config": config,
        "cases": cases,
        "total_seconds": round(sum(c["seconds"] for c in cases), 4),
    }


def check_against(result: dict, baseline: dict, cut_tol: float, imb_tol: float) -> list[str]:
    """Quality gates: cut and balance must not regress beyond tolerance.
    Returns a list of human-readable failures (empty = pass)."""
    failures = []
    base_cases = {c["graph"]: c for c in baseline.get("cases", [])}
    for c in result["cases"]:
        b = base_cases.get(c["graph"])
        if b is None:
            continue
        limit = b["edgecut"] * (1.0 + cut_tol)
        if c["edgecut"] > limit:
            failures.append(
                f"{c['graph']}: edge-cut {c['edgecut']} exceeds baseline "
                f"{b['edgecut']} by more than {cut_tol:.0%} (limit {limit:.0f})"
            )
        if c["max_imbalance"] > b["max_imbalance"] + imb_tol:
            failures.append(
                f"{c['graph']}: max imbalance {c['max_imbalance']:.4f} exceeds "
                f"baseline {b['max_imbalance']:.4f} + {imb_tol}"
            )
        if not c["feasible"] and b["feasible"]:
            failures.append(f"{c['graph']}: partition became infeasible")
    return failures


def check_artifact(baseline: dict, *, min_speedup: float,
                   max_init_fraction: float) -> list[str]:
    """Validate the *recorded* artifact without re-measuring anything
    (CI-safe on noisy shared machines): edge cuts must be
    bit-identical-or-better than the pinned pre-PR reference cuts, the
    recorded total must clear ``min_speedup`` against the reference
    total, and every case's recorded initpart fraction must be within
    ``max_init_fraction``.  Returns human-readable failures."""
    failures = []
    reference = baseline.get("reference", {})
    ref_cuts = reference.get("pr6_edgecuts", {})
    cases = baseline.get("cases", [])
    if not cases:
        failures.append("artifact has no recorded full-mode cases")
    for c in cases:
        ref = ref_cuts.get(c["graph"])
        if ref is not None and c["edgecut"] > ref:
            failures.append(
                f"{c['graph']}: recorded edge-cut {c['edgecut']} worse than "
                f"the pre-optimization reference {ref}")
        frac = c.get("initpart_fraction")
        if frac is not None and frac > max_init_fraction:
            failures.append(
                f"{c['graph']}: recorded initpart fraction {frac:.0%} exceeds "
                f"the gate ({max_init_fraction:.0%})")
    ref_total = reference.get("pr6_total_seconds")
    total = baseline.get("total_seconds")
    if ref_total and total:
        speedup = ref_total / total
        if speedup < min_speedup:
            failures.append(
                f"recorded total {total:.2f}s is only {speedup:.2f}x the "
                f"reference {ref_total:.2f}s (need >= {min_speedup:.1f}x)")
    smoke = baseline.get("smoke_section", {})
    for c in smoke.get("cases", []):
        frac = c.get("initpart_fraction")
        if frac is not None and frac > max_init_fraction:
            failures.append(
                f"{c['graph']}: recorded initpart fraction {frac:.0%} exceeds "
                f"the gate ({max_init_fraction:.0%})")
    return failures


def check_vcycle_consistency(baseline: dict, vcycle: dict) -> list[str]:
    """Cross-validate ``BENCH_vcycle.json`` against the kernel baseline:
    the vcycle artifact's ``standard_cut`` entries must equal the cuts this
    baseline records for the same ladder cases.  A mismatch means the
    effort-level machinery perturbed the default (``effort="standard"``)
    pipeline, which is required to stay bit-identical."""
    failures = []
    cuts = {c["graph"]: c["edgecut"] for c in baseline.get("cases", [])}
    for c in baseline.get("smoke_section", {}).get("cases", []):
        cuts.setdefault(c["graph"], c["edgecut"])
    for c in vcycle.get("cases", []):
        expect = cuts.get(c["graph"])
        if expect is not None and c.get("standard_cut") != expect:
            failures.append(
                f"{c['graph']}: BENCH_vcycle standard cut "
                f"{c.get('standard_cut')} != kernel baseline {expect} "
                f"(effort='standard' drifted)")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny graphs, quality-only gating (CI mode)")
    ap.add_argument("--record", action="store_true",
                    help="write this run as the new baseline")
    ap.add_argument("--check", action="store_true",
                    help="validate the recorded baseline artifact only "
                         "(no measurement; exit 1 on any gate failure)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="baseline JSON path (default benchmarks/results/BENCH_kernels.json)")
    ap.add_argument("--out", default=None,
                    help="also write the current run's JSON here")
    ap.add_argument("--cut-tol", type=float, default=0.05,
                    help="relative edge-cut regression tolerance (default 0.05)")
    ap.add_argument("--imb-tol", type=float, default=0.01,
                    help="absolute max-imbalance regression tolerance (default 0.01)")
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="--check: required speedup of the recorded total vs "
                         "the pr6 reference total (default 3.0)")
    ap.add_argument("--max-init-fraction", type=float, default=0.40,
                    help="--check: maximum recorded initpart fraction per "
                         "case (default 0.40; see docs/performance.md for "
                         "why CI overrides this on 1-core runners)")
    args = ap.parse_args(argv)

    if args.check:
        if not os.path.exists(args.baseline):
            print(f"--check: no baseline at {args.baseline}", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = check_artifact(baseline,
                                  min_speedup=args.min_speedup,
                                  max_init_fraction=args.max_init_fraction)
        vcycle_path = os.path.join(RESULTS_DIR, "BENCH_vcycle.json")
        if os.path.exists(vcycle_path):
            with open(vcycle_path) as fh:
                failures += check_vcycle_consistency(baseline, json.load(fh))
        if failures:
            for f in failures:
                print(f"CHECK FAILED: {f}", file=sys.stderr)
            return 1
        print(f"artifact check: PASS (cuts <= reference, speedup >= "
              f"{args.min_speedup:.1f}x, initpart fraction <= "
              f"{args.max_init_fraction:.0%})")
        return 0

    result = run_suite(args.smoke)

    baseline = None
    if os.path.exists(args.baseline):
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    # Speedup vs the recorded pre-optimization reference (full mode only;
    # the reference seconds travel with the baseline file).
    reference = (baseline or {}).get("reference", {})
    if not args.smoke and reference.get("preopt_total_seconds"):
        result["reference"] = reference
        result["speedup_vs_preopt"] = round(
            reference["preopt_total_seconds"] / result["total_seconds"], 2
        )

    for c in result["cases"]:
        print(f"{c['graph']:>8}  n={c['nvtxs']:>6}  {c['seconds']:6.2f}s  "
              f"(coarsen {c['coarsen_seconds']:.2f} / init {c['initpart_seconds']:.2f} "
              f"/ refine {c['refine_seconds']:.2f})  init-frac "
              f"{c['initpart_fraction']:.0%}  cut={c['edgecut']}  "
              f"imb={c['max_imbalance']:.4f}")
    print(f"   total  {result['total_seconds']:.2f}s", end="")
    if result.get("speedup_vs_preopt"):
        print(f"  ({result['speedup_vs_preopt']}x vs pre-optimization "
              f"{reference['preopt_total_seconds']:.2f}s)")
    else:
        print()

    status = 0
    if baseline is not None and not args.record:
        section = baseline if baseline.get("mode") == result["mode"] else \
            baseline.get("smoke_section") if args.smoke else baseline
        failures = check_against(result, section or {}, args.cut_tol, args.imb_tol)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            status = 1
        else:
            print("quality guard: PASS (cut and balance within tolerance of baseline)")
    elif baseline is None:
        print("no baseline recorded yet; run with --record to create one")

    out_path = args.out
    if args.record:
        # Full runs own the main file; smoke runs are stored as a section
        # inside it so one artifact carries both baselines.
        if args.smoke and baseline is not None:
            baseline["smoke_section"] = result
            payload = baseline
        elif args.smoke:
            payload = {"schema": "BENCH_kernels/v1", "smoke_section": result}
        else:
            if baseline is not None:
                if baseline.get("reference"):
                    result.setdefault("reference", baseline["reference"])
                if baseline.get("smoke_section"):
                    result["smoke_section"] = baseline["smoke_section"]
            payload = result
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(args.baseline, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        print(f"baseline recorded -> {args.baseline}")
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
