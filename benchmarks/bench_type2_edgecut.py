"""E2/E3 -- Edge-cut and balance on Type-2 (multi-phase overlapping
activity) problems.

Paper analogue: the "m cons 2" bars of the quality figures: phases activate
(100, 75, 50, 50, 25)% of 32 contiguous regions, vertex weights are 0/1
activity indicators, and edge weights count co-active phases.  The
single-constraint reference partitions the same graph on summed weights, so
the normalised cut isolates the price of per-phase balance.
"""

from __future__ import annotations

from _util import emit_table, timed, type2_graph

from repro.baselines import part_graph_single
from repro.partition import part_graph
from repro.weights import imbalance

GRAPHS = ("sm1", "sm2")
KS = (8, 16)
MS = (2, 3, 4, 5)
SEED = 2


def _sweep():
    rows = []
    checks = []
    for name in GRAPHS:
        for k in KS:
            for m in MS:
                g = type2_graph(name, m)
                sc, _ = timed(part_graph_single, g, k, mode="sum", seed=SEED)
                mc, secs = timed(part_graph, g, k, seed=SEED)
                ratio = mc.edgecut / max(sc.edgecut, 1)
                sc_imb = float(imbalance(g.vwgt, sc.part, k).max())
                rows.append([
                    name, k, f"{m} cons 2",
                    mc.edgecut, f"{ratio:.2f}",
                    f"{mc.max_imbalance:.3f}", f"{sc_imb:.3f}",
                    "yes" if mc.feasible else "NO",
                    f"{secs:.1f}",
                ])
                checks.append((ratio, mc.max_imbalance, sc_imb))
    return rows, checks


def test_type2_edgecut_vs_single_constraint(once):
    rows, checks = once(_sweep)
    emit_table(
        "type2_edgecut",
        ["graph", "k", "problem", "MC edge-cut", "cut / SC",
         "MC max imb", "SC max imb", "balanced", "time (s)"],
        rows,
        "E2: Type-2 multi-phase problems -- per-phase balance and its cut price",
    )
    mc_imbs = [x[1] for x in checks]
    sc_imbs = [x[2] for x in checks]
    assert max(mc_imbs) <= 1.10, "MC must keep every phase within ~5%"
    # The motivating failure: summed-weight partitioning leaves phases
    # imbalanced on most instances.
    assert sum(s > 1.10 for s in sc_imbs) >= len(sc_imbs) // 2
