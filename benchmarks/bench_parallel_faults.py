"""P2 -- Extension: partition quality & runtime under injected faults.

Sweeps the fault intensity of the simulated network (a scale factor on a
mixed drop/delay/duplicate/reorder/crash schedule) and reports how the
hardened parallel driver holds up:

* at scale 0 the run must be bit-identical to the clean driver (the fault
  layer is pay-for-what-you-use);
* under moderate schedules retries absorb the faults: quality stays within
  the usual parallel-vs-serial band while simulated time grows (backoff +
  repeated supersteps);
* under pathological schedules the driver degrades to the serial fallback
  but still returns a feasible partition -- never an untyped crash.

See docs/robustness.md for the contract this benchmark exercises.
"""

from __future__ import annotations

import numpy as np
from _util import emit_table, timed, type1_graph

from repro.faults import FaultSpec
from repro.parallel import parallel_part_graph
from repro.partition import PartitionOptions

K = 8
M = 2
SEED = 11
P = 4
GRAPH = "sm1"

#: Base per-collective rates of the mixed schedule at scale 1.0.
BASE = dict(drop=0.03, delay=0.02, duplicate=0.02, reorder=0.02,
            crash=0.01, crash_permanent=0.002)
SCALES = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


def _spec(scale: float) -> FaultSpec | None:
    if scale == 0.0:
        return None
    return FaultSpec(seed=SEED,
                     **{k: min(1.0, v * scale) for k, v in BASE.items()})


def _sweep():
    g = type1_graph(GRAPH, M)
    opts = PartitionOptions(seed=SEED)
    clean = parallel_part_graph(g, K, P, options=opts)
    rows = []
    runs = []
    for scale in SCALES:
        res, wall = timed(parallel_part_graph, g, K, P, options=opts,
                          faults=_spec(scale))
        injected = sum(res.faults.values()) if res.faults else 0
        rows.append([
            f"{scale:g}",
            res.faults["injected"] if res.faults else 0,
            res.retries,
            res.edgecut,
            f"{res.edgecut / clean.edgecut:.2f}",
            f"{res.max_imbalance:.3f}",
            f"{res.simulated_time * 1e3:.2f}",
            f"{res.simulated_time / clean.simulated_time:.2f}",
            "serial-fallback" if res.degraded else "parallel",
        ])
        runs.append((scale, res))
    return clean, rows, runs


def test_faulty_parallel_quality_and_runtime(once):
    clean, rows, runs = once(_sweep)
    emit_table(
        "parallel_faults",
        ["fault scale", "injected", "retries", "cut", "cut/clean",
         "imbalance", "t_sim (ms)", "t_sim/clean", "path"],
        rows,
        f"P2 (extension): hardened parallel driver under faults "
        f"(m={M}, k={K}, p={P}, {GRAPH})",
    )
    by_scale = dict(runs)
    # Scale 0: the fault layer must cost nothing and change nothing.
    assert np.array_equal(by_scale[0.0].part, clean.part)
    assert by_scale[0.0].simulated_time == clean.simulated_time
    for scale, res in runs:
        # Hard contract: every run ends in a feasible typed result.
        assert res.feasible, f"scale {scale} produced an infeasible partition"
        assert res.edgecut <= 2.0 * clean.edgecut
        if scale > 0 and not res.degraded:
            # Surviving a fault schedule costs simulated time, never saves it.
            assert res.simulated_time >= clean.simulated_time
