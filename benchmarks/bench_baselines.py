"""B1 -- Context table: multilevel vs the partitioning methods it displaced.

The paper's multilevel algorithms competed against spectral and geometric
methods (RCB / inertial / space-filling curves).  This bench reproduces
that era comparison on a planar mesh dual: multilevel should win or tie on
cut against every geometric/spectral method and crush random/BFS, while all
methods balance the (single) constraint.
"""

from __future__ import annotations

from _util import emit_table, timed

from repro.baselines import (
    bfs_partition,
    random_partition,
    rcb,
    rib,
    sfc_partition,
    spectral_recursive,
)
from repro.graph import delaunay_mesh
from repro.metrics import comm_volume, edge_cut
from repro.partition import part_graph
from repro.weights import max_imbalance

K = 8
N = 4000
SEED = 13


def _sweep():
    g = delaunay_mesh(N, seed=SEED)
    methods = {
        "multilevel (kway)": lambda: part_graph(g, K, seed=SEED).part,
        "multilevel (recursive)": lambda: part_graph(
            g, K, method="recursive", seed=SEED
        ).part,
        "spectral RB": lambda: spectral_recursive(g, K, seed=SEED),
        "RCB": lambda: rcb(g, K),
        "inertial (RIB)": lambda: rib(g, K),
        "space-filling curve": lambda: sfc_partition(g, K),
        "BFS growth": lambda: bfs_partition(g, K, seed=SEED),
        "random": lambda: random_partition(g, K, seed=SEED),
    }
    rows = []
    cuts = {}
    for name, fn in methods.items():
        part, secs = timed(fn)
        cut = edge_cut(g, part)
        cuts[name] = cut
        rows.append([
            name, cut, comm_volume(g, part),
            f"{max_imbalance(g.vwgt, part, K):.3f}", f"{secs:.2f}",
        ])
    return rows, cuts


def test_baseline_comparison(once):
    rows, cuts = once(_sweep)
    emit_table(
        "baselines",
        ["method", "edge-cut", "comm volume", "max imbalance", "time (s)"],
        rows,
        f"B1: partitioning methods on a {N}-element planar mesh dual (k={K})",
    )
    ml = min(cuts["multilevel (kway)"], cuts["multilevel (recursive)"])
    for name in ("RCB", "inertial (RIB)", "space-filling curve", "spectral RB"):
        assert ml <= 1.3 * cuts[name], f"multilevel must be competitive with {name}"
    # BFS growth is contiguous (so not terrible on planar duals) but
    # unbalanced and unoptimised; multilevel must beat it on cut outright.
    assert ml < cuts["BFS growth"]
    assert ml < 0.25 * cuts["random"]
