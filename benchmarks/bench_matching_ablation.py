"""A1 -- Ablation: matching scheme during coarsening.

The paper's design choice: heavy-edge matching with a balanced-edge
tie-break.  This ablation compares random matching (rm), heavy-edge with
balanced tie-break (hem) and balanced-edge with heavy tie-break (bem) on a
multi-constraint problem.  Expected shape: hem/bem produce clearly better
cuts than rm at similar balance; hem is the best-or-tied default.
"""

from __future__ import annotations

from _util import emit_table, timed, type1_graph

from repro.partition import part_graph

GRAPH = "sm2"
K = 16
M = 3
SEED = 6
SCHEMES = ("rm", "hem", "bem", "fhem")


def _sweep():
    g = type1_graph(GRAPH, M)
    rows = []
    cuts = {}
    for scheme in SCHEMES:
        res, secs = timed(part_graph, g, K, matching=scheme, seed=SEED)
        cuts[scheme] = res.edgecut
        rows.append([
            scheme, res.edgecut, f"{res.max_imbalance:.3f}",
            "yes" if res.feasible else "NO", f"{secs:.1f}",
        ])
    return rows, cuts


def test_matching_ablation(once):
    rows, cuts = once(_sweep)
    emit_table(
        "matching_ablation",
        ["matching", "edge-cut", "max imbalance", "balanced", "time (s)"],
        rows,
        f"A1: matching-scheme ablation ({GRAPH}, m={M}, k={K})",
    )
    # Heavy-edge style matching must not lose badly to random matching.
    assert cuts["hem"] <= 1.15 * cuts["rm"]
    assert cuts["bem"] <= 1.3 * cuts["rm"]
