"""Shared helpers for the benchmark harness.

Every benchmark prints a paper-style table and also writes it to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's output
capture.

Graph sizes: the paper ran on meshes of 0.25M-7.5M vertices on a Cray T3E;
this harness uses proportionally scaled stand-ins (``sm1..sm4``) that keep
every experiment inside laptop-Python budgets while preserving the relative
size ladder (×2/×4 steps, mrng-like edge density).
"""

from __future__ import annotations

import functools
import os
import time

from repro.graph import mesh_like
from repro.metrics import format_table
from repro.weights import type1_region_weights, type2_multiphase
from repro.weights.generators import coactivity_edge_weights

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Stand-ins for the paper's mrng1..mrng4 ladder (scaled ~85x down).
GRAPH_SIZES = {
    "sm1": 3_000,
    "sm2": 6_000,
    "sm3": 12_000,
    "sm4": 24_000,
}

MASTER_SEED = 20260707


def _name_seed(name: str) -> int:
    """Deterministic per-name seed offset.  ``hash(str)`` is randomised per
    process (PYTHONHASHSEED), which silently gave every benchmark run a
    *different* graph; a plain ordinal sum keeps the ladder reproducible so
    recorded baselines (``perf_guard``) can compare across runs."""
    return sum(ord(c) * 31 ** i for i, c in enumerate(name)) % 1000


@functools.lru_cache(maxsize=None)
def get_graph(name: str):
    """Session-cached synthetic mesh for a ladder entry."""
    return mesh_like(GRAPH_SIZES[name], seed=MASTER_SEED + _name_seed(name))


@functools.lru_cache(maxsize=None)
def type1_graph(name: str, ncon: int):
    """Ladder graph with a Type-1 (region-constant) m-weight workload."""
    g = get_graph(name)
    return g.with_vwgt(type1_region_weights(g, ncon, nregions=16, seed=MASTER_SEED + ncon))


@functools.lru_cache(maxsize=None)
def type2_graph(name: str, nphases: int):
    """Ladder graph with a Type-2 (multi-phase) workload and co-activity
    edge weights."""
    g = get_graph(name)
    vw, act = type2_multiphase(g, nphases, nregions=32, seed=MASTER_SEED + nphases)
    return g.with_vwgt(vw).with_adjwgt(coactivity_edge_weights(g, act))


def emit_table(name: str, headers, rows, title: str) -> str:
    """Print a table and persist it under benchmarks/results/."""
    txt = format_table(headers, rows, title=title)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(txt + "\n")
    print("\n" + txt)
    return txt


def timed(fn, *args, **kwargs):
    """(result, seconds) of one call."""
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0
