"""M1 -- The motivating experiment: modelled multi-phase makespan.

For 2-5 phase synthetic computations (Type-2 activity), compare the
modelled timestep duration under (a) the single-constraint sum-balanced
partition and (b) the multi-constraint per-phase-balanced partition.
Expected shape: MC achieves near-ideal efficiency (>= 0.85) while SC
degrades as phases concentrate; MC speedup grows with the number of
phases.
"""

from __future__ import annotations

from _util import emit_table, get_graph, timed

from repro.baselines import part_graph_single
from repro.multiphase import from_type2
from repro.partition import part_graph

GRAPH = "sm2"
K = 16
SEED = 9


def _sweep():
    g = get_graph(GRAPH)
    rows = []
    checks = []
    for nphases in (2, 3, 4, 5):
        sim = from_type2(g, nphases, seed=SEED + nphases)
        wg = sim.weighted_graph()
        sc, _ = timed(part_graph_single, wg, K, mode="sum", seed=SEED)
        mc, _ = timed(part_graph, wg, K, seed=SEED)
        ms_sc = sim.makespan(sc.part, K)
        ms_mc = sim.makespan(mc.part, K)
        rows.append([
            nphases,
            f"{ms_sc:.0f}", f"{sim.efficiency(sc.part, K):.2f}",
            f"{ms_mc:.0f}", f"{sim.efficiency(mc.part, K):.2f}",
            f"{ms_sc / ms_mc:.2f}x",
        ])
        checks.append((sim.efficiency(sc.part, K), sim.efficiency(mc.part, K)))
    return rows, checks


def test_multiphase_makespan(once):
    rows, checks = once(_sweep)
    emit_table(
        "multiphase_makespan",
        ["phases", "SC makespan", "SC efficiency",
         "MC makespan", "MC efficiency", "MC speedup"],
        rows,
        f"M1: modelled multi-phase timestep duration ({GRAPH}, k={K})",
    )
    for sc_eff, mc_eff in checks:
        assert mc_eff >= 0.80, "per-phase balancing must give near-ideal efficiency"
        assert mc_eff >= sc_eff - 1e-9, "MC must never lose to SC on makespan"
    assert any(mc - sc > 0.05 for sc, mc in checks), \
        "at least one phase count must show a clear MC win"
