"""E1/E3/E7 -- Edge-cut and balance of the multi-constraint partitioner on
Type-1 (region-constant weight) problems, normalised by the
single-constraint baseline.

Paper analogue: the SC'98 quality figures (and Figures 3-5 of the parallel
follow-on share the layout): bars "m cons 1" with edge-cut normalised by
single-constraint MeTiS plus the achieved balance.  Expected shape:
normalised cut roughly 1.1-2x, growing with m (E7); balance within the 5%
tolerance for every constraint (E3).
"""

from __future__ import annotations

from _util import emit_table, timed, type1_graph, get_graph

from repro.baselines import part_graph_single
from repro.partition import part_graph

GRAPHS = ("sm1", "sm2")
KS = (8, 16)
MS = (2, 3, 4, 5)
SEED = 1


def _sweep():
    rows = []
    checks = []
    for name in GRAPHS:
        for k in KS:
            base = get_graph(name)
            sc, sc_secs = timed(part_graph, base, k, seed=SEED)
            for m in MS:
                g = type1_graph(name, m)
                mc, mc_secs = timed(part_graph, g, k, seed=SEED)
                ratio = mc.edgecut / max(sc.edgecut, 1)
                rows.append([
                    name, k, f"{m} cons 1",
                    mc.edgecut, f"{ratio:.2f}",
                    f"{mc.max_imbalance:.3f}",
                    "yes" if mc.feasible else "NO",
                    f"{mc_secs:.1f}",
                ])
                checks.append((ratio, mc.max_imbalance))
    return rows, checks


def test_type1_edgecut_vs_single_constraint(once):
    rows, checks = once(_sweep)
    emit_table(
        "type1_edgecut",
        ["graph", "k", "problem", "edge-cut", "cut / single-constraint",
         "max imbalance", "balanced", "time (s)"],
        rows,
        "E1: Type-1 problems -- multi-constraint k-way cut normalised by the "
        "single-constraint partitioner (tolerance 5%)",
    )
    ratios = [r for r, _ in checks]
    imbs = [i for _, i in checks]
    # Shape assertions mirroring the paper's claims:
    assert max(imbs) <= 1.10, "balance must stay near the 5% tolerance"
    assert sum(ratios) / len(ratios) <= 2.2, "MC cut should stay within ~2x of SC"
    assert min(ratios) >= 0.8, "MC cut cannot beat SC wildly (sanity)"
