"""A5 -- Ablation: k-way refinement sweep order (greedy vs priority).

The greedy randomised boundary sweep is the order a coarse-grain parallel
refiner can realise; the gain-ordered priority queue is the serial-FM-style
order.  Expected shape: priority matches or slightly beats greedy on cut at
a modest time premium -- quantifying what the parallel-friendly relaxation
gives up (the heart of the serial-vs-parallel refinement discussion).
"""

from __future__ import annotations

from _util import emit_table, timed, type1_graph

from repro.partition import PartitionOptions, part_graph

GRAPH = "sm2"
K = 16
MS = (1, 3)
SEED = 12


def _sweep():
    rows = []
    cuts = {}
    for m in MS:
        g = type1_graph(GRAPH, m)
        for policy in ("greedy", "priority"):
            res, secs = timed(
                part_graph, g, K,
                options=PartitionOptions(seed=SEED, kway_policy=policy),
            )
            cuts[(m, policy)] = res.edgecut
            rows.append([
                m, policy, res.edgecut, f"{res.max_imbalance:.3f}",
                "yes" if res.feasible else "NO", f"{secs:.1f}",
            ])
    return rows, cuts


def test_kway_policy_ablation(once):
    rows, cuts = once(_sweep)
    emit_table(
        "kway_policy",
        ["m", "policy", "edge-cut", "max imbalance", "balanced", "time (s)"],
        rows,
        f"A5: k-way refinement sweep-order ablation ({GRAPH}, k={K})",
    )
    for m in MS:
        # The gain-ordered sweep must not lose badly; typically it wins.
        assert cuts[(m, "priority")] <= 1.10 * cuts[(m, "greedy")]
