"""K1 -- Micro-benchmarks of the hot kernels (real pytest-benchmark timing
loops, unlike the macro experiment tables).

These are the profiling anchors the HPC-Python methodology asks for: if a
code change regresses contraction, matching, degree setup, or the balance
sums, these numbers move first.
"""

from __future__ import annotations

import numpy as np
import pytest

from _util import get_graph

from repro.coarsen import heavy_edge_matching, matching_to_cmap
from repro.graph import contract
from repro.refine import compute_2way_degrees, edge_cut
from repro.weights import part_weights, type1_region_weights

GRAPH = "sm3"  # 12k vertices / ~50k edges


@pytest.fixture(scope="module")
def g():
    return get_graph(GRAPH)


@pytest.fixture(scope="module")
def gw(g):
    return g.with_vwgt(type1_region_weights(g, 3, seed=0))


@pytest.fixture(scope="module")
def cmap_pair(g):
    match = heavy_edge_matching(g, seed=1)
    return matching_to_cmap(match)


def test_kernel_matching(benchmark, g):
    out = benchmark(heavy_edge_matching, g, 2)
    assert out.shape == (g.nvtxs,)


def test_kernel_contract(benchmark, g, cmap_pair):
    cmap, nc = cmap_pair
    coarse = benchmark(contract, g, cmap, nc)
    assert coarse.nvtxs == nc


def test_kernel_edge_cut(benchmark, g):
    part = np.arange(g.nvtxs) % 8
    cut = benchmark(edge_cut, g, part)
    assert cut > 0


def test_kernel_2way_degrees(benchmark, g):
    where = np.arange(g.nvtxs) % 2
    id_, ed = benchmark(compute_2way_degrees, g, where)
    assert id_.shape == (g.nvtxs,)


def test_kernel_part_weights(benchmark, gw):
    part = np.arange(gw.nvtxs) % 16
    pw = benchmark(part_weights, gw.vwgt, part, 16)
    assert pw.shape == (16, 3)


def test_kernel_bfs_regions(benchmark, g):
    from repro.graph import bfs_regions

    regions = benchmark(bfs_regions, g, 32, 3)
    assert regions.shape == (g.nvtxs,)
