"""obs-smoke -- the observability gate behind ``make obs-smoke``.

One seeded 2-constraint partitioning run through the full observability
stack, asserting every contract end to end:

1. record the run with :class:`repro.obs.FlightRecorder` and materialise
   the :class:`~repro.obs.MultilevelProfile`; every coarsening *and*
   uncoarsening row must carry a cut and a per-constraint imbalance
   vector;
2. the recorded run's partition must be bit-identical to the same request
   with recording off;
3. render the per-level dashboard and the Prometheus exposition; the
   exposition must parse (:func:`repro.obs.parse_exposition`) and contain
   at least one histogram family;
4. compare the profile against the committed baseline
   (``benchmarks/results/OBS_baseline.json``) under explicitly widened
   :class:`~repro.obs.DriftTolerances` (cut 15% rel, coarsest 30% rel --
   the gate checks observability plumbing, not partition quality, which
   has its own baselines);
5. run a traced 2-rank shm partition and assert the merged profile
   carries per-rank compute / pipe-wait / publish rows for every rank;
   the merged profile is written to
   ``benchmarks/results/OBS_merged_profile.json`` on every run (uploaded
   as a CI artifact) and its rank-labeled exposition must parse.

``python benchmarks/obs_smoke.py --record`` (re)writes the baseline;
commit the refreshed file alongside any intentional algorithm change.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from _util import RESULTS_DIR, type1_graph

from repro.obs import (DriftTolerances, FlightRecorder, check_baseline,
                       parse_exposition, render_profile, render_prometheus)
from repro.partition import PartitionOptions, part_graph
from repro.trace import Tracer, labeled

K = 8
M = 2
SEED = 20260807
GRAPH = "sm1"
SHM_RANKS = 2
BASELINE = os.path.join(RESULTS_DIR, "OBS_baseline.json")
MERGED_PROFILE = os.path.join(RESULTS_DIR, "OBS_merged_profile.json")

#: Widened on purpose: this gate asserts the observability stack, so the
#: quality bands leave headroom for minor algorithm tuning (which has its
#: own, tighter baselines in BENCH_kernels.json).
TOLERANCES = DriftTolerances(cut_rel=0.15, coarsest_rel=0.30)


def run(record: bool = False) -> int:
    g = type1_graph(GRAPH, M)

    rec = FlightRecorder()
    tracer = Tracer([rec])
    res = part_graph(g, K, seed=SEED, tracer=tracer)
    tracer.finish()
    profile = rec.profile()

    print(render_profile(profile))
    print()

    failures = []

    # Recording must not perturb the seeded result.
    plain = part_graph(g, K, seed=SEED)
    if not (np.array_equal(plain.part, res.part)
            and plain.edgecut == res.edgecut):
        failures.append(
            f"recording changed the result: cut {plain.edgecut} vs "
            f"{res.edgecut}")

    # Every row of both ladders must carry cut + per-constraint imbalance.
    for row in profile.rows():
        if row.cut is None:
            failures.append(f"{row.phase} level {row.level}: missing cut")
        if not row.imbalance or len(row.imbalance) != M:
            failures.append(
                f"{row.phase} level {row.level}: missing per-constraint "
                f"imbalance (got {row.imbalance!r})")
    if not profile.coarsening:
        failures.append("profile has no coarsening rows")
    if not profile.uncoarsening:
        failures.append("profile has no uncoarsening rows")

    # The exposition must parse and contain >= 1 histogram family.
    text = render_prometheus(profile)
    families = parse_exposition(text)
    nhist = sum(1 for d in families.values() if d["type"] == "histogram")
    print(f"prometheus exposition: {len(families)} families "
          f"({nhist} histograms, {len(text.splitlines())} lines)")
    if nhist < 1:
        failures.append("exposition contains no histogram family")

    # Cross-process telemetry: a traced 2-rank shm run must merge every
    # worker's phase breakdown into the profile as per-rank rows.
    shm_rec = FlightRecorder()
    shm_tracer = Tracer([shm_rec])
    from repro.parallel import parallel_part_graph

    shm_res = parallel_part_graph(
        g, K, SHM_RANKS, options=PartitionOptions(seed=SEED),
        executor="shm", tracer=shm_tracer)
    shm_tracer.finish()
    merged = shm_rec.profile()
    ranks = [r["rank"] for r in merged.rank_phases]
    if ranks != list(range(SHM_RANKS)):
        failures.append(
            f"merged profile rank rows {ranks} != {list(range(SHM_RANKS))}")
    for row in merged.rank_phases:
        for key in ("compute_seconds", "pipe_wait_seconds",
                    "publish_seconds"):
            if not isinstance(row.get(key), float) or row[key] < 0:
                failures.append(
                    f"rank {row.get('rank')}: bad {key}={row.get(key)!r}")
    if shm_res.degraded:
        failures.append(
            f"shm run degraded: {shm_res.degraded_reason}")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(MERGED_PROFILE, "w") as fh:
        fh.write(merged.to_json() + "\n")
    print(f"merged shm profile ({SHM_RANKS} ranks) -> {MERGED_PROFILE}")

    # The rank-labeled worker series must render + parse as label dims.
    shm_fams = parse_exposition(render_prometheus(shm_tracer))
    fam = shm_fams.get("repro_parallel_shm_worker_compute_seconds")
    if fam is None:
        failures.append("exposition lacks the per-rank worker histogram")
    else:
        seen = {s[1].get("rank") for s in fam["samples"]}
        if seen != {str(r) for r in range(SHM_RANKS)}:
            failures.append(f"worker series rank labels {seen} incomplete")
    cvals = shm_tracer.metrics.counter_values()
    for r in range(SHM_RANKS):
        if cvals.get(labeled("parallel.shm.worker.steps_total",
                             rank=r), 0) <= 0:
            failures.append(f"no live step counter for rank {r}")

    if record:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(BASELINE, "w") as fh:
            fh.write(profile.to_json() + "\n")
        print(f"baseline recorded -> {BASELINE}")
    else:
        report = check_baseline(profile, BASELINE, TOLERANCES)
        print(report.summary())
        if not report.ok:
            failures.append("profile drifted from the committed baseline "
                            "(see report above)")

    if failures:
        print("obs-smoke FAILED:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    print("obs-smoke OK")
    return 0


def test_obs_smoke():
    """Pytest entry: the same gate."""
    assert run(record=False) == 0


if __name__ == "__main__":
    raise SystemExit(run(record="--record" in sys.argv))
