"""obs-smoke -- the observability gate behind ``make obs-smoke``.

One seeded 2-constraint partitioning run through the full observability
stack, asserting every contract end to end:

1. record the run with :class:`repro.obs.FlightRecorder` and materialise
   the :class:`~repro.obs.MultilevelProfile`; every coarsening *and*
   uncoarsening row must carry a cut and a per-constraint imbalance
   vector;
2. the recorded run's partition must be bit-identical to the same request
   with recording off;
3. render the per-level dashboard and the Prometheus exposition; the
   exposition must parse (:func:`repro.obs.parse_exposition`) and contain
   at least one histogram family;
4. compare the profile against the committed baseline
   (``benchmarks/results/OBS_baseline.json``) under the default
   :class:`~repro.obs.DriftTolerances`.

``python benchmarks/obs_smoke.py --record`` (re)writes the baseline;
commit the refreshed file alongside any intentional algorithm change.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from _util import RESULTS_DIR, type1_graph

from repro.obs import (DriftTolerances, FlightRecorder, check_baseline,
                       parse_exposition, render_profile, render_prometheus)
from repro.partition import part_graph
from repro.trace import Tracer

K = 8
M = 2
SEED = 20260807
GRAPH = "sm1"
BASELINE = os.path.join(RESULTS_DIR, "OBS_baseline.json")


def run(record: bool = False) -> int:
    g = type1_graph(GRAPH, M)

    rec = FlightRecorder()
    tracer = Tracer([rec])
    res = part_graph(g, K, seed=SEED, tracer=tracer)
    tracer.finish()
    profile = rec.profile()

    print(render_profile(profile))
    print()

    failures = []

    # Recording must not perturb the seeded result.
    plain = part_graph(g, K, seed=SEED)
    if not (np.array_equal(plain.part, res.part)
            and plain.edgecut == res.edgecut):
        failures.append(
            f"recording changed the result: cut {plain.edgecut} vs "
            f"{res.edgecut}")

    # Every row of both ladders must carry cut + per-constraint imbalance.
    for row in profile.rows():
        if row.cut is None:
            failures.append(f"{row.phase} level {row.level}: missing cut")
        if not row.imbalance or len(row.imbalance) != M:
            failures.append(
                f"{row.phase} level {row.level}: missing per-constraint "
                f"imbalance (got {row.imbalance!r})")
    if not profile.coarsening:
        failures.append("profile has no coarsening rows")
    if not profile.uncoarsening:
        failures.append("profile has no uncoarsening rows")

    # The exposition must parse and contain >= 1 histogram family.
    text = render_prometheus(profile)
    families = parse_exposition(text)
    nhist = sum(1 for d in families.values() if d["type"] == "histogram")
    print(f"prometheus exposition: {len(families)} families "
          f"({nhist} histograms, {len(text.splitlines())} lines)")
    if nhist < 1:
        failures.append("exposition contains no histogram family")

    if record:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(BASELINE, "w") as fh:
            fh.write(profile.to_json() + "\n")
        print(f"baseline recorded -> {BASELINE}")
    else:
        report = check_baseline(profile, BASELINE, DriftTolerances())
        print(report.summary())
        if not report.ok:
            failures.append("profile drifted from the committed baseline "
                            "(see report above)")

    if failures:
        print("obs-smoke FAILED:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    print("obs-smoke OK")
    return 0


def test_obs_smoke():
    """Pytest entry: the same gate."""
    assert run(record=False) == 0


if __name__ == "__main__":
    raise SystemExit(run(record="--record" in sys.argv))
