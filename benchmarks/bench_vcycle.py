#!/usr/bin/env python
"""Effort-level benchmark: iterated V-cycles vs the standard pipeline.

Runs the ladder at ``effort="standard"`` and ``effort="high"`` (standard
pipeline + iterated V-cycles, :mod:`repro.partition.vcycle`) from the same
pinned seed and records both cuts.  The ladder reuses the exact
configurations of ``BENCH_kernels.json`` -- smoke400/smoke700 (k=4, m=2)
and sm1/sm2 (k=16, m=3), all seed=4 -- so the recorded artifact
cross-validates against the kernel baseline:

* ``standard`` cuts must equal the BENCH_kernels recorded cuts **exactly**
  (the effort machinery must not perturb the default pipeline), and
* ``high`` must never be worse, and strictly better on >= 3 of 4 cases
  (the iterated V-cycles must actually buy quality).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_vcycle.py            # measure + compare
    PYTHONPATH=src python benchmarks/bench_vcycle.py --record   # (re)record artifact
    PYTHONPATH=src python benchmarks/bench_vcycle.py --check    # gate the committed
                                                                # artifact (no measurement)

``--check`` is what CI runs (see ``make vcycle-smoke``): it never measures
wall clock, so it is safe on noisy shared machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _util import MASTER_SEED, RESULTS_DIR, type1_graph  # noqa: E402

from repro.graph import mesh_like  # noqa: E402
from repro.partition import part_graph  # noqa: E402
from repro.weights import type1_region_weights  # noqa: E402

ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_vcycle.json")
KERNELS = os.path.join(RESULTS_DIR, "BENCH_kernels.json")

SEED = 4
MIN_STRICT_WINS = 3  # of the 4 ladder cases, effort="high" must strictly win


def _smoke_graph(n: int, m: int = 2):
    # Identical construction to perf_guard's smoke ladder so the recorded
    # standard cuts are comparable entry for entry.
    g = mesh_like(n, seed=MASTER_SEED + n)
    return g.with_vwgt(type1_region_weights(g, m, nregions=8, seed=MASTER_SEED + n))


def ladder():
    """(name, graph, nparts) for the four benchmark cases."""
    return [
        ("smoke400", _smoke_graph(400), 4),
        ("smoke700", _smoke_graph(700), 4),
        ("sm1", type1_graph("sm1", 3), 16),
        ("sm2", type1_graph("sm2", 3), 16),
    ]


def _run_case(name: str, graph, nparts: int) -> dict:
    t0 = time.perf_counter()
    std = part_graph(graph, nparts, seed=SEED)
    std_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    high = part_graph(graph, nparts, seed=SEED, effort="high")
    high_s = time.perf_counter() - t0
    assert high.edgecut <= std.edgecut, (
        f"{name}: effort='high' regressed the cut "
        f"({high.edgecut} > {std.edgecut}) -- the V-cycle guard is broken")
    return {
        "graph": name,
        "nvtxs": graph.nvtxs,
        "ncon": graph.ncon,
        "nparts": nparts,
        "standard_cut": int(std.edgecut),
        "high_cut": int(high.edgecut),
        "gain_pct": round(100.0 * (std.edgecut - high.edgecut)
                          / max(1, std.edgecut), 2),
        "standard_seconds": round(std_s, 4),
        "high_seconds": round(high_s, 4),
        "standard_feasible": bool(std.feasible),
        "high_feasible": bool(high.feasible),
        "high_max_imbalance": round(float(high.max_imbalance), 6),
    }


def run_suite() -> dict:
    cases = [_run_case(*entry) for entry in ladder()]
    return {
        "schema": "BENCH_vcycle/v1",
        "config": {"seed": SEED, "min_strict_wins": MIN_STRICT_WINS},
        "cases": cases,
    }


def _kernel_cuts(kernels: dict) -> dict:
    """graph -> recorded standard edge-cut, across full + smoke sections."""
    cuts = {c["graph"]: c["edgecut"] for c in kernels.get("cases", [])}
    for c in kernels.get("smoke_section", {}).get("cases", []):
        cuts.setdefault(c["graph"], c["edgecut"])
    return cuts


def check_artifact(artifact: dict, kernels: dict | None) -> list[str]:
    """Gate the recorded artifact; returns human-readable failures.

    No measurement happens here -- only invariants of the recorded numbers,
    so the gate is immune to machine noise.
    """
    failures = []
    cases = artifact.get("cases", [])
    if len(cases) < 4:
        failures.append(f"artifact records {len(cases)} cases; expected 4")
    strict = 0
    for c in cases:
        if c["high_cut"] > c["standard_cut"]:
            failures.append(
                f"{c['graph']}: recorded high cut {c['high_cut']} is worse "
                f"than standard {c['standard_cut']}")
        elif c["high_cut"] < c["standard_cut"]:
            strict += 1
        if not (c["standard_feasible"] and c["high_feasible"]):
            failures.append(f"{c['graph']}: recorded partition infeasible")
    if cases and strict < MIN_STRICT_WINS:
        failures.append(
            f"effort='high' strictly improved only {strict} of {len(cases)} "
            f"cases (need >= {MIN_STRICT_WINS})")
    if kernels is not None:
        ref = _kernel_cuts(kernels)
        for c in cases:
            expect = ref.get(c["graph"])
            if expect is not None and c["standard_cut"] != expect:
                failures.append(
                    f"{c['graph']}: recorded standard cut {c['standard_cut']} "
                    f"!= BENCH_kernels baseline {expect} -- effort='standard' "
                    f"is no longer bit-identical to the kernel baseline")
    return failures


def _load(path: str):
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--record", action="store_true",
                    help="write this run to benchmarks/results/BENCH_vcycle.json")
    ap.add_argument("--check", action="store_true",
                    help="validate the committed artifact only (no measurement)")
    ap.add_argument("--artifact", default=ARTIFACT)
    ap.add_argument("--kernels", default=KERNELS,
                    help="BENCH_kernels.json used to cross-check standard cuts")
    args = ap.parse_args(argv)

    if args.check:
        artifact = _load(args.artifact)
        if artifact is None:
            print(f"--check: no artifact at {args.artifact}", file=sys.stderr)
            return 1
        failures = check_artifact(artifact, _load(args.kernels))
        if failures:
            for f in failures:
                print(f"CHECK FAILED: {f}", file=sys.stderr)
            return 1
        n = len(artifact.get("cases", []))
        print(f"vcycle artifact check: PASS ({n} cases; standard cuts match "
              f"BENCH_kernels; high <= standard, strict win on >= "
              f"{MIN_STRICT_WINS})")
        return 0

    result = run_suite()
    for c in result["cases"]:
        print(f"{c['graph']:>9}  n={c['nvtxs']:>6} k={c['nparts']:>2}  "
              f"std={c['standard_cut']:>6} ({c['standard_seconds']:5.2f}s)  "
              f"high={c['high_cut']:>6} ({c['high_seconds']:5.2f}s)  "
              f"gain {c['gain_pct']:5.2f}%")

    status = 0
    committed = None if args.record else _load(args.artifact)
    if committed is not None:
        # Both pipelines are deterministic at a pinned seed: the measured
        # cuts must reproduce the committed artifact exactly.
        ref = {c["graph"]: c for c in committed.get("cases", [])}
        for c in result["cases"]:
            b = ref.get(c["graph"])
            if b is None:
                continue
            for fld in ("standard_cut", "high_cut"):
                if c[fld] != b[fld]:
                    print(f"REGRESSION: {c['graph']}: {fld} {c[fld]} != "
                          f"recorded {b[fld]}", file=sys.stderr)
                    status = 1
        if status == 0:
            print("vcycle guard: PASS (measured cuts reproduce the artifact)")
    failures = check_artifact(result, _load(args.kernels))
    for f in failures:
        print(f"GATE FAILED: {f}", file=sys.stderr)
        status = 1

    if args.record and status == 0:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(args.artifact, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"artifact recorded -> {args.artifact}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
