"""Serving-layer benchmark: cache hit, warm start and cold compute.

Measures the three latency classes of :class:`repro.serve.PartitionService`
on the benchmark ladder and records them into
``benchmarks/results/BENCH_serve.json`` (schema ``BENCH_serve/v1``),
asserting the two acceptance criteria of the serving contract
(``docs/serving.md``):

* a cache **hit** is bit-identical to the cold compute and at least 50x
  faster;
* a **warm start** under drifted vertex weights beats cold wall-time while
  staying feasible.

Run directly (``python benchmarks/bench_serve_cache.py``) or through
pytest.  ``--smoke`` restricts the ladder to its smallest rung for CI.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from repro.partition import part_graph
from repro.serve import PartitionService, ServiceConfig

from _util import RESULTS_DIR, emit_table, timed, type1_graph

K = 16
M = 3
SEED = 4
HIT_REPEATS = 50          # hit latency is microseconds; median of many
HIT_SPEEDUP_FLOOR = 50.0  # acceptance: hit >= 50x faster than cold


def _drift(graph, frac=0.05, bump=1):
    """The warm-start scenario: same mesh, a few weights moved."""
    vw = graph.vwgt.copy()
    n = max(1, int(graph.nvtxs * frac))
    vw[:n] += bump
    return graph.with_vwgt(vw)


def bench_one(name: str) -> dict:
    g = type1_graph(name, M)
    svc = PartitionService(ServiceConfig(warm_start=True))
    with svc:
        cold, cold_s = timed(svc.partition, g, K, seed=SEED)

        hit_times = []
        for _ in range(HIT_REPEATS):
            hit, s = timed(svc.partition, g, K, seed=SEED)
            hit_times.append(s)
        hit_s = float(np.median(hit_times))
        identical = (
            np.array_equal(hit.part, cold.part)
            and hit.edgecut == cold.edgecut
            and np.array_equal(hit.imbalance, cold.imbalance)
            and hit.feasible == cold.feasible
        )

        g2 = _drift(g)
        warm, warm_s = timed(svc.partition, g2, K, seed=SEED)
        stats = svc.stats()
        warm_used = stats["serve.warm_start.accepted"] > 0
    # the honest comparator: what the same drifted request costs cold
    cold2, cold2_s = timed(part_graph, g2, K, seed=SEED)

    return {
        "graph": name,
        "nvtxs": g.nvtxs,
        "nedges": g.nedges,
        "ncon": g.ncon,
        "cold_seconds": round(cold_s, 4),
        "hit_seconds": round(hit_s, 6),
        "hit_speedup": round(cold_s / hit_s, 1) if hit_s > 0 else float("inf"),
        "hit_identical": bool(identical),
        "warm_seconds": round(warm_s, 4),
        "warm_used": bool(warm_used),
        "warm_feasible": bool(warm.feasible),
        "warm_edgecut": int(warm.edgecut),
        "drift_cold_seconds": round(cold2_s, 4),
        "drift_cold_edgecut": int(cold2.edgecut),
        "warm_speedup": round(cold2_s / warm_s, 1) if warm_s > 0 else float("inf"),
    }


def run(smoke: bool = False) -> dict:
    names = ["sm1"] if smoke else ["sm1", "sm2", "sm3"]
    cases = [bench_one(n) for n in names]

    emit_table(
        "serve_cache",
        ["graph", "n", "cold (s)", "hit (s)", "hit x", "warm (s)",
         "cold' (s)", "warm x", "warm cut", "cold' cut"],
        [
            [c["graph"], c["nvtxs"], f"{c['cold_seconds']:.3f}",
             f"{c['hit_seconds']:.6f}", f"{c['hit_speedup']:.0f}",
             f"{c['warm_seconds']:.3f}", f"{c['drift_cold_seconds']:.3f}",
             f"{c['warm_speedup']:.1f}", c["warm_edgecut"],
             c["drift_cold_edgecut"]]
            for c in cases
        ],
        title=f"Serving: cache hit / warm start / cold (k={K}, m={M}; "
              "cold' = cold compute of the drifted request)",
    )

    record = {
        "schema": "BENCH_serve/v1",
        "mode": "smoke" if smoke else "full",
        "config": {"k": K, "m": M, "seed": SEED,
                   "hit_repeats": HIT_REPEATS,
                   "hit_speedup_floor": HIT_SPEEDUP_FLOOR},
        "cases": cases,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_serve.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {path}")

    failures = []
    for c in cases:
        if not c["hit_identical"]:
            failures.append(f"{c['graph']}: cache hit not bit-identical")
        if c["hit_speedup"] < HIT_SPEEDUP_FLOOR:
            failures.append(
                f"{c['graph']}: hit speedup {c['hit_speedup']}x "
                f"< {HIT_SPEEDUP_FLOOR}x")
        if not c["warm_feasible"]:
            failures.append(f"{c['graph']}: warm-path result infeasible")
        if c["warm_used"] and c["warm_seconds"] >= c["drift_cold_seconds"]:
            failures.append(
                f"{c['graph']}: warm start ({c['warm_seconds']}s) did not "
                f"beat cold ({c['drift_cold_seconds']}s)")
    if failures:
        raise AssertionError("serving contract violated:\n  " +
                             "\n  ".join(failures))
    return record


def test_serve_cache_bench():
    """Pytest entry: smoke-sized run of the same contract."""
    run(smoke=True)


if __name__ == "__main__":
    t0 = time.time()
    run(smoke="--smoke" in sys.argv)
    print(f"total {time.time() - t0:.1f}s")
