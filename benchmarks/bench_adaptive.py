"""A4 -- Extension ablation: adaptive repartitioning vs from-scratch.

For a drifting multi-constraint workload (Type-1 weights whose region
vectors are re-drawn with small perturbations each step), compare
repartitioning from scratch against local adaptive repartitioning.
Expected shape: adaptive keeps balance at a small multiple of the scratch
cut while moving an order of magnitude less vertex weight -- the trade that
makes frequent repartitioning affordable in adaptive simulations.
"""

from __future__ import annotations

import numpy as np

from _util import emit_table, get_graph, timed

from repro.adaptive import adaptive_repartition, migration_stats
from repro.partition import part_graph
from repro.weights import type1_region_weights
from repro.graph.ops import bfs_regions

GRAPH = "sm1"
K = 8
M = 2
STEPS = 5
SEED = 11


def _sweep():
    base = get_graph(GRAPH)
    rng = np.random.default_rng(SEED)
    regions = bfs_regions(base, 16, seed=SEED)

    g = base.with_vwgt(type1_region_weights(base, M, regions=regions, seed=SEED))
    prev_scratch = part_graph(g, K, seed=SEED).part
    prev_adapt = prev_scratch.copy()

    rows = []
    mig = {"scratch": 0, "adaptive": 0}
    cuts = {"scratch": [], "adaptive": []}
    for t in range(1, STEPS + 1):
        g = base.with_vwgt(
            type1_region_weights(base, M, regions=regions, seed=SEED + 31 * t)
        )
        sc, _ = timed(part_graph, g, K, seed=SEED + t)
        sc_m = migration_stats(g.vwgt, prev_scratch, sc.part)
        prev_scratch = sc.part
        ad, _ = timed(adaptive_repartition, g, prev_adapt, K,
                      itr=0.5, seed=SEED + t)
        prev_adapt = ad.part
        mig["scratch"] += sc_m["volume"]
        mig["adaptive"] += ad.migration["volume"]
        cuts["scratch"].append(sc.edgecut)
        cuts["adaptive"].append(ad.edgecut)
        rows.append([
            t, sc.edgecut, f"{sc_m['moved_fraction']:.0%}",
            ad.edgecut, f"{ad.migration['moved_fraction']:.0%}",
            ad.strategy, f"{ad.max_imbalance:.3f}",
            "yes" if ad.feasible else "NO",
        ])
    return rows, mig, cuts


def test_adaptive_vs_scratch(once):
    rows, mig, cuts = once(_sweep)
    emit_table(
        "adaptive",
        ["step", "scratch cut", "scratch moved", "adaptive cut",
         "adaptive moved", "choice", "adaptive imb", "balanced"],
        rows,
        f"A4 (extension): adaptive repartitioning of a drifting workload "
        f"({GRAPH}, m={M}, k={K})",
    )
    assert all(r[7] == "yes" for r in rows), "adaptive must stay balanced"
    assert mig["adaptive"] < 0.6 * mig["scratch"], \
        "adaptive must move far less weight than scratch"
    avg_ratio = np.mean([a / max(s, 1) for a, s in
                         zip(cuts["adaptive"], cuts["scratch"])])
    assert avg_ratio <= 1.8, "adaptive cut must stay near scratch quality"
