"""Cluster-tier load harness: thread vs process backends under a skewed
request stream.

Replays a **zipf-skewed** synthetic stream (mixed topologies, ``k``, ``m``)
against :class:`repro.serve.PartitionService` on each execution backend and
records into ``benchmarks/results/BENCH_serve_cluster.json`` (schema
``BENCH_serve_cluster/v1``):

* **cold saturation throughput** -- all-distinct cold requests fanned
  across the service pool with caching/dedup off;
* **replay tail latency** -- p50/p99 over the skewed stream served with
  the full front end (cache + dedup + admission control);
* **shed rate** -- requests refused by admission control under a bounded
  queue with more clients than workers;
* **determinism violations** -- every served result is compared
  bit-for-bit against a serial ``part_graph`` reference; the count must
  be **zero** on every backend (the headline invariant of the tier).

The process-vs-thread throughput invariant (process >= 2x thread cold
saturation) only holds where there are cores to scale onto, so the record
carries ``cores`` and the ratio is **asserted only when cores >= 4**
(``invariants.ratio_asserted``); single-core boxes still record the honest
ratio.  ``--smoke`` shrinks the stream for CI; ``--check`` re-validates the
recorded JSON without re-running (the CI job runs ``--smoke`` then
``--check``).
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import sys
import threading
import time

import numpy as np

from repro.errors import ServeOverloadError
from repro.graph import mesh_like
from repro.partition import part_graph
from repro.serve import BACKENDS, PartitionService, ServiceConfig
from repro.weights import type1_region_weights

from _util import RESULTS_DIR, emit_table, timed

RESULT_PATH = os.path.join(RESULTS_DIR, "BENCH_serve_cluster.json")
SCHEMA = "BENCH_serve_cluster/v1"
MASTER_SEED = 20260808
ZIPF_S = 1.1               # stream skew exponent
RATIO_FLOOR = 2.0          # process >= 2x thread cold throughput ...
RATIO_MIN_CORES = 4        # ... asserted only at >= this many cores


def _graph_pool(smoke: bool):
    """Mixed topologies x constraint counts, built once per run."""
    sizes = [600, 900, 1200] if smoke else [3000, 4500, 6000]
    pool = []
    for i, n in enumerate(sizes):
        g = mesh_like(n, seed=MASTER_SEED + i)
        for m in (1, 2, 3):
            gm = g if m == 1 else g.with_vwgt(
                type1_region_weights(g, m, seed=MASTER_SEED + 7 * m + i))
            pool.append((f"n{n}m{m}", gm))
    return pool


def _templates(smoke: bool):
    """The request catalog the zipf stream draws from."""
    ks = (4, 8) if smoke else (4, 8, 16)
    out = []
    for name, g in _graph_pool(smoke):
        for k in ks:
            out.append({"name": f"{name}k{k}", "graph": g, "nparts": k,
                        "seed": MASTER_SEED % 1000 + k})
    return out


def _zipf_stream(templates, length, rng):
    """Zipf-skewed template indices: a few hot requests, a long tail."""
    ranks = np.arange(1, len(templates) + 1, dtype=float)
    p = ranks ** -ZIPF_S
    p /= p.sum()
    return rng.choice(len(templates), size=length, p=p)


def _references(templates):
    """Serial bit-identity oracle, one compute per unique template."""
    return {t["name"]: part_graph(t["graph"], t["nparts"], seed=t["seed"])
            for t in templates}


def _identical(a, b) -> bool:
    return (np.array_equal(a.part, b.part) and a.edgecut == b.edgecut
            and np.array_equal(a.imbalance, b.imbalance)
            and a.feasible == b.feasible)


def _percentile_ms(samples, q) -> float:
    return round(float(np.percentile(samples, q)) * 1000.0, 3) if samples \
        else 0.0


# ------------------------------------------------------------------ phases


def _cold_saturation(backend, templates, repeats, workers):
    """All-distinct cold computes, front end stripped (no cache, no dedup):
    the execution substrate is the only variable."""
    cfg = ServiceConfig(backend=backend, max_workers=workers,
                        process_workers=workers, cache_entries=0,
                        dedup=False, warm_start=False)
    jobs = [(t, rep) for rep in range(repeats) for t in templates]
    with PartitionService(cfg) as svc:
        svc.warmup()  # spawn cost must not pollute the measurement
        t0 = time.perf_counter()
        futs = [svc.submit(t["graph"], t["nparts"],
                           seed=t["seed"] + 1000 * (rep + 1))
                for t, rep in jobs]
        for f in futs:
            f.result(timeout=600.0)
        seconds = time.perf_counter() - t0
    return {
        "requests": len(jobs),
        "seconds": round(seconds, 3),
        "throughput_rps": round(len(jobs) / seconds, 3),
    }


def _replay(backend, templates, stream, refs, *, workers, clients,
            max_pending):
    """Closed-loop clients replaying the skewed stream through the full
    front end; bounded queue so overload sheds instead of piling up."""
    cfg = ServiceConfig(backend=backend, max_workers=workers,
                        process_workers=workers, warm_start=False,
                        max_pending=max_pending)
    work: "queue.Queue[int]" = queue.Queue()
    for idx in stream:
        work.put(int(idx))
    latencies, violations, shed = [], [], 0
    lock = threading.Lock()

    def client(svc):
        nonlocal shed
        while True:
            try:
                idx = work.get_nowait()
            except queue.Empty:
                return
            t = templates[idx]
            t0 = time.perf_counter()
            try:
                res = svc.partition(t["graph"], t["nparts"], seed=t["seed"])
            except ServeOverloadError:
                with lock:
                    shed += 1
                continue
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)
                if not _identical(res, refs[t["name"]]):
                    violations.append(t["name"])

    with PartitionService(cfg) as svc:
        svc.warmup()
        t0 = time.perf_counter()
        threads = [threading.Thread(target=client, args=(svc,))
                   for _ in range(clients)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        seconds = time.perf_counter() - t0
        stats = svc.stats()
    offered = len(stream)
    return {
        "offered": offered,
        "served": len(latencies),
        "shed": shed,
        "shed_rate": round(shed / offered, 4) if offered else 0.0,
        "seconds": round(seconds, 3),
        "p50_ms": _percentile_ms(latencies, 50),
        "p99_ms": _percentile_ms(latencies, 99),
        "cache_hits": stats["serve.cache.hits"],
        "dedup_coalesced": stats["serve.dedup.coalesced"],
        "stats_shed": stats["serve.shed"],
        "determinism_violations": sorted(set(violations)),
    }


# --------------------------------------------------------------------- run


def run(smoke: bool = False) -> dict:
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))
    templates = _templates(smoke)
    stream_len = 60 if smoke else 400
    clients = workers * 3          # oversubscribed: admission has work to do
    max_pending = workers * 2
    cold_repeats = 1 if smoke else 2

    refs, ref_s = timed(_references, templates)
    print(f"[setup] {len(templates)} templates, serial references in "
          f"{ref_s:.1f}s; cores={cores}, workers={workers}")
    rng = np.random.default_rng(MASTER_SEED)
    stream = _zipf_stream(templates, stream_len, rng)

    backends = {}
    for backend in BACKENDS:
        cold = _cold_saturation(backend, templates, cold_repeats, workers)
        replay = _replay(backend, templates, stream, refs, workers=workers,
                         clients=clients, max_pending=max_pending)
        backends[backend] = {"cold": cold, "replay": replay}
        print(f"[{backend}] cold {cold['throughput_rps']} rps; replay "
              f"p50 {replay['p50_ms']}ms p99 {replay['p99_ms']}ms "
              f"shed {replay['shed']}/{replay['offered']}")

    thread_rps = backends["thread"]["cold"]["throughput_rps"]
    process_rps = backends["process"]["cold"]["throughput_rps"]
    total_violations = sum(
        len(b["replay"]["determinism_violations"]) for b in backends.values())
    record = {
        "schema": SCHEMA,
        "mode": "smoke" if smoke else "full",
        "cores": cores,
        "config": {
            "workers": workers, "clients": clients,
            "max_pending": max_pending, "zipf_s": ZIPF_S,
            "stream_length": int(stream_len),
            "templates": len(templates), "cold_repeats": cold_repeats,
        },
        "backends": backends,
        "invariants": {
            "determinism_violations": total_violations,
            "cold_throughput_ratio": round(process_rps / thread_rps, 3)
            if thread_rps else 0.0,
            "ratio_floor": RATIO_FLOOR,
            "ratio_asserted": cores >= RATIO_MIN_CORES,
        },
    }

    emit_table(
        "serve_cluster",
        ["backend", "cold rps", "replay p50 (ms)", "p99 (ms)",
         "shed rate", "cache hits", "det. violations"],
        [[b, backends[b]["cold"]["throughput_rps"],
          backends[b]["replay"]["p50_ms"], backends[b]["replay"]["p99_ms"],
          backends[b]["replay"]["shed_rate"],
          backends[b]["replay"]["cache_hits"],
          len(backends[b]["replay"]["determinism_violations"])]
         for b in BACKENDS],
        title=f"Cluster tier: thread vs process ({cores} cores, "
              f"{workers} workers, zipf s={ZIPF_S})",
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {RESULT_PATH}")
    check_record(record)
    return record


def check_record(record: dict) -> None:
    """The JSON invariants the CI job enforces."""
    failures = []
    if record.get("schema") != SCHEMA:
        failures.append(f"schema {record.get('schema')!r} != {SCHEMA!r}")
    inv = record.get("invariants", {})
    if inv.get("determinism_violations") != 0:
        failures.append(
            f"determinism violations: {inv.get('determinism_violations')} "
            "(must be zero on every backend)")
    for backend, b in record.get("backends", {}).items():
        r = b["replay"]
        if r["served"] + r["shed"] != r["offered"]:
            failures.append(
                f"{backend}: served {r['served']} + shed {r['shed']} != "
                f"offered {r['offered']}")
        if r["shed"] != r["stats_shed"]:
            failures.append(
                f"{backend}: client-observed sheds {r['shed']} != "
                f"service counter {r['stats_shed']}")
        if b["cold"]["throughput_rps"] <= 0:
            failures.append(f"{backend}: non-positive cold throughput")
    ratio = inv.get("cold_throughput_ratio", 0.0)
    if inv.get("ratio_asserted"):
        if ratio < inv.get("ratio_floor", RATIO_FLOOR):
            failures.append(
                f"process/thread cold throughput {ratio}x < "
                f"{inv.get('ratio_floor')}x on {record.get('cores')} cores")
    if failures:
        raise AssertionError("cluster-tier contract violated:\n  " +
                             "\n  ".join(failures))
    note = ("asserted" if inv.get("ratio_asserted")
            else f"recorded only: {record.get('cores')} core(s)")
    print(f"check ok: zero determinism violations; process/thread cold "
          f"throughput {ratio}x ({note})")


def check_file(path: str = RESULT_PATH) -> None:
    with open(path) as fh:
        check_record(json.load(fh))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small stream / small graphs for CI")
    ap.add_argument("--check", action="store_true",
                    help="validate the recorded JSON without re-running")
    args = ap.parse_args(argv)
    if args.check:
        check_file()
        return 0
    t0 = time.time()
    run(smoke=args.smoke)
    print(f"total {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    # Real-file entry with a __main__ guard: the process backend uses the
    # *spawn* start method, which re-imports __main__ in every worker.
    raise SystemExit(main())
