"""E6 -- Recursive bisection vs multilevel k-way (the two formulations).

The paper develops both a recursive-bisection and a k-way ("horizontal")
multi-constraint algorithm.  Expected shape: comparable cuts (within ~1.5x
either way), both feasible; k-way is the faster formulation at larger k
because it coarsens once instead of once per split.
"""

from __future__ import annotations

from _util import emit_table, timed, type1_graph

from repro.partition import part_graph

GRAPH = "sm2"
KS = (8, 16, 32)
MS = (2, 4)
SEED = 5


def _sweep():
    rows = []
    checks = []
    for m in MS:
        g = type1_graph(GRAPH, m)
        for k in KS:
            rb, rb_secs = timed(part_graph, g, k, method="recursive", seed=SEED)
            kw, kw_secs = timed(part_graph, g, k, method="kway", seed=SEED)
            rows.append([
                m, k,
                rb.edgecut, f"{rb.max_imbalance:.3f}", f"{rb_secs:.1f}",
                kw.edgecut, f"{kw.max_imbalance:.3f}", f"{kw_secs:.1f}",
                f"{kw.edgecut / max(rb.edgecut, 1):.2f}",
            ])
            checks.append((rb, kw, rb_secs, kw_secs, k))
    return rows, checks


def test_rb_vs_kway(once):
    rows, checks = once(_sweep)
    emit_table(
        "rb_vs_kway",
        ["m", "k", "RB cut", "RB imb", "RB t(s)",
         "kway cut", "kway imb", "kway t(s)", "kway/RB cut"],
        rows,
        f"E6: recursive bisection vs multilevel k-way ({GRAPH})",
    )
    for rb, kw, rb_secs, kw_secs, k in checks:
        assert rb.max_imbalance <= 1.10
        assert kw.max_imbalance <= 1.10
        assert 0.5 <= kw.edgecut / max(rb.edgecut, 1) <= 1.9
    # k-way should win on time at the largest k (coarsen once, not log k times).
    big = [c for c in checks if c[4] == 32]
    assert any(kw_secs <= rb_secs for _, _, rb_secs, kw_secs, _ in big)
