"""E4 -- Run time as a function of the number of constraints.

Paper analogue: the run-time tables report that a three-constraint
partitioning takes about twice as long as a single-constraint one (the
algorithm is O(nm)).  Expected shape here: time grows roughly linearly and
mildly in m -- t(m=3)/t(m=1) in the 1.2-3x band, never superlinear blow-up.
"""

from __future__ import annotations

from _util import emit_table, get_graph, timed, type1_graph

from repro.partition import part_graph

GRAPH = "sm2"
K = 16
MS = (1, 2, 3, 4, 5)
SEED = 3


def _sweep():
    rows = []
    times = {}
    for m in MS:
        g = get_graph(GRAPH) if m == 1 else type1_graph(GRAPH, m)
        res, secs = timed(part_graph, g, K, seed=SEED)
        times[m] = secs
        rows.append([
            m, f"{secs:.2f}", f"{secs / times[1]:.2f}",
            res.edgecut, f"{res.max_imbalance:.3f}",
        ])
    return rows, times


def test_runtime_scaling_in_m(once):
    rows, times = once(_sweep)
    emit_table(
        "runtime_m",
        ["constraints m", "time (s)", "time / time(m=1)", "edge-cut", "max imbalance"],
        rows,
        f"E4: k-way partitioning time vs number of constraints ({GRAPH}, k={K})",
    )
    # Paper claim shape: ~2x from m=1 to m=3, bounded growth overall.
    assert times[3] / times[1] <= 4.0
    assert times[5] / times[1] <= 7.0
    assert times[5] >= times[1] * 0.8  # more constraints never get cheaper
