"""Shm-executor benchmark: sim-vs-shm parity plus wall-clock scaling.

Runs the coarse-grain parallel partitioner on the **shm** executor (real
spawned worker processes over shared-memory CSR views) at 1/2/4 ranks and
records into ``benchmarks/results/BENCH_parallel_shm.json`` (schema
``BENCH_parallel_shm/v1``):

* **parity** -- every rank count is checked bit-identical against the
  simulated oracle (equal message digests *and* equal partitions); the
  count of parity failures must be **zero** (the headline invariant of
  the executor);
* **wall seconds** -- shm wall-clock per rank count, plus the serial
  ``part_graph`` wall time of the same problem as the scaling reference;
* **speedup gate** -- multi-rank runs only beat the 1-rank run where
  there are cores to scale onto, so the record carries ``cores`` and the
  ``speedup_floor`` (p=4 over p=1) is **asserted only when cores >= 4**
  (``invariants.speedup_asserted``); single-core boxes still record the
  honest ratio;
* **cleanup** -- ``/dev/shm`` is swept after every run; any surviving
  ``repro-shm-*`` segment fails the check.

``--smoke`` shrinks the graph for CI; ``--check`` re-validates the
recorded JSON without re-running (the CI job runs ``--smoke`` then
``--check``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.graph import mesh_like
from repro.parallel import run_parity
from repro.parallel.shm import active_segments
from repro.partition import PartitionOptions, part_graph
from repro.weights import type1_region_weights

from _util import RESULTS_DIR, emit_table, timed

RESULT_PATH = os.path.join(RESULTS_DIR, "BENCH_parallel_shm.json")
SCHEMA = "BENCH_parallel_shm/v1"
MASTER_SEED = 20260809
RANKS = (1, 2, 4)
NPARTS = 8
NCON = 2
SPEEDUP_FLOOR = 1.2        # shm p=4 >= 1.2x shm p=1 wall ...
SPEEDUP_MIN_CORES = 4      # ... asserted only at >= this many cores


def _problem(smoke: bool):
    n = 1_500 if smoke else 12_000
    g = mesh_like(n, seed=MASTER_SEED)
    return g.with_vwgt(type1_region_weights(g, NCON, seed=MASTER_SEED + 1))


def run(smoke: bool = False) -> dict:
    graph = _problem(smoke)
    options = PartitionOptions(seed=MASTER_SEED % 1000)
    cores = os.cpu_count() or 1

    serial, serial_seconds = timed(
        part_graph, graph, NPARTS, options=options)

    ranks = []
    parity_failures = 0
    for p in RANKS:
        rep, _ = timed(run_parity, graph, NPARTS, p, options=options)
        if not rep.ok:
            parity_failures += 1
            print(rep.summary())
        leaked = active_segments()
        ranks.append({
            "nranks": p,
            "parity_ok": rep.ok,
            "first_divergence": rep.first_divergence,
            "messages": rep.messages,
            "edgecut": rep.shm_result.edgecut,
            "sim_modelled_seconds": round(rep.sim_result.simulated_time, 6),
            "shm_wall_seconds": round(rep.shm_result.simulated_time, 4),
            "leaked_segments": leaked,
        })

    wall = {r["nranks"]: r["shm_wall_seconds"] for r in ranks}
    speedup = round(wall[1] / wall[4], 3) if wall.get(4) else 0.0
    record = {
        "schema": SCHEMA,
        "smoke": smoke,
        "cores": cores,
        "config": {
            "nvtxs": graph.nvtxs, "nedges": graph.nedges, "ncon": NCON,
            "nparts": NPARTS, "ranks": list(RANKS),
            "seed": options.seed,
        },
        "serial_wall_seconds": round(serial_seconds, 4),
        "serial_edgecut": int(serial.edgecut),
        "ranks": ranks,
        "invariants": {
            "parity_failures": parity_failures,
            "leaked_segments": sum(len(r["leaked_segments"]) for r in ranks),
            "speedup_p4_over_p1": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_asserted": cores >= SPEEDUP_MIN_CORES,
        },
    }

    emit_table(
        "parallel_shm",
        ["ranks", "parity", "messages", "cut",
         "sim modelled (s)", "shm wall (s)"],
        [[r["nranks"], "ok" if r["parity_ok"] else "FAIL", r["messages"],
          r["edgecut"], r["sim_modelled_seconds"], r["shm_wall_seconds"]]
         for r in ranks],
        title=f"Shm executor parity + scaling ({cores} cores, "
              f"n={graph.nvtxs}, k={NPARTS}, m={NCON}; "
              f"serial {record['serial_wall_seconds']}s)",
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {RESULT_PATH}")
    check_record(record)
    return record


def check_record(record: dict) -> None:
    """The JSON invariants the CI job enforces."""
    failures = []
    if record.get("schema") != SCHEMA:
        failures.append(f"schema {record.get('schema')!r} != {SCHEMA!r}")
    inv = record.get("invariants", {})
    if inv.get("parity_failures") != 0:
        failures.append(
            f"parity failures: {inv.get('parity_failures')} "
            "(shm must be bit-identical to the simulator)")
    if inv.get("leaked_segments") != 0:
        failures.append(
            f"leaked /dev/shm segments: {inv.get('leaked_segments')}")
    for r in record.get("ranks", []):
        if r["shm_wall_seconds"] <= 0:
            failures.append(f"p={r['nranks']}: non-positive wall time")
    if inv.get("speedup_asserted"):
        if inv.get("speedup_p4_over_p1", 0.0) < inv.get("speedup_floor",
                                                        SPEEDUP_FLOOR):
            failures.append(
                f"shm p=4 speedup {inv.get('speedup_p4_over_p1')}x < "
                f"{inv.get('speedup_floor')}x on {record.get('cores')} cores")
    if failures:
        raise AssertionError("shm-executor contract violated:\n  " +
                             "\n  ".join(failures))
    note = ("asserted" if inv.get("speedup_asserted")
            else f"recorded only: {record.get('cores')} core(s)")
    print(f"check ok: zero parity failures, zero leaks; p=4/p=1 speedup "
          f"{inv.get('speedup_p4_over_p1')}x ({note})")


def check_file(path: str = RESULT_PATH) -> None:
    with open(path) as fh:
        check_record(json.load(fh))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small graph for CI")
    ap.add_argument("--check", action="store_true",
                    help="validate the recorded JSON without re-running")
    args = ap.parse_args(argv)
    if args.check:
        check_file()
        return 0
    t0 = time.time()
    run(smoke=args.smoke)
    print(f"total {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    # Real-file entry with a __main__ guard: the shm executor uses the
    # *spawn* start method, which re-imports __main__ in every worker.
    raise SystemExit(main())
