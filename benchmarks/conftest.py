"""Benchmark-suite configuration.

Every benchmark is a single macro-run (``rounds=1``): individual runs take
seconds, so statistical repetition would waste the budget without changing
the story the tables tell.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
