"""A3 -- Ablation: initial-bisection strategy.

The initial partition of the coarsest graph must already be (nearly)
balanced in all m constraints -- the paper stresses that refinement cannot
repair a badly imbalanced start (>20% is usually unrecoverable).  This
ablation restricts the candidate generator to a single strategy and
measures the resulting end-to-end quality.

Run standalone (``PYTHONPATH=src:benchmarks python
benchmarks/bench_initpart_ablation.py``) to also emit machine-readable
JSON for CI artifact upload; the pytest entry point keeps the txt table.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from _util import RESULTS_DIR, emit_table, timed, type1_graph

from repro.coarsen import coarsen
from repro.initpart import initial_bisection
from repro.metrics import edge_cut
from repro.weights import max_imbalance

GRAPH = "sm1"
M = 3
SEED = 8
METHODS = ("greedy", "prefix", "region", "gggp", "random")


def _sweep():
    g = type1_graph(GRAPH, M)
    hier = coarsen(g, coarsen_to=100, seed=SEED)
    coarsest = hier.coarsest
    rows = []
    stats = {}
    for method in METHODS + (("all (default)"),):
        methods = METHODS if method == "all (default)" else (method,)
        where, secs = timed(
            initial_bisection, coarsest,
            ubvec=1.05, ntries=4, seed=SEED, methods=methods,
        )
        cut = edge_cut(coarsest, where)
        imb = max_imbalance(coarsest.vwgt, where, 2)
        stats[method] = (cut, imb, secs)
        rows.append([method, cut, f"{imb:.3f}", f"{secs:.2f}"])
    return rows, stats


def _patience_sweep():
    """Early-stop ablation: plateau patience vs. exhaustive legacy mode."""
    g = type1_graph(GRAPH, M)
    coarsest = coarsen(g, coarsen_to=100, seed=SEED).coarsest
    records = []
    for label, kwargs in (
        ("strict (no early-stop)", {"strict": True}),
        ("patience=2", {"patience": 2}),
        ("patience=6 (default)", {"patience": 6}),
        ("patience=12", {"patience": 12}),
    ):
        where, secs = timed(
            initial_bisection, coarsest,
            ubvec=1.05, ntries=8, seed=SEED, **kwargs,
        )
        records.append({
            "config": label,
            "cut": int(edge_cut(coarsest, where)),
            "imbalance": round(float(max_imbalance(coarsest.vwgt, where, 2)), 4),
            "seconds": round(secs, 4),
        })
    return records


def test_initpart_ablation(once):
    rows, stats = once(_sweep)
    emit_table(
        "initpart_ablation",
        ["candidate generator", "coarsest-graph cut", "max imbalance", "time (s)"],
        rows,
        f"A3: initial-bisection strategy ablation (coarsest graph of {GRAPH}, m={M})",
    )
    # The combined default must match or beat every single strategy on cut
    # among the feasible ones.
    all_cut, all_imb, _ = stats["all (default)"]
    assert all_imb <= 1.06
    feasible_cuts = [c for m, (c, i, _) in stats.items()
                     if i <= 1.06 and m != "all (default)"]
    if feasible_cuts:
        assert all_cut <= min(feasible_cuts) * 1.05


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Initial-bisection ablation with machine-readable output")
    parser.add_argument(
        "--out",
        default=os.path.join(RESULTS_DIR, "BENCH_initpart_ablation.json"),
        help="path for the JSON artifact (default: %(default)s)")
    args = parser.parse_args(argv)

    rows, stats = _sweep()
    emit_table(
        "initpart_ablation",
        ["candidate generator", "coarsest-graph cut", "max imbalance", "time (s)"],
        rows,
        f"A3: initial-bisection strategy ablation (coarsest graph of {GRAPH}, m={M})",
    )
    patience = _patience_sweep()

    payload = {
        "graph": GRAPH,
        "ncon": M,
        "seed": SEED,
        "methods": [
            {
                "method": m,
                "cut": int(c),
                "imbalance": round(float(i), 4),
                "seconds": round(s, 4),
            }
            for m, (c, i, s) in stats.items()
        ],
        "early_stop": patience,
    }
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"ablation JSON -> {args.out}")
    for rec in patience:
        print(f"  {rec['config']:<24} cut={rec['cut']:<6} "
              f"imb={rec['imbalance']:.3f}  {rec['seconds']:.2f}s")


if __name__ == "__main__":
    main()
