"""A3 -- Ablation: initial-bisection strategy.

The initial partition of the coarsest graph must already be (nearly)
balanced in all m constraints -- the paper stresses that refinement cannot
repair a badly imbalanced start (>20% is usually unrecoverable).  This
ablation restricts the candidate generator to a single strategy and
measures the resulting end-to-end quality.
"""

from __future__ import annotations

import numpy as np

from _util import emit_table, timed, type1_graph

from repro.coarsen import coarsen
from repro.initpart import initial_bisection
from repro.metrics import edge_cut
from repro.weights import max_imbalance

GRAPH = "sm1"
M = 3
SEED = 8
METHODS = ("greedy", "prefix", "region", "gggp", "random")


def _sweep():
    g = type1_graph(GRAPH, M)
    hier = coarsen(g, coarsen_to=100, seed=SEED)
    coarsest = hier.coarsest
    rows = []
    stats = {}
    for method in METHODS + (("all (default)"),):
        methods = METHODS if method == "all (default)" else (method,)
        where, secs = timed(
            initial_bisection, coarsest,
            ubvec=1.05, ntries=4, seed=SEED, methods=methods,
        )
        cut = edge_cut(coarsest, where)
        imb = max_imbalance(coarsest.vwgt, where, 2)
        stats[method] = (cut, imb)
        rows.append([method, cut, f"{imb:.3f}", f"{secs:.2f}"])
    return rows, stats


def test_initpart_ablation(once):
    rows, stats = once(_sweep)
    emit_table(
        "initpart_ablation",
        ["candidate generator", "coarsest-graph cut", "max imbalance", "time (s)"],
        rows,
        f"A3: initial-bisection strategy ablation (coarsest graph of {GRAPH}, m={M})",
    )
    # The combined default must match or beat every single strategy on cut
    # among the feasible ones.
    all_cut, all_imb = stats["all (default)"]
    assert all_imb <= 1.06
    feasible_cuts = [c for m, (c, i) in stats.items()
                     if i <= 1.06 and m != "all (default)"]
    if feasible_cuts:
        assert all_cut <= min(feasible_cuts) * 1.05
