"""A2 -- Ablation: multilevel refinement on/off.

Refinement is the phase whose multi-constraint generalisation is the
paper's hardest contribution; this ablation measures what it buys.  The
no-refinement configuration projects the initial partition of the coarsest
graph straight to the finest graph (refine passes = 0) and only repairs
balance.  Expected shape: refinement cuts the edge-cut by a large factor
(typically >= 1.3x) at a modest time cost.
"""

from __future__ import annotations

from _util import emit_table, timed, type1_graph

from repro.partition import PartitionOptions, part_graph

GRAPH = "sm1"
K = 8
M = 3
SEED = 7


def _sweep():
    g = type1_graph(GRAPH, M)
    rows = []
    cuts = {}
    configs = {
        "no refinement": PartitionOptions(seed=SEED, refine_passes=0,
                                          kway_refine_passes=0),
        "1 pass": PartitionOptions(seed=SEED, refine_passes=1,
                                   kway_refine_passes=1),
        "default (8 passes)": PartitionOptions(seed=SEED),
    }
    for label, opts in configs.items():
        res, secs = timed(part_graph, g, K, options=opts)
        cuts[label] = res.edgecut
        rows.append([
            label, res.edgecut, f"{res.max_imbalance:.3f}",
            "yes" if res.feasible else "NO", f"{secs:.1f}",
        ])
    return rows, cuts


def test_refinement_ablation(once):
    rows, cuts = once(_sweep)
    emit_table(
        "refinement_ablation",
        ["configuration", "edge-cut", "max imbalance", "balanced", "time (s)"],
        rows,
        f"A2: refinement ablation ({GRAPH}, m={M}, k={K})",
    )
    assert cuts["default (8 passes)"] <= cuts["1 pass"] * 1.05
    assert cuts["default (8 passes)"] <= cuts["no refinement"] / 1.2, \
        "multilevel refinement must buy a substantial cut improvement"
