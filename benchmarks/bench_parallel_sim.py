"""P1 -- Extension: simulated parallel scaling (future-work direction).

Runs the coarse-grain parallel formulation on the alpha-beta simulated
cluster, sweeping rank counts on two graph sizes.  Expected shapes (these
mirror the parallel follow-on literature, reproduced here in simulation
because the SC'98 paper names the parallel formulation as future work):

* quality: parallel cut within ~1.5x of serial at every p, balance kept;
* fixed problem size: efficiency decays as p grows;
* scaled problem: the bigger graph sustains a given rank count better
  (the isoefficiency direction).
"""

from __future__ import annotations

from _util import emit_table, timed, type1_graph

from repro.parallel import parallel_part_graph
from repro.partition import PartitionOptions, part_graph

K = 16
M = 3
SEED = 10
RANKS = (1, 2, 4, 8, 16)


def _sweep():
    rows = []
    eff = {}
    for name in ("sm1", "sm3"):
        g = type1_graph(name, M)
        serial, _ = timed(part_graph, g, K, seed=SEED)
        t1 = None
        for p in RANKS:
            res, wall = timed(
                parallel_part_graph, g, K, p, options=PartitionOptions(seed=SEED)
            )
            if t1 is None:
                t1 = res.simulated_time
            speed = t1 / res.simulated_time
            eff[(name, p)] = speed / p
            rows.append([
                name, p, res.edgecut,
                f"{res.edgecut / serial.edgecut:.2f}",
                f"{res.max_imbalance:.3f}",
                f"{res.simulated_time * 1e3:.2f}",
                f"{speed:.2f}", f"{speed / p:.2f}",
            ])
    return rows, eff


def test_parallel_scaling_shape(once):
    rows, eff = once(_sweep)
    emit_table(
        "parallel_sim",
        ["graph", "ranks", "cut", "cut/serial", "imbalance",
         "t_sim (ms)", "speedup", "efficiency"],
        rows,
        f"P1 (extension): simulated parallel scaling (m={M}, k={K})",
    )
    for row in rows:
        assert float(row[3]) <= 1.6, "parallel quality must track serial"
        assert float(row[4]) <= 1.10
    # Fixed-size efficiency decays with p...
    assert eff[("sm1", 16)] <= eff[("sm1", 2)] + 1e-9
    # ...and the larger graph holds efficiency at least as well at p=16.
    assert eff[("sm3", 16)] >= eff[("sm1", 16)] * 0.9
