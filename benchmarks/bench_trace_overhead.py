"""T1 -- Tracing overhead: the no-op tracer must be free.

The drivers are instrumented unconditionally (`with tracer.span(...)`), so
the cost of tracing-off is exactly the cost of the null-tracer calls.  This
bench bounds that cost two ways on a 10k-vertex mesh:

1. *measured estimate*: micro-time one null span open/close, count the
   spans an actually-traced run emits, and bound the no-op overhead as
   ``nspans x cost_per_span`` -- asserted < 5% of the untraced
   ``part_graph`` wall time (the acceptance budget; in practice it is
   orders of magnitude below it);
2. *end-to-end sanity*: a fully-traced run (in-memory sink) must stay
   within 1.3x of the untraced run, i.e. even tracing **on** is cheap at
   this granularity.
"""

from __future__ import annotations

import time

from _util import emit_table, timed

from repro.graph import mesh_like
from repro.partition import part_graph
from repro.trace import NULL_TRACER, InMemorySink, Tracer
from repro.weights import type1_region_weights

N = 10_000
K = 8
M = 3
SEED = 11
NULL_REPS = 200_000


def _graph():
    g = mesh_like(N, seed=SEED)
    return g.with_vwgt(type1_region_weights(g, M, seed=SEED))


def _null_span_cost() -> float:
    t0 = time.perf_counter()
    for _ in range(NULL_REPS):
        with NULL_TRACER.span("x", nvtxs=0):
            pass
    return (time.perf_counter() - t0) / NULL_REPS


def _run():
    g = _graph()
    part_graph(g, K, seed=SEED)  # warm caches so the timed pair is fair

    _, t_off = timed(part_graph, g, K, seed=SEED)

    sink = InMemorySink()
    tracer = Tracer([sink])
    _, t_on = timed(part_graph, g, K, seed=SEED, tracer=tracer)
    tracer.finish()
    nspans = sum(e["event"] == "span" for e in sink.events)

    per_span = _null_span_cost()
    est_noop = nspans * per_span
    return t_off, t_on, nspans, per_span, est_noop


def test_trace_overhead(once):
    t_off, t_on, nspans, per_span, est_noop = once(_run)
    noop_frac = est_noop / t_off
    emit_table(
        "trace_overhead",
        ["tracing", "time (s)", "spans", "ns per null span",
         "est. no-op overhead", "vs untraced"],
        [
            ["off (default)", f"{t_off:.2f}", nspans, f"{per_span * 1e9:.0f}",
             f"{est_noop * 1e3:.3f}ms", f"{noop_frac:.4%}"],
            ["on (in-memory)", f"{t_on:.2f}", "-", "-", "-",
             f"{t_on / t_off - 1:+.1%}"],
        ],
        f"T1: tracing overhead on part_graph (n={N}, m={M}, k={K})",
    )
    # The acceptance budget: no-op tracing costs < 5% of an untraced run.
    assert noop_frac < 0.05, (
        f"null tracer overhead {noop_frac:.2%} exceeds the 5% budget "
        f"({nspans} spans x {per_span * 1e9:.0f}ns vs {t_off:.2f}s)"
    )
    # Even full tracing should be far from doubling the run.
    assert t_on <= 1.3 * t_off + 0.05
