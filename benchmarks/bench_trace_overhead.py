"""T1 -- Tracing & flight-recorder overhead: the no-op tracer must be free.

The drivers are instrumented unconditionally (``with tracer.span(...)``,
per-level ``"level"`` events), so the cost of tracing-off is exactly the
cost of the null-tracer calls.  This bench bounds the cost three ways on a
10k-vertex mesh and records the measurements into
``benchmarks/results/BENCH_trace.json`` (schema ``BENCH_trace/v1``):

1. *measured estimate*: micro-time one null span open/close, count the
   spans an actually-traced run emits, and bound the no-op overhead as
   ``nspans x cost_per_span`` -- asserted < 5% of the untraced
   ``part_graph`` wall time (the acceptance budget; in practice it is
   orders of magnitude below it);
2. *flight recorder*: a run recorded through
   :class:`repro.obs.FlightRecorder` must stay within 5% of the untraced
   run (plus a small absolute slack for timer noise) **and** return the
   bit-identical partition -- recording must never perturb results;
3. *end-to-end sanity*: a fully-traced run (in-memory sink) must stay
   within 1.3x of the untraced run;
4. *worker telemetry* (schema v2): a traced 2-rank shm run -- per-reply
   deltas, drain merge, span grafting -- must stay within 10% of the
   same run untraced (plus absolute slack: the spawn cost both sides pay
   dwarfs the delta shipping, and on a loaded 1-core box the ratio is
   noisy) with the bit-identical partition
   (``shm_traced_overhead`` in the artifact).

Run directly (``python benchmarks/bench_trace_overhead.py``) or through
pytest.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from _util import RESULTS_DIR, emit_table, timed

from repro.graph import mesh_like
from repro.obs import FlightRecorder
from repro.parallel import parallel_part_graph
from repro.partition import PartitionOptions, part_graph
from repro.trace import NULL_TRACER, InMemorySink, Tracer
from repro.weights import type1_region_weights

N = 10_000
K = 8
M = 3
SEED = 11
NULL_REPS = 200_000
TIMED_REPS = 3               # min-of-N: robust against scheduler noise
NOOP_BUDGET = 0.05           # no-op tracing: < 5% of an untraced run
RECORDER_BUDGET = 0.05       # flight recorder: <= 5% (+ absolute slack)
RECORDER_SLACK_S = 0.05
SHM_N = 3_000                # smaller: each rep spawns 2 processes
SHM_RANKS = 2
SHM_BUDGET = 0.10            # worker telemetry: <= 10% of untraced shm
SHM_SLACK_S = 0.25           # spawn jitter dominates on small boxes


def _graph():
    g = mesh_like(N, seed=SEED)
    return g.with_vwgt(type1_region_weights(g, M, seed=SEED))


def _null_span_cost() -> float:
    t0 = time.perf_counter()
    for _ in range(NULL_REPS):
        with NULL_TRACER.span("x", nvtxs=0):
            pass
    return (time.perf_counter() - t0) / NULL_REPS


def _best_of(fn):
    """Min wall time (and last result) over ``TIMED_REPS`` calls."""
    best = None
    result = None
    for _ in range(TIMED_REPS):
        result, s = timed(fn)
        best = s if best is None else min(best, s)
    return result, best


def _measure() -> dict:
    g = _graph()
    part_graph(g, K, seed=SEED)  # warm caches so the timed runs are fair

    res_off, t_off = _best_of(lambda: part_graph(g, K, seed=SEED))

    def recorded():
        rec = FlightRecorder()
        tracer = Tracer([rec])
        res = part_graph(g, K, seed=SEED, tracer=tracer)
        tracer.finish()
        return res, rec

    (res_rec, rec), t_rec = _best_of(recorded)
    profile = rec.profile()

    sink = InMemorySink()
    tracer = Tracer([sink])
    res_on, t_on = timed(part_graph, g, K, seed=SEED, tracer=tracer)
    tracer.finish()
    nspans = sum(e["event"] == "span" for e in sink.events)
    nlevel_events = sum(e["event"] == "level" for e in sink.events)

    per_span = _null_span_cost()
    est_noop = nspans * per_span

    # Worker telemetry on the shm executor: per-reply deltas + the
    # shutdown drain ride the existing pipes, so the traced run should
    # track the untraced one to within noise.
    gs = mesh_like(SHM_N, seed=SEED)
    gs = gs.with_vwgt(type1_region_weights(gs, M, seed=SEED))
    opts = PartitionOptions(seed=SEED)
    parallel_part_graph(gs, K, SHM_RANKS, options=opts,
                        executor="shm")  # warm spawn caches

    res_shm_off, t_shm_off = _best_of(lambda: parallel_part_graph(
        gs, K, SHM_RANKS, options=opts, executor="shm"))

    def shm_traced():
        tr = Tracer()
        res = parallel_part_graph(gs, K, SHM_RANKS, options=opts,
                                  executor="shm", tracer=tr)
        tr.finish()
        return res

    res_shm_on, t_shm_on = _best_of(shm_traced)

    return {
        "nvtxs": N,
        "k": K,
        "m": M,
        "seed": SEED,
        "t_off_seconds": round(t_off, 4),
        "t_recorder_seconds": round(t_rec, 4),
        "t_traced_seconds": round(t_on, 4),
        "spans": int(nspans),
        "level_events": int(nlevel_events),
        "ns_per_null_span": round(per_span * 1e9, 1),
        "est_noop_seconds": round(est_noop, 6),
        "noop_frac": round(est_noop / t_off, 6),
        "recorder_overhead_frac": round(t_rec / t_off - 1.0, 4),
        "cut_off": int(res_off.edgecut),
        "cut_recorded": int(res_rec.edgecut),
        "part_identical": bool(np.array_equal(res_off.part, res_rec.part)),
        "profile_levels": int(profile.nlevels),
        "profile_refine_rows": len(profile.uncoarsening),
        "shm_nvtxs": SHM_N,
        "shm_ranks": SHM_RANKS,
        "t_shm_off_seconds": round(t_shm_off, 4),
        "t_shm_traced_seconds": round(t_shm_on, 4),
        "shm_traced_overhead": round(t_shm_on / t_shm_off - 1.0, 4),
        "shm_part_identical": bool(
            np.array_equal(res_shm_off.part, res_shm_on.part)),
    }


def run() -> dict:
    case = _measure()
    emit_table(
        "trace_overhead",
        ["tracing", "time (s)", "spans", "events", "ns/null span",
         "est. no-op", "vs untraced"],
        [
            ["off (default)", f"{case['t_off_seconds']:.2f}", case["spans"],
             case["level_events"], f"{case['ns_per_null_span']:.0f}",
             f"{case['est_noop_seconds'] * 1e3:.3f}ms",
             f"{case['noop_frac']:.4%}"],
            ["flight recorder", f"{case['t_recorder_seconds']:.2f}", "-", "-",
             "-", "-", f"{case['recorder_overhead_frac']:+.1%}"],
            ["on (in-memory)", f"{case['t_traced_seconds']:.2f}", "-", "-",
             "-", "-",
             f"{case['t_traced_seconds'] / case['t_off_seconds'] - 1:+.1%}"],
            [f"shm x{SHM_RANKS} untraced",
             f"{case['t_shm_off_seconds']:.2f}", "-", "-", "-", "-", "-"],
            [f"shm x{SHM_RANKS} telemetry",
             f"{case['t_shm_traced_seconds']:.2f}", "-", "-", "-", "-",
             f"{case['shm_traced_overhead']:+.1%}"],
        ],
        f"T1: tracing overhead on part_graph (n={N}, m={M}, k={K})",
    )

    record = {
        "schema": "BENCH_trace/v2",
        "config": {"n": N, "k": K, "m": M, "seed": SEED,
                   "timed_reps": TIMED_REPS, "null_reps": NULL_REPS,
                   "noop_budget": NOOP_BUDGET,
                   "recorder_budget": RECORDER_BUDGET,
                   "recorder_slack_seconds": RECORDER_SLACK_S,
                   "shm_n": SHM_N, "shm_ranks": SHM_RANKS,
                   "shm_budget": SHM_BUDGET,
                   "shm_slack_seconds": SHM_SLACK_S},
        "case": case,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_trace.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {path}")

    failures = []
    # The acceptance budget: no-op tracing costs < 5% of an untraced run.
    if case["noop_frac"] >= NOOP_BUDGET:
        failures.append(
            f"null tracer overhead {case['noop_frac']:.2%} exceeds the "
            f"{NOOP_BUDGET:.0%} budget ({case['spans']} spans x "
            f"{case['ns_per_null_span']:.0f}ns vs "
            f"{case['t_off_seconds']:.2f}s)")
    # Flight recording must be cheap AND must not change the result.
    budget = (1.0 + RECORDER_BUDGET) * case["t_off_seconds"] + RECORDER_SLACK_S
    if case["t_recorder_seconds"] > budget:
        failures.append(
            f"flight-recorder run {case['t_recorder_seconds']:.3f}s exceeds "
            f"{budget:.3f}s ({RECORDER_BUDGET:.0%} + {RECORDER_SLACK_S}s "
            f"over untraced {case['t_off_seconds']:.3f}s)")
    if not case["part_identical"] or case["cut_off"] != case["cut_recorded"]:
        failures.append(
            f"recording changed the result: cut {case['cut_off']} vs "
            f"{case['cut_recorded']}, identical={case['part_identical']}")
    # Even full tracing should be far from doubling the run.
    if case["t_traced_seconds"] > 1.3 * case["t_off_seconds"] + 0.05:
        failures.append(
            f"traced run {case['t_traced_seconds']:.3f}s vs untraced "
            f"{case['t_off_seconds']:.3f}s exceeds the 1.3x sanity bound")
    if case["profile_levels"] < 1 or case["profile_refine_rows"] < 1:
        failures.append("flight recorder produced an empty profile")
    # Worker telemetry on the shm executor: cheap and bit-preserving.
    shm_budget = ((1.0 + SHM_BUDGET) * case["t_shm_off_seconds"]
                  + SHM_SLACK_S)
    if case["t_shm_traced_seconds"] > shm_budget:
        failures.append(
            f"shm worker telemetry {case['t_shm_traced_seconds']:.3f}s "
            f"exceeds {shm_budget:.3f}s ({SHM_BUDGET:.0%} + {SHM_SLACK_S}s "
            f"over untraced {case['t_shm_off_seconds']:.3f}s)")
    if not case["shm_part_identical"]:
        failures.append("worker telemetry changed the shm partition")
    if failures:
        raise AssertionError("trace overhead contract violated:\n  " +
                             "\n  ".join(failures))
    return record


def test_trace_overhead():
    """Pytest entry: same contract."""
    run()


if __name__ == "__main__":
    t0 = time.time()
    run()
    print(f"total {time.time() - t0:.1f}s")
