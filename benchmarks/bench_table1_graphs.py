"""T1 -- Test-graph characteristics table.

Reproduces the shape of the paper's Table 1 ("Characteristics of the various
graphs used in the experiments"): the synthetic ladder sm1..sm4 mirrors the
mrng1..mrng4 family (x2/x4 size steps, ~4 edges per vertex) scaled to
laptop-Python budgets.
"""

from __future__ import annotations

from _util import GRAPH_SIZES, emit_table, get_graph, timed


def test_table1_graph_characteristics(once):
    def build_all():
        rows = []
        for name in GRAPH_SIZES:
            g, secs = timed(get_graph, name)
            rows.append([
                name,
                g.nvtxs,
                g.nedges,
                f"{g.nedges / g.nvtxs:.2f}",
                int(g.degrees().max()),
                f"{secs:.2f}",
            ])
        return rows

    rows = once(build_all)
    emit_table(
        "table1_graphs",
        ["graph", "vertices", "edges", "edges/vertex", "max degree", "gen (s)"],
        rows,
        "T1: characteristics of the synthetic test graphs (mrng-ladder stand-ins)",
    )
    # Sanity: the ladder doubles/quadruples and stays mesh-dense.
    sizes = [GRAPH_SIZES[n] for n in GRAPH_SIZES]
    assert sizes == sorted(sizes)
    for row in rows:
        assert 3.0 <= float(row[3]) <= 5.0
