"""E5 -- Run time as a function of graph size.

Paper analogue: the multilevel algorithm is O(nm); the run-time tables show
time tracking problem size (mrng2 -> mrng3 -> mrng4 at fixed m).  Expected
shape: doubling n roughly doubles time (factor in the 1.4-3.5 band per
doubling -- Python constant factors wobble, the trend must stay near
linear).
"""

from __future__ import annotations

from _util import GRAPH_SIZES, emit_table, timed, type1_graph

from repro.partition import part_graph

K = 16
M = 3
SEED = 4


def _sweep():
    rows = []
    times = []
    for name in ("sm1", "sm2", "sm3"):
        g = type1_graph(name, M)
        res, secs = timed(part_graph, g, K, seed=SEED)
        times.append(secs)
        rows.append([
            name, g.nvtxs, f"{secs:.2f}",
            f"{secs / times[0]:.2f}",
            f"{1e3 * secs / g.nvtxs:.3f}",
            res.edgecut, f"{res.max_imbalance:.3f}",
        ])
    return rows, times


def test_runtime_scaling_in_n(once):
    rows, times = once(_sweep)
    emit_table(
        "runtime_n",
        ["graph", "vertices", "time (s)", "time / time(sm1)",
         "ms per vertex", "edge-cut", "max imbalance"],
        rows,
        f"E5: k-way partitioning time vs graph size (m={M}, k={K})",
    )
    # Near-linear: each x2 in n costs at most ~x3.5 in time; the per-vertex
    # cost must not grow by more than ~2x across the x4 ladder.
    assert times[1] / times[0] <= 3.5
    assert times[2] / times[1] <= 3.5
    per_vertex = [t / n for t, n in zip(times, (3000, 6000, 12000))]
    assert per_vertex[2] <= 2.5 * per_vertex[0]
