"""Unit tests for the multi-phase computation model and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WeightError
from repro.multiphase import (
    MultiPhaseComputation,
    Phase,
    combustion,
    crash_simulation,
    from_type2,
    particle_in_mesh,
)
from repro.partition import part_graph
from repro.baselines import part_graph_single


class TestPhase:
    def test_active_mask(self):
        ph = Phase("p", np.array([0.0, 1.0, 2.0]))
        assert ph.active.tolist() == [False, True, True]
        assert ph.total_work == 3.0

    def test_negative_cost_rejected(self):
        with pytest.raises(WeightError):
            Phase("p", np.array([-1.0]))

    def test_shape_checked(self):
        with pytest.raises(WeightError):
            Phase("p", np.ones((2, 2)))


class TestModel:
    def _two_phase(self, graph):
        n = graph.nvtxs
        c2 = np.zeros(n)
        c2[: n // 4] = 2.0
        return MultiPhaseComputation(
            graph, [Phase("a", np.ones(n)), Phase("b", c2)]
        )

    def test_requires_phases(self, mesh500):
        with pytest.raises(WeightError):
            MultiPhaseComputation(mesh500, [])

    def test_phase_cost_coverage_checked(self, mesh500):
        with pytest.raises(WeightError):
            MultiPhaseComputation(mesh500, [Phase("a", np.ones(3))])

    def test_vwgt_shape_and_scale(self, mesh500):
        mp = self._two_phase(mesh500)
        w = mp.vwgt(scale=10)
        assert w.shape == (500, 2)
        assert w[:, 0].sum() == 500 * 10
        assert w[0, 1] == 20

    def test_weighted_graph(self, mesh500):
        mp = self._two_phase(mesh500)
        g = mp.weighted_graph()
        assert g.ncon == 2
        # Co-activity edge weights: at most nphases.
        assert g.adjwgt.max() <= 2

    def test_makespan_identities(self, mesh500):
        mp = self._two_phase(mesh500)
        part = np.arange(500) % 4
        work = mp.phase_part_work(part, 4)
        assert work.shape == (2, 4)
        assert np.isclose(work.sum(), 500 + 250)
        assert mp.makespan(part, 4) >= mp.ideal_time(4)
        assert 0 < mp.efficiency(part, 4) <= 1.0

    def test_perfect_partition_efficiency_one(self):
        from repro.graph import grid_2d

        g = grid_2d(4, 4)
        mp = MultiPhaseComputation(g, [Phase("a", np.ones(16))])
        part = np.arange(16) % 4
        assert mp.efficiency(part, 4) == pytest.approx(1.0)

    def test_phase_imbalance(self, mesh500):
        mp = self._two_phase(mesh500)
        # All of phase b's work in part 0.
        part = np.zeros(500, dtype=np.int64)
        part[125:] = np.arange(375) % 3 + 1
        imb = mp.phase_imbalance(part, 4)
        assert imb[1] == pytest.approx(4.0)  # 4x the average


class TestWorkloads:
    @pytest.mark.parametrize("factory,nph", [
        (crash_simulation, 2),
        (particle_in_mesh, 2),
        (combustion, 3),
    ])
    def test_factories(self, mesh2000, factory, nph):
        mp = factory(mesh2000, seed=0)
        assert mp.nphases == nph
        assert mp.graph is mesh2000
        g = mp.weighted_graph()
        assert g.ncon == nph

    def test_from_type2(self, mesh500):
        mp = from_type2(mesh500, 3, seed=1)
        assert mp.nphases == 3
        assert np.all(mp.phases[0].active)

    def test_deterministic(self, mesh500):
        a = crash_simulation(mesh500, seed=5)
        b = crash_simulation(mesh500, seed=5)
        assert np.array_equal(a.phases[1].cost, b.phases[1].cost)


class TestMotivatingResult:
    def test_mc_beats_sc_on_makespan(self, mesh2000):
        """The paper's core motivation, end to end: multi-constraint
        partitioning gives a strictly better modelled makespan than
        sum-balanced single-constraint partitioning on a concentrated
        two-phase workload."""
        mp = crash_simulation(mesh2000, contact_fraction=0.12, seed=3)
        g = mp.weighted_graph()
        k = 8
        sc = part_graph_single(g, k, mode="sum", seed=4)
        mc = part_graph(g, k, seed=4)
        ms_sc = mp.makespan(sc.part, k)
        ms_mc = mp.makespan(mc.part, k)
        assert ms_mc < ms_sc
        assert mp.efficiency(mc.part, k) > 0.80
