"""Tests for the live Prometheus scrape endpoint (repro.obs.server).

The contract: ``/metrics`` always serves a parseable exposition pulled
fresh from the source, concurrent scrapes are safe, ``close()`` is
idempotent and releases the port, and bind failures surface as
:class:`~repro.errors.ObsError` (never a raw socket error).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ObsError
from repro.obs import MetricsServer, parse_exposition
from repro.trace import Tracer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


class TestRoutes:
    def test_metrics_from_tracer_parses(self):
        tracer = Tracer()
        tracer.incr("runs", 2)
        tracer.gauge("depth", 3)
        tracer.observe("lat", 0.5)
        with MetricsServer(tracer) as srv:
            status, ctype, body = _get(srv.url + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "version=0.0.4" in ctype
            families = parse_exposition(body.decode())
            assert families["repro_runs"]["samples"][0][2] == 2.0
            assert families["repro_depth"]["type"] == "gauge"
            assert families["repro_lat"]["type"] == "histogram"

    def test_source_swap_and_callable_source(self):
        with MetricsServer(lambda: "# TYPE repro_x counter\nrepro_x 1\n") \
                as srv:
            _, _, body = _get(srv.url + "/metrics")
            assert b"repro_x 1" in body
            srv.source = None
            _, _, body = _get(srv.url + "/metrics")
            assert body == b""

    def test_healthz(self):
        with MetricsServer() as srv:
            status, _, body = _get(srv.url + "/healthz")
            assert (status, body) == (200, b"ok\n")

    def test_profile_404_then_served(self):
        with MetricsServer() as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/profile.json")
            assert exc.value.code == 404
            srv.profile = {"final_cut": 41}
            status, ctype, body = _get(srv.url + "/profile.json")
            assert status == 200 and ctype.startswith("application/json")
            assert json.loads(body) == {"final_cut": 41}

    def test_unknown_route_404(self):
        with MetricsServer() as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/nope")
            assert exc.value.code == 404

    def test_broken_source_returns_500_not_dead_server(self):
        def boom():
            raise RuntimeError("source exploded")

        with MetricsServer(boom) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/metrics")
            assert exc.value.code == 500
            # The serving thread survived; a good route still answers.
            status, _, _ = _get(srv.url + "/healthz")
            assert status == 200


class TestConcurrencyAndLifecycle:
    def test_concurrent_scrapes(self):
        tracer = Tracer()
        tracer.incr("hits", 5)
        with MetricsServer(tracer) as srv:
            with ThreadPoolExecutor(8) as pool:
                bodies = list(pool.map(
                    lambda _: _get(srv.url + "/metrics")[2], range(16)))
        assert len(bodies) == 16
        for body in bodies:
            assert parse_exposition(
                body.decode())["repro_hits"]["samples"][0][2] == 5.0

    def test_close_idempotent_and_releases_port(self):
        srv = MetricsServer()
        port = srv.port
        srv.close()
        srv.close()
        # The port is free again: a new server can bind it immediately.
        srv2 = MetricsServer(port=port)
        assert srv2.port == port
        srv2.close()

    def test_bind_conflict_raises_obs_error(self):
        with MetricsServer() as srv:
            with pytest.raises(ObsError, match=str(srv.port)):
                MetricsServer(port=srv.port)

    def test_out_of_range_port_raises_obs_error(self):
        with pytest.raises(ObsError, match="65535"):
            MetricsServer(port=99999)
