"""Unit tests for graph builders / exporters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    from_adjlist,
    from_edges,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)


class TestFromEdges:
    def test_basic(self):
        g = from_edges(4, [(0, 1), (2, 3), (1, 2)])
        assert g.nvtxs == 4 and g.nedges == 3

    def test_empty_edges(self):
        g = from_edges(3, [])
        assert g.nvtxs == 3 and g.nedges == 0

    def test_orientation_irrelevant(self):
        a = from_edges(3, [(0, 1), (1, 2)])
        b = from_edges(3, [(1, 0), (2, 1)])
        assert a == b

    def test_duplicates_merged_weights_summed(self):
        g = from_edges(2, [(0, 1), (1, 0), (0, 1)], weights=[1, 2, 3])
        assert g.nedges == 1
        assert g.total_adjwgt() == 6

    def test_duplicates_rejected_when_dedupe_false(self):
        with pytest.raises(GraphError):
            from_edges(2, [(0, 1), (1, 0)], dedupe=False)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            from_edges(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            from_edges(2, [(0, 2)])

    def test_weights_misaligned_rejected(self):
        with pytest.raises(GraphError):
            from_edges(3, [(0, 1)], weights=[1, 2])

    def test_validates(self):
        g = from_edges(100, [(i, (i + 7) % 100) for i in range(100)])
        g.validate()


class TestAdjlist:
    def test_roundtrip(self):
        adj = [[1, 2], [0], [0]]
        g = from_adjlist(adj)
        assert g.nedges == 2
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_asymmetric_rejected(self):
        with pytest.raises(GraphError):
            from_adjlist([[1], []])


class TestScipy:
    def test_roundtrip(self, mesh500):
        mat = to_scipy_sparse(mesh500)
        assert mat.shape == (500, 500)
        g = from_scipy_sparse(mat)
        assert g == mesh500.with_vwgt(g.vwgt)  # topology identical

    def test_diagonal_ignored(self):
        import scipy.sparse as sp

        mat = sp.csr_matrix(np.array([[5.0, 1.0], [1.0, 5.0]]))
        g = from_scipy_sparse(mat)
        assert g.nedges == 1

    def test_rectangular_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError):
            from_scipy_sparse(sp.csr_matrix(np.ones((2, 3))))


class TestNetworkx:
    def test_roundtrip(self, small_grid):
        nxg = to_networkx(small_grid)
        assert nxg.number_of_nodes() == small_grid.nvtxs
        assert nxg.number_of_edges() == small_grid.nedges
        back = from_networkx(nxg)
        assert back == small_grid

    def test_weights_preserved(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("a", "b", weight=7)
        nxg.add_edge("b", "c")
        g = from_networkx(nxg)
        # sorted(nodes) = [a, b, c] -> ids 0, 1, 2
        assert g.total_adjwgt() == 8

    def test_networkx_self_loops_dropped(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.nedges == 1

    def test_vwgt_exported(self):
        g = from_edges(2, [(0, 1)], vwgt=[[1, 2], [3, 4]])
        nxg = to_networkx(g)
        assert nxg.nodes[1]["vwgt"] == (3, 4)
