"""The cluster tier's contract: backend parity, the ship-once marshalling
protocol, admission control / load shedding, and per-class deadlines.

The headline invariant: the **process backend is bit-identical to the
thread backend** (which is itself bit-identical to a serial ``part_graph``)
for every pinned-seed request -- the thread backend is the deterministic
oracle, and swapping the execution substrate must never change a single
bit of the answer.  See ``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.serve.service as service_mod
from repro.errors import (
    ReproError,
    ServeError,
    ServeOverloadError,
    ServeTimeoutError,
)
from repro.graph import mesh_like
from repro.partition import part_graph
from repro.serve import (
    BACKENDS,
    AdmissionController,
    PartitionService,
    ProcessBackend,
    ServiceConfig,
    ThreadBackend,
    make_backend,
)
from repro.weights import type1_region_weights


def make_graph(n=300, ncon=2, seed=0):
    g = mesh_like(n, seed=seed)
    if ncon > 1:
        g = g.with_vwgt(type1_region_weights(g, ncon, seed=seed + 1))
    return g


def same_result(a, b) -> bool:
    return (
        np.array_equal(a.part, b.part)
        and a.edgecut == b.edgecut
        and np.array_equal(a.imbalance, b.imbalance)
        and a.feasible == b.feasible
        and a.nparts == b.nparts
        and a.method == b.method
    )


# --------------------------------------------------------------------- #
# Backend seam
# --------------------------------------------------------------------- #


class TestBackendSeam:
    def test_registry(self):
        assert BACKENDS == ("thread", "process")
        assert isinstance(make_backend("thread"), ThreadBackend)
        with pytest.raises(ValueError, match="unknown serve backend"):
            make_backend("gpu")

    def test_default_service_uses_thread_backend(self):
        with PartitionService() as svc:
            assert isinstance(svc._backend, ThreadBackend)

    def test_thread_backend_honours_service_monkeypatch(self, monkeypatch):
        """The seam must keep intercepting ``service.part_graph`` -- the
        test-and-user-facing hook from the pre-backend era."""
        g = make_graph(100, 1)
        seen = []
        real = service_mod.part_graph

        def spy(*args, **kwargs):
            seen.append(args[1])
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", spy)
        with PartitionService(ServiceConfig(warm_start=False)) as svc:
            svc.partition(g, 4, seed=0)
        assert seen == [4]


# --------------------------------------------------------------------- #
# Process backend: determinism parity + marshalling protocol
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def process_service():
    """One shared 2-worker process-backend service (spawning workers is
    the expensive part; the tests share the pool)."""
    cfg = ServiceConfig(backend="process", process_workers=2,
                        max_workers=4, warm_start=False)
    svc = PartitionService(cfg)
    svc.warmup()
    yield svc
    svc.close()


class TestProcessParity:
    def test_process_backend_is_bit_identical_to_oracle(self, process_service):
        """Thread backend == process backend == serial part_graph, bit for
        bit, across mixed topologies / k / m / methods."""
        draws = [
            dict(n=120, ncon=1, nparts=3, seed=11, method="kway"),
            dict(n=200, ncon=2, nparts=4, seed=7, method="kway"),
            dict(n=260, ncon=3, nparts=5, seed=23, method="recursive"),
            dict(n=160, ncon=2, nparts=2, seed=5, method="recursive"),
        ]
        with PartitionService(ServiceConfig(warm_start=False)) as oracle:
            for d in draws:
                g = make_graph(d["n"], d["ncon"], seed=d["seed"])
                kwargs = dict(method=d["method"], seed=d["seed"])
                want = part_graph(g, d["nparts"], **kwargs)
                via_thread = oracle.partition(g, d["nparts"], **kwargs)
                via_process = process_service.partition(
                    g, d["nparts"], **kwargs)
                assert same_result(via_thread, want), d
                assert same_result(via_process, want), d

    def test_concurrent_process_computes_stay_deterministic(
            self, process_service):
        """Distinct concurrent requests through the process pool each match
        their serial reference (no cross-talk between workers)."""
        graphs = [make_graph(150, 2, seed=s) for s in (31, 32, 33, 34)]
        futs = [process_service.submit(g, 4, seed=9) for g in graphs]
        for g, fut in zip(graphs, futs):
            assert same_result(fut.result(timeout=120.0),
                               part_graph(g, 4, seed=9))

    def test_ship_once_protocol_counters(self):
        """With one worker, a graph's arrays are marshalled exactly once;
        repeat computes ship only the token."""
        g = make_graph(150, 1, seed=40)
        cfg = ServiceConfig(backend="process", process_workers=1,
                            cache_entries=0, dedup=False, warm_start=False)
        with PartitionService(cfg) as svc:
            ref = part_graph(g, 4, seed=1)
            for _ in range(3):
                assert same_result(svc.partition(g, 4, seed=1), ref)
            stats = svc.stats()
        assert stats["serve.cluster.computes"] == 3
        assert stats["serve.cluster.ship.full"] == 1
        assert stats["serve.cluster.ship.token"] == 2
        assert stats["serve.cluster.ship.retry"] == 0

    def test_ship_accounting_consistent_across_workers(self, process_service):
        """Every compute is either a token-only or a full ship; retries are
        re-ships after a token landed on a cold worker."""
        stats = process_service.stats()
        assert (stats["serve.cluster.ship.token"]
                + stats["serve.cluster.ship.full"]
                >= stats["serve.cluster.computes"])
        assert stats["serve.cluster.ship.retry"] <= stats[
            "serve.cluster.ship.full"]

    def test_worker_telemetry_labeled_per_pid(self, process_service):
        """Every process compute ships a telemetry delta back on its
        result future: pid-labeled latency histograms plus live worker
        gauges, surfaced through metrics_text() as parseable series."""
        from repro.obs import parse_exposition

        g = make_graph(140, 1, seed=50)
        ref = part_graph(g, 3, seed=2)
        assert same_result(process_service.partition(g, 3, seed=2), ref)

        m = process_service._backend.metrics()
        hists = {k: v for k, v in m["histograms"].items()
                 if k.startswith("serve.cluster.worker.compute_seconds")}
        assert hists and all('worker="' in k for k in hists)
        assert sum(v["count"] for v in hists.values()) >= 1
        assert any(k.startswith("serve.cluster.worker.computes")
                   for k in m["counters"])
        assert any(k.startswith("serve.cluster.worker.cached_graphs")
                   for k in m["gauges"])
        families = parse_exposition(process_service.metrics_text())
        fam = families["repro_serve_cluster_worker_compute_seconds"]
        assert fam["type"] == "histogram"
        assert all("worker" in s[1] for s in fam["samples"])

    def test_thread_backend_has_no_worker_metrics(self):
        assert ThreadBackend().metrics() is None

    def test_worker_error_propagates(self, process_service):
        """An error raised inside a worker process surfaces to the caller
        as the original typed error, and the pool survives it."""
        from repro.partition import PartitionOptions

        g = make_graph(50, 1)
        backend = process_service._backend
        with pytest.raises(ReproError):
            backend.compute(g, 1000, method="kway",
                            options=PartitionOptions(seed=0),
                            target_fracs=None, graph_token="err:test")
        ref = part_graph(g, 2, seed=3)
        assert same_result(process_service.partition(g, 2, seed=3), ref)


# --------------------------------------------------------------------- #
# Admission control / shedding
# --------------------------------------------------------------------- #


class TestAdmissionController:
    def test_bounds_and_counters(self):
        adm = AdmissionController(max_pending=2, batch_shed_fraction=0.5)
        adm.admit("interactive")
        with pytest.raises(ServeOverloadError):
            adm.admit("batch")          # batch bound = 1, pending = 1
        adm.admit("interactive")        # interactive bound = 2
        with pytest.raises(ServeOverloadError) as exc:
            adm.admit("interactive")
        assert exc.value.queue_depth == 2
        assert adm.counters() == {"serve.shed": 2,
                                  "serve.shed.interactive": 1,
                                  "serve.shed.batch": 1}
        adm.start()
        assert adm.gauges() == {"serve.queue_depth": 1, "serve.inflight": 1}
        adm.done()
        adm.abandon()
        assert adm.gauges() == {"serve.queue_depth": 0, "serve.inflight": 0}

    def test_unbounded_by_default(self):
        adm = AdmissionController()
        for _ in range(1000):
            adm.admit("batch")
        assert adm.counters()["serve.shed"] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=-1)
        with pytest.raises(ValueError):
            AdmissionController(batch_shed_fraction=1.5)
        with pytest.raises(ValueError):
            AdmissionController().admit("bulk")

    def test_overload_is_a_serve_error(self):
        err = ServeOverloadError("x", klass="batch", queue_depth=3)
        assert isinstance(err, ServeError)
        assert isinstance(err, ReproError)
        assert err.klass == "batch" and err.queue_depth == 3


class TestServiceShedding:
    def test_batch_sheds_before_interactive(self, monkeypatch):
        g = make_graph(100, 1)
        release = threading.Event()
        real = service_mod.part_graph

        def gated(*args, **kwargs):
            release.wait(10.0)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", gated)
        cfg = ServiceConfig(max_workers=1, warm_start=False,
                            max_pending=2, batch_shed_fraction=0.5)
        with PartitionService(cfg) as svc:
            try:
                filler = svc.submit(g, 2, seed=0)
                # wait until the filler occupies the worker (queue empty)
                deadline = time.monotonic() + 5.0
                while svc.stats()["serve.inflight"] != 1:
                    assert time.monotonic() < deadline, "filler never started"
                    time.sleep(0.01)
                a = svc.submit(g, 3, seed=0)                 # pending = 1
                with pytest.raises(ServeOverloadError):
                    svc.submit(g, 4, seed=0, klass="batch")  # batch bound 1
                b = svc.submit(g, 5, seed=0)                 # pending = 2
                with pytest.raises(ServeOverloadError):
                    svc.submit(g, 6, seed=0)                 # full
            finally:
                release.set()
            for fut in (filler, a, b):
                assert fut.result(timeout=30.0).feasible is not None
            stats = svc.stats()
        assert stats["serve.shed"] == 2
        assert stats["serve.shed.batch"] == 1
        assert stats["serve.shed.interactive"] == 1
        # shed requests never became computes
        assert stats["serve.cold_computes"] == 3

    def test_hits_are_served_even_when_shedding_everything(self):
        g = make_graph(120, 1)
        cfg = ServiceConfig(max_pending=0, warm_start=False)
        with PartitionService(cfg) as svc:
            with pytest.raises(ServeOverloadError):
                svc.partition(g, 4, seed=0)
            # hand-feed the cache through a temporarily lifted bound
            svc.admission.max_pending = None
            cold = svc.partition(g, 4, seed=0)
            svc.admission.max_pending = 0
            hit = svc.partition(g, 4, seed=0)   # cache hit: no queue slot
            assert same_result(hit, cold)
            assert svc.stats()["serve.cache.hits"] == 1

    def test_shed_batch_raises_aggregate_with_overload(self):
        from repro.errors import ServeBatchError

        g = make_graph(120, 1)
        cfg = ServiceConfig(max_pending=0, warm_start=False)
        with PartitionService(cfg) as svc:
            with pytest.raises(ServeBatchError) as exc:
                svc.batch([(g, 4, {"seed": 0})])
        assert isinstance(exc.value.errors[0], ServeOverloadError)

    def test_invalid_class_rejected_at_submit(self):
        g = make_graph(100, 1)
        with PartitionService() as svc:
            with pytest.raises(ValueError, match="request class"):
                svc.submit(g, 4, seed=0, klass="bulk")


# --------------------------------------------------------------------- #
# Per-class deadlines
# --------------------------------------------------------------------- #


class TestClassDeadlines:
    def test_batch_timeout_config_applies_per_class(self, monkeypatch):
        g = make_graph(100, 1)
        real = service_mod.part_graph

        def slow(*args, **kwargs):
            time.sleep(0.3)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", slow)
        cfg = ServiceConfig(max_workers=1, warm_start=False,
                            batch_timeout=0.05)
        with PartitionService(cfg) as svc:
            filler = svc.submit(g, 2, seed=0)      # holds the worker
            batch_fut = svc.submit(g, 3, seed=0, klass="batch")
            inter_fut = svc.submit(g, 4, seed=0)   # interactive: no deadline
            with pytest.raises(ServeTimeoutError):
                batch_fut.result()
            assert inter_fut.result(timeout=30.0).nparts == 4
            assert filler.result(timeout=30.0).nparts == 2

    def test_explicit_timeout_beats_class_default(self, monkeypatch):
        g = make_graph(100, 1)
        real = service_mod.part_graph

        def slow(*args, **kwargs):
            time.sleep(0.2)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "part_graph", slow)
        cfg = ServiceConfig(max_workers=1, warm_start=False,
                            batch_timeout=0.01)
        with PartitionService(cfg) as svc:
            fut = svc.submit(g, 3, seed=0, klass="batch", timeout=30.0)
            assert fut.result().nparts == 3
