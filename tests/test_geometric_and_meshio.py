"""Tests for the geometric baselines and METIS mesh IO."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.baselines import morton_order, rcb, rib, sfc_partition
from repro.errors import GraphError, GraphFormatError, PartitionError
from repro.graph import delaunay_mesh, from_edges, grid_2d
from repro.mesh import (
    read_metis_mesh,
    read_xyz,
    tet_grid,
    triangle_grid,
    write_metis_mesh,
    write_xyz,
)
from repro.metrics import edge_cut
from repro.weights import max_imbalance


@pytest.fixture(scope="module")
def tri2000():
    return delaunay_mesh(2000, seed=0)


class TestRcbRib:
    @pytest.mark.parametrize("fn", [rcb, rib])
    def test_balanced_and_covering(self, tri2000, fn):
        part = fn(tri2000, 8)
        assert set(np.unique(part)) == set(range(8))
        assert max_imbalance(tri2000.vwgt, part, 8) <= 1.10

    @pytest.mark.parametrize("fn", [rcb, rib])
    def test_geometric_cut_reasonable(self, tri2000, fn):
        """Geometric splits of planar meshes give O(sqrt(n/k)*k) cuts --
        far below random."""
        part = fn(tri2000, 8)
        from repro.baselines import random_partition

        rnd = edge_cut(tri2000, random_partition(tri2000, 8, seed=1))
        assert edge_cut(tri2000, part) < 0.35 * rnd

    def test_rcb_grid_exact(self):
        g = grid_2d(8, 8)
        part = rcb(g, 2)
        # Longest-axis median split of a square grid: a straight cut.
        assert edge_cut(g, part) == 8

    def test_weighted_median(self):
        g = grid_2d(1, 10)
        g = g.with_vwgt(np.array([9, 1, 1, 1, 1, 1, 1, 1, 1, 1]).reshape(-1, 1))
        part = rcb(g, 2)
        # The heavy vertex alone is (almost) half the weight.
        sizes = np.bincount(part)
        assert sizes[part[0]] <= 3

    def test_requires_coords(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(GraphError):
            rcb(g, 2)

    def test_nparts_validation(self, tri2000):
        with pytest.raises(PartitionError):
            rcb(tri2000, 0)
        with pytest.raises(PartitionError):
            sfc_partition(tri2000, 3000)

    def test_nonpow2(self, tri2000):
        part = rib(tri2000, 5)
        assert set(np.unique(part)) == set(range(5))


class TestSfc:
    def test_morton_locality(self):
        """Morton-adjacent points are spatially close on a grid."""
        g = grid_2d(16, 16)
        order = morton_order(g.coords)
        pts = g.coords[order]
        jumps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        assert np.median(jumps) <= 2.0

    def test_partition_balanced(self, tri2000):
        part = sfc_partition(tri2000, 8)
        assert set(np.unique(part)) == set(range(8))
        assert max_imbalance(tri2000.vwgt, part, 8) <= 1.10

    def test_3d_supported(self):
        from repro.graph import grid_3d

        g = grid_3d(6, 6, 6)
        part = sfc_partition(g, 4)
        assert set(np.unique(part)) == set(range(4))

    def test_bad_dim(self):
        with pytest.raises(GraphError):
            morton_order(np.zeros((5, 4)))

    def test_multilevel_beats_geometric_on_cut(self, tri2000):
        from repro.partition import part_graph

        ml = part_graph(tri2000, 8, seed=2)
        for fn in (rcb, rib, sfc_partition):
            geo_cut = edge_cut(tri2000, fn(tri2000, 8))
            assert ml.edgecut <= 1.25 * geo_cut


class TestMeshIO:
    def test_roundtrip_triangles(self, tmp_path):
        mesh = triangle_grid(6, 5)
        p = tmp_path / "m.mesh"
        write_metis_mesh(mesh, p)
        back = read_metis_mesh(p)
        assert np.array_equal(back.elements, mesh.elements)

    def test_roundtrip_tets_with_coords(self, tmp_path):
        mesh = tet_grid(3, 3, 3)
        pm = tmp_path / "m.mesh"
        px = tmp_path / "m.xyz"
        write_metis_mesh(mesh, pm)
        write_xyz(mesh.points, px)
        back = read_metis_mesh(pm, points=px)
        assert np.array_equal(back.elements, mesh.elements)
        assert np.allclose(back.points, mesh.points)

    def test_one_based_ids(self):
        text = "2\n1 2 3\n2 3 4\n"
        mesh = read_metis_mesh(io.StringIO(text))
        assert mesh.elements.min() == 0
        assert mesh.nelements == 2

    def test_header_mismatch(self):
        with pytest.raises(GraphFormatError):
            read_metis_mesh(io.StringIO("3\n1 2 3\n"))

    def test_mixed_sizes_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_mesh(io.StringIO("2\n1 2 3\n1 2 3 4\n"))

    def test_non_simplicial_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_mesh(io.StringIO("1\n1 2 3 4 5 6 7 8\n"))

    def test_zero_based_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_mesh(io.StringIO("1\n0 1 2\n"))

    def test_empty_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_mesh(io.StringIO("% only comments\n"))

    def test_xyz_validation(self):
        with pytest.raises(GraphFormatError):
            read_xyz(io.StringIO("1.0\n"))
        with pytest.raises(GraphFormatError):
            read_xyz(io.StringIO("1 2\n1 2 3\n"))
        with pytest.raises(GraphFormatError):
            read_xyz(io.StringIO("# nothing\n"))

    def test_full_pipeline_from_files(self, tmp_path):
        """mesh file -> mesh -> partition_mesh: the user's cold-start path."""
        from repro.mesh import partition_mesh

        mesh = triangle_grid(12, 12)
        p = tmp_path / "grid.mesh"
        write_metis_mesh(mesh, p)
        loaded = read_metis_mesh(p, points=mesh.points)
        mp = partition_mesh(loaded, 4, seed=3)
        assert mp.result.feasible
