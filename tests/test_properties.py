"""Property-based tests (hypothesis) on the core data structures and the
invariants the multilevel paradigm rests on."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coarsen import heavy_edge_matching, is_matching, matching_to_cmap
from repro.graph import Graph, contract, from_edges
from repro.initpart import (
    alternating_bisection,
    bisection_excess,
    greedy_bisection,
    prefix_bisection,
)
from repro.refine import LazyMaxPQ, TwoWayState, compute_2way_degrees, edge_cut, fm2way_refine
from repro.weights import imbalance, part_weights

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

@st.composite
def random_graphs(draw, max_n=40, max_extra_edges=80, weighted=False):
    """Connected-ish random graph: a random spanning-ish chain plus extras."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = {(i - 1, i) for i in range(1, n)}  # chain keeps it connected
    nextra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    for _ in range(nextra):
        u, v = rng.integers(n), rng.integers(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    weights = rng.integers(1, 10, size=len(edges)) if weighted else None
    return from_edges(n, np.asarray(edges), weights)


@st.composite
def weight_matrices(draw, max_n=60, max_m=5):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    w = rng.integers(0, 20, size=(n, m))
    w[rng.integers(n)] += 1  # no all-zero columns... ensure per-column
    for c in range(m):
        if w[:, c].sum() == 0:
            w[rng.integers(n), c] = 1
    return w.astype(np.int64)


# --------------------------------------------------------------------- #
# Graph structure
# --------------------------------------------------------------------- #

@given(random_graphs(weighted=True))
@settings(max_examples=60, **COMMON)
def test_graph_invariants(g: Graph):
    g.validate()
    assert g.degrees().sum() == 2 * g.nedges
    us, vs, ws = g.edge_arrays()
    assert us.shape[0] == g.nedges
    assert int(ws.sum()) == g.total_adjwgt()


@given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, **COMMON)
def test_matching_properties(g: Graph, seed):
    match = heavy_edge_matching(g, seed=seed)
    assert is_matching(g, match)
    cmap, ncoarse = matching_to_cmap(match)
    # Each coarse vertex has 1 or 2 fine vertices.
    sizes = np.bincount(cmap, minlength=ncoarse)
    assert set(np.unique(sizes)) <= {1, 2}


@given(random_graphs(weighted=True), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, **COMMON)
def test_contraction_conservation(g: Graph, seed):
    match = heavy_edge_matching(g, seed=seed)
    cmap, ncoarse = matching_to_cmap(match)
    coarse = contract(g, cmap, ncoarse)
    coarse.validate()
    # Vertex weight totals are invariant; exposed edge weight only shrinks.
    assert np.array_equal(coarse.total_vwgt(), g.total_vwgt())
    assert coarse.total_adjwgt() <= g.total_adjwgt()
    # Cut of any coarse partition equals cut of its projection.
    rng = np.random.default_rng(seed)
    cpart = rng.integers(0, 2, ncoarse)
    assert edge_cut(coarse, cpart) == edge_cut(g, cpart[cmap])


# --------------------------------------------------------------------- #
# Balance arithmetic
# --------------------------------------------------------------------- #

@given(weight_matrices(), st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, **COMMON)
def test_part_weights_identity(vwgt, nparts, seed):
    rng = np.random.default_rng(seed)
    part = rng.integers(0, nparts, vwgt.shape[0])
    pw = part_weights(vwgt, part, nparts)
    assert np.array_equal(pw.sum(axis=0), vwgt.sum(axis=0))
    imb = imbalance(vwgt, part, nparts)
    assert np.all(imb >= 1.0 - 1e-9) or np.any(pw.sum(axis=0) == 0)
    assert np.all(imb <= nparts + 1e-9)


# --------------------------------------------------------------------- #
# Bisection theory
# --------------------------------------------------------------------- #

@given(weight_matrices(max_m=1))
@settings(max_examples=60, **COMMON)
def test_greedy_bisection_single_constraint_bound(vwgt):
    """The provable m=1 guarantee: excess <= wmax."""
    t = vwgt.sum(axis=0).astype(float)
    relw = vwgt / t
    where = greedy_bisection(relw, seed=0)
    assert bisection_excess(relw, where) <= relw.max() + 1e-9


@given(weight_matrices())
@settings(max_examples=60, **COMMON)
def test_greedy_bisection_multi_constraint_bound(vwgt):
    """Documented empirical bound for small m: excess <= m * wmax."""
    t = vwgt.sum(axis=0).astype(float)
    t[t == 0] = 1
    relw = vwgt / t
    m = relw.shape[1]
    where = greedy_bisection(relw, seed=0)
    assert bisection_excess(relw, where) <= m * relw.max() + 1e-9


@given(weight_matrices())
@settings(max_examples=40, **COMMON)
def test_prefix_and_alternating_cover_everything(vwgt):
    t = vwgt.sum(axis=0).astype(float)
    t[t == 0] = 1
    relw = vwgt / t
    for where in (prefix_bisection(relw), alternating_bisection(relw)):
        assert where.shape == (vwgt.shape[0],)
        assert set(np.unique(where)) <= {0, 1}


# --------------------------------------------------------------------- #
# FM refinement
# --------------------------------------------------------------------- #

@given(random_graphs(weighted=True), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, **COMMON)
def test_fm_never_increases_cut_and_keeps_state_consistent(g: Graph, seed):
    rng = np.random.default_rng(seed)
    where = rng.integers(0, 2, g.nvtxs)
    if where.min() == where.max():
        where[0] ^= 1
    started_feasible = TwoWayState(g, where.copy(), ubvec=1.5).feasible()
    cut0 = edge_cut(g, where)
    stats = fm2way_refine(g, where, ubvec=1.5, seed=seed)
    cut1 = edge_cut(g, where)
    assert stats.final_cut == cut1
    if started_feasible:
        # From a feasible start FM only walks feasible states and rolls
        # back to the best prefix: the cut cannot get worse.
        assert cut1 <= cut0
    else:
        # From an infeasible start, paying cut to restore balance is
        # legitimate -- but feasibility must then be achieved (a generous
        # 50% tolerance is always reachable with indivisible unit moves
        # unless a single vertex dominates a constraint).
        state = TwoWayState(g, where, ubvec=1.5)
        relmax = state.relw.max(initial=0.0)
        if relmax <= 0.25:
            assert stats.feasible
    # The tracked degrees match a from-scratch recomputation.
    state = TwoWayState(g, where)
    id_, ed = compute_2way_degrees(g, where)
    assert np.array_equal(state.id_, id_) and np.array_equal(state.ed, ed)


@given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, **COMMON)
def test_fm_feasibility_with_loose_tolerance(g: Graph, seed):
    """With a generous tolerance and unit weights, FM must end feasible."""
    rng = np.random.default_rng(seed)
    where = rng.integers(0, 2, g.nvtxs)
    if where.min() == where.max():
        where[0] ^= 1
    stats = fm2way_refine(g, where, ubvec=1.9, seed=seed)
    assert stats.feasible


# --------------------------------------------------------------------- #
# Priority queue (model-based)
# --------------------------------------------------------------------- #

@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 15),
                          st.integers(0, 100)), max_size=200))
@settings(max_examples=60, **COMMON)
def test_pq_model(ops):
    q = LazyMaxPQ()
    ref: dict[int, int] = {}
    for op, key, prio in ops:
        if op == 0:
            q.insert(key, prio)
            ref[key] = prio
        elif op == 1:
            q.remove(key)
            ref.pop(key, None)
        else:
            got = q.pop()
            if not ref:
                assert got is None
            else:
                assert got is not None
                assert got[1] == max(ref.values())
                ref.pop(got[0])
        assert len(q) == len(ref)


# --------------------------------------------------------------------- #
# Bisection theory vs brute force
# --------------------------------------------------------------------- #

@st.composite
def tiny_weight_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    m = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    w = rng.integers(1, 20, size=(n, m))
    return w.astype(np.int64)


def _optimal_excess(relw):
    """Exhaustive minimum bisection excess over all 2^n side assignments."""
    n = relw.shape[0]
    best = np.inf
    for mask in range(2 ** n):
        where = np.array([(mask >> i) & 1 for i in range(n)], dtype=np.int64)
        best = min(best, bisection_excess(relw, where))
    return best


@given(tiny_weight_matrices())
@settings(max_examples=25, **COMMON)
def test_greedy_bisection_near_optimal(vwgt):
    """The greedy bisection lands within an additive m*wmax of the true
    optimum (found by brute force on tiny instances)."""
    relw = vwgt / vwgt.sum(axis=0)
    m = relw.shape[1]
    opt = _optimal_excess(relw)
    got = bisection_excess(relw, greedy_bisection(relw, seed=0))
    assert got <= opt + m * relw.max() + 1e-9


@given(tiny_weight_matrices())
@settings(max_examples=25, **COMMON)
def test_best_projection_near_optimal(vwgt):
    from repro.initpart import best_projection_bisection

    relw = vwgt / vwgt.sum(axis=0)
    m = relw.shape[1]
    opt = _optimal_excess(relw)
    got = bisection_excess(relw, best_projection_bisection(relw, seed=0))
    assert got <= opt + m * relw.max() + 1e-9
