"""Tests for the fault-injection & graceful-degradation layer (repro.faults).

Covers the robustness contract of ``docs/robustness.md``: spec parsing,
deterministic injection, retry-with-backoff, phase timeouts, graceful
degradation vs. strict mode, no-fault bit-identity, and a 100-schedule
chaos sweep in which no exception may escape untyped.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.errors import (
    CommError,
    DegradedResult,
    FaultSpecError,
    MessageDropError,
    PhaseTimeoutError,
    RankCrashedError,
    RankUnavailableError,
    ReproError,
    RetryExhaustedError,
    TransientCommError,
)
from repro.faults import (
    FAULT_KINDS,
    FaultSpec,
    FaultyCluster,
    RecoveryPolicy,
    as_fault_spec,
    run_with_retries,
)
from repro.graph import mesh_like
from repro.parallel import SimCluster, parallel_part_graph
from repro.partition import PartitionOptions
from repro.weights import type1_region_weights


class TestFaultSpec:
    def test_default_is_disabled(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert all(spec.rate(k) == 0.0 for k in FAULT_KINDS)

    def test_parse_basic(self):
        spec = FaultSpec.parse("drop=0.05,dup=0.02,crash=0.01,seed=7")
        assert spec.drop == 0.05
        assert spec.duplicate == 0.02
        assert spec.crash == 0.01
        assert spec.seed == 7
        assert spec.enabled

    def test_parse_aliases(self):
        spec = FaultSpec.parse("loss=0.1,pcrash=0.02")
        assert spec.drop == 0.1
        assert spec.crash_permanent == 0.02

    def test_parse_phase_rates(self):
        spec = FaultSpec.parse("drop=0.1,phase.refine=2.0,phase.coarsen=0.5")
        assert spec.rate("drop", "refine") == pytest.approx(0.2)
        assert spec.rate("drop", "coarsen") == pytest.approx(0.05)
        assert spec.rate("drop", "initpart") == pytest.approx(0.1)

    def test_rate_clipped_to_one(self):
        spec = FaultSpec.parse("drop=0.9,phase.refine=5.0")
        assert spec.rate("drop", "refine") == 1.0

    def test_parse_off(self):
        for text in ("", "off", "none", None):
            assert not as_fault_spec(text).enabled

    def test_parse_int_fields(self):
        spec = FaultSpec.parse("delay=0.1,delay_rounds=9,crash_down_steps=2,max_faults=5")
        assert spec.delay_rounds == 9
        assert spec.crash_down_steps == 2
        assert spec.max_faults == 5

    @pytest.mark.parametrize("bad", [
        "drop=1.5",            # rate out of range
        "drop=-0.1",           # negative rate
        "frobnicate=0.1",      # unknown key
        "drop=abc",            # unparseable value
        "drop",                # missing '='
        "phase.refine=-1",     # negative multiplier
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse(bad)

    def test_constructor_validates(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(drop=2.0)
        with pytest.raises(FaultSpecError):
            FaultSpec(crash=-0.5)

    def test_dict_roundtrip(self):
        spec = FaultSpec(drop=0.1, crash=0.05, seed=3)
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_as_fault_spec_coercion(self):
        spec = FaultSpec(drop=0.2)
        assert as_fault_spec(spec) is spec
        assert as_fault_spec({"drop": 0.2}).drop == 0.2
        assert as_fault_spec("drop=0.2").drop == 0.2
        with pytest.raises(FaultSpecError):
            as_fault_spec(42)

    def test_with_and_describe(self):
        spec = FaultSpec(drop=0.1).with_(seed=9)
        assert spec.seed == 9 and spec.drop == 0.1
        assert "drop" in spec.describe()


class TestFaultyCluster:
    def _traffic(self, cluster):
        # A small alltoall workload; returns without raising unless a fault
        # fires.
        payloads = [{(r + 1) % cluster.nranks: np.arange(4, dtype=np.int64)}
                    for r in range(cluster.nranks)]
        return cluster.alltoall(payloads)

    def test_no_faults_behaves_like_simcluster(self):
        base, faulty = SimCluster(3), FaultyCluster(3, FaultSpec())
        for c in (base, faulty):
            self._traffic(c)
        assert faulty.stats.total_bytes == base.stats.total_bytes
        assert faulty.stats.simulated_time == base.stats.simulated_time
        assert faulty.faults.injected == 0

    def test_deterministic_schedule(self):
        def run(seed):
            c = FaultyCluster(3, FaultSpec(drop=0.3, delay=0.2, seed=seed))
            events = []
            for _ in range(50):
                try:
                    self._traffic(c)
                    events.append("ok")
                except TransientCommError as exc:
                    events.append(type(exc).__name__)
            return events, c.faults.to_dict()

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_drop_raises_message_drop(self):
        c = FaultyCluster(2, FaultSpec(drop=1.0, max_faults=1))
        with pytest.raises(MessageDropError):
            c.barrier()
        c.barrier()  # budget exhausted: no more faults
        assert c.faults.dropped == 1

    def test_delay_charges_simulated_time(self):
        clean = FaultyCluster(2, FaultSpec())
        slow = FaultyCluster(2, FaultSpec(delay=1.0, delay_rounds=10))
        clean.barrier()
        slow.barrier()
        assert slow.stats.simulated_time > clean.stats.simulated_time
        assert slow.faults.delayed >= 1

    def test_duplicate_doubles_traffic(self):
        clean = FaultyCluster(2, FaultSpec())
        dup = FaultyCluster(2, FaultSpec(duplicate=1.0))
        self._traffic(clean)
        self._traffic(dup)
        assert dup.stats.total_bytes == 2 * clean.stats.total_bytes
        assert dup.faults.duplicated >= 1

    def test_reorder_preserves_content(self):
        c = FaultyCluster(3, FaultSpec(reorder=1.0))
        got = self._traffic(c)
        # Reordering shuffles delivery order, never payloads.
        for r in range(3):
            src = (r - 1) % 3
            assert got[r][src].tolist() == [0, 1, 2, 3]
        assert c.faults.reordered >= 1

    def test_transient_crash_recovers(self):
        spec = FaultSpec(crash=1.0, crash_down_steps=2, max_faults=1)
        c = FaultyCluster(3, spec)
        with pytest.raises(RankUnavailableError):
            c.barrier()  # the crash itself
        for _ in range(2):  # crash_down_steps failed collectives
            with pytest.raises(RankUnavailableError):
                c.barrier()
        c.barrier()  # the rank rebooted
        assert c.faults.transient_crashes == 1
        assert c.faults.down_rank_failures == 2

    def test_permanent_crash_is_permanent(self):
        c = FaultyCluster(3, FaultSpec(crash_permanent=1.0, max_faults=1))
        with pytest.raises(RankCrashedError) as ei:
            c.barrier()
        dead = ei.value.ranks
        assert len(dead) == 1
        for _ in range(5):
            with pytest.raises(RankCrashedError):
                c.barrier()
        assert c.faults.permanent_crashes == 1

    def test_max_faults_budget(self):
        c = FaultyCluster(2, FaultSpec(drop=1.0, max_faults=3))
        hits = 0
        for _ in range(10):
            try:
                c.barrier()
            except MessageDropError:
                hits += 1
        assert hits == 3


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(FaultSpecError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(FaultSpecError):
            RecoveryPolicy(backoff_factor=0.0)
        with pytest.raises(FaultSpecError):
            RecoveryPolicy(phase_timeout=-2.0)

    def test_backoff_grows(self):
        p = RecoveryPolicy(backoff_base=1e-3, backoff_factor=2.0)
        assert p.backoff(1) == pytest.approx(1e-3)
        assert p.backoff(3) == pytest.approx(4e-3)
        assert p.backoff(2) > p.backoff(1)

    def test_retry_succeeds_after_transients(self):
        cluster = SimCluster(2)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise MessageDropError("lost")
            return "done"

        value, retries = run_with_retries(flaky, cluster, RecoveryPolicy())
        assert value == "done"
        assert retries == 2
        assert cluster.stats.comm_time > 0  # backoff was charged

    def test_retry_exhaustion(self):
        cluster = SimCluster(2)

        def always_fails():
            raise MessageDropError("lost again")

        with pytest.raises(RetryExhaustedError) as ei:
            run_with_retries(always_fails, cluster,
                             RecoveryPolicy(max_retries=2), phase="coarsen")
        assert isinstance(ei.value.__cause__, MessageDropError)

    def test_permanent_error_not_retried(self):
        cluster = SimCluster(2)
        calls = {"n": 0}

        def crashes():
            calls["n"] += 1
            raise RankCrashedError("rank 1 died", ranks=(1,))

        with pytest.raises(RankCrashedError):
            run_with_retries(crashes, cluster, RecoveryPolicy())
        assert calls["n"] == 1

    def test_deadline_enforced(self):
        cluster = SimCluster(2)
        cluster.stats.compute_time = 10.0  # simulated clock already past

        def never_runs():  # pragma: no cover - must not be called
            raise AssertionError("attempt ran past the deadline")

        with pytest.raises(PhaseTimeoutError):
            run_with_retries(never_runs, cluster,
                             RecoveryPolicy(phase_timeout=1.0),
                             phase="refine", deadline=5.0)


@pytest.fixture
def chaos_graph():
    return mesh_like(120, seed=1)


@pytest.fixture
def chaos_opts():
    # kway_coarsen_factor=5 so the 120-vertex graph really coarsens
    # (exercising the coarsen/refine retry loops, not just initpart).
    return PartitionOptions(seed=5, kway_refine_passes=2, init_ntries=1,
                            rb_multilevel=False, coarsen_to=40,
                            kway_coarsen_factor=5)


class TestDriverHardening:
    def test_retries_absorb_moderate_faults(self, chaos_graph, chaos_opts):
        res = parallel_part_graph(
            chaos_graph, 4, 3, options=chaos_opts,
            faults=FaultSpec(drop=0.08, seed=7))
        assert not res.degraded
        assert res.retries > 0
        assert res.faults["dropped"] > 0
        assert res.feasible

    def test_heavy_faults_degrade_gracefully(self, chaos_graph, chaos_opts):
        res = parallel_part_graph(
            chaos_graph, 4, 3, options=chaos_opts,
            faults=FaultSpec(drop=0.7, crash_permanent=0.2, seed=1))
        assert res.degraded
        assert res.degraded_reason
        assert res.feasible  # fallback still yields a valid partition
        assert "DEGRADED" in res.summary()
        assert set(np.unique(res.part)) <= set(range(4))

    def test_strict_raises_degraded_result(self, chaos_graph, chaos_opts):
        with pytest.raises(DegradedResult) as ei:
            parallel_part_graph(
                chaos_graph, 4, 3, options=chaos_opts,
                faults=FaultSpec(drop=0.7, crash_permanent=0.2, seed=1),
                strict=True)
        assert isinstance(ei.value.__cause__, ReproError)
        assert ei.value.reason

    def test_recovery_policy_allow_degraded_false(self, chaos_graph, chaos_opts):
        with pytest.raises(DegradedResult):
            parallel_part_graph(
                chaos_graph, 4, 3, options=chaos_opts,
                faults=FaultSpec(drop=0.7, crash_permanent=0.2, seed=1),
                recovery=RecoveryPolicy(allow_degraded=False))

    def test_phase_timeout_degrades(self, chaos_graph, chaos_opts):
        res = parallel_part_graph(
            chaos_graph, 4, 3, options=chaos_opts,
            faults=FaultSpec(delay=0.5, delay_rounds=1000, seed=2),
            recovery=RecoveryPolicy(phase_timeout=1e-4))
        assert res.degraded
        assert "PhaseTimeout" in res.degraded_reason or "Retry" in res.degraded_reason

    def test_degradation_recorded_in_trace(self, chaos_graph, chaos_opts):
        from repro.trace import TraceReport, Tracer

        tracer = Tracer()
        res = parallel_part_graph(
            chaos_graph, 4, 3, options=chaos_opts, tracer=tracer,
            faults=FaultSpec(drop=0.7, crash_permanent=0.2, seed=1))
        tracer.finish()
        assert res.degraded
        rep = TraceReport.from_tracer(tracer)
        assert rep.counters.get("parallel.degraded") == 1
        names = []

        def walk(span):
            names.append(span.name)
            for ch in span.children:
                walk(ch)

        walk(rep.root)
        assert "degraded_fallback" in names

    def test_fault_counters_in_trace(self, chaos_graph, chaos_opts):
        from repro.trace import TraceReport, Tracer

        tracer = Tracer()
        res = parallel_part_graph(
            chaos_graph, 4, 3, options=chaos_opts, tracer=tracer,
            faults=FaultSpec(drop=0.08, seed=7))
        tracer.finish()
        rep = TraceReport.from_tracer(tracer)
        assert rep.counters.get("faults.injected") == res.faults["injected"]
        assert rep.counters.get("faults.retries", 0) >= res.retries


class TestNoFaultBitIdentity:
    """With no fault spec the hardened driver must reproduce the exact
    recorded baseline partitions (cut / part-vector hash / simulated time).

    Baselines re-recorded for the executor-seam restructure: the kernels
    now run as pure per-rank snapshot steps (so the shm executor can
    reproduce them bit-for-bit), which changed the RNG spawn layout and
    the matching protocol's arbitration numerics."""

    def _digest(self, res):
        return hashlib.sha256(res.part.tobytes()).hexdigest()[:16]

    def test_baseline_single_constraint(self):
        g = mesh_like(500, seed=7)
        res = parallel_part_graph(g, 4, 3, options=PartitionOptions(seed=42))
        assert res.edgecut == 261
        assert self._digest(res) == "b51cca7280c5e3f5"
        assert res.simulated_time == pytest.approx(1.1213468000e-03, abs=1e-12)

    def test_baseline_multi_constraint(self):
        g = mesh_like(300, seed=5)
        g = g.with_vwgt(type1_region_weights(g, 2, seed=3))
        res = parallel_part_graph(g, 4, 4, options=PartitionOptions(seed=9))
        assert res.edgecut == 253
        assert self._digest(res) == "c33e174a162d0378"
        assert res.simulated_time == pytest.approx(9.5966040000e-04, abs=1e-12)

    def test_disabled_spec_identical_to_none(self, chaos_graph, chaos_opts):
        a = parallel_part_graph(chaos_graph, 4, 3, options=chaos_opts)
        b = parallel_part_graph(chaos_graph, 4, 3, options=chaos_opts,
                                faults=FaultSpec())
        assert np.array_equal(a.part, b.part)
        assert a.simulated_time == b.simulated_time
        # a disabled spec also doesn't pay for the FaultyCluster
        assert b.faults is None or b.faults["injected"] == 0


class TestChaosSweep:
    """Acceptance criterion: 100 seeded fault schedules, zero uncaught
    exceptions; every run yields a feasible partition or a typed
    ReproError."""

    def test_hundred_seeded_schedules(self, chaos_graph, chaos_opts):
        degraded = clean = 0
        for seed in range(100):
            # Vary the fault mix with the seed so the sweep covers light,
            # heavy, and pathological schedules.
            scale = 0.2 + 1.3 * (seed % 7) / 6.0
            spec = FaultSpec(
                drop=min(1.0, 0.05 * scale),
                delay=min(1.0, 0.04 * scale),
                duplicate=min(1.0, 0.03 * scale),
                reorder=min(1.0, 0.03 * scale),
                crash=min(1.0, 0.03 * scale),
                crash_permanent=min(1.0, 0.01 * scale),
                seed=seed,
            )
            strict = seed % 10 == 9
            try:
                res = parallel_part_graph(chaos_graph, 4, 3,
                                          options=chaos_opts, faults=spec,
                                          strict=strict)
            except ReproError as exc:
                # Typed failure: only allowed in strict mode, and only as
                # DegradedResult with the cause chained.
                assert strict, f"non-strict run {seed} raised {exc!r}"
                assert isinstance(exc, DegradedResult)
                continue
            # Typed success: a structurally valid partition.
            assert res.part.shape == (chaos_graph.nvtxs,)
            assert res.part.min() >= 0 and res.part.max() < 4
            assert res.edgecut >= 0
            degraded += res.degraded
            clean += not res.degraded
        # The sweep must exercise both the retry path and the fallback.
        assert degraded > 0
        assert clean > 0
