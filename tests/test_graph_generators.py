"""Unit tests for synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    complete_graph,
    cycle_graph,
    delaunay_mesh,
    grid_2d,
    grid_3d,
    is_connected,
    mesh_like,
    path_graph,
    random_geometric,
    random_regular_like,
    star_graph,
    torus_2d,
)


class TestStructured:
    def test_path(self):
        g = path_graph(6)
        assert g.nvtxs == 6 and g.nedges == 5
        assert is_connected(g)

    def test_single_vertex_path(self):
        g = path_graph(1)
        assert g.nvtxs == 1 and g.nedges == 0

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.nedges == 7
        assert np.all(g.degrees() == 2)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert g.nedges == 4

    def test_complete(self):
        g = complete_graph(5)
        assert g.nedges == 10
        assert np.all(g.degrees() == 4)

    def test_grid_2d_counts(self):
        g = grid_2d(4, 7)
        assert g.nvtxs == 28
        assert g.nedges == 4 * 6 + 3 * 7  # horizontal + vertical
        assert is_connected(g)
        assert g.coords.shape == (28, 2)

    def test_grid_1xn_is_path(self):
        assert grid_2d(1, 5).nedges == 4

    def test_grid_3d_counts(self):
        g = grid_3d(3, 4, 5)
        assert g.nvtxs == 60
        assert g.nedges == (2 * 4 * 5) + (3 * 3 * 5) + (3 * 4 * 4)
        assert is_connected(g)

    def test_torus_regular(self):
        g = torus_2d(4, 5)
        assert np.all(g.degrees() == 4)
        assert g.nedges == 2 * 20

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            torus_2d(2, 5)

    def test_bad_dims(self):
        with pytest.raises(GraphError):
            grid_2d(0, 5)
        with pytest.raises(GraphError):
            grid_3d(1, 0, 2)


class TestIrregular:
    def test_random_geometric_connected_and_bounded(self):
        g = random_geometric(400, k=6, seed=0)
        assert g.nvtxs == 400
        assert is_connected(g)
        # kNN symmetrised: degree between k and a small multiple of k.
        assert g.degrees().min() >= 6
        assert g.degrees().max() <= 30

    def test_random_geometric_deterministic(self):
        a = random_geometric(100, seed=5)
        b = random_geometric(100, seed=5)
        assert a == b

    def test_random_geometric_3d(self):
        g = random_geometric(200, k=7, dim=3, seed=1)
        assert g.coords.shape == (200, 3)

    def test_delaunay_planar_density(self):
        g = delaunay_mesh(500, seed=2)
        # Planar triangulation: E <= 3n - 6.
        assert g.nedges <= 3 * 500 - 6
        assert g.nedges >= 2 * 500 - 10
        assert is_connected(g)

    def test_mesh_like_density_matches_paper_family(self):
        g = mesh_like(1500, seed=3)
        ratio = g.nedges / g.nvtxs
        # mrng* graphs have ~3.9-4.0 edges per vertex.
        assert 3.3 <= ratio <= 5.0
        assert is_connected(g)

    def test_random_regular_like(self):
        g = random_regular_like(200, 4, seed=9)
        assert g.nvtxs == 200
        assert g.degrees().mean() == pytest.approx(8, rel=0.4)

    def test_too_small_inputs(self):
        with pytest.raises(GraphError):
            random_geometric(1)
        with pytest.raises(GraphError):
            delaunay_mesh(3)
        with pytest.raises(GraphError):
            random_regular_like(3, 5)

    def test_all_generators_validate(self):
        for g in [
            grid_2d(5, 5),
            grid_3d(3, 3, 3),
            torus_2d(4, 4),
            random_geometric(150, seed=0),
            delaunay_mesh(150, seed=0),
            mesh_like(150, seed=0),
            random_regular_like(150, 5, seed=0),
        ]:
            g.validate()
