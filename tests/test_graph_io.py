"""Unit tests for METIS-format / edge-list IO."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError, PartitionError
from repro.graph import (
    from_edges,
    read_edgelist,
    read_metis_graph,
    read_partition,
    write_edgelist,
    write_metis_graph,
    write_partition,
)
from repro.weights import random_vwgt


def roundtrip(graph):
    buf = io.StringIO()
    write_metis_graph(graph, buf)
    buf.seek(0)
    return read_metis_graph(buf)


class TestMetisRoundtrip:
    def test_plain(self, small_grid):
        assert roundtrip(small_grid) == small_grid

    def test_with_vertex_weights(self, mesh500):
        g = mesh500.with_vwgt(random_vwgt(500, 3, seed=0))
        assert roundtrip(g) == g

    def test_with_edge_weights(self, small_grid):
        w = (np.arange(small_grid.adjncy.shape[0]) % 3).astype(np.int64)
        # make symmetric by writing via from_edges
        us, vs, _ = small_grid.edge_arrays()
        g = from_edges(small_grid.nvtxs, np.stack([us, vs], axis=1),
                       (np.arange(us.shape[0]) % 5) + 1)
        assert roundtrip(g) == g

    def test_with_both_weights(self, mesh500):
        us, vs, _ = mesh500.edge_arrays()
        g = from_edges(500, np.stack([us, vs], axis=1),
                       (np.arange(us.shape[0]) % 4) + 1,
                       vwgt=random_vwgt(500, 2, seed=1))
        assert roundtrip(g) == g

    def test_file_paths(self, tmp_path, small_grid):
        p = tmp_path / "g.graph"
        write_metis_graph(small_grid, p)
        assert read_metis_graph(p) == small_grid


class TestMetisParsing:
    def test_comments_and_blank_lines(self):
        text = "% a comment\n3 2\n\n2\n1 3\n2\n"
        g = read_metis_graph(io.StringIO(text))
        assert g.nvtxs == 3 and g.nedges == 2

    def test_explicit_fmt_and_ncon(self):
        text = "2 1 011 2\n1 2 2 5\n3 4 1 5\n"
        g = read_metis_graph(io.StringIO(text))
        assert g.ncon == 2
        assert g.vwgt.tolist() == [[1, 2], [3, 4]]
        assert g.total_adjwgt() == 5

    def test_fmt_10_vertex_weights_only(self):
        text = "2 1 10\n7 2\n9 1\n"
        g = read_metis_graph(io.StringIO(text))
        assert g.vwgt[:, 0].tolist() == [7, 9]
        assert np.all(g.adjwgt == 1)

    def test_empty_file_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO(""))

    def test_bad_header_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO("3\n"))

    def test_wrong_line_count_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO("3 1\n2\n1\n"))

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO("3 5\n2\n1 3\n2\n"))

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO("2 1\n5\n1\n"))

    def test_vsize_fmt_unsupported(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO("2 1 100\n1 2\n1 1\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO("2 1\nx\n1\n"))

    def test_dangling_edge_weight_rejected(self):
        with pytest.raises(GraphFormatError):
            read_metis_graph(io.StringIO("2 1 1\n2\n1 5\n"))


class TestPartitionIO:
    def test_roundtrip(self, tmp_path):
        part = np.array([0, 2, 1, 1, 0])
        p = tmp_path / "part"
        write_partition(part, p)
        assert np.array_equal(read_partition(p, 5), part)

    def test_length_check(self, tmp_path):
        p = tmp_path / "part"
        write_partition([0, 1], p)
        with pytest.raises(PartitionError):
            read_partition(p, 5)

    def test_negative_rejected(self):
        with pytest.raises(PartitionError):
            read_partition(io.StringIO("0\n-1\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(PartitionError):
            read_partition(io.StringIO("0\nabc\n"))


class TestEdgeList:
    def test_roundtrip(self, small_grid, tmp_path):
        p = tmp_path / "g.edges"
        write_edgelist(small_grid, p)
        assert read_edgelist(p, small_grid.nvtxs) == small_grid

    def test_weights_and_comments(self):
        text = "# comment\n0 1 5\n% other\n1 2\n"
        g = read_edgelist(io.StringIO(text))
        assert g.nvtxs == 3
        assert g.total_adjwgt() == 6

    def test_bad_line_rejected(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("0 1 2 3\n"))

    def test_empty_rejected(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("# nothing\n"))
