"""Unit tests for the balanced-bisection theory algorithms and the initial
bisection of the coarsest graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError, WeightError
from repro.graph import mesh_like
from repro.initpart import (
    best_projection_bisection,
    bisection_excess,
    greedy_bisection,
    grow_bisection,
    initial_bisection,
    prefix_bisection,
)
from repro.refine import edge_cut
from repro.weights import max_imbalance, random_vwgt, relative_weights


def _relw(n, m, seed):
    return relative_weights(random_vwgt(n, m, low=1, high=20, seed=seed))


class TestGreedyBisection:
    def test_single_constraint_bound(self):
        """Provable guarantee for m=1: excess <= wmax."""
        for seed in range(10):
            relw = _relw(64, 1, seed)
            where = greedy_bisection(relw, seed=seed)
            assert bisection_excess(relw, where) <= relw.max() + 1e-12

    def test_multi_constraint_quality(self):
        for m in (2, 3, 4, 5):
            relw = _relw(128, m, seed=m)
            where = greedy_bisection(relw, seed=m)
            # Empirical bound documented in the module: m * wmax.
            assert bisection_excess(relw, where) <= m * relw.max() + 1e-12

    def test_output_shape_and_values(self):
        relw = _relw(30, 2, 0)
        where = greedy_bisection(relw)
        assert where.shape == (30,)
        assert set(np.unique(where)) <= {0, 1}

    def test_asymmetric_target(self):
        relw = _relw(200, 2, 1)
        where = greedy_bisection(relw, target=0.25, seed=2)
        load0 = relw[where == 0].sum(axis=0)
        assert np.all(load0 <= 0.25 + 3 * relw.max())
        assert np.all(load0 >= 0.25 - 3 * relw.max())

    def test_bad_target(self):
        with pytest.raises(WeightError):
            greedy_bisection(_relw(10, 1, 0), target=0.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(WeightError):
            greedy_bisection(np.array([[-1.0]]))


class TestPrefixBisection:
    def test_correlated_constraints(self):
        rng = np.random.default_rng(0)
        # Positively correlated weights: the prefix cut's strong case.
        a = rng.integers(1, 20, size=100)
        relw = relative_weights(np.stack([a, a + rng.integers(0, 3, size=100)], axis=1))
        where = prefix_bisection(relw)
        assert bisection_excess(relw, where) <= 0.10

    def test_custom_projection(self):
        relw = _relw(50, 3, 1)
        where = prefix_bisection(relw, projection=relw[:, 2])
        assert set(np.unique(where)) <= {0, 1}

    def test_bad_projection_shape(self):
        with pytest.raises(WeightError):
            prefix_bisection(_relw(10, 2, 0), projection=np.ones(3))

    def test_single_constraint(self):
        relw = _relw(80, 1, 2)
        where = prefix_bisection(relw)
        assert bisection_excess(relw, where) <= relw.max() + 1e-12


class TestBestProjection:
    def test_beats_or_matches_single_prefix(self):
        for m in (2, 3, 4):
            relw = _relw(120, m, seed=10 + m)
            w1 = prefix_bisection(relw)
            w2 = best_projection_bisection(relw, seed=0)
            assert bisection_excess(relw, w2) <= bisection_excess(relw, w1) + 1e-12

    def test_five_constraints_feasible_quality(self):
        relw = _relw(256, 5, 3)
        where = best_projection_bisection(relw, seed=1)
        assert bisection_excess(relw, where) <= 0.10

    def test_anticorrelated_constraints(self):
        """The hard case: w2 decreases as w1 increases.  No prefix cut can
        balance both, the alternating deal must."""
        from repro.initpart import alternating_bisection

        rng = np.random.default_rng(4)
        a = rng.integers(1, 20, size=100)
        relw = relative_weights(np.stack([a, 21 - a], axis=1))
        walt = alternating_bisection(relw)
        assert bisection_excess(relw, walt) <= 0.05
        wbest = best_projection_bisection(relw, seed=0)
        assert bisection_excess(relw, wbest) <= 0.05

    def test_alternating_asymmetric_target(self):
        relw = _relw(300, 2, 9)
        from repro.initpart import alternating_bisection

        where = alternating_bisection(relw, target=0.25)
        load0 = relw[where == 0].sum(axis=0)
        assert np.all(np.abs(load0 - 0.25) <= 0.08)


class TestGrowBisection:
    def test_side0_connected_and_sized(self, mesh500):
        where = grow_bisection(mesh500, seed=0)
        frac = np.count_nonzero(where == 0) / 500
        assert 0.3 <= frac <= 0.75

    def test_weighted_growth(self, mesh500):
        g = mesh500.with_vwgt(random_vwgt(500, 2, low=1, high=10, seed=1))
        where = grow_bisection(g, target=0.5, seed=2)
        relw = relative_weights(g.vwgt)
        load0 = relw[where == 0].sum(axis=0)
        # Growth stops when the *max* constraint hits target; overshoot is
        # bounded by one BFS front.
        assert load0.max() >= 0.5 - 1e-9
        assert load0.max() <= 0.75

    def test_empty_graph(self):
        from repro.graph import Graph

        assert grow_bisection(Graph([0], [])).size == 0


class TestInitialBisection:
    def test_small_mesh_quality(self):
        g = mesh_like(150, seed=0)
        where = initial_bisection(g, ubvec=1.05, seed=1)
        assert max_imbalance(g.vwgt, where, 2) <= 1.05 + 1e-9
        # Geometric 150-vertex mesh: a decent bisection cuts far fewer than
        # the ~600 total edges.
        assert edge_cut(g, where) < 0.25 * g.total_adjwgt()

    def test_multiconstraint(self):
        g = mesh_like(200, seed=2).with_vwgt(random_vwgt(200, 3, low=1, high=9, seed=3))
        where = initial_bisection(g, ubvec=1.10, seed=4)
        assert max_imbalance(g.vwgt, where, 2) <= 1.10 + 1e-6

    def test_respects_target_fracs(self):
        g = mesh_like(300, seed=5)
        where = initial_bisection(g, target_fracs=(2 / 3, 1 / 3), ubvec=1.05, seed=6)
        frac0 = g.vwgt[where == 0].sum() / g.vwgt.sum()
        assert 0.60 <= frac0 <= 0.72

    def test_methods_selectable_and_validated(self):
        g = mesh_like(100, seed=7)
        for m in ("greedy", "prefix", "region", "random"):
            where = initial_bisection(g, seed=8, methods=(m,), ntries=1)
            assert where.shape == (100,)
        with pytest.raises(PartitionError):
            initial_bisection(g, methods=("nope",))

    def test_deterministic(self):
        g = mesh_like(120, seed=9)
        a = initial_bisection(g, seed=11)
        b = initial_bisection(g, seed=11)
        assert np.array_equal(a, b)

    def test_two_vertices(self):
        from repro.graph import from_edges

        g = from_edges(2, [(0, 1)])
        where = initial_bisection(g, seed=0)
        assert sorted(where.tolist()) == [0, 1]


class TestGGGP:
    def test_balanced_growth(self, mesh2000):
        from repro.initpart import gggp_bisection

        where = gggp_bisection(mesh2000, seed=0)
        frac = np.count_nonzero(where == 0) / 2000
        assert 0.4 <= frac <= 0.65

    def test_better_cut_than_bfs_growth(self, mesh2000):
        """The gain ordering must pay off on irregular meshes (averaged
        over seeds to dodge seed luck)."""
        from repro.initpart import gggp_bisection

        g_cuts = [edge_cut(mesh2000, gggp_bisection(mesh2000, seed=s))
                  for s in range(4)]
        b_cuts = [edge_cut(mesh2000, grow_bisection(mesh2000, seed=s))
                  for s in range(4)]
        assert np.mean(g_cuts) <= np.mean(b_cuts)

    def test_multiconstraint_target(self, mesh500):
        from repro.initpart import gggp_bisection
        from repro.weights import random_vwgt, relative_weights

        g = mesh500.with_vwgt(random_vwgt(500, 3, low=1, high=9, seed=1))
        where = gggp_bisection(g, target=0.5, seed=2)
        relw = relative_weights(g.vwgt)
        load0 = relw[where == 0].sum(axis=0)
        assert load0.max() >= 0.5 - 1e-9
        assert load0.max() <= 0.62

    def test_disconnected_restart(self):
        from repro.graph import from_edges
        from repro.initpart import gggp_bisection

        # Two disjoint triangles: growth must jump components.
        g = from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        where = gggp_bisection(g, seed=3)
        assert np.count_nonzero(where == 0) >= 3

    def test_in_initial_bisection_method_list(self, mesh500):
        where = initial_bisection(mesh500, methods=("gggp",), ntries=1, seed=4)
        assert where.shape == (500,)


class TestOptimizedParity:
    """The batched/vectorized fast paths pinned against the in-tree
    ``_reference_*`` oracles: same seed, bit-identical side vectors."""

    def _corpus(self):
        cases = []
        for i, (n, m) in enumerate([(60, 1), (90, 2), (120, 3), (150, 2)]):
            g = mesh_like(n, seed=300 + i)
            if m > 1:
                g = g.with_vwgt(random_vwgt(n, m, low=1, high=9, seed=i))
            cases.append(g)
        return cases

    def test_grow_matches_reference(self):
        from repro.initpart.bisect import _reference_grow_bisection

        for g in self._corpus():
            for seed in (0, 1, 2):
                assert np.array_equal(
                    grow_bisection(g, seed=seed),
                    _reference_grow_bisection(g, seed=seed))

    def test_gggp_matches_reference(self):
        from repro.initpart import gggp_bisection
        from repro.initpart.bisect import _reference_gggp_bisection

        for g in self._corpus():
            for seed in (0, 1, 2):
                assert np.array_equal(
                    gggp_bisection(g, seed=seed),
                    _reference_gggp_bisection(g, seed=seed))

    def test_asymmetric_target_matches_reference(self):
        from repro.initpart.bisect import (_reference_gggp_bisection,
                                           _reference_grow_bisection)

        g = self._corpus()[2]
        for target in (0.25, 0.375):
            assert np.array_equal(
                grow_bisection(g, target, seed=7),
                _reference_grow_bisection(g, target, seed=7))
            from repro.initpart import gggp_bisection
            assert np.array_equal(
                gggp_bisection(g, target, seed=7),
                _reference_gggp_bisection(g, target, seed=7))

    def test_strict_matches_reference_multistart(self):
        """``strict=True`` replays the legacy exhaustive loop exactly."""
        from repro.initpart.bisect import _reference_initial_bisection

        for g in self._corpus():
            fast = initial_bisection(g, ntries=3, seed=11, strict=True)
            ref = _reference_initial_bisection(g, ntries=3, seed=11)
            assert np.array_equal(fast, ref)

    def test_early_stop_deterministic(self):
        """Same seed -> same winner, with and without the plateau stop."""
        g = mesh_like(400, seed=9).with_vwgt(
            random_vwgt(400, 2, low=1, high=9, seed=9))
        for kwargs in ({"patience": 2}, {"patience": 4}, {"strict": True}):
            a = initial_bisection(g, ntries=8, seed=5, **kwargs)
            b = initial_bisection(g, ntries=8, seed=5, **kwargs)
            assert np.array_equal(a, b), kwargs

    def test_early_stop_quality_envelope(self):
        """The adaptive walk may stop early but must stay feasible and
        within a modest cut factor of the exhaustive answer."""
        g = mesh_like(400, seed=9).with_vwgt(
            random_vwgt(400, 2, low=1, high=9, seed=9))
        adaptive = initial_bisection(g, ntries=8, seed=5, patience=4)
        strict = initial_bisection(g, ntries=8, seed=5, strict=True)
        relw = relative_weights(g.vwgt)
        for where in (adaptive, strict):
            load0 = relw[where == 0].sum(axis=0)
            assert np.all(load0 <= 0.55)
        assert edge_cut(g, adaptive) <= edge_cut(g, strict) * 1.5


class TestInitOptionsFrontDoor:
    """Unknown init knobs fail fast in PartitionOptions with a
    difflib suggestion (the PR 4 convention)."""

    def test_init_methods_typo_suggests(self):
        from repro.errors import OptionsError
        from repro.partition import PartitionOptions

        with pytest.raises(OptionsError, match="prefix"):
            PartitionOptions(init_methods=("greedy", "prefx"))

    def test_negative_knobs_rejected(self):
        from repro.partition import PartitionOptions

        with pytest.raises(PartitionError):
            PartitionOptions(init_ntries=0)
        with pytest.raises(PartitionError):
            PartitionOptions(init_patience=-1)
        with pytest.raises(PartitionError):
            PartitionOptions(init_workers=-2)

    def test_cli_flags_reach_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--demo", "100", "2", "--init-ntries", "3",
             "--init-methods", "greedy,gggp", "--init-patience", "2",
             "--init-workers", "0", "--strict-ntries"])
        assert args.init_ntries == 3
        assert args.init_methods == "greedy,gggp"
        assert args.init_patience == 2
        assert args.init_workers == 0
        assert args.strict_ntries is True

    def test_cli_typo_exits_with_suggestion(self, capsys):
        from repro.cli import main

        rc = main(["--demo", "100", "2", "--init-methods", "prefx"])
        assert rc != 0
        err = capsys.readouterr().err
        assert "prefix" in err
